// Package repro is a full reproduction of Rudolph & Segall, "Dynamic
// Decentralized Cache Schemes for MIMD Parallel Processors" (CMU-CS-84-139,
// ISCA 1984): the RB and RWB snooping cache-coherence protocols, the
// Test-and-Test-and-Set synchronization idiom, the Section 4 consistency
// proof (mechanized as a product-machine model checker), and the Section 7
// shared-bus bandwidth analysis — all on top of a cycle-stepped
// shared-bus multiprocessor simulator written from scratch.
//
// This root package is the public facade: it re-exports the types a user
// needs to assemble machines, choose protocols, generate workloads, run
// the paper's experiments, and model-check protocol variants. The
// subsystems live in internal/ packages (bus, cache, coherence, machine,
// workload, check, experiments, ...) and the runnable entry points in
// cmd/ and examples/.
//
// Quick start:
//
//	agents := []repro.Agent{
//		repro.NewSpinlock(repro.SpinlockConfig{Lock: 100, Strategy: repro.StrategyTTS, Iterations: 50}),
//		repro.NewSpinlock(repro.SpinlockConfig{Lock: 100, Strategy: repro.StrategyTTS, Iterations: 50}),
//	}
//	m, err := repro.NewMachine(repro.MachineConfig{Protocol: repro.RB(), CheckConsistency: true}, agents)
//	...
//	m.Run(1_000_000)
//	fmt.Println(m.Metrics().Bus.Transactions())
package repro
