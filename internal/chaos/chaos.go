// Package chaos is the cluster-tier analog of internal/fault: a seeded,
// deterministic fault-plan layer over the fleet's HTTP transport. Where
// the S23 layer perturbs buses, memories, and caches inside one
// simulator and classifies each trial against a byte-identity oracle,
// this layer perturbs the *distributed* machine — connections refused,
// latency spikes, responses truncated mid-frame, 5xx bursts, workers
// paused or crashed — and the chaos campaign (cmd/chaoscampaign)
// classifies whole traffic runs masked/degraded/failed against the
// fault-free single-node oracle.
//
// Everything is a pure function of (seed, class, intensity, sequence
// number): the same plan replays the same faults at the same points in
// the request stream forever, so a campaign cell is as reproducible as
// a fault-injection trial. No math/rand, no wall clock — the
// determinism analyzer holds this package to the same standard as the
// simulator, and the protolint fixture pair (seed-derived plan vs
// time-seeded plan) pins the idiom.
package chaos

import (
	"fmt"
	"time"
)

// Class enumerates the injectable cluster fault classes.
type Class uint8

const (
	// ConnRefuse fails the dial outright: the worker looks down for
	// exactly one proxy attempt — the transient network partition.
	ConnRefuse Class = iota
	// Latency delays the response by a plan-chosen amount — the slow
	// replica / congested link that hedging and attempt timeouts exist
	// for.
	Latency
	// Truncate cuts the response body short with a clean EOF —
	// including mid-SSE-frame — exactly the failure a stream consumer
	// mistakes for a short-but-complete result unless it checks for
	// the terminal end frame.
	Truncate
	// Burst5xx replaces runs of consecutive responses with gateway-ish
	// 5xx statuses (503 with Retry-After, bare 502) — the overloaded or
	// misbehaving worker the breaker and 5xx failover absorb.
	Burst5xx
	// WorkerPause freezes a worker process for a stretch of the request
	// stream: connections are accepted but nothing answers (the SIGSTOP
	// / GC-death profile). Served through the process schedule, not the
	// transport.
	WorkerPause
	// WorkerCrash kills a worker and restarts it later in the stream
	// with its store intact — the rolling-restart / OOM-kill profile.
	// Served through the process schedule, not the transport.
	WorkerCrash
	numClasses
)

// String returns the class's kebab-case name (the campaign cell-id and
// CLI vocabulary).
func (c Class) String() string {
	switch c {
	case ConnRefuse:
		return "conn-refuse"
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	case Burst5xx:
		return "burst-5xx"
	case WorkerPause:
		return "worker-pause"
	case WorkerCrash:
		return "worker-crash"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classes returns every chaos class in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ParseClass resolves a kebab-case class name.
func ParseClass(name string) (Class, error) {
	for _, c := range Classes() {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown class %q (have %v)", name, Classes())
}

// Process reports whether the class is injected through the process
// schedule (pause/crash of whole workers) rather than the transport.
func (c Class) Process() bool { return c == WorkerPause || c == WorkerCrash }

// Intensity scales how often (and how hard) a plan injects.
type Intensity uint8

const (
	// Low injects rarely — the background-noise regime.
	Low Intensity = iota
	// Default is the campaign's standard regime: frequent enough that
	// every run sees faults, sparse enough that a self-healing fleet
	// keeps its contract.
	Default
	// High injects aggressively — the regime where degradation (shed
	// load, retries) is expected and only contract violations count as
	// failure.
	High
	numIntensities
)

// String returns the intensity's name.
func (i Intensity) String() string {
	switch i {
	case Low:
		return "low"
	case Default:
		return "default"
	case High:
		return "high"
	}
	return fmt.Sprintf("Intensity(%d)", uint8(i))
}

// Intensities returns every intensity in ascending order.
func Intensities() []Intensity {
	out := make([]Intensity, numIntensities)
	for i := range out {
		out[i] = Intensity(i)
	}
	return out
}

// ParseIntensity resolves an intensity name.
func ParseIntensity(name string) (Intensity, error) {
	for _, i := range Intensities() {
		if i.String() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown intensity %q (have %v)", name, Intensities())
}

// rate is the per-request injection probability in 1/1024ths.
func (i Intensity) rate() uint64 {
	switch i {
	case Low:
		return 51 // ~5%
	case High:
		return 358 // ~35%
	default:
		return 154 // ~15%
	}
}

// Plan is one cell's fault schedule, keyed by (seed, class,
// intensity). It carries no mutable state: every decision is computed
// on demand from the key and a sequence number.
type Plan struct {
	Seed      uint64
	Class     Class
	Intensity Intensity
}

// Decision is what the plan injects for one transport request.
type Decision struct {
	// Refuse fails the dial (connection refused).
	Refuse bool
	// Delay postpones the response by this much.
	Delay time.Duration
	// TruncateAfter, when positive, cuts the response body short with a
	// clean EOF after this many bytes.
	TruncateAfter int
	// Code, when non-zero, replaces the response with this status
	// (503 carries a Retry-After hint; 502 is bare).
	Code int
}

// Faulty reports whether the decision injects anything.
func (d Decision) Faulty() bool {
	return d.Refuse || d.Delay > 0 || d.TruncateAfter > 0 || d.Code != 0
}

// mix64 is a splitmix64 finalizer — the same pure scramble the sweep
// and fault layers use to derive independent streams from one seed.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw derives the n-th 64-bit value of the plan's stream for seq: a
// pure function of (seed, class, intensity, seq, n).
func (p Plan) draw(seq, n uint64) uint64 {
	key := p.Seed
	key = mix64(key ^ uint64(p.Class)<<8 ^ uint64(p.Intensity))
	key = mix64(key ^ seq*0xbf58476d1ce4e5b9)
	return mix64(key ^ n*0x94d049bb133111eb)
}

// burstLen is how many consecutive requests one Burst5xx granule spans.
const burstLen = 3

// Decide returns the injection for transport request seq. Process-level
// classes (WorkerPause, WorkerCrash) never inject at the transport;
// their schedule comes from ProcSchedule.
func (p Plan) Decide(seq uint64) Decision {
	var d Decision
	if p.Class.Process() {
		return d
	}
	switch p.Class {
	case Burst5xx:
		// Burst membership is decided per granule of burstLen
		// consecutive requests, so injected 5xxes arrive in runs.
		granule := seq / burstLen
		if p.draw(granule, 0)%1024 < p.Intensity.rate() {
			if p.draw(granule, 1)%4 == 0 {
				d.Code = 502
			} else {
				d.Code = 503
			}
		}
	default:
		if p.draw(seq, 0)%1024 >= p.Intensity.rate() {
			return d
		}
		switch p.Class {
		default:
			// Burst5xx and the process classes are handled above.
		case ConnRefuse:
			d.Refuse = true
		case Latency:
			// 20..120ms spike: visible next to a warm store hit, far
			// under any attempt timeout.
			d.Delay = time.Duration(20+p.draw(seq, 1)%100) * time.Millisecond
		case Truncate:
			// Cut 16..271 bytes in: with SSE frames ~40-80 bytes this
			// lands mid-frame as often as between frames, and always
			// before a long stream's terminal end frame.
			d.TruncateAfter = int(16 + p.draw(seq, 1)%256)
		}
	}
	return d
}

// ProcEvent is one scheduled process-level fault: when the traffic
// sequence counter reaches At, the campaign pauses or crashes worker
// index Worker, undoing it (resume / restart) when the counter reaches
// Until.
type ProcEvent struct {
	// At is the request index the fault fires before.
	At uint64
	// Until is the request index the fault heals before (resume or
	// restart). Until > At.
	Until uint64
	// Worker indexes into the fleet (0-based).
	Worker int
	// Pause selects freeze/resume; false means crash/restart.
	Pause bool
}

// ProcSchedule derives the deterministic pause/crash schedule for a
// traffic run of total requests over a fleet of workers. Faults are
// spaced so at most one worker is dark at a time — the campaign's
// contract is stated for fleets with at least two healthy workers
// remaining — and every fault heals before the run ends.
func (p Plan) ProcSchedule(total uint64, workers int) []ProcEvent {
	if !p.Class.Process() || workers < 2 || total < 8 {
		return nil
	}
	// One fault per "period" of the stream; period length shrinks as
	// intensity grows. Each fault darkens a worker for a quarter of its
	// period, healing well before the next fault fires.
	var period uint64
	switch p.Intensity {
	case Low:
		period = total
	case High:
		period = total / 4
	default:
		period = total / 2
	}
	if period < 8 {
		period = 8
	}
	var events []ProcEvent
	for n, start := uint64(0), uint64(0); start+period <= total; n, start = n+1, start+period {
		at := start + 1 + p.draw(n, 0)%(period/2)
		dur := 2 + p.draw(n, 1)%(period/4+1)
		until := at + dur
		if until >= total {
			until = total - 1
		}
		if until <= at {
			continue
		}
		events = append(events, ProcEvent{
			At:     at,
			Until:  until,
			Worker: int(p.draw(n, 2) % uint64(workers)),
			Pause:  p.Class == WorkerPause,
		})
	}
	return events
}
