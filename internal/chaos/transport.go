package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Stats counts what a Transport actually injected — the campaign
// cross-checks these against the plan so a cell that happened to draw
// no faults is reported as such rather than as a vacuous pass.
type Stats struct {
	Requests  uint64
	Refused   uint64
	Delayed   uint64
	Truncated uint64
	Coded     uint64
}

// Faults is the total number of injected faults.
func (s Stats) Faults() uint64 { return s.Refused + s.Delayed + s.Truncated + s.Coded }

// Transport wraps an http.RoundTripper with a Plan: each request
// consumes one sequence number and suffers whatever the plan decided
// for it. The fleet under test never knows — refusals look like dial
// errors, injected 5xxes look like gateway responses, truncations look
// like clean short bodies.
type Transport struct {
	// Base performs the real round trip; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Plan is the fault schedule.
	Plan Plan

	seq       atomic.Uint64
	requests  atomic.Uint64
	refused   atomic.Uint64
	delayed   atomic.Uint64
	truncated atomic.Uint64
	coded     atomic.Uint64
}

// Stats returns a snapshot of the injection counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:  t.requests.Load(),
		Refused:   t.refused.Load(),
		Delayed:   t.delayed.Load(),
		Truncated: t.truncated.Load(),
		Coded:     t.coded.Load(),
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	seq := t.seq.Add(1) - 1
	t.requests.Add(1)
	d := t.Plan.Decide(seq)

	if d.Refuse {
		t.refused.Add(1)
		return nil, fmt.Errorf("chaos: connect %s: connection refused (plan seq %d)", req.URL.Host, seq)
	}
	if d.Code != 0 {
		// The request never reaches the worker: a synthesized gateway
		// error has no side effects, so a later retry of the same
		// content-hash id replays cleanly.
		t.coded.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		h := make(http.Header)
		h.Set("Content-Type", "text/plain; charset=utf-8")
		if d.Code == http.StatusServiceUnavailable {
			h.Set("Retry-After", strconv.Itoa(1))
		}
		body := fmt.Sprintf("chaos: injected %d (plan seq %d)\n", d.Code, seq)
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", d.Code, http.StatusText(d.Code)),
			StatusCode:    d.Code,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        h,
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	if d.Delay > 0 {
		t.delayed.Add(1)
		//lint:ignore determinism the injected latency spike is a real wall-clock delay by design; its duration is plan-derived
		timer := time.NewTimer(d.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if d.TruncateAfter > 0 {
		t.truncated.Add(1)
		resp.Body = &truncatingBody{rc: resp.Body, remain: d.TruncateAfter}
		// Content-Length (when the worker sent one) stays intact: a real
		// mid-body cut happens after the headers are on the wire, so a
		// length-checking consumer CAN catch the short read on plain
		// responses. The seeded bug lives in streams, which carry no
		// Content-Length and end in a clean EOF mid-frame.
	}
	return resp, nil
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// truncatingBody cuts a response body short with a clean io.EOF after
// remain bytes — deliberately indistinguishable from a complete short
// body, which is the seeded bug: a consumer that does not check for the
// terminal end frame accepts the cut stream as a clean result.
type truncatingBody struct {
	rc     io.ReadCloser
	remain int
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.EOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err == nil && b.remain <= 0 {
		err = io.EOF
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.rc.Close() }
