package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// seedWhere finds a seed whose plan satisfies pred at seq 0 — letting a
// test pin a specific injection on its first request without hardcoding
// magic constants that silently rot if the mixing changes.
func seedWhere(t *testing.T, class Class, in Intensity, pred func(Decision) bool) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		if pred(Plan{Seed: seed, Class: class, Intensity: in}.Decide(0)) {
			return seed
		}
	}
	t.Fatalf("no seed under 10000 yields the wanted %v decision at seq 0", class)
	return 0
}

// TestPlanDeterministic: Decide is a pure function of (seed, class,
// intensity, seq) — replaying a plan yields identical decisions, and
// changing any key component changes the stream.
func TestPlanDeterministic(t *testing.T) {
	const n = 512
	base := Plan{Seed: 42, Class: ConnRefuse, Intensity: Default}
	for seq := uint64(0); seq < n; seq++ {
		if base.Decide(seq) != base.Decide(seq) {
			t.Fatalf("Decide(%d) not stable across calls", seq)
		}
	}
	variants := []Plan{
		{Seed: 43, Class: ConnRefuse, Intensity: Default},
		{Seed: 42, Class: Truncate, Intensity: Default},
		{Seed: 42, Class: ConnRefuse, Intensity: High},
	}
	for _, v := range variants {
		same := true
		for seq := uint64(0); seq < n; seq++ {
			if base.Decide(seq) != v.Decide(seq) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("plan %+v decides identically to %+v over %d seqs; key not fully mixed", v, base, n)
		}
	}
}

// TestPlanInjectsAtDefaultIntensity: every transport class draws at
// least one fault within a campaign-sized stream, and fault frequency
// orders Low < High.
func TestPlanInjectsAtDefaultIntensity(t *testing.T) {
	const n = 512
	count := func(p Plan) int {
		c := 0
		for seq := uint64(0); seq < n; seq++ {
			if p.Decide(seq).Faulty() {
				c++
			}
		}
		return c
	}
	for _, class := range []Class{ConnRefuse, Latency, Truncate, Burst5xx} {
		def := count(Plan{Seed: 7, Class: class, Intensity: Default})
		if def == 0 {
			t.Errorf("%v at default intensity injected nothing in %d requests", class, n)
		}
		low := count(Plan{Seed: 7, Class: class, Intensity: Low})
		high := count(Plan{Seed: 7, Class: class, Intensity: High})
		if !(low < high) {
			t.Errorf("%v fault counts not ordered: low=%d high=%d", class, low, high)
		}
	}
}

// TestProcessClassesSilentAtTransport: pause/crash plans never inject
// at the transport; their faults live in the process schedule.
func TestProcessClassesSilentAtTransport(t *testing.T) {
	for _, class := range []Class{WorkerPause, WorkerCrash} {
		p := Plan{Seed: 9, Class: class, Intensity: High}
		for seq := uint64(0); seq < 256; seq++ {
			if d := p.Decide(seq); d.Faulty() {
				t.Fatalf("%v injected %+v at transport seq %d", class, d, seq)
			}
		}
	}
}

// TestBurstCodesAndRuns: Burst5xx only ever injects 502/503, and
// injected codes arrive in granule-aligned runs rather than isolated
// singles.
func TestBurstCodesAndRuns(t *testing.T) {
	p := Plan{Seed: 11, Class: Burst5xx, Intensity: High}
	sawRun := false
	for seq := uint64(0); seq < 1024; seq++ {
		d := p.Decide(seq)
		if d.Code != 0 && d.Code != 502 && d.Code != 503 {
			t.Fatalf("Burst5xx injected %d at seq %d; only 502/503 are contract-preservable", d.Code, seq)
		}
		if d.Code != 0 && seq%burstLen == 0 {
			run := true
			for k := uint64(1); k < burstLen; k++ {
				if p.Decide(seq+k).Code != d.Code {
					run = false
				}
			}
			if run {
				sawRun = true
			}
		}
	}
	if !sawRun {
		t.Fatal("no full burst granule observed in 1024 requests at high intensity")
	}
}

// TestTransportRefuse: a refusing decision fails the round trip without
// touching the worker.
func TestTransportRefuse(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer srv.Close()
	seed := seedWhere(t, ConnRefuse, High, func(d Decision) bool { return d.Refuse })
	tr := &Transport{Plan: Plan{Seed: seed, Class: ConnRefuse, Intensity: High}}
	_, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v, want an injected connection refusal", err)
	}
	if hits != 0 {
		t.Fatalf("worker saw %d requests through a refused dial", hits)
	}
	if s := tr.Stats(); s.Refused != 1 || s.Faults() != 1 {
		t.Fatalf("stats = %+v, want exactly one refusal", s)
	}
}

// TestTransportInjectedCode: a coded decision synthesizes the 5xx
// without reaching the worker, and 503 carries Retry-After.
func TestTransportInjectedCode(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer srv.Close()
	seed := seedWhere(t, Burst5xx, High, func(d Decision) bool { return d.Code == 503 })
	tr := &Transport{Plan: Plan{Seed: seed, Class: Burst5xx, Intensity: High}}
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want injected 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 503 missing Retry-After; the loadgen contract requires the hint")
	}
	if hits != 0 {
		t.Fatalf("worker saw %d requests through an injected 5xx", hits)
	}
}

// TestTransportTruncatesMidStream: a truncating decision cuts an SSE
// body with a clean EOF before the terminal end frame — the short read
// parses without error, which is exactly why consumers must scan for
// the end frame.
func TestTransportTruncatesMidStream(t *testing.T) {
	frames := strings.Repeat("event: result\ndata: {\"slot\":1}\n\n", 20) +
		"event: end\ndata: {\"http_code\":200}\n\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		io.WriteString(w, frames)
	}))
	defer srv.Close()
	seed := seedWhere(t, Truncate, High, func(d Decision) bool { return d.TruncateAfter > 0 })
	plan := Plan{Seed: seed, Class: Truncate, Intensity: High}
	cut := plan.Decide(0).TruncateAfter
	tr := &Transport{Plan: plan}
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("ReadAll = %v; truncation must look like a clean EOF, not a transport error", err)
	}
	if len(body) != cut {
		t.Fatalf("read %d bytes, want the plan's %d-byte cut", len(body), cut)
	}
	if strings.Contains(string(body), "event: end") {
		t.Fatal("cut body still contains the terminal end frame; truncation did not land mid-stream")
	}
}

// TestProcScheduleShape: the pause/crash schedule is deterministic,
// well-formed (At < Until < total, worker in range), and never darkens
// two workers at once.
func TestProcScheduleShape(t *testing.T) {
	p := Plan{Seed: 5, Class: WorkerCrash, Intensity: High}
	const total, workers = 64, 3
	a := p.ProcSchedule(total, workers)
	b := p.ProcSchedule(total, workers)
	if len(a) == 0 {
		t.Fatal("high-intensity crash plan scheduled no events over 64 requests")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule not deterministic: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across calls: %+v vs %+v", i, a[i], b[i])
		}
	}
	var prevUntil uint64
	for i, ev := range a {
		if ev.At >= ev.Until || ev.Until >= total {
			t.Fatalf("event %d malformed: %+v (total %d)", i, ev, total)
		}
		if ev.Worker < 0 || ev.Worker >= workers {
			t.Fatalf("event %d targets worker %d of %d", i, ev.Worker, workers)
		}
		if ev.Pause {
			t.Fatalf("crash plan produced a pause event: %+v", ev)
		}
		if ev.At < prevUntil {
			t.Fatalf("event %d (%+v) overlaps the previous fault (healed at %d); two workers dark at once", i, ev, prevUntil)
		}
		prevUntil = ev.Until
	}
	if got := (Plan{Seed: 5, Class: Latency, Intensity: High}).ProcSchedule(total, workers); got != nil {
		t.Fatalf("transport-class plan produced a process schedule: %+v", got)
	}
}

// TestParseRoundTrips: String/Parse agree for every class and
// intensity, and unknown names error.
func TestParseRoundTrips(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	for _, in := range Intensities() {
		got, err := ParseIntensity(in.String())
		if err != nil || got != in {
			t.Fatalf("ParseIntensity(%q) = %v, %v", in.String(), got, err)
		}
	}
	if _, err := ParseClass("cosmic-ray"); err == nil {
		t.Fatal("ParseClass accepted an unknown class")
	}
	if _, err := ParseIntensity("extreme"); err == nil {
		t.Fatal("ParseIntensity accepted an unknown intensity")
	}
}
