package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the job-latency histogram's upper bounds, in
// milliseconds (cumulative, Prometheus-style; +Inf is implicit).
var latencyBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// Metrics aggregates the daemon's counters. Everything is
// mutex-guarded — the serving hot path is simulation-bound, not
// counter-bound — and rendered in Prometheus text exposition format.
type Metrics struct {
	mu sync.Mutex

	requestsByCode map[int]int64 // HTTP responses, by status code
	coalesced      int64         // submissions attached to an in-flight identical run
	engineRuns     int64         // admitted engine executions
	storeServed    int64         // requests answered from the DirStore fast path
	jobsExecuted   int64         // simulation jobs actually run
	jobCacheHits   int64         // jobs served from the store
	jobsFailed     int64         // jobs that panicked or timed out
	silentFailures int64         // silent divergences reported by fault campaigns
	profilesBuilt  int64         // miss-ratio-curve docs built and memoized
	profilesServed int64         // GET /v1/profile answers served from the store
	latencyCounts  []int64       // job wall-time histogram, latencyBuckets + +Inf
	latencySumMS   float64
	latencyTotal   int64
}

func newMetrics() *Metrics {
	return &Metrics{
		requestsByCode: map[int]int64{},
		latencyCounts:  make([]int64, len(latencyBuckets)+1),
	}
}

func (m *Metrics) countRequest(code int) {
	m.mu.Lock()
	m.requestsByCode[code]++
	m.mu.Unlock()
}

func (m *Metrics) countCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

func (m *Metrics) countEngineRun() {
	m.mu.Lock()
	m.engineRuns++
	m.mu.Unlock()
}

func (m *Metrics) countStoreServed() {
	m.mu.Lock()
	m.storeServed++
	m.mu.Unlock()
}

func (m *Metrics) countProfileBuilt() {
	m.mu.Lock()
	m.profilesBuilt++
	m.mu.Unlock()
}

func (m *Metrics) countProfileServed() {
	m.mu.Lock()
	m.profilesServed++
	m.mu.Unlock()
}

// ProfilesBuilt returns how many curve docs this server has built.
func (m *Metrics) ProfilesBuilt() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.profilesBuilt
}

// ProfilesServed returns how many /v1/profile answers were served.
func (m *Metrics) ProfilesServed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.profilesServed
}

// observeOutcome folds one completed engine run into the job counters
// and the latency histogram.
func (m *Metrics) observeOutcome(executed, cacheHits, failed int, jobWalls []time.Duration, silent int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsExecuted += int64(executed)
	m.jobCacheHits += int64(cacheHits)
	m.jobsFailed += int64(failed)
	m.silentFailures += int64(silent)
	for _, w := range jobWalls {
		ms := float64(w) / float64(time.Millisecond)
		i := sort.SearchFloat64s(latencyBuckets, ms)
		m.latencyCounts[i]++
		m.latencySumMS += ms
		m.latencyTotal++
	}
}

// CacheHitRatio is jobs served from the store over all finished jobs.
func (m *Metrics) CacheHitRatio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.jobCacheHits + m.jobsExecuted
	if total == 0 {
		return 0
	}
	return float64(m.jobCacheHits) / float64(total)
}

// EngineRuns returns the number of admitted engine executions.
func (m *Metrics) EngineRuns() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.engineRuns
}

// Render writes the Prometheus text exposition. inFlight/queued are the
// admission controller's live gauges, sampled by the caller.
func (m *Metrics) Render(inFlight, queued int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# HELP mimdserved_requests_total HTTP responses by status code.\n")
	w("# TYPE mimdserved_requests_total counter\n")
	codes := make([]int, 0, len(m.requestsByCode))
	for code := range m.requestsByCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		w("mimdserved_requests_total{code=%q} %d\n", strconv.Itoa(code), m.requestsByCode[code])
	}

	w("# HELP mimdserved_inflight_runs Engine runs executing now.\n")
	w("# TYPE mimdserved_inflight_runs gauge\n")
	w("mimdserved_inflight_runs %d\n", inFlight)
	w("# HELP mimdserved_queue_depth Admitted submissions waiting for an execution slot.\n")
	w("# TYPE mimdserved_queue_depth gauge\n")
	w("mimdserved_queue_depth %d\n", queued)

	w("# HELP mimdserved_coalesced_total Submissions coalesced onto an identical in-flight run.\n")
	w("# TYPE mimdserved_coalesced_total counter\n")
	w("mimdserved_coalesced_total %d\n", m.coalesced)
	w("# HELP mimdserved_engine_runs_total Engine executions admitted (excludes the store fast path).\n")
	w("# TYPE mimdserved_engine_runs_total counter\n")
	w("mimdserved_engine_runs_total %d\n", m.engineRuns)
	w("# HELP mimdserved_store_served_total Requests answered entirely from the result store.\n")
	w("# TYPE mimdserved_store_served_total counter\n")
	w("mimdserved_store_served_total %d\n", m.storeServed)

	w("# HELP mimdserved_jobs_executed_total Simulation jobs executed.\n")
	w("# TYPE mimdserved_jobs_executed_total counter\n")
	w("mimdserved_jobs_executed_total %d\n", m.jobsExecuted)
	w("# HELP mimdserved_job_cache_hits_total Jobs served from the result store.\n")
	w("# TYPE mimdserved_job_cache_hits_total counter\n")
	w("mimdserved_job_cache_hits_total %d\n", m.jobCacheHits)
	w("# HELP mimdserved_jobs_failed_total Jobs that panicked or timed out.\n")
	w("# TYPE mimdserved_jobs_failed_total counter\n")
	w("mimdserved_jobs_failed_total %d\n", m.jobsFailed)
	w("# HELP mimdserved_silent_failures_total Silent divergences reported by fault campaigns.\n")
	w("# TYPE mimdserved_silent_failures_total counter\n")
	w("mimdserved_silent_failures_total %d\n", m.silentFailures)
	w("# HELP mimdserved_profiles_built_total Miss-ratio-curve documents built and memoized.\n")
	w("# TYPE mimdserved_profiles_built_total counter\n")
	w("mimdserved_profiles_built_total %d\n", m.profilesBuilt)
	w("# HELP mimdserved_profiles_served_total /v1/profile answers served from the store.\n")
	w("# TYPE mimdserved_profiles_served_total counter\n")
	w("mimdserved_profiles_served_total %d\n", m.profilesServed)

	total := m.jobCacheHits + m.jobsExecuted
	ratio := 0.0
	if total > 0 {
		ratio = float64(m.jobCacheHits) / float64(total)
	}
	w("# HELP mimdserved_cache_hit_ratio Jobs served from the store over all finished jobs.\n")
	w("# TYPE mimdserved_cache_hit_ratio gauge\n")
	w("mimdserved_cache_hit_ratio %g\n", ratio)

	w("# HELP mimdserved_job_latency_ms Per-job wall time in milliseconds.\n")
	w("# TYPE mimdserved_job_latency_ms histogram\n")
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += m.latencyCounts[i]
		w("mimdserved_job_latency_ms_bucket{le=%q} %d\n", strconv.FormatFloat(le, 'g', -1, 64), cum)
	}
	cum += m.latencyCounts[len(latencyBuckets)]
	w("mimdserved_job_latency_ms_bucket{le=\"+Inf\"} %d\n", cum)
	w("mimdserved_job_latency_ms_sum %g\n", m.latencySumMS)
	w("mimdserved_job_latency_ms_count %d\n", m.latencyTotal)
	return b.String()
}
