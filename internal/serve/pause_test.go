package serve

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestPauseFreezesAndResumeReleases: a paused worker accepts requests
// but answers nothing — even /healthz — until Resume, at which point
// every blocked request completes. This is the SIGSTOP profile the
// chaos campaign's worker-pause class drives.
func TestPauseFreezesAndResumeReleases(t *testing.T) {
	tr := &testRunner{}
	s, ts := newTestServer(t, tr, Options{})

	s.Pause()
	if !s.Paused() {
		t.Fatal("Paused() false after Pause")
	}

	type res struct {
		code int
		err  error
	}
	results := make(chan res, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			results <- res{err: err}
			return
		}
		resp.Body.Close()
		results <- res{code: resp.StatusCode}
	}()

	select {
	case r := <-results:
		t.Fatalf("paused worker answered: %+v", r)
	case <-time.After(100 * time.Millisecond):
		// Still frozen — good.
	}

	s.Resume()
	select {
	case r := <-results:
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("resumed healthz = %+v, want 200", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request still blocked after Resume")
	}
	if s.Paused() {
		t.Fatal("Paused() true after Resume")
	}

	// Idempotence: double pause and double resume are safe, and the
	// worker keeps serving afterwards.
	s.Pause()
	s.Pause()
	s.Resume()
	s.Resume()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz after pause/resume cycling: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after pause/resume cycling", resp.StatusCode)
	}
}

// TestPausedRequestUnblocksOnClientDeadline: a request held by the
// pause gate respects the client's context — the caller's deadline, not
// the worker's mercy, bounds the wait.
func TestPausedRequestUnblocksOnClientDeadline(t *testing.T) {
	tr := &testRunner{}
	s, ts := newTestServer(t, tr, Options{})
	s.Pause()
	defer s.Resume()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("request against a paused worker succeeded")
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("deadline took %v to fire; the pause gate is not honoring the request context", wall)
	}
}
