package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/sweep"
)

// requestEpoch versions the request-id derivation. Request ids are pure
// content hashes — two clients posting the same normalized spec compute
// the same id, which is exactly what singleflight coalescing keys on.
const requestEpoch = "mimdserve-req-v2"

// Spec is the JSON request body every submission endpoint accepts.
//
//	{"kind":"experiment","experiment":"fig6-1","seeds":[1,2]}
//	{"kind":"sweep","experiments":["fig6-1","fig7-1"],"seeds":[1,2,3],"scale":1}
//	{"kind":"fault","fault":{"protocols":["rb","rwb"],"trials":2,"refs":200}}
//
// Every field is validated against the experiment registry (or, for
// fault campaigns, the coherence/fault-class registries) before the
// request is admitted.
type Spec struct {
	// Kind selects the workload: "experiment" (one registry entry),
	// "sweep" (several entries, or ["all"]), or "fault" (an S23
	// resilience campaign).
	Kind string `json:"kind"`
	// Experiment names the registry entry for kind "experiment".
	Experiment string `json:"experiment,omitempty"`
	// Experiments lists registry entries for kind "sweep"; the single
	// entry "all" expands to the whole registry.
	Experiments []string `json:"experiments,omitempty"`
	// Seeds are replica seeds (default {1}).
	Seeds []uint64 `json:"seeds,omitempty"`
	// Scale is the workload multiplier (default 1).
	Scale int `json:"scale,omitempty"`
	// Format renders result tables: plain (default), markdown, or csv.
	Format string `json:"format,omitempty"`
	// JobTimeoutMS, when positive, lowers the server's per-job
	// wall-clock budget for this request; it can never raise it.
	JobTimeoutMS int `json:"job_timeout_ms,omitempty"`
	// Fault carries the campaign shape for kind "fault".
	Fault *fault.CampaignSpec `json:"fault,omitempty"`
	// Profile asks the server to also build online miss-ratio curves
	// (internal/mrc) for every machine the request's experiments
	// construct, memoize them next to the job results, and answer
	// GET /v1/profile/{id} what-if queries from them. Experiment and
	// sweep kinds only.
	Profile bool `json:"profile,omitempty"`
}

// request is a fully validated, normalized submission: the expanded job
// set, the runner that executes it, and the content-hash id everything
// keys on.
type request struct {
	spec    Spec
	id      string
	specs   []sweep.Spec
	jobs    []sweep.Job
	runner  sweep.Runner
	fault   *fault.CampaignConfig // non-nil iff kind == "fault"
	timeout time.Duration
}

// normalize validates the spec against the registries and expands it
// into the canonical job set. opts supplies the server's runner hooks
// and timeout cap.
func normalize(spec Spec, opts Options) (*request, error) {
	r := &request{spec: spec}
	if spec.Scale < 0 {
		return nil, fmt.Errorf("scale %d is negative", spec.Scale)
	}
	if spec.Scale == 0 {
		r.spec.Scale = 1
	}
	if len(spec.Seeds) == 0 {
		r.spec.Seeds = []uint64{1}
	}
	switch spec.Format {
	case "":
		r.spec.Format = "plain"
	case "plain", "markdown", "csv":
	default:
		return nil, fmt.Errorf("unknown format %q (want plain, markdown, or csv)", spec.Format)
	}

	r.timeout = opts.JobTimeout
	if spec.JobTimeoutMS > 0 {
		reqTO := time.Duration(spec.JobTimeoutMS) * time.Millisecond
		if r.timeout <= 0 || reqTO < r.timeout {
			r.timeout = reqTO
		}
	}

	switch spec.Kind {
	case "experiment":
		if spec.Experiment == "" {
			return nil, fmt.Errorf(`kind "experiment" needs an "experiment" id`)
		}
		sp, err := sweep.SpecFor(spec.Experiment, r.spec.Seeds, r.spec.Scale)
		if err != nil {
			return nil, err
		}
		r.specs = []sweep.Spec{sp}
		r.runner = opts.runner()
	case "sweep":
		if len(spec.Experiments) == 0 {
			return nil, fmt.Errorf(`kind "sweep" needs a non-empty "experiments" list`)
		}
		if len(spec.Experiments) == 1 && spec.Experiments[0] == "all" {
			r.specs = sweep.AllSpecs(r.spec.Seeds, r.spec.Scale)
		} else {
			for _, id := range spec.Experiments {
				sp, err := sweep.SpecFor(id, r.spec.Seeds, r.spec.Scale)
				if err != nil {
					return nil, err
				}
				r.specs = append(r.specs, sp)
			}
		}
		r.runner = opts.runner()
	case "fault":
		if spec.Fault == nil {
			return nil, fmt.Errorf(`kind "fault" needs a "fault" campaign spec`)
		}
		if spec.Profile {
			return nil, fmt.Errorf(`"profile" is not available for fault campaigns`)
		}
		fs := *spec.Fault
		if len(fs.Seeds) == 0 {
			fs.Seeds = r.spec.Seeds
		}
		cfg, err := fs.Config()
		if err != nil {
			return nil, err
		}
		cfg = cfg.WithDefaults()
		r.fault = &cfg
		r.specs = cfg.Specs()
		r.runner = opts.faultRunner(cfg)
	case "":
		return nil, fmt.Errorf(`missing "kind" (want experiment, sweep, or fault)`)
	default:
		return nil, fmt.Errorf("unknown kind %q (want experiment, sweep, or fault)", spec.Kind)
	}

	r.jobs = sweep.Expand(r.specs)
	if len(r.jobs) == 0 {
		return nil, fmt.Errorf("spec expands to zero jobs")
	}
	if opts.MaxJobs > 0 && len(r.jobs) > opts.MaxJobs {
		return nil, fmt.Errorf("spec expands to %d jobs, over the server's %d-job limit", len(r.jobs), opts.MaxJobs)
	}
	r.id = requestID(r)
	return r, nil
}

// requestID derives the request's id from the version-salted content
// hashes its jobs already carry (the same keys the DirStore files them
// under), plus everything else that shapes the response. No wall clock,
// no randomness: identical submissions coalesce because they literally
// have the same id.
func requestID(r *request) string {
	h := sha256.New()
	io.WriteString(h, requestEpoch)
	io.WriteString(h, "|"+r.spec.Kind+"|"+r.spec.Format+"|")
	fmt.Fprintf(h, "timeout=%d|profile=%t|", r.timeout, r.spec.Profile)
	for _, j := range r.jobs {
		io.WriteString(h, j.Key+"|")
	}
	sum := h.Sum(nil)
	return "req-" + hex.EncodeToString(sum[:12])
}

// ComputeRequestID derives the content-hash request id a server built
// with opts would assign the given raw spec body — the router's routing
// key. Because the id is a pure content hash, the router and every
// worker agree on it without coordination; opts must carry the same
// JobTimeout the workers run with (the timeout is part of the hash).
func ComputeRequestID(body []byte, opts Options) (string, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return "", fmt.Errorf("bad spec: %w", err)
	}
	req, err := normalize(spec, opts)
	if err != nil {
		return "", fmt.Errorf("invalid spec: %w", err)
	}
	return req.id, nil
}

// ExperimentInfo is one row of the /v1/experiments listing.
type ExperimentInfo struct {
	ID      string `json:"id"`
	Title   string `json:"title"`
	Version int    `json:"version"`
	Seed    bool   `json:"seed_axis"`
	Scale   bool   `json:"scale_axis"`
}

// listExperiments renders the registry for discovery.
func listExperiments() []ExperimentInfo {
	all := experiments.All()
	out := make([]ExperimentInfo, 0, len(all))
	for _, e := range all {
		out = append(out, ExperimentInfo{
			ID: e.ID, Title: e.Title, Version: e.Version,
			Seed: e.Axes.Seed, Scale: e.Axes.Scale,
		})
	}
	return out
}
