package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// handleJobEvents streams a flight's progress events. While the flight
// runs the stream is live (each engine event flushed as it happens);
// once it completes the hub replays the full history and the stream
// ends. Content negotiation: "Accept: text/event-stream" selects SSE
// frames, anything else gets JSON Lines.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f := s.lookup(id)
	if f == nil {
		s.writeError(w, http.StatusNotFound, "unknown job id "+id)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	sub := f.hub.Subscribe()
	for {
		ev, ok := sub.Next(r.Context())
		if !ok {
			break
		}
		data, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Event, data)
		} else {
			w.Write(append(data, '\n'))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Terminal frame so clients can tell "complete" from "disconnected".
	if f.finished() {
		if sse {
			fmt.Fprintf(w, "event: end\ndata: {\"http_code\":%d}\n\n", f.code)
		} else {
			fmt.Fprintf(w, "{\"event\":\"end\",\"http_code\":%d}\n", f.code)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
