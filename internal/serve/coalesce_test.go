package serve

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/sweep"
)

// TestConcurrentIdenticalPostsCoalesce is satellite 3's core claim:
// N concurrent identical submissions run the engine exactly once.
func TestConcurrentIdenticalPostsCoalesce(t *testing.T) {
	const waiters = 16
	tr := &testRunner{gate: make(chan struct{})}
	s, ts := newTestServer(t, tr, Options{})

	spec := `{"kind":"experiment","experiment":"fig7-1","seeds":[1,2,3]}`
	var wg sync.WaitGroup
	codes := make([]int, waiters)
	resps := make([]Response, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], codes[i] = post(ts.URL, "/v1/run", spec)
		}(i)
	}

	// Wait until every late submission has attached to the in-flight
	// run, then let the gated runner finish.
	waitFor(t, func() bool {
		s.metrics.mu.Lock()
		defer s.metrics.mu.Unlock()
		return s.metrics.coalesced == waiters-1
	})
	close(tr.gate)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("waiter %d: status %d (%+v)", i, code, resps[i])
		}
	}
	// The engine ran once, executing each of the 3 jobs exactly once.
	if got := s.metrics.EngineRuns(); got != 1 {
		t.Fatalf("%d engine runs for %d identical requests, want 1", got, waiters)
	}
	if got := tr.calls.Load(); got != 3 {
		t.Fatalf("runner invoked %d times, want 3 (one per job)", got)
	}
	// Exactly one waiter started the flight; the rest coalesced onto it,
	// and every waiter read the same result document.
	coalesced := 0
	for i, r := range resps {
		if r.Coalesced {
			coalesced++
		}
		if r.ID != resps[0].ID || r.Cache != "miss" || r.Jobs != 3 {
			t.Fatalf("waiter %d diverged: %+v", i, r)
		}
	}
	if coalesced != waiters-1 {
		t.Fatalf("%d waiters marked coalesced, want %d", coalesced, waiters-1)
	}
}

// TestRepeatServedFromStore: once a request has completed, an identical
// resubmission answers from the DirStore without consuming an execution
// slot or invoking the engine's runner.
func TestRepeatServedFromStore(t *testing.T) {
	tr := &testRunner{}
	store, err := sweep.OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, tr, Options{Store: store})

	spec := `{"kind":"experiment","experiment":"fig7-1","seeds":[4,5]}`
	if _, code := post(ts.URL, "/v1/run", spec); code != http.StatusOK {
		t.Fatalf("cold run status %d", code)
	}
	calls := tr.calls.Load()

	warm, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK || warm.Cache != "hit" {
		t.Fatalf("warm run: status %d %+v", code, warm)
	}
	if tr.calls.Load() != calls {
		t.Fatal("warm run invoked the runner")
	}
	// The fast path answered: one engine run total, one store-served
	// request.
	if got := s.metrics.EngineRuns(); got != 1 {
		t.Fatalf("engine runs = %d, want 1", got)
	}
	s.metrics.mu.Lock()
	served := s.metrics.storeServed
	s.metrics.mu.Unlock()
	if served != 1 {
		t.Fatalf("store-served = %d, want 1", served)
	}
}

// TestCorruptedStoreEntryReruns: a corrupted store object is
// quarantined on probe and the request transparently re-runs the
// damaged jobs.
func TestCorruptedStoreEntryReruns(t *testing.T) {
	tr := &testRunner{}
	dir := t.TempDir()
	store, err := sweep.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, tr, Options{Store: store})

	spec := `{"kind":"experiment","experiment":"fig7-1","seeds":[1,2]}`
	cold, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("cold run status %d", code)
	}
	calls := tr.calls.Load()

	// Flip bytes in one stored object on disk.
	objects, err := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	if err != nil || len(objects) == 0 {
		t.Fatalf("no store objects found: %v", err)
	}
	if err := os.WriteFile(objects[0], []byte(`{"corrupt":`), 0o644); err != nil {
		t.Fatal(err)
	}

	warm, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("post-corruption run status %d: %+v", code, warm)
	}
	// The intact job still serves from the store; the damaged one
	// re-executed.
	if warm.Executed != 1 || warm.CacheHits != 1 || warm.Cache != "partial" {
		t.Fatalf("post-corruption run = %+v, want 1 executed + 1 hit", warm)
	}
	if got := tr.calls.Load(); got != calls+1 {
		t.Fatalf("runner calls went %d -> %d, want exactly one re-run", calls, got)
	}
	if q := store.Quarantined(); q != 1 {
		t.Fatalf("quarantined = %d, want 1", q)
	}
	if warm.Tables[0] != cold.Tables[0] {
		t.Fatal("re-run produced a different table")
	}

	// A third submission is whole again: pure store hit.
	again, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK || again.Cache != "hit" {
		t.Fatalf("third run: status %d %+v", code, again)
	}
}

// TestCoalescedWaiterSurvivesSubmitterDisconnect: the flight runs under
// the server's context, so the first submitter hanging up never cancels
// a coalesced waiter's work.
func TestCoalescedWaiterSurvivesSubmitterDisconnect(t *testing.T) {
	tr := &testRunner{gate: make(chan struct{})}
	s, ts := newTestServer(t, tr, Options{})

	spec := `{"kind":"experiment","experiment":"fig7-1","seeds":[1]}`
	// First submitter arms the flight, then disconnects mid-wait.
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	ctx, cancel := context.WithCancel(context.Background())
	go http.DefaultClient.Do(req.WithContext(ctx))
	waitFor(t, func() bool { return tr.calls.Load() > 0 })

	// Second submitter coalesces onto the running flight.
	second := make(chan Response, 1)
	go func() {
		resp, _ := post(ts.URL, "/v1/run", spec)
		second <- resp
	}()
	waitFor(t, func() bool {
		s.metrics.mu.Lock()
		defer s.metrics.mu.Unlock()
		return s.metrics.coalesced == 1
	})

	cancel() // first client gone
	close(tr.gate)
	resp := <-second
	if resp.Cache != "miss" || !resp.Coalesced {
		t.Fatalf("surviving waiter got %+v", resp)
	}
}
