package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/sweep"
)

// testRunner is a fast deterministic runner with an execution counter
// and an optional gate the test can hold closed to keep jobs in flight.
type testRunner struct {
	calls atomic.Int64
	gate  chan struct{} // when non-nil, every call blocks until closed
}

func (tr *testRunner) run(spec sweep.JobSpec) (*report.Table, error) {
	tr.calls.Add(1)
	if tr.gate != nil {
		<-tr.gate
	}
	t := &report.Table{ID: spec.Experiment, Title: "test " + spec.Experiment, Columns: []string{"label", "metric"}}
	t.AddRowf(spec.Experiment, float64(spec.Seed*10+uint64(spec.Scale)))
	return t, nil
}

// newTestServer builds a server around tr with an httptest front end.
func newTestServer(t *testing.T, tr *testRunner, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.Runner = tr.run
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a spec and decodes the Response. Safe from any goroutine:
// failures are reported via the returned status (-1 on transport or
// decode errors), never t.Fatal.
func post(url, path, spec string) (Response, int) {
	resp, err := http.Post(url+path, "application/json", strings.NewReader(spec))
	if err != nil {
		return Response{}, -1
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return Response{}, -1
	}
	return out, resp.StatusCode
}

func TestRunExperimentColdThenWarm(t *testing.T) {
	tr := &testRunner{}
	store, err := sweep.OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, tr, Options{Store: store})

	spec := `{"kind":"experiment","experiment":"fig7-1","seeds":[1,2]}`
	cold, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("cold run status %d: %+v", code, cold)
	}
	if cold.Cache != "miss" || cold.Executed == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold run not a miss: %+v", cold)
	}
	if len(cold.Tables) != 1 || cold.Tables[0] == "" {
		t.Fatalf("cold run returned no table: %+v", cold)
	}
	calls := tr.calls.Load()
	if calls == 0 {
		t.Fatal("runner never executed")
	}

	warm, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("warm run status %d", code)
	}
	if warm.Cache != "hit" || warm.Executed != 0 {
		t.Fatalf("warm run not a cache hit: %+v", warm)
	}
	if warm.ID != cold.ID {
		t.Fatalf("same spec produced different ids: %s vs %s", cold.ID, warm.ID)
	}
	if got := tr.calls.Load(); got != calls {
		t.Fatalf("warm run invoked the runner (%d -> %d calls)", calls, got)
	}
	if warm.Tables[0] != cold.Tables[0] {
		t.Fatal("warm table differs from cold table")
	}
}

func TestValidationRejects(t *testing.T) {
	tr := &testRunner{}
	_, ts := newTestServer(t, tr, Options{})
	for _, bad := range []string{
		`{"kind":"experiment","experiment":"no-such-artifact"}`,
		`{"kind":"teapot"}`,
		`{"kind":"experiment"}`,
		`{"kind":"sweep"}`,
		`{"kind":"experiment","experiment":"fig7-1","format":"xml"}`,
		`{"kind":"fault"}`,
		`{"kind":"fault","fault":{"classes":["no-such-class"]}}`,
		`{"kind":"experiment","experiment":"fig7-1","unknown_field":1}`,
		`not json`,
	} {
		_, code := post(ts.URL, "/v1/run", bad)
		if code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", bad, code)
		}
	}
	if tr.calls.Load() != 0 {
		t.Fatal("an invalid spec reached the runner")
	}
}

func TestOverloadSheds429WithRetryAfter(t *testing.T) {
	tr := &testRunner{gate: make(chan struct{})}
	_, ts := newTestServer(t, tr, Options{MaxInFlight: 1, QueueDepth: -1})

	// Occupy the only execution slot.
	first := make(chan int, 1)
	go func() {
		_, code := post(ts.URL, "/v1/run", `{"kind":"experiment","experiment":"fig7-1","seeds":[1]}`)
		first <- code
	}()
	waitFor(t, func() bool { return tr.calls.Load() > 0 })

	// A different spec cannot queue: it must shed with 429 + Retry-After.
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"kind":"experiment","experiment":"fig7-1","seeds":[2]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}

	close(tr.gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request finished with %d", code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	tr := &testRunner{}
	_, ts := newTestServer(t, tr, Options{})
	if _, code := post(ts.URL, "/v1/run", `{"kind":"experiment","experiment":"fig7-1","seeds":[1]}`); code != 200 {
		t.Fatalf("run status %d", code)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	body := buf.String()
	for _, want := range []string{
		"mimdserved_requests_total",
		"mimdserved_engine_runs_total 1",
		"mimdserved_cache_hit_ratio",
		"mimdserved_job_latency_ms_bucket",
		"mimdserved_queue_depth 0",
		"mimdserved_silent_failures_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestExperimentsListing(t *testing.T) {
	tr := &testRunner{}
	_, ts := newTestServer(t, tr, Options{})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Fatal("empty experiment listing")
	}
	seen := false
	for _, e := range list {
		if e.ID == "fig7-1" {
			seen = true
		}
	}
	if !seen {
		t.Fatal("fig7-1 missing from listing")
	}
}

func TestAsyncJobAndEventStream(t *testing.T) {
	tr := &testRunner{gate: make(chan struct{})}
	_, ts := newTestServer(t, tr, Options{})

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"experiment","experiment":"fig7-1","seeds":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	var status JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || status.Status != "running" {
		t.Fatalf("submit: status %d %+v", resp.StatusCode, status)
	}

	// Stream JSONL events while the job runs, releasing the gate once
	// the stream is attached.
	eresp, err := http.Get(ts.URL + status.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	close(tr.gate)
	var events []map[string]any
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 3 {
		t.Fatalf("got %d events, want at least start/done/end", len(events))
	}
	last := events[len(events)-1]
	if last["event"] != "end" || last["http_code"] != float64(http.StatusOK) {
		t.Fatalf("terminal frame = %v", last)
	}

	// The job is now queryable as done.
	jresp, err := http.Get(ts.URL + "/v1/jobs/" + status.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var final JobStatus
	if err := json.NewDecoder(jresp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.Status != "done" || final.Result == nil || final.Result.Cache != "miss" {
		t.Fatalf("final status %+v", final)
	}

	// A completed job's event stream replays in full.
	replay, err := http.Get(ts.URL + status.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	n := 0
	sc = bufio.NewScanner(replay.Body)
	for sc.Scan() {
		n++
	}
	if n != len(events) {
		t.Fatalf("replay returned %d lines, live stream had %d", n, len(events))
	}
}

func TestSSEContentNegotiation(t *testing.T) {
	tr := &testRunner{}
	_, ts := newTestServer(t, tr, Options{})
	run, code := post(ts.URL, "/v1/run", `{"kind":"experiment","experiment":"fig7-1","seeds":[1]}`)
	if code != 200 {
		t.Fatal("run failed")
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+run.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "data: ") || !strings.Contains(body, "event: end") {
		t.Fatalf("not SSE framed:\n%s", body)
	}
}

func TestUnknownJobID(t *testing.T) {
	tr := &testRunner{}
	_, ts := newTestServer(t, tr, Options{})
	resp, err := http.Get(ts.URL + "/v1/jobs/req-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}

func TestFaultCampaignOverHTTP(t *testing.T) {
	store, err := sweep.OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// No runner override: this executes a real (tiny) fault campaign.
	s := New(Options{Store: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"kind":"fault","fault":{"protocols":["rb"],"classes":["bus-drop"],"trials":1,"refs":120}}`
	cold, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("fault run status %d: %+v", code, cold)
	}
	if cold.Report == "" || !strings.Contains(cold.Report, "bus-drop") {
		t.Fatalf("fault run returned no matrix report: %+v", cold)
	}
	if len(cold.SilentViolations) != 0 {
		t.Fatalf("silent divergences in bus-drop: %v", cold.SilentViolations)
	}
	warm, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK || warm.Cache != "hit" {
		t.Fatalf("warm fault run: status %d %+v", code, warm)
	}
	if warm.Report != cold.Report {
		t.Fatal("warm fault report differs from cold")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	tr := &testRunner{gate: make(chan struct{})}
	s, ts := newTestServer(t, tr, Options{})
	done := make(chan Response, 1)
	go func() {
		resp, _ := post(ts.URL, "/v1/run", `{"kind":"experiment","experiment":"fig7-1","seeds":[1]}`)
		done <- resp
	}()
	waitFor(t, func() bool { return tr.calls.Load() > 0 })

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shut <- s.Shutdown(ctx)
	}()

	// While draining, new submissions are refused.
	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	_, code := post(ts.URL, "/v1/run", `{"kind":"experiment","experiment":"fig7-1","seeds":[9]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted work (status %d)", code)
	}

	// Releasing the running job lets the drain finish cleanly.
	close(tr.gate)
	if resp := <-done; resp.Cache != "miss" {
		t.Fatalf("in-flight request did not complete: %+v", resp)
	}
	if err := <-shut; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := wallNow().Add(10 * time.Second)
	for !cond() {
		if wallNow().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{{0, 1}, {time.Millisecond, 1}, {time.Second, 1}, {1500 * time.Millisecond, 2}, {3 * time.Second, 3}} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestRequestIDStability(t *testing.T) {
	opts := Options{Runner: (&testRunner{}).run}
	a, err := normalize(Spec{Kind: "experiment", Experiment: "fig7-1", Seeds: []uint64{1, 2}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := normalize(Spec{Kind: "experiment", Experiment: "fig7-1", Seeds: []uint64{1, 2}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.id != b.id {
		t.Fatalf("identical specs got different ids: %s vs %s", a.id, b.id)
	}
	c, err := normalize(Spec{Kind: "experiment", Experiment: "fig7-1", Seeds: []uint64{1, 3}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c.id == a.id {
		t.Fatal("different seeds share a request id")
	}
	d, err := normalize(Spec{Kind: "experiment", Experiment: "fig7-1", Seeds: []uint64{1, 2}, Format: "markdown"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.id == a.id {
		t.Fatal("different formats share a request id")
	}
}
