package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// registerProfileTrace installs a tiny trace experiment once per test
// binary: small enough that an 8-protocol replay matrix is test-speed,
// real enough that its machines flow through Params.Machine and produce
// curves.
var registerProfileTrace = sync.OnceValue(func() string {
	raw := []byte("0 read 1 local\n0 read 2 local\n0 read 1 local\n" +
		"1 read 9 shared\n1 write 9 5 shared\n0 halt\n1 halt\n")
	if err := experiments.RegisterTrace("profile-probe", raw); err != nil {
		panic(err)
	}
	return "trace-profile-probe"
})

func getBody(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// TestProfileEndToEnd drives the tentpole's serving surface: a profiled
// run memoizes a curve doc; GET /v1/profile/{id} serves it from the
// store; ?lines=N answers what-if queries; and a repeat submission is a
// pure store hit — zero engine runs, byte-identical doc.
func TestProfileEndToEnd(t *testing.T) {
	exp := registerProfileTrace()
	store, err := sweep.OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Store: store})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := fmt.Sprintf(`{"kind":"experiment","experiment":"%s","profile":true}`, exp)
	cold, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK {
		t.Fatalf("cold run status %d: %+v", code, cold)
	}
	if cold.Profile != "/v1/profile/"+cold.ID {
		t.Fatalf("Profile URL = %q", cold.Profile)
	}
	if s.Metrics().ProfilesBuilt() != 1 {
		t.Fatalf("ProfilesBuilt = %d, want 1", s.Metrics().ProfilesBuilt())
	}

	// The doc: curves for every protocol shape, machine + per-PE scopes.
	raw, code := getBody(t, ts.URL+cold.Profile)
	if code != http.StatusOK {
		t.Fatalf("GET profile status %d: %s", code, raw)
	}
	var doc ProfileDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != profileSchema || doc.ID != cold.ID {
		t.Fatalf("doc header %+v", doc)
	}
	if len(doc.Entries) == 0 {
		t.Fatal("doc has no entries")
	}
	for _, e := range doc.Entries {
		if e.Experiment != exp || e.Shape == "" {
			t.Fatalf("bad entry %+v", e)
		}
		if len(e.Curves) != 3 { // machine + 2 PEs
			t.Fatalf("entry %s has %d curves, want 3", e.Shape, len(e.Curves))
		}
		if e.Curves[0].Scope != "machine" {
			t.Fatalf("first curve scope = %q", e.Curves[0].Scope)
		}
	}

	// What-if: lines=1 is on the grid (exact); lines=3 is bracketed.
	for _, q := range []struct {
		lines int
		exact bool
	}{{1, true}, {3, false}} {
		body, code := getBody(t, fmt.Sprintf("%s%s?lines=%d", ts.URL, cold.Profile, q.lines))
		if code != http.StatusOK {
			t.Fatalf("what-if status %d: %s", code, body)
		}
		var wi WhatIfDoc
		if err := json.Unmarshal(body, &wi); err != nil {
			t.Fatal(err)
		}
		if len(wi.Answers) != 3*len(doc.Entries) {
			t.Fatalf("lines=%d: %d answers, want %d", q.lines, len(wi.Answers), 3*len(doc.Entries))
		}
		for _, a := range wi.Answers {
			if a.Exact != q.exact || a.Lower == nil || a.Upper == nil {
				t.Fatalf("lines=%d: answer %+v", q.lines, a)
			}
			if a.Lower.MissRatio < a.Upper.MissRatio {
				t.Fatalf("curve not monotone: %+v", a)
			}
		}
	}

	// Repeat submission: full store fast path, no engine, no rebuild.
	engineRuns := s.Metrics().EngineRuns()
	warm, code := post(ts.URL, "/v1/run", spec)
	if code != http.StatusOK || warm.Cache != "hit" {
		t.Fatalf("warm run status %d: %+v", code, warm)
	}
	if warm.Profile != cold.Profile {
		t.Fatalf("warm Profile URL %q != %q", warm.Profile, cold.Profile)
	}
	if got := s.Metrics().EngineRuns(); got != engineRuns {
		t.Fatalf("warm profiled run consumed an engine slot (%d -> %d)", engineRuns, got)
	}
	if s.Metrics().ProfilesBuilt() != 1 {
		t.Fatalf("warm run rebuilt the doc (built = %d)", s.Metrics().ProfilesBuilt())
	}
	raw2, _ := getBody(t, ts.URL+warm.Profile)
	if string(raw2) != string(raw) {
		t.Fatal("stored doc changed between identical submissions")
	}

	// Same spec without profile: different id (the flag shapes the hash).
	plain, code := post(ts.URL, "/v1/run",
		fmt.Sprintf(`{"kind":"experiment","experiment":"%s"}`, exp))
	if code != http.StatusOK {
		t.Fatalf("plain run status %d", code)
	}
	if plain.ID == cold.ID {
		t.Fatal("profile flag does not reach the request id")
	}
	if plain.Profile != "" {
		t.Fatalf("unprofiled response advertises %q", plain.Profile)
	}
	if plain.Tables[0] != cold.Tables[0] {
		t.Fatal("profiling changed the result table")
	}

	// Unknown id: 404 with a hint, no panic.
	if _, code := getBody(t, ts.URL+"/v1/profile/req-doesnotexist"); code != http.StatusNotFound {
		t.Fatalf("missing doc status %d, want 404", code)
	}
	// Bad lines parameter.
	if _, code := getBody(t, ts.URL+cold.Profile+"?lines=-3"); code != http.StatusBadRequest {
		t.Fatalf("bad lines status %d, want 400", code)
	}
}

// TestProfileRejectedForFaultCampaigns pins the validation rule.
func TestProfileRejectedForFaultCampaigns(t *testing.T) {
	_, ts := newTestServer(t, &testRunner{}, Options{})
	_, code := post(ts.URL, "/v1/run",
		`{"kind":"fault","profile":true,"fault":{"protocols":["rb"],"trials":1,"refs":50}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
}
