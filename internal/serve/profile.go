// Profile documents: the server-side half of the online miss-ratio-curve
// profiler (internal/mrc). A request submitted with "profile": true gets,
// in addition to its result tables, a memoized ProfileDoc — one curve set
// per machine its experiments built — filed in the same store the job
// results live in, under a key derived from the request id. GET
// /v1/profile/{id} serves the doc, and ?lines=N answers cache-size
// what-if queries from the memoized curve without touching the engine.

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/mrc"
	"repro/internal/stackdist"
	"repro/internal/sweep"
)

// profileSchema versions the stored profile document.
const profileSchema = "mimdserve-profile-v1"

// profileKey derives the store key a request's profile doc is filed
// under. The request id is already a content hash over the job keys (and
// the profile flag), so the doc inherits the same cache-safety
// properties as the results it annotates.
func profileKey(requestID string) string { return "profile-" + requestID }

// ProfileEntry is one job's curve set: every machine the job's
// experiment constructed through Params.Machine, profiled per PE and
// machine-wide. Experiments that build machines outside the chokepoint
// contribute no captures.
type ProfileEntry struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Scale      int    `json:"scale"`
	// Key is the job's result-store key, tying the curves to the exact
	// memoized artifact they were measured alongside.
	Key string `json:"key"`
	// Shape names the machine configuration within the experiment.
	Shape  string         `json:"shape"`
	Curves []mrc.CurveDoc `json:"curves"`
}

// ProfileDoc is the GET /v1/profile/{id} document.
type ProfileDoc struct {
	Schema string `json:"schema"`
	ID     string `json:"id"`
	// Sizes is the cache-size grid (lines, powers of two) every curve is
	// evaluated on; curves are exact at these points.
	Sizes   []int          `json:"sizes"`
	Entries []ProfileEntry `json:"entries"`
}

// rawStore returns the store's replication surface, which profile docs
// ride on; the guard passes it through to MemStore and DirStore.
func (s *Server) rawStore() (sweep.RawStore, bool) {
	rs, ok := s.opts.Store.(sweep.RawStore)
	return rs, ok
}

// storeHasProfile reports whether the request's profile doc is already
// memoized, making the full store fast path valid for a profile request.
func (s *Server) storeHasProfile(requestID string) bool {
	rs, ok := s.rawStore()
	if !ok {
		return false
	}
	_, ok, err := rs.GetRaw(profileKey(requestID))
	return err == nil && ok
}

// ensureProfile builds and memoizes the request's profile doc unless it
// is already in the store. Curves come from re-running each job's
// experiment with an mrc.Collector attached — the probe is proven
// non-perturbing, so the extra pass reproduces exactly the simulations
// whose tables the engine just produced (or served from cache), and the
// doc is byte-deterministic for a given request.
func (s *Server) ensureProfile(req *request) error {
	rs, ok := s.rawStore()
	if !ok {
		return fmt.Errorf("store does not support profile documents")
	}
	pkey := profileKey(req.id)
	if _, ok, err := rs.GetRaw(pkey); err == nil && ok {
		return nil
	}
	sizes := mrc.DefaultSizes()
	doc := ProfileDoc{Schema: profileSchema, ID: req.id, Sizes: sizes}
	for _, job := range req.jobs {
		e, err := experiments.ByID(job.Spec.Experiment)
		if err != nil {
			return fmt.Errorf("profile pass: %w", err)
		}
		col := &mrc.Collector{}
		p := job.Spec.Params()
		p.Profile = col
		if _, err := e.Run(p); err != nil {
			return fmt.Errorf("profile pass for %s: %w", job.Spec.Experiment, err)
		}
		caps := col.Captures()
		if len(caps) == 0 {
			// The experiment builds machines outside Params.Machine:
			// record the job with no curves rather than inventing any.
			doc.Entries = append(doc.Entries, ProfileEntry{
				Experiment: job.Spec.Experiment, Seed: job.Spec.Seed,
				Scale: job.Spec.Scale, Key: job.Key,
			})
			continue
		}
		for _, c := range caps {
			doc.Entries = append(doc.Entries, ProfileEntry{
				Experiment: job.Spec.Experiment, Seed: job.Spec.Seed,
				Scale: job.Spec.Scale, Key: job.Key,
				Shape:  c.Shape,
				Curves: c.Set.Docs(sizes),
			})
		}
	}
	payload, err := json.Marshal(&doc)
	if err != nil {
		return err
	}
	if err := rs.PutRaw(pkey, payload); err != nil {
		return err
	}
	s.metrics.countProfileBuilt()
	return nil
}

// WhatIfAnswer is one curve's answer to a cache-size what-if query: the
// exact point when lines is on the grid, or the bracketing grid points
// otherwise (the true miss ratio lies between upper's and lower's — the
// curve is monotone non-increasing in size).
type WhatIfAnswer struct {
	Experiment string                `json:"experiment"`
	Seed       uint64                `json:"seed"`
	Scale      int                   `json:"scale"`
	Shape      string                `json:"shape"`
	Scope      string                `json:"scope"`
	Refs       uint64                `json:"refs"`
	Exact      bool                  `json:"exact"`
	Lower      *stackdist.CurvePoint `json:"lower,omitempty"`
	Upper      *stackdist.CurvePoint `json:"upper,omitempty"`
}

// WhatIfDoc is the GET /v1/profile/{id}?lines=N document.
type WhatIfDoc struct {
	ID      string         `json:"id"`
	Lines   int            `json:"lines"`
	Answers []WhatIfAnswer `json:"answers"`
}

// bracket finds the grid points around lines in an ascending curve.
func bracket(points []stackdist.CurvePoint, lines int) (lower, upper *stackdist.CurvePoint, exact bool) {
	for i := range points {
		p := &points[i]
		if p.Lines <= lines {
			lower = p
		}
		if upper == nil && p.Lines >= lines {
			upper = p
		}
	}
	return lower, upper, lower != nil && upper != nil && lower.Lines == upper.Lines
}

// whatIf answers a cache-size query from a memoized doc.
func whatIf(doc *ProfileDoc, lines int) WhatIfDoc {
	out := WhatIfDoc{ID: doc.ID, Lines: lines}
	for _, e := range doc.Entries {
		for _, c := range e.Curves {
			lower, upper, exact := bracket(c.Points, lines)
			out.Answers = append(out.Answers, WhatIfAnswer{
				Experiment: e.Experiment, Seed: e.Seed, Scale: e.Scale,
				Shape: e.Shape, Scope: c.Scope, Refs: c.Refs,
				Exact: exact, Lower: lower, Upper: upper,
			})
		}
	}
	return out
}

// handleProfile serves GET /v1/profile/{id}: the stored doc verbatim,
// or, with ?lines=N, a what-if answer computed from it. Either way the
// answer comes from the store — no engine run, no admission slot.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rs, ok := s.rawStore()
	if !ok {
		s.writeError(w, http.StatusNotFound, "store does not support profile documents")
		return
	}
	raw, ok, err := rs.GetRaw(profileKey(id))
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound,
			"no profile for "+id+` (submit the spec with "profile": true first)`)
		return
	}
	s.metrics.countProfileServed()
	if q := r.URL.Query().Get("lines"); q != "" {
		lines, err := strconv.Atoi(q)
		if err != nil || lines <= 0 {
			s.writeError(w, http.StatusBadRequest, "lines must be a positive integer")
			return
		}
		var doc ProfileDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			s.writeError(w, http.StatusInternalServerError, "corrupt profile doc: "+err.Error())
			return
		}
		s.writeJSON(w, http.StatusOK, whatIf(&doc, lines))
		return
	}
	// Serve the stored bytes verbatim: byte-identical from every worker
	// holding the doc, so router hedging and replica reads stay safe.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}
