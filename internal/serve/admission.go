package serve

import (
	"context"
	"errors"
	"sync"
)

// errOverload is returned when the bounded queue is full: the caller
// must answer 429 with a Retry-After hint rather than buffer unbounded
// work.
var errOverload = errors.New("serve: queue full")

// admission is the overload policy: at most maxInFlight engine runs
// execute concurrently, at most maxQueue more may wait, and anything
// beyond that is rejected immediately. Rejection is load shedding, not
// failure — the work is never started, so nothing is half-done.
type admission struct {
	sem chan struct{}

	mu       sync.Mutex
	inFlight int
	queued   int
	maxQueue int
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		sem:      make(chan struct{}, maxInFlight),
		maxQueue: maxQueue,
	}
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns errOverload when the queue is full and
// ctx.Err() when the server shuts down mid-wait. The returned release
// must be called exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot needs no queue capacity at all (with a
	// zero-length queue an idle server must still admit work).
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.inFlight++
		a.mu.Unlock()
		return a.releaseSlot, nil
	default:
	}

	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return nil, errOverload
	}
	a.queued++
	a.mu.Unlock()

	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.queued--
		a.inFlight++
		a.mu.Unlock()
		return a.releaseSlot, nil
	case <-ctx.Done():
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (a *admission) releaseSlot() {
	a.mu.Lock()
	a.inFlight--
	a.mu.Unlock()
	<-a.sem
}

// depths reports the current in-flight and queued counts (the /metrics
// gauges).
func (a *admission) depths() (inFlight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight, a.queued
}
