package serve

import (
	"repro/internal/sweep"
)

// flight is one in-flight (or recently completed) execution of a
// request id. Concurrent identical submissions attach to the same
// flight — the singleflight that keeps N clients asking the same
// question from running the engine N times — and every waiter reads the
// same response once done closes.
type flight struct {
	id  string
	req *request
	// hub carries the engine's progress events: live while the flight
	// runs, a full replay afterwards.
	hub *sweep.Hub
	// done closes after resp and code are set.
	done chan struct{}
	resp Response
	code int
}

func newFlight(req *request) *flight {
	return &flight{
		id:   req.id,
		req:  req,
		hub:  sweep.NewHub(),
		done: make(chan struct{}),
	}
}

// finished reports whether the flight has resolved.
func (f *flight) finished() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
