// Package serve is the S24 simulation-as-a-service layer: an HTTP
// front end over the S21 sweep engine. Clients POST experiment, sweep,
// or fault-campaign specs as JSON; the server validates them against
// the registries, coalesces identical concurrent submissions
// (singleflight keyed by the same version-salted content hashes the
// result store uses), executes them behind an admission controller
// (bounded queue, 429 + Retry-After on overload), serves repeated
// requests straight from the store, and streams per-job progress as
// SSE or JSONL. See DESIGN.md S24.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Store memoizes job results across requests; nil means a private
	// in-memory store (no persistence, but coalescing still works).
	Store sweep.Store
	// Workers sizes each engine run's pool; 0 means GOMAXPROCS.
	Workers int
	// MaxInFlight bounds concurrent engine runs; 0 means 2.
	MaxInFlight int
	// QueueDepth bounds submissions waiting for a run slot; past it the
	// server sheds load with 429. 0 means 64; negative means no queue
	// at all (every slot-less submission is shed immediately).
	QueueDepth int
	// JobTimeout is the per-job wall-clock budget applied to every run;
	// requests may lower it per-submission but never raise it. 0 means
	// no budget.
	JobTimeout time.Duration
	// RetryAfter is the hint returned with 429/503; 0 means 1s.
	RetryAfter time.Duration
	// MaxJobs rejects specs that expand past this many jobs; 0 means
	// 10000.
	MaxJobs int
	// Runner overrides the experiment runner (tests); nil means
	// sweep.ExperimentRunner.
	Runner sweep.Runner
	// FaultRunner overrides the fault-campaign cell runner (tests); nil
	// means fault.NewCellRunner.
	FaultRunner func(fault.CampaignConfig) sweep.Runner
	// Worker enables the cluster worker surface: /shardstats latency
	// digests plus the /v1/replica pull API the router's rebalancer uses
	// to fill read replicas (DESIGN.md S25).
	Worker bool
	// ShardStats enables /shardstats alone, without the replica API.
	ShardStats bool
	// NumShards sizes the virtual shard space the latency digests are
	// bucketed by; it must match the router's. 0 means
	// cluster.DefaultNumShards.
	NumShards int
	// WorkerID names this worker in cluster documents (manifest,
	// shardstats); defaults to empty.
	WorkerID string
}

func (o Options) runner() sweep.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return sweep.ExperimentRunner
}

func (o Options) faultRunner(cfg fault.CampaignConfig) sweep.Runner {
	if o.FaultRunner != nil {
		return o.FaultRunner(cfg)
	}
	return fault.NewCellRunner(cfg)
}

// Response is the result document of one request, shared verbatim by
// every coalesced waiter (the per-waiter Coalesced flag is set on a
// copy).
type Response struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Cache summarizes where the jobs came from: "hit" (all from the
	// store), "miss" (all executed), or "partial".
	Cache string `json:"cache"`
	// Coalesced marks a waiter that attached to an identical in-flight
	// run instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	Jobs      int  `json:"jobs"`
	Executed  int  `json:"executed"`
	CacheHits int  `json:"cache_hits"`
	Failed    int  `json:"failed,omitempty"`
	// WallMS is the flight's end-to-end latency (the first submitter's
	// view; coalesced waiters waited for some suffix of it).
	WallMS float64 `json:"wall_ms"`
	// Tables holds the merged result tables in the requested format,
	// one per input spec (experiment and sweep kinds).
	Tables []string `json:"tables,omitempty"`
	// Report is the rendered resilience report (fault kind).
	Report string `json:"report,omitempty"`
	// SilentViolations lists silent divergences in detectable fault
	// classes — each one is an oracle hole (fault kind).
	SilentViolations []string `json:"silent_violations,omitempty"`
	// Failures lists failed jobs (first error lines) when Failed > 0.
	Failures []string `json:"failures,omitempty"`
	// Profile is the path of the request's miss-ratio-curve document
	// (requests submitted with "profile": true).
	Profile string `json:"profile,omitempty"`
	Error   string `json:"error,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} document.
type JobStatus struct {
	ID        string    `json:"id"`
	Status    string    `json:"status"` // "running" or "done"
	HTTPCode  int       `json:"http_code,omitempty"`
	Result    *Response `json:"result,omitempty"`
	EventsURL string    `json:"events_url"`
}

// doneCap bounds the completed-flight registry (event replay and
// GET /v1/jobs after completion); the oldest entries are evicted FIFO.
const doneCap = 1024

// Server is the daemon: stateless HTTP handlers over one shared store,
// admission controller, and flight table.
type Server struct {
	opts    Options
	metrics *Metrics
	admit   *admission
	mux     *http.ServeMux

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	// tracker holds the per-shard latency windows behind /shardstats
	// (nil unless Worker or ShardStats is set).
	tracker *cluster.Tracker
	// replicaClient performs replica-fill pulls against peer workers.
	replicaClient *http.Client

	mu        sync.Mutex
	draining  bool
	flights   map[string]*flight // active, by request id
	done      map[string]*flight // completed, by request id
	doneOrder []string

	// pauseMu guards the pause gate (see Pause). Separate from mu:
	// paused requests block on the gate channel, and they must never
	// block holding the flight-table lock.
	pauseMu sync.Mutex
	pauseCh chan struct{} // non-nil while paused; closed by Resume
}

// New builds a server.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 64
	} else if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 10000
	}
	if opts.Store == nil {
		opts.Store = sweep.NewMemStore()
	}
	// Every store access — fast-path probes, engine flights, replica
	// fills — goes through the quarantine guard so a probe's
	// read-validate-quarantine can never race a concurrent Put of the
	// same key (see guard.go).
	opts.Store = newStoreGuard(opts.Store)
	if opts.NumShards <= 0 {
		opts.NumShards = cluster.DefaultNumShards
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		metrics: newMetrics(),
		admit:   newAdmission(opts.MaxInFlight, opts.QueueDepth),
		baseCtx: ctx,
		stop:    cancel,
		flights: map[string]*flight{},
		done:    map[string]*flight{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/profile/{id}", s.handleProfile)
	if opts.Worker || opts.ShardStats {
		s.tracker = cluster.NewTracker(opts.NumShards)
		mux.HandleFunc("GET /shardstats", s.handleShardStats)
	}
	if opts.Worker {
		s.replicaClient = &http.Client{Timeout: 30 * time.Second}
		mux.HandleFunc("GET /v1/replica/manifest", s.handleReplicaManifest)
		mux.HandleFunc("GET /v1/replica/objects/{key}", s.handleReplicaObject)
		mux.HandleFunc("POST /v1/replica/fill", s.handleReplicaFill)
	}
	s.mux = mux
	return s
}

// Metrics exposes the server's counters (the load generator reads the
// rendered form; tests read these directly).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the daemon's HTTP handler with request accounting
// attached. The pause gate sits in front of everything — including
// /healthz — so a paused worker presents the SIGSTOP profile: the
// listener accepts, then nothing answers until Resume (or the client
// gives up). That is exactly the silence the router's attempt timeout
// and the prober's failure threshold are built to survive.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ch := s.pauseGate(); ch != nil {
			select {
			case <-ch:
			case <-r.Context().Done():
				return
			case <-s.baseCtx.Done():
				return
			}
		}
		cw := &countingWriter{ResponseWriter: w}
		s.mux.ServeHTTP(cw, r)
		s.metrics.countRequest(cw.Code())
	})
}

// Pause freezes the worker: every request accepted from now on blocks
// until Resume. Idempotent. Chaos-campaign machinery — the process
// fault classes pause and resume workers between requests.
func (s *Server) Pause() {
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	if s.pauseCh == nil {
		s.pauseCh = make(chan struct{})
	}
}

// Resume releases every request blocked by Pause. Idempotent.
func (s *Server) Resume() {
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	if s.pauseCh != nil {
		close(s.pauseCh)
		s.pauseCh = nil
	}
}

// Paused reports whether the worker is currently frozen.
func (s *Server) Paused() bool {
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	return s.pauseCh != nil
}

func (s *Server) pauseGate() chan struct{} {
	s.pauseMu.Lock()
	defer s.pauseMu.Unlock()
	return s.pauseCh
}

// Shutdown drains the server: new submissions are refused with 503,
// queued and running flights are given until ctx expires to finish,
// and past the deadline the engines are cancelled — dispatch stops,
// in-flight jobs complete and land in the journal, so interrupted
// sweeps resume from the store. It returns ctx.Err() when the deadline
// forced a cancellation, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stop()
		return nil
	case <-ctx.Done():
		s.stop()
		<-done
		return ctx.Err()
	}
}

// wallNow reads the wall clock for latency accounting only; no
// simulation result ever depends on it.
func wallNow() time.Time {
	//lint:ignore observability-only wall time; results never depend on it
	return time.Now()
}

// getOrStart is the singleflight gate: attach to an active identical
// flight, or start a new one. The flight runs under the server's base
// context, so one waiter disconnecting never cancels the others' work.
func (s *Server) getOrStart(req *request) (f *flight, coalesced bool, err error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, errDraining
	}
	if f, ok := s.flights[req.id]; ok {
		s.mu.Unlock()
		s.metrics.countCoalesced()
		return f, true, nil
	}
	f = newFlight(req)
	s.flights[req.id] = f
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runFlight(f)
	return f, false, nil
}

var errDraining = errors.New("serve: shutting down")

// runFlight executes one flight to completion and publishes the result.
func (s *Server) runFlight(f *flight) {
	defer s.wg.Done()
	f.resp, f.code = s.execute(f)
	s.recordShardLatency(f.id, time.Duration(f.resp.WallMS*float64(time.Millisecond)))
	s.mu.Lock()
	delete(s.flights, f.id)
	s.done[f.id] = f
	s.doneOrder = append(s.doneOrder, f.id)
	for len(s.doneOrder) > doneCap {
		delete(s.done, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
	// done closes before the hub: an event stream that drains the hub is
	// then guaranteed to see the flight as finished and emit its terminal
	// frame.
	close(f.done)
	f.hub.Close()
}

// storeHasAll probes every job key in the shared store. When all are
// present the request can be answered without consuming an execution
// slot — the DirStore fast path. A probe that quarantines a corrupt
// entry reports a miss, which routes the request through the engine so
// the damaged cell transparently re-runs.
func (s *Server) storeHasAll(req *request) bool {
	for _, j := range req.jobs {
		_, ok, err := s.opts.Store.Get(j.Key)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// execute runs a flight's request: fast path from the store, or an
// admitted engine run.
func (s *Server) execute(f *flight) (Response, int) {
	req := f.req
	resp := Response{ID: req.id, Kind: req.spec.Kind}
	start := wallNow()

	// A profile request is only store-servable when the curve doc is
	// memoized too; otherwise it takes the engine path so the profile
	// pass below runs under an admission slot.
	fast := s.storeHasAll(req) && (!req.spec.Profile || s.storeHasProfile(req.id))
	if fast {
		s.metrics.countStoreServed()
	} else {
		release, err := s.admit.acquire(s.baseCtx)
		switch {
		case errors.Is(err, errOverload):
			resp.Error = "server overloaded: admission queue full"
			return resp, http.StatusTooManyRequests
		case err != nil:
			resp.Error = "server shutting down"
			return resp, http.StatusServiceUnavailable
		}
		defer release()
		s.metrics.countEngineRun()
	}

	eng := sweep.New(sweep.Options{
		Workers:    s.opts.Workers,
		Store:      s.opts.Store,
		Runner:     req.runner,
		Sink:       f.hub,
		JobTimeout: req.timeout,
	})
	out, err := eng.Run(s.baseCtx, req.specs)
	resp.WallMS = float64(wallNow().Sub(start)) / float64(time.Millisecond)

	var failures *sweep.FailureSummary
	switch {
	case errors.Is(err, context.Canceled):
		resp.Error = "interrupted by shutdown; completed jobs are journaled and resume from the store"
		return resp, http.StatusServiceUnavailable
	case errors.As(err, &failures):
		// Per-job failures: report them all; successful jobs are in the
		// store, so a retry re-runs only what failed.
	case err != nil:
		resp.Error = err.Error()
		return resp, http.StatusInternalServerError
	}

	resp.Jobs = len(out.Jobs)
	resp.Executed = out.Executed
	resp.CacheHits = out.CacheHits
	resp.Failed = len(out.Failed)
	switch {
	case out.Executed == 0 && len(out.Failed) == 0:
		resp.Cache = "hit"
	case out.CacheHits == 0:
		resp.Cache = "miss"
	default:
		resp.Cache = "partial"
	}
	for _, jf := range out.Failed {
		line, _, _ := strings.Cut(jf.Err.Error(), "\n")
		resp.Failures = append(resp.Failures,
			fmt.Sprintf("job %d (%s seed=%d scale=%d): %s",
				jf.Job.Index, jf.Job.Spec.Experiment, jf.Job.Spec.Seed, jf.Job.Spec.Scale, line))
	}

	silent := 0
	if req.fault != nil && len(out.Failed) == 0 {
		report, rerr := fault.RenderReport(*req.fault, out, req.spec.Format)
		if rerr != nil {
			resp.Error = rerr.Error()
			return resp, http.StatusInternalServerError
		}
		resp.Report = report
		bad, verr := fault.SilentViolations(out)
		if verr != nil {
			resp.Error = verr.Error()
			return resp, http.StatusInternalServerError
		}
		resp.SilentViolations = bad
		silent = len(bad)
	} else if req.fault == nil {
		for _, tb := range out.Tables {
			if tb == nil {
				resp.Tables = append(resp.Tables, "")
				continue
			}
			resp.Tables = append(resp.Tables, tb.Render(req.spec.Format))
		}
	}

	if req.spec.Profile && len(out.Failed) == 0 {
		// Build (or find) the request's miss-ratio-curve doc. On the
		// store fast path this is a pure lookup — storeHasProfile gated
		// fast above; on the engine path the pass runs under the
		// admission slot still held here.
		if perr := s.ensureProfile(req); perr != nil {
			resp.Error = perr.Error()
			return resp, http.StatusInternalServerError
		}
		resp.Profile = "/v1/profile/" + req.id
	}

	var walls []time.Duration
	for _, jr := range out.Jobs {
		if jr.Table != nil {
			walls = append(walls, jr.Wall)
		}
	}
	s.metrics.observeOutcome(out.Executed, out.CacheHits, len(out.Failed), walls, silent)

	if len(out.Failed) > 0 {
		resp.Error = fmt.Sprintf("%d job(s) failed", len(out.Failed))
		return resp, http.StatusInternalServerError
	}
	return resp, http.StatusOK
}

// lookup finds a flight, active or completed.
func (s *Server) lookup(id string) *flight {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[id]; ok {
		return f
	}
	return s.done[id]
}

// --- HTTP handlers ---

// maxSpecBytes bounds a request body; a spec is a few hundred bytes.
const maxSpecBytes = 1 << 20

func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (*request, bool) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return nil, false
	}
	req, err := normalize(spec, s.opts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid spec: %v", err))
		return nil, false
	}
	return req, true
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// retryAfterSeconds renders the hint as whole seconds, at least 1 (the
// header's granularity).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	}
	// Marshal first and declare the exact length: a response bigger than
	// the server's write buffer would otherwise go out chunked, and a
	// mid-body connection cut would then look like a clean short read to
	// a length-blind consumer. With Content-Length on the wire, the
	// router's proxy detects the stump and fails over.
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	data = append(data, '\n')
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(code)
	w.Write(data)
}

// handleRun is the synchronous door: submit, wait, answer.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	f, coalesced, err := s.getOrStart(req)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	select {
	case <-f.done:
	case <-r.Context().Done():
		// The client went away; the flight keeps running for any other
		// waiter and lands in the store either way.
		return
	}
	resp := f.resp
	resp.Coalesced = coalesced
	s.writeJSON(w, f.code, resp)
}

// handleSubmit is the asynchronous door: accept, return the id, let the
// client poll or stream.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	f, coalesced, err := s.getOrStart(req)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	status := JobStatus{
		ID:        f.id,
		Status:    "running",
		EventsURL: "/v1/jobs/" + f.id + "/events",
	}
	if f.finished() {
		status.Status = "done"
		status.HTTPCode = f.code
		resp := f.resp
		resp.Coalesced = coalesced
		status.Result = &resp
		s.writeJSON(w, http.StatusOK, status)
		return
	}
	s.writeJSON(w, http.StatusAccepted, status)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	f := s.lookup(id)
	if f == nil {
		s.writeError(w, http.StatusNotFound, "unknown job id "+id)
		return
	}
	status := JobStatus{ID: f.id, Status: "running", EventsURL: "/v1/jobs/" + f.id + "/events"}
	if f.finished() {
		status.Status = "done"
		status.HTTPCode = f.code
		resp := f.resp
		status.Result = &resp
	}
	s.writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, listExperiments())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	active := len(s.flights)
	s.mu.Unlock()
	inFlight, queued := s.admit.depths()
	doc := map[string]any{
		"status":   "ok",
		"flights":  active,
		"inflight": inFlight,
		"queued":   queued,
	}
	code := http.StatusOK
	if draining {
		doc["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, doc)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	inFlight, queued := s.admit.depths()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.metrics.Render(inFlight, queued))
}

// countingWriter records the status code for the request counter.
type countingWriter struct {
	http.ResponseWriter
	code int
}

func (c *countingWriter) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(b []byte) (int, error) {
	if c.code == 0 {
		c.code = http.StatusOK
	}
	return c.ResponseWriter.Write(b)
}

// Flush lets streaming handlers flush through the counter.
func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (c *countingWriter) Code() int {
	if c.code == 0 {
		return http.StatusOK
	}
	return c.code
}
