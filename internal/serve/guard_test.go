package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/report"
	"repro/internal/sweep"
)

func testResult(key string) *sweep.Result {
	tb := &report.Table{ID: "t", Title: "test table", Columns: []string{"c"}}
	tb.AddRow("1")
	return &sweep.Result{Key: key, Spec: sweep.JobSpec{Experiment: "fig7-1", Seed: 1, Scale: 1}, Table: tb}
}

// corruptObject flips bytes in the stored object file so the next Get
// quarantines it.
func corruptObject(t *testing.T, dir, key string) {
	t.Helper()
	path := filepath.Join(dir, "objects", key+".json")
	if err := os.WriteFile(path, []byte(`{"sha256":"beef","result":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGuardQuarantineThenRepair: after a Get quarantines a corrupt
// entry, the key reads as a miss until the repairing Put lands, and then
// serves normally again.
func TestGuardQuarantineThenRepair(t *testing.T) {
	dir := t.TempDir()
	ds, err := sweep.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := newStoreGuard(ds)

	res := testResult("k1")
	if err := g.Put(res); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := g.Get("k1"); !ok {
		t.Fatal("fresh put not readable")
	}

	corruptObject(t, dir, "k1")
	if _, ok, _ := g.Get("k1"); ok {
		t.Fatal("corrupt object served")
	}
	// The key is now in repair: reads miss without touching the store.
	if _, ok, _ := g.Get("k1"); ok {
		t.Fatal("repairing key served")
	}
	if err := g.Put(res); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := g.Get("k1"); !ok {
		t.Fatal("repaired key not served after Put")
	}
}

// TestGuardQuarantinePutRace is the satellite-2 regression test, run
// under -race: concurrent fast-path probes (Get) and engine flights
// (Put) on the same key, with periodic corruption injections. The guard
// must never let a probe's read-validate-quarantine interleave with a
// flight's Put — after every repair cycle the key must come back
// readable, and the store must never serve a half-written object.
func TestGuardQuarantinePutRace(t *testing.T) {
	dir := t.TempDir()
	ds, err := sweep.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := newStoreGuard(ds)

	const key = "raced"
	res := testResult(key)
	if err := g.Put(res); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 64)

	// Probes: the serve fast path hammering Get.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, ok, err := g.Get(key)
				if err != nil {
					errs <- fmt.Errorf("get: %v", err)
					return
				}
				if ok && res.Table == nil {
					errs <- fmt.Errorf("served a result with no table")
					return
				}
			}
		}()
	}
	// Flights: engine re-runs putting the same content-addressed key.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := g.Put(res); err != nil {
					errs <- fmt.Errorf("put: %v", err)
					return
				}
			}
		}()
	}
	// Corruptor: periodically smashes the on-disk object, standing in
	// for the torn writes the old fixed-name temp file allowed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			select {
			case <-stop:
				return
			default:
			}
			os.WriteFile(filepath.Join(dir, "objects", key+".json"),
				[]byte(`{"sha256":"beef","result":{}}`), 0o644)
		}
	}()

	for i := 0; i < 2000; i++ {
		g.Get(key)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Settle: one final Put must make the key cleanly readable.
	if err := g.Put(res); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := g.Get(key); !ok || err != nil {
		t.Fatalf("key unreadable after settle: ok=%v err=%v", ok, err)
	}
}

// TestGuardRawRoundTrip: raw accessors share the guard's repair
// semantics and preserve bytes exactly.
func TestGuardRawRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds, err := sweep.OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := newStoreGuard(ds)

	payload := []byte(`{"key":"kr","spec":{"experiment":"fig7-1","seed":1,"scale":1},"table":null}`)
	if err := g.PutRaw("kr", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := g.GetRaw("kr")
	if err != nil || !ok {
		t.Fatalf("GetRaw: ok=%v err=%v", ok, err)
	}
	if string(got) != string(payload) {
		t.Fatalf("raw round trip changed bytes:\n in: %s\nout: %s", payload, got)
	}
}
