package serve

import (
	"hash/fnv"
	"sync"

	"repro/internal/sweep"
)

// storeGuard makes the re-run-after-quarantine path single-flighted per
// key. Without it, the store fast-path probe and an engine flight can
// race on the same key after a quarantine: the probe reads a corrupt
// object, decides to quarantine it, and renames away a *fresh* object
// that a concurrent flight just Put under the same name — losing a good
// result and double-counting corruption.
//
// The guard serializes all Get/Put traffic per key through striped
// mutexes (a probe's read-validate-quarantine and a flight's
// write-rename can no longer interleave) and records keys whose entry
// was just quarantined in a repair set: until the re-run's Put lands,
// every other Get of that key answers "miss" without touching the store
// at all — exactly one caller performs the quarantine, everyone else
// simply routes through the engine, and the first fresh Put clears the
// key. The engine's own store access goes through the same guard, so
// the protection covers probes and flights alike.
type storeGuard struct {
	inner sweep.Store

	stripes [64]sync.Mutex

	mu        sync.Mutex
	repairing map[string]bool
}

func newStoreGuard(inner sweep.Store) *storeGuard {
	return &storeGuard{inner: inner, repairing: map[string]bool{}}
}

// quarantiner is the optional corruption counter a store exposes
// (DirStore does); the guard uses its delta to detect that a Get
// quarantined the entry it read.
type quarantiner interface {
	Quarantined() int
}

func (g *storeGuard) lockFor(key string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &g.stripes[h.Sum32()%uint32(len(g.stripes))]
}

// Get implements sweep.Store. A key in the repair set is a miss by
// definition — its corrupt entry is already gone and its re-run is in
// flight.
func (g *storeGuard) Get(key string) (*sweep.Result, bool, error) {
	g.mu.Lock()
	repairing := g.repairing[key]
	g.mu.Unlock()
	if repairing {
		return nil, false, nil
	}
	lock := g.lockFor(key)
	lock.Lock()
	defer lock.Unlock()

	q, _ := g.inner.(quarantiner)
	before := 0
	if q != nil {
		before = q.Quarantined()
	}
	res, ok, err := g.inner.Get(key)
	if q != nil && !ok && err == nil && q.Quarantined() > before {
		// This Get quarantined the entry (the counter is global, so a
		// concurrent quarantine of another key can also land here; the
		// false positive only makes this key read as a miss until its
		// next Put, which is harmless).
		g.mu.Lock()
		g.repairing[key] = true
		g.mu.Unlock()
	}
	return res, ok, err
}

// Put implements sweep.Store and clears the key's repair mark: the
// re-run landed.
func (g *storeGuard) Put(res *sweep.Result) error {
	lock := g.lockFor(res.Key)
	lock.Lock()
	err := g.inner.Put(res)
	lock.Unlock()
	if err == nil {
		g.mu.Lock()
		delete(g.repairing, res.Key)
		g.mu.Unlock()
	}
	return err
}

// JournalKeys implements sweep.Store.
func (g *storeGuard) JournalKeys() (map[string]bool, error) { return g.inner.JournalKeys() }

// AppendJournal implements sweep.Store.
func (g *storeGuard) AppendJournal(line sweep.JournalLine) error { return g.inner.AppendJournal(line) }

// GetRaw implements sweep.RawStore when the inner store does, with the
// same per-key serialization and repair-set semantics as Get.
func (g *storeGuard) GetRaw(key string) ([]byte, bool, error) {
	rs, ok := g.inner.(sweep.RawStore)
	if !ok {
		return nil, false, nil
	}
	g.mu.Lock()
	repairing := g.repairing[key]
	g.mu.Unlock()
	if repairing {
		return nil, false, nil
	}
	lock := g.lockFor(key)
	lock.Lock()
	defer lock.Unlock()
	return rs.GetRaw(key)
}

// PutRaw implements sweep.RawStore when the inner store does.
func (g *storeGuard) PutRaw(key string, payload []byte) error {
	rs, ok := g.inner.(sweep.RawStore)
	if !ok {
		return errNoRawStore
	}
	lock := g.lockFor(key)
	lock.Lock()
	err := rs.PutRaw(key, payload)
	lock.Unlock()
	if err == nil {
		g.mu.Lock()
		delete(g.repairing, key)
		g.mu.Unlock()
	}
	return err
}
