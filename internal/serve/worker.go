package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/sweep"
)

// errNoRawStore is returned when a replication operation needs raw
// payload access but the configured store does not provide it.
var errNoRawStore = errors.New("serve: store does not support raw replication access")

// recordShardLatency folds one completed flight's wall latency into the
// per-shard tracker (worker mode / -shard-stats). The shard is derived
// from the content-hash request id with the same mapping the router
// uses, so the digests the worker publishes line up with the router's
// shard table.
func (s *Server) recordShardLatency(id string, wall time.Duration) {
	if s.tracker == nil {
		return
	}
	s.tracker.Record(cluster.ShardOf(id, s.tracker.NumShards()), wall)
}

// handleShardStats serves GET /shardstats: the windowed per-shard
// latency digests, rotated on each scrape. The read path of the tracker
// is lock-free (atomic snapshot swap), so scraping never blocks a
// request goroutine.
func (s *Server) handleShardStats(w http.ResponseWriter, _ *http.Request) {
	doc := cluster.StatsDoc{
		Worker:    s.opts.WorkerID,
		NumShards: s.tracker.NumShards(),
		Shards:    s.tracker.Snapshot(),
	}
	s.writeJSON(w, http.StatusOK, doc)
}

// handleReplicaManifest serves GET /v1/replica/manifest[?shard=N]: the
// completed flights this worker can replicate, each with the job keys
// whose store objects reproduce its result. The manifest covers the
// bounded completed-flight registry — replication is a read-availability
// optimization over recent results, not a full store dump.
func (s *Server) handleReplicaManifest(w http.ResponseWriter, r *http.Request) {
	wantShard := -1
	if v := r.URL.Query().Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad shard: "+v)
			return
		}
		wantShard = n
	}
	numShards := s.numShards()
	doc := cluster.ManifestDoc{Worker: s.opts.WorkerID, NumShards: numShards}
	s.mu.Lock()
	for _, id := range s.doneOrder {
		f, ok := s.done[id]
		if !ok || f.code != http.StatusOK {
			continue
		}
		shard := cluster.ShardOf(id, numShards)
		if wantShard >= 0 && shard != wantShard {
			continue
		}
		mf := cluster.ManifestFlight{ID: id, Shard: shard}
		for _, j := range f.req.jobs {
			mf.Keys = append(mf.Keys, j.Key)
		}
		doc.Flights = append(doc.Flights, mf)
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, doc)
}

// handleReplicaObject serves GET /v1/replica/objects/{key}: the exact
// checksum-verified payload bytes of one store object, so a replica's
// envelope is byte-identical to the owner's.
func (s *Server) handleReplicaObject(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	rs, ok := s.opts.Store.(sweep.RawStore)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, errNoRawStore.Error())
		return
	}
	payload, ok, err := rs.GetRaw(key)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, "no object for key "+key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// handleReplicaFill serves POST /v1/replica/fill: pull the named shard's
// completed results from the source worker into this worker's store —
// the replica fill the router triggers when a shard runs hot. The store
// interface itself is the replication sink (sweep.RawStore), so filled
// objects are indistinguishable from locally computed ones.
func (s *Server) handleReplicaFill(w http.ResponseWriter, r *http.Request) {
	var req cluster.FillRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad fill request: %v", err))
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "fill request needs a source URL")
		return
	}
	if req.Shards != s.numShards() {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("shard space mismatch: fill says %d, worker runs %d", req.Shards, s.numShards()))
		return
	}
	rs, ok := s.opts.Store.(sweep.RawStore)
	if !ok {
		s.writeError(w, http.StatusNotImplemented, errNoRawStore.Error())
		return
	}
	resp, err := s.pullReplica(rs, req)
	if err != nil {
		s.writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// pullReplica fetches the source's manifest for the shard and copies
// every missing object's raw payload into the local store.
func (s *Server) pullReplica(rs sweep.RawStore, req cluster.FillRequest) (cluster.FillResponse, error) {
	var out cluster.FillResponse
	url := req.Source + "/v1/replica/manifest"
	if req.Shard >= 0 {
		url += "?shard=" + strconv.Itoa(req.Shard)
	}
	mresp, err := s.replicaClient.Get(url)
	if err != nil {
		return out, fmt.Errorf("fetching manifest from %s: %w", req.Source, err)
	}
	var manifest cluster.ManifestDoc
	err = json.NewDecoder(mresp.Body).Decode(&manifest)
	mresp.Body.Close()
	if err != nil {
		return out, fmt.Errorf("decoding manifest from %s: %w", req.Source, err)
	}
	if mresp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("manifest from %s: status %d", req.Source, mresp.StatusCode)
	}
	if manifest.NumShards != req.Shards {
		return out, fmt.Errorf("manifest shard space %d does not match %d", manifest.NumShards, req.Shards)
	}
	for _, mf := range manifest.Flights {
		out.Flights++
		for _, key := range mf.Keys {
			if _, have, err := rs.GetRaw(key); err == nil && have {
				continue
			}
			payload, err := s.fetchObject(req.Source, key)
			if err != nil {
				return out, err
			}
			if err := rs.PutRaw(key, payload); err != nil {
				return out, err
			}
			out.Objects++
		}
	}
	return out, nil
}

// fetchObject pulls one raw payload from the source worker.
func (s *Server) fetchObject(source, key string) ([]byte, error) {
	resp, err := s.replicaClient.Get(source + "/v1/replica/objects/" + key)
	if err != nil {
		return nil, fmt.Errorf("fetching object %s: %w", key, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("object %s from %s: status %d", key, source, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// numShards returns the server's effective shard-space size.
func (s *Server) numShards() int {
	if s.opts.NumShards > 0 {
		return s.opts.NumShards
	}
	return cluster.DefaultNumShards
}
