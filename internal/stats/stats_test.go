package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	if h.String() != "histogram{empty}" {
		t.Fatalf("String() = %q", h.String())
	}
	if h.Sparkline() != "" {
		t.Fatal("empty sparkline not empty")
	}
}

func TestHistogramExactStats(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 5} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 111 {
		t.Fatalf("count/sum = %d/%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Mean(); math.Abs(got-111.0/6) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
}

func TestBucketBoundaries(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	bs := h.Buckets()
	// Buckets: {0}, [1,1], [2,3], [4,7].
	want := []Bucket{
		{0, 0, 1},
		{1, 1, 1},
		{2, 3, 2},
		{4, 7, 1},
	}
	if len(bs) != len(want) {
		t.Fatalf("buckets = %+v", bs)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, bs[i], want[i])
		}
	}
}

func TestQuantileBounds(t *testing.T) {
	var h Histogram
	values := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, v := range values {
		h.Observe(v)
	}
	// The quantile is an upper bound and never exceeds the true max.
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		got := h.Quantile(q)
		idx := int(math.Ceil(q*10)) - 1
		if idx < 0 {
			idx = 0
		}
		exact := values[idx]
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact %d", q, got, exact)
		}
		if got > h.Max() {
			t.Errorf("Quantile(%v) = %d above max", q, got)
		}
	}
	// Out-of-range q values are clamped.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping broken")
	}
}

func TestHistogramAdd(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(100)
	b.Observe(50)
	a.Add(&b)
	if a.Count() != 3 || a.Sum() != 151 || a.Min() != 1 || a.Max() != 100 {
		t.Fatalf("after Add: %s", a.String())
	}
	var empty Histogram
	a.Add(&empty) // no-op
	if a.Count() != 3 {
		t.Fatal("adding empty changed count")
	}
	var c Histogram
	c.Add(&a)
	if c.Count() != 3 || c.Min() != 1 {
		t.Fatal("add into empty lost min")
	}
}

func TestSparklineShape(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(2)
	}
	h.Observe(1000)
	s := h.Sparkline()
	if len([]rune(s)) != 2 {
		t.Fatalf("sparkline %q, want 2 runes", s)
	}
	runes := []rune(s)
	if runes[0] != '█' {
		t.Fatalf("dominant bucket not full height: %q", s)
	}
	if runes[1] == '█' {
		t.Fatalf("rare bucket at full height: %q", s)
	}
}

func TestStringMentionsPercentiles(t *testing.T) {
	var h Histogram
	h.Observe(5)
	if s := h.String(); !strings.Contains(s, "p95") || !strings.Contains(s, "mean") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: Mean is always within [Min, Max] and Observe order never
// matters for any statistic.
func TestQuickHistogramInvariants(t *testing.T) {
	f := func(values []uint16) bool {
		if len(values) == 0 {
			return true
		}
		var a, b Histogram
		for _, v := range values {
			a.Observe(uint64(v))
		}
		for i := len(values) - 1; i >= 0; i-- {
			b.Observe(uint64(values[i]))
		}
		if a != b {
			return false
		}
		m := a.Mean()
		return m >= float64(a.Min()) && m <= float64(a.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatal("empty variance non-zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(v)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-9 {
		t.Fatalf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
}

// Property: Welford matches the two-pass calculation.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, v := range raw {
			w.Observe(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		variance := m2 / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowed(t *testing.T) {
	w := NewWindowed(10)
	if w.Rate() != 0 || w.Windows() != 0 {
		t.Fatal("fresh window dirty")
	}
	// 5 events in cycles 0..9.
	for c := uint64(0); c < 10; c += 2 {
		w.Record(c, 1)
	}
	// First event of the next window closes the previous one.
	w.Record(10, 1)
	if w.Windows() != 1 || w.Rate() != 0.5 {
		t.Fatalf("rate = %v after %d windows, want 0.5 after 1", w.Rate(), w.Windows())
	}
	// A long quiet gap closes several empty windows.
	w.Record(45, 1)
	if w.Windows() != 4 {
		t.Fatalf("windows = %d, want 4", w.Windows())
	}
	if w.Rate() != 0 {
		t.Fatalf("rate = %v after empty window, want 0", w.Rate())
	}
}

func TestWindowedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindowed(0) did not panic")
		}
	}()
	NewWindowed(0)
}
