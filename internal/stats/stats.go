// Package stats provides the measurement primitives the simulator's
// instrumentation is built from: power-of-two-bucketed histograms (miss
// and lock-acquisition latencies), running mean/variance accumulators, and
// windowed rates. Everything is integer-exact where possible — simulation
// results must be reproducible bit-for-bit.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram counts observations in power-of-two buckets: bucket i holds
// values in [2^(i-1), 2^i) with bucket 0 holding exactly 0. It records
// count, sum, min and max exactly, so Mean is exact and only quantiles are
// bucket-approximate.
// The machine's latency histograms are fed at delivery time, which
// happens in the bus and request-line phases (never the CPU phase), so
// the accumulator state is owned by those two.
type Histogram struct {
	//phase:bus,snoop
	buckets [65]uint64
	//phase:bus,snoop
	count uint64
	//phase:bus,snoop
	sum uint64
	//phase:bus,snoop
	min uint64
	//phase:bus,snoop
	max uint64
}

// bucketOf returns the bucket index of a value.
//
//hotpath:allocfree
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v)
}

// Observe records one value.
//
//hotpath:allocfree
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Reset discards all observations, returning the histogram to its zero
// value in place; recycled machines clear their latency records with it.
func (h *Histogram) Reset() { *h = Histogram{} }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min and Max return the exact extremes (0 for an empty histogram).
func (h *Histogram) Min() uint64 { return h.min }
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the exact arithmetic mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// upper edge of the bucket containing it. Exact for 0-valued buckets.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			if i == 0 {
				return 0
			}
			upper := uint64(1)<<uint(i) - 1
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// Add accumulates other into h.
func (h *Histogram) Add(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Bucket is one non-empty histogram bucket for rendering.
type Bucket struct {
	Low, High uint64 // inclusive value range
	Count     uint64
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		var lo, hi uint64
		if i == 0 {
			lo, hi = 0, 0
		} else {
			lo = uint64(1) << uint(i-1)
			hi = uint64(1)<<uint(i) - 1
		}
		out = append(out, Bucket{Low: lo, High: hi, Count: c})
	}
	return out
}

// String renders a one-line summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram{empty}"
	}
	return fmt.Sprintf("histogram{n=%d mean=%.1f min=%d p50<=%d p95<=%d max=%d}",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.95), h.max)
}

// Sparkline renders the bucket distribution as a fixed-alphabet bar string
// (one rune per non-empty bucket, height proportional to count) — enough
// to see a latency distribution's shape in terminal output.
func (h *Histogram) Sparkline() string {
	levels := []rune("▁▂▃▄▅▆▇█")
	bs := h.Buckets()
	if len(bs) == 0 {
		return ""
	}
	var peak uint64
	for _, b := range bs {
		if b.Count > peak {
			peak = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bs {
		idx := int(float64(len(levels)-1) * float64(b.Count) / float64(peak))
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// Welford accumulates a running mean and variance without storing samples
// (Welford's online algorithm).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe records one value.
func (w *Welford) Observe(v float64) {
	w.n++
	delta := v - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (v - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 with fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Windowed tracks an event rate over a trailing window of fixed width in
// cycles, used by long-running simulations to detect phase changes
// (warmup ending, a lock convoy forming).
type Windowed struct {
	width   uint64
	current uint64 // events in the open window
	last    float64
	start   uint64 // open window's first cycle
	windows uint64
}

// NewWindowed creates a rate tracker with the given window width.
func NewWindowed(width uint64) *Windowed {
	if width == 0 {
		panic("stats: zero window width")
	}
	return &Windowed{width: width}
}

// Record notes n events at the given cycle, closing windows as needed.
func (w *Windowed) Record(cycle, n uint64) {
	for cycle >= w.start+w.width {
		w.last = float64(w.current) / float64(w.width)
		w.current = 0
		w.start += w.width
		w.windows++
	}
	w.current += n
}

// Rate returns the most recently closed window's events-per-cycle rate.
func (w *Windowed) Rate() float64 { return w.last }

// Windows returns how many windows have closed.
func (w *Windowed) Windows() uint64 { return w.windows }
