// Package processor models a processing element: it executes a reactive
// workload.Agent one operation per cycle against its private cache,
// blocking while the cache completes bus work (paper assumption 5: the PE
// waits for the cache, never the other way around).
package processor

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/workload"
)

// Status is the PE's execution state.
type Status uint8

const (
	// StatusReady: the PE will issue its next operation this CPU phase.
	StatusReady Status = iota
	// StatusBlocked: an access is in the cache/bus pipeline.
	StatusBlocked
	// StatusComputing: executing processor-internal work.
	StatusComputing
	// StatusHalted: the agent returned OpHalt.
	StatusHalted
)

func (s Status) String() string {
	switch s {
	case StatusReady:
		return "ready"
	case StatusBlocked:
		return "blocked"
	case StatusComputing:
		return "computing"
	case StatusHalted:
		return "halted"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Stats counts retired operations and stall time.
type Stats struct {
	Reads         uint64
	Writes        uint64
	TestSets      uint64
	ComputeCycles uint64
	StallCycles   uint64 // cycles spent blocked on the cache
	Retired       uint64 // total memory operations completed
}

// Retirement describes one completed memory operation, as delivered to the
// machine's consistency oracle. The pointer returned by CPUPhase/Deliver
// aliases a per-PE record that is overwritten by that PE's next
// retirement; consumers copy what they need immediately.
type Retirement struct {
	PE    int
	Op    workload.Op
	Value bus.Word // read value / Test-and-Set old value
}

// Processor is one PE.
type Processor struct {
	id     int
	agent  workload.Agent
	cache  *cache.Cache
	status Status

	current    workload.Op // in-flight operation (StatusBlocked)
	computing  int         // remaining compute cycles
	lastResult workload.Result
	stats      Stats

	// Two-phase Test-and-Set (the paper's textual read-with-lock /
	// write-with-unlock realization, selected by the machine).
	twoPhase bool
	tsPhase  uint8 // 0 idle, 1 awaiting locked read, 2 awaiting unlock
	tsOld    bus.Word

	// lastRet is the reused retirement record; CPUPhase and Deliver return
	// &lastRet, valid until the PE's next retirement, so retiring an
	// operation every cycle allocates nothing.
	lastRet Retirement
}

// SetTwoPhaseRMW selects the two-phase Test-and-Set realization: a locked
// bus read, a processor-side test, and an unlocking write-back (of the
// new value on success, of the old value on failure), instead of the
// fused bus read-modify-write transaction.
func (p *Processor) SetTwoPhaseRMW(on bool) { p.twoPhase = on }

// New wires a PE to its cache and program.
func New(id int, agent workload.Agent, c *cache.Cache) *Processor {
	if agent == nil || c == nil {
		panic("processor: nil agent or cache")
	}
	return &Processor{id: id, agent: agent, cache: c}
}

// Reset rebinds the PE to an agent and returns it to its freshly
// constructed state: ready, nothing in flight, zero counters. The cache
// wiring survives (the machine resets the cache itself); the two-phase
// RMW selection is cleared back to the constructor default and
// re-applied by the machine from its config.
func (p *Processor) Reset(agent workload.Agent) {
	if agent == nil {
		panic("processor: nil agent")
	}
	p.agent = agent
	p.status = StatusReady
	p.current = workload.Op{}
	p.computing = 0
	p.lastResult = workload.Result{}
	p.stats = Stats{}
	p.twoPhase = false
	p.tsPhase = 0
	p.tsOld = 0
	p.lastRet = Retirement{}
}

// ID returns the PE index.
func (p *Processor) ID() int { return p.id }

// Status returns the current execution state.
func (p *Processor) Status() Status { return p.status }

// Halted reports whether the program has finished.
func (p *Processor) Halted() bool { return p.status == StatusHalted }

// Stats returns a snapshot of the counters.
func (p *Processor) Stats() Stats { return p.stats }

// Cache returns the PE's private cache.
func (p *Processor) Cache() *cache.Cache { return p.cache }

// CPUPhase runs the PE for one cycle. If a memory operation completes
// immediately (a cache hit), the retirement is returned for the oracle;
// otherwise ret is nil.
//
//hotpath:allocfree
func (p *Processor) CPUPhase() (ret *Retirement) {
	switch p.status {
	case StatusReady:
		// Fall past the switch and issue the next operation.
	case StatusHalted:
		return nil
	case StatusBlocked:
		p.stats.StallCycles++
		return nil
	case StatusComputing:
		p.computing--
		p.stats.ComputeCycles++
		if p.computing <= 0 {
			p.status = StatusReady
		}
		return nil
	}
	op := p.agent.Next(p.lastResult)
	p.lastResult = workload.Result{}
	switch op.Kind {
	case workload.OpHalt:
		p.status = StatusHalted
		return nil
	case workload.OpCompute:
		if op.Cycles > 0 {
			p.status = StatusComputing
			p.computing = op.Cycles
			p.computing-- // this cycle counts
			p.stats.ComputeCycles++
			if p.computing <= 0 {
				p.status = StatusReady
			}
		}
		return nil
	case workload.OpRead, workload.OpWrite:
		ev := coherence.EvRead
		if op.Kind == workload.OpWrite {
			ev = coherence.EvWrite
		}
		done, v := p.cache.Access(ev, op.Addr, op.Data, op.Class)
		if done {
			return p.retire(op, v)
		}
		p.current = op
		p.status = StatusBlocked
		return nil
	case workload.OpTestSet:
		if p.twoPhase {
			// The in-cache fast path still applies when the line is
			// exclusive; otherwise start phase 1: the locked read.
			if done, old := p.cache.TryLocalRMW(op.Addr, op.Data); done {
				return p.retire(op, old)
			}
			p.cache.AccessLockedRead(op.Addr)
			p.current = op
			p.status = StatusBlocked
			p.tsPhase = 1
			return nil
		}
		done, old := p.cache.AccessRMW(op.Addr, op.Data)
		if done {
			return p.retire(op, old)
		}
		p.current = op
		p.status = StatusBlocked
		return nil
	}
	panic(fmt.Sprintf("processor %d: unknown op kind %v", p.id, op.Kind))
}

// Deliver completes the blocked operation with the value the cache
// resolved, returning the retirement (nil while a two-phase Test-and-Set
// is between its locked read and its unlocking write).
//
//hotpath:allocfree
func (p *Processor) Deliver(v bus.Word) *Retirement {
	if p.status != StatusBlocked {
		panic(fmt.Sprintf("processor %d: Deliver while %v", p.id, p.status))
	}
	switch p.tsPhase {
	case 1:
		// Locked read done: test, then store back with unlock — the new
		// value on success, the untouched old value on failure ("the PE
		// then performs some operation on the value that may modify it").
		p.tsOld = v
		if v == 0 {
			p.cache.AccessUnlockWrite(p.current.Addr, p.current.Data, true)
		} else {
			p.cache.AccessUnlockWrite(p.current.Addr, v, false)
		}
		p.tsPhase = 2
		return nil // still blocked on phase 2
	case 2:
		p.tsPhase = 0
		op := p.current
		p.status = StatusReady
		return p.retire(op, p.tsOld)
	}
	op := p.current
	p.status = StatusReady
	return p.retire(op, v)
}

//hotpath:allocfree
func (p *Processor) retire(op workload.Op, v bus.Word) *Retirement {
	p.stats.Retired++
	switch op.Kind {
	case workload.OpRead:
		p.stats.Reads++
	case workload.OpWrite:
		p.stats.Writes++
	case workload.OpTestSet:
		p.stats.TestSets++
	default:
		// Computes and halts complete inside CPUPhase; they never retire
		// through the memory path.
		panic(fmt.Sprintf("processor %d: retiring non-memory op %v", p.id, op.Kind))
	}
	p.lastResult = workload.Result{Value: v}
	p.lastRet = Retirement{PE: p.id, Op: op, Value: v}
	return &p.lastRet
}
