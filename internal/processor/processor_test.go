package processor

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/workload"
)

// newPE builds a processor with its own single-cache bus rig.
func newPE(t *testing.T, agent workload.Agent) (*Processor, *bus.Bus, *memory.Memory) {
	t.Helper()
	mem := memory.New()
	b := bus.New(mem)
	c := cache.MustNew(0, coherence.RB{}, cache.Config{Lines: 16})
	b.Attach(0, c)
	b.AttachRequester(0, c)
	return New(0, agent, c), b, mem
}

// spin drives the PE to completion of its current blocked op.
func spin(t *testing.T, p *Processor, b *bus.Bus) {
	t.Helper()
	for i := 0; i < 100 && p.Status() == StatusBlocked; i++ {
		if _, want := p.Cache().WantsBus(); want && !b.Slotted(0) {
			b.RequestSlot(0)
		}
		if req, res, ok := b.Tick(); ok {
			p.Cache().BusCompleted(req, res)
		}
		if v, ok := p.Cache().TakeResolved(); ok {
			p.Deliver(v)
		}
	}
	if p.Status() == StatusBlocked {
		t.Fatal("PE still blocked after 100 cycles")
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusReady: "ready", StatusBlocked: "blocked",
		StatusComputing: "computing", StatusHalted: "halted",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
	if Status(9).String() == "" {
		t.Error("unknown status empty")
	}
}

func TestHaltImmediately(t *testing.T) {
	p, _, _ := newPE(t, workload.Idle())
	if ret := p.CPUPhase(); ret != nil {
		t.Fatal("halting PE retired an op")
	}
	if !p.Halted() {
		t.Fatal("PE not halted")
	}
	// Further phases are no-ops.
	p.CPUPhase()
	if p.Stats().Retired != 0 {
		t.Fatal("halted PE retired")
	}
}

func TestMissBlocksAndDeliverResumes(t *testing.T) {
	p, b, mem := newPE(t, workload.NewTrace(
		workload.Read(5, coherence.ClassShared),
		workload.Read(5, coherence.ClassShared), // hit after install
	))
	mem.Poke(5, 42)
	if ret := p.CPUPhase(); ret != nil {
		t.Fatal("miss retired synchronously")
	}
	if p.Status() != StatusBlocked {
		t.Fatalf("status = %v, want blocked", p.Status())
	}
	// A blocked phase counts as a stall.
	p.CPUPhase()
	if p.Stats().StallCycles != 1 {
		t.Fatalf("stalls = %d", p.Stats().StallCycles)
	}
	spin(t, p, b)
	// The agent sees the delivered value and retires the hit.
	ret := p.CPUPhase()
	if ret == nil || ret.Value != 42 {
		t.Fatalf("hit retirement = %+v", ret)
	}
	st := p.Stats()
	if st.Reads != 2 || st.Retired != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestComputeCounts(t *testing.T) {
	p, _, _ := newPE(t, workload.NewTrace(workload.Compute(3), workload.Halt()))
	p.CPUPhase() // issues compute, 1st cycle
	if p.Status() != StatusComputing {
		t.Fatalf("status = %v", p.Status())
	}
	p.CPUPhase()
	p.CPUPhase() // 3rd cycle finishes
	if p.Status() != StatusReady {
		t.Fatalf("status after 3 cycles = %v", p.Status())
	}
	if p.Stats().ComputeCycles != 3 {
		t.Fatalf("compute cycles = %d", p.Stats().ComputeCycles)
	}
	p.CPUPhase()
	if !p.Halted() {
		t.Fatal("not halted after compute")
	}
}

func TestZeroCycleComputeIsFree(t *testing.T) {
	p, _, _ := newPE(t, workload.NewTrace(workload.Compute(0), workload.Halt()))
	p.CPUPhase()
	if p.Status() != StatusReady {
		t.Fatalf("status = %v, want ready (0-cycle compute)", p.Status())
	}
}

func TestTestSetResultFeedsAgent(t *testing.T) {
	var observed []bus.Word
	agent := workload.Func(func(prev workload.Result) workload.Op {
		observed = append(observed, prev.Value)
		if len(observed) > 2 {
			return workload.Halt()
		}
		return workload.TestSet(8, 1)
	})
	p, b, _ := newPE(t, agent)
	p.CPUPhase() // TS #1 (miss -> bus)
	spin(t, p, b)
	p.CPUPhase() // TS #2: line now Local -> in-cache
	if p.Stats().TestSets != 2 {
		t.Fatalf("test-sets = %d", p.Stats().TestSets)
	}
	p.CPUPhase() // halt
	// First Next saw 0 (initial), second saw 0 (TS#1 old), third saw 1.
	if len(observed) != 3 || observed[1] != 0 || observed[2] != 1 {
		t.Fatalf("observed = %v", observed)
	}
}

func TestDeliverWhenNotBlockedPanics(t *testing.T) {
	p, _, _ := newPE(t, workload.Idle())
	defer func() {
		if recover() == nil {
			t.Fatal("Deliver on ready PE did not panic")
		}
	}()
	p.Deliver(0)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil agent) did not panic")
		}
	}()
	New(0, nil, cache.MustNew(0, coherence.RB{}, cache.Config{Lines: 4}))
}

func TestTwoPhaseTestSetAtProcessorLevel(t *testing.T) {
	// One PE against its own bus: the TS decomposes into a locked read
	// then an unlocking write, and the agent receives the old value.
	var results []bus.Word
	agent := workload.Func(func(prev workload.Result) workload.Op {
		results = append(results, prev.Value)
		switch len(results) {
		case 1, 2:
			return workload.TestSet(8, 1)
		}
		return workload.Halt()
	})
	p, b, mem := newPE(t, agent)
	p.SetTwoPhaseRMW(true)
	if p.ID() != 0 {
		t.Fatal("ID broken")
	}

	// TS #1: phase 1 (locked read) blocks the PE.
	if ret := p.CPUPhase(); ret != nil {
		t.Fatal("two-phase TS retired synchronously")
	}
	drive := func() {
		for i := 0; i < 50 && p.Status() == StatusBlocked; i++ {
			if _, want := p.Cache().WantsBus(); want && !b.Slotted(0) {
				b.RequestSlot(0)
			}
			if req, res, ok := b.Tick(); ok {
				p.Cache().BusCompleted(req, res)
			}
			if v, ok := p.Cache().TakeResolved(); ok {
				p.Deliver(v)
			}
		}
	}
	drive()
	if p.Status() != StatusReady {
		t.Fatalf("status = %v after two-phase TS", p.Status())
	}
	if mem.Peek(8) != 1 {
		t.Fatal("lock not taken in memory")
	}
	if h, _ := b.Locked(); h != -1 {
		t.Fatal("bus lock not released")
	}

	// TS #2: the winner's line is Local now (RB write transition), so the
	// in-cache fast path fires and the failure is observed.
	if ret := p.CPUPhase(); ret == nil || ret.Value != 1 {
		t.Fatalf("second TS should fail in-cache with old=1, got %+v", ret)
	}
	p.CPUPhase() // halt
	// Agent saw: initial zero, then old=0 (success), then old=1 (failure).
	if len(results) != 3 || results[1] != 0 || results[2] != 1 {
		t.Fatalf("agent results = %v", results)
	}
	if p.Stats().TestSets != 2 {
		t.Fatalf("test-sets = %d", p.Stats().TestSets)
	}
}

func TestTwoPhaseFailedTSRestoresValue(t *testing.T) {
	// The lock word starts held (nonzero): the failed attempt's unlock
	// write restores the old value and changes nothing.
	agent := workload.NewTrace(workload.TestSet(8, 1))
	p, b, mem := newPE(t, agent)
	p.SetTwoPhaseRMW(true)
	mem.Poke(8, 7)
	p.CPUPhase()
	for i := 0; i < 50 && p.Status() == StatusBlocked; i++ {
		if _, want := p.Cache().WantsBus(); want && !b.Slotted(0) {
			b.RequestSlot(0)
		}
		if req, res, ok := b.Tick(); ok {
			p.Cache().BusCompleted(req, res)
		}
		if v, ok := p.Cache().TakeResolved(); ok {
			p.Deliver(v)
		}
	}
	if p.Status() != StatusReady {
		t.Fatalf("status = %v", p.Status())
	}
	if mem.Peek(8) != 7 {
		t.Fatalf("failed TS changed the word to %d", mem.Peek(8))
	}
	if h, _ := b.Locked(); h != -1 {
		t.Fatal("bus lock leaked")
	}
	// The failing PE's cache did not adopt the line (non-cachable path).
	if _, _, present := p.Cache().Lookup(8); present {
		t.Fatal("failed TS installed a line")
	}
}
