package coherence

import "fmt"

// RB is the paper's first scheme (Section 3, Figure 3-1): three states per
// address line — Invalid, Readable, Local — with the data answering every
// bus read broadcast to all caches.
//
// The configurations reachable for an address (the Section 4 lemma) are:
//
//   - shared: every cache containing the address is Readable, and memory is
//     current;
//   - local: exactly one cache is Local (holding the latest value) and all
//     others containing the address are Invalid.
//
// A write moves the writer to Local (write-through plus invalidation of all
// other copies); a read of a Local line by anyone else moves the address
// back to the shared configuration via the interrupt-flush-retry sequence.
type RB struct{}

// Name implements Protocol.
func (RB) Name() string { return "rb" }

// States implements Protocol.
func (RB) States() []State { return []State{Invalid, Readable, Local} }

// OnProc implements Protocol. It is the processor-request half of
// Figure 3-1.
func (RB) OnProc(s State, aux uint8, e ProcEvent) ProcOutcome {
	switch s {
	case Invalid:
		if e == EvRead {
			// "the cache generates a bus read and upon successful
			// completion ... the cache state is changed to Read."
			return ProcOutcome{Next: Readable, Action: ActRead, Dirty: DirtyClear}
		}
		// "a bus write is generated ..., the cache value is updated to
		// this new value, and the cache state is set to Local." The line
		// is clean: the write went through to memory.
		return ProcOutcome{Next: Local, Action: ActWrite, Dirty: DirtyClear}
	case Readable:
		if e == EvRead {
			// "the cached value is returned to the processor."
			return ProcOutcome{Next: Readable, Action: ActNone}
		}
		// "a bus write is generated (this informs the other caches that
		// the variable is now considered local), ... the cache is tagged
		// as Local."
		return ProcOutcome{Next: Local, Action: ActWrite, Dirty: DirtyClear}
	case Local:
		if e == EvRead {
			return ProcOutcome{Next: Local, Action: ActNone}
		}
		// "the value in the cache is updated to this new value (no bus
		// activity is generated)" — the only transition that makes a line
		// dirty.
		return ProcOutcome{Next: Local, Action: ActNone, Dirty: DirtySet}
	default:
		panic(fmt.Sprintf("rb: OnProc from foreign state %v", s))
	}
}

// OnSnoop implements Protocol. It is the bus-request half of Figure 3-1.
func (RB) OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome {
	switch s {
	case Invalid:
		switch ev {
		case SnBusRead, SnBusWrite, SnBusInv:
			// "In response to a bus write, a cache in the Invalid state
			// will do nothing." RB caches do not read the data part of
			// writes; BI never occurs in a pure RB machine.
			return SnoopOutcome{Next: Invalid}
		case SnReadData:
			// "the value returned in response to the read is stored into
			// the cache and the cache state is changed to Read. (Note that
			// ... the value read will, in effect, be broadcast to all the
			// processors for future use.)"
			return SnoopOutcome{Next: Readable, TakeData: true, Dirty: DirtyClear}
		}
	case Readable:
		switch ev {
		case SnBusRead, SnBusInv:
			// "A bus read ... has no effect on a cache in state R."
			return SnoopOutcome{Next: Readable}
		case SnBusWrite:
			// "a bus write causes the cache to change its state to
			// Invalid."
			return SnoopOutcome{Next: Invalid}
		case SnReadData:
			// Already holds the (identical) value.
			return SnoopOutcome{Next: Readable}
		}
	case Local:
		switch ev {
		case SnBusRead:
			// "The bus read is interrupted and replaced by a bus write of
			// the cached value. The cache state is changed to Read."
			return SnoopOutcome{Next: Readable, Inhibit: true, Dirty: DirtyClear}
		case SnBusWrite:
			// "Bus writes cause a cache in the local state to change its
			// state to Invalid."
			return SnoopOutcome{Next: Invalid, Dirty: DirtyClear}
		case SnBusInv:
			return SnoopOutcome{Next: Invalid, Dirty: DirtyClear}
		case SnReadData:
			return SnoopOutcome{Next: Local}
		}
	default:
		panic(fmt.Sprintf("rb: OnSnoop from foreign state %v", s))
	}
	panic(fmt.Sprintf("rb: OnSnoop(%v) missed event %v", s, ev))
}

// RMWFlush implements Protocol: a locked read is non-cachable, so only a
// dirty Local owner (whose value memory does not have) must flush; it keeps
// its Local state, exactly as the spinning rows of Figure 6-1 keep P2 in L.
func (RB) RMWFlush(s State, dirty bool) (bool, State, DirtyEffect) {
	if s == Local && dirty {
		return true, Local, DirtyClear
	}
	return false, s, DirtyKeep
}

// RMWSuccess implements Protocol: a successful Test-and-Set is a write, so
// the issuer becomes Local and the write part is an ordinary bus write that
// invalidates every other copy (Figure 6-1: "P2 Locks S" yields I L I).
func (RB) RMWSuccess(s State, aux uint8) (State, uint8, Action) {
	return Local, 0, ActWrite
}

// Cachable implements Protocol: the RB scheme is transparent; every class
// of data is dynamically classified and cached.
func (RB) Cachable(c Class, e ProcEvent) bool { return true }

// WritebackOnEvict implements Protocol: "Only those overwritten items that
// are tagged local need to be written back to the memory." The paper has
// no dirty tag, so even a clean Local line (whose write-through already
// updated memory) is written back — the cost the RWB scheme's F state
// avoids (Section 5) and the RBDirtyEvict variant removes.
func (RB) WritebackOnEvict(s State, dirty bool) bool { return s == Local }

// RBDirtyEvict is the RB scheme plus one dirty bit per line, used only at
// eviction: a clean Local line (its value reached memory on the
// write-through that claimed it) is dropped silently. This is the obvious
// 1984-hardware-feasible fix for RB's double-write on array
// initialization, quantified by the ablation-arrayinit experiment.
type RBDirtyEvict struct{ RB }

// Name implements Protocol.
func (RBDirtyEvict) Name() string { return "rb-dirty" }

// WritebackOnEvict implements Protocol: only genuinely dirty Local lines
// are written back.
func (RBDirtyEvict) WritebackOnEvict(s State, dirty bool) bool {
	return s == Local && dirty
}

// LocalRMW implements Protocol: a Local line is the sole copy and holds the
// latest value, so a Test-and-Set against it is atomic without the bus.
func (RB) LocalRMW(s State) bool { return s == Local }
