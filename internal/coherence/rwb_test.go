package coherence

import "testing"

// TestRWBTransitionDiagram encodes Figure 5-1: RB's diagram plus the
// FirstWrite state, the BI signal (modifier 4), and data-taking on bus
// writes.
func TestRWBTransitionDiagram(t *testing.T) {
	p := NewRWB(2)

	procCases := []struct {
		s       State
		aux     uint8
		e       ProcEvent
		next    State
		nextAux uint8
		action  Action
	}{
		{Invalid, 0, EvRead, Readable, 0, ActRead},
		{Invalid, 0, EvWrite, FirstWrite, 1, ActWrite},
		{Readable, 0, EvRead, Readable, 0, ActNone},
		// First write in shared configuration: BW, enter F.
		{Readable, 0, EvWrite, FirstWrite, 1, ActWrite},
		// Own reads do not break the streak.
		{FirstWrite, 1, EvRead, FirstWrite, 1, ActNone},
		// Second uninterrupted write: BI, enter L.
		{FirstWrite, 1, EvWrite, Local, 0, ActInv},
		// After an interruption the streak restarts: the next write is a
		// BW again, staying in F.
		{FirstWrite, 0, EvWrite, FirstWrite, 1, ActWrite},
		{Local, 0, EvRead, Local, 0, ActNone},
		{Local, 0, EvWrite, Local, 0, ActNone},
	}
	for _, c := range procCases {
		got := p.OnProc(c.s, c.aux, c.e)
		if got.Next != c.next || got.NextAux != c.nextAux || got.Action != c.action {
			t.Errorf("OnProc(%v, aux=%d, %v) = (%v, aux=%d, %v), want (%v, %d, %v)",
				c.s, c.aux, c.e, got.Next, got.NextAux, got.Action, c.next, c.nextAux, c.action)
		}
	}

	snoopCases := []struct {
		s       State
		ev      SnoopEvent
		next    State
		inhibit bool
		take    bool
	}{
		// Invalid caches snarf both broadcast read data and write data.
		{Invalid, SnBusRead, Invalid, false, false},
		{Invalid, SnBusWrite, Readable, false, true},
		{Invalid, SnBusInv, Invalid, false, false},
		{Invalid, SnReadData, Readable, false, true},
		// Readable caches update in place on writes and die on BI.
		{Readable, SnBusRead, Readable, false, false},
		{Readable, SnBusWrite, Readable, false, true},
		{Readable, SnBusInv, Invalid, false, false},
		{Readable, SnReadData, Readable, false, false},
		// FirstWrite: reads have no configuration effect; a write by
		// another PE demotes to Readable with the new value.
		{FirstWrite, SnBusRead, FirstWrite, false, false},
		{FirstWrite, SnBusWrite, Readable, false, true},
		{FirstWrite, SnBusInv, Invalid, false, false},
		{FirstWrite, SnReadData, FirstWrite, false, false},
		// Local: interrupt reads like RB; adopt (not just observe) writes.
		{Local, SnBusRead, Readable, true, false},
		{Local, SnBusWrite, Readable, false, true},
		{Local, SnBusInv, Invalid, false, false},
		{Local, SnReadData, Local, false, false},
	}
	for _, c := range snoopCases {
		got := p.OnSnoop(c.s, 1, true, c.ev)
		if got.Next != c.next || got.Inhibit != c.inhibit || got.TakeData != c.take {
			t.Errorf("OnSnoop(%v, %v) = (%v, inhibit=%v, take=%v), want (%v, %v, %v)",
				c.s, c.ev, got.Next, got.Inhibit, got.TakeData, c.next, c.inhibit, c.take)
		}
	}
}

// TestRWBSnoopReadResetsStreak: a bus read by another PE is an intervening
// reference, so the F-state write streak restarts.
func TestRWBSnoopReadResetsStreak(t *testing.T) {
	p := NewRWB(3)
	out := p.OnSnoop(FirstWrite, 2, false, SnBusRead)
	if out.Next != FirstWrite || out.NextAux != 0 {
		t.Fatalf("F+BR snoop = (%v, aux=%d), want (FirstWrite, 0)", out.Next, out.NextAux)
	}
}

// TestRWBThresholdK verifies the footnote-6 generalization: with k
// uninterrupted writes required, the first k-1 writes are write-throughs in
// F and only the k'th issues BI and claims Local.
func TestRWBThresholdK(t *testing.T) {
	for _, k := range []uint8{2, 3, 4, 5} {
		p := NewRWB(k)
		s, aux := Invalid, uint8(0)
		writes := 0
		for {
			out := p.OnProc(s, aux, EvWrite)
			writes++
			s, aux = out.Next, out.NextAux
			if s == Local {
				break
			}
			if out.Action != ActWrite {
				t.Fatalf("k=%d: write %d action = %v, want BW", k, writes, out.Action)
			}
			if writes > int(k)+1 {
				t.Fatalf("k=%d: no Local after %d writes", k, writes)
			}
		}
		if writes != int(k) {
			t.Errorf("k=%d: reached Local after %d writes, want %d", k, writes, k)
		}
	}
}

func TestNewRWBRejectsSmallThreshold(t *testing.T) {
	for _, k := range []uint8{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRWB(%d) did not panic", k)
				}
			}()
			NewRWB(k)
		}()
	}
}

// TestRWBRMWSuccessFollowsWriteStreak: TS from shared configuration enters
// F with a broadcast write (Figure 6-3 "P2 Locks S" -> R F R); TS from a
// full F streak enters L with BI.
func TestRWBRMWSuccessFollowsWriteStreak(t *testing.T) {
	p := NewRWB(2)
	if next, aux, bc := p.RMWSuccess(Readable, 0); next != FirstWrite || aux != 1 || bc != ActWrite {
		t.Errorf("RMW success from R = (%v, %d, %v), want (F, 1, BW)", next, aux, bc)
	}
	if next, _, bc := p.RMWSuccess(FirstWrite, 1); next != Local || bc != ActInv {
		t.Errorf("RMW success from F = (%v, %v), want (L, BI)", next, bc)
	}
	if next, _, bc := p.RMWSuccess(Local, 0); next != Local || bc != ActWrite {
		t.Errorf("RMW success from L = (%v, %v), want (L, BW)", next, bc)
	}
}

func TestRWBFIsAlwaysClean(t *testing.T) {
	p := NewRWB(2)
	// Entering F always writes through.
	for _, s := range []State{Invalid, Readable} {
		if out := p.OnProc(s, 0, EvWrite); out.Dirty != DirtyClear {
			t.Errorf("entering F from %v left dirty=%v", s, out.Dirty)
		}
	}
	// And F never flushes for a locked read.
	if flush, _, _ := p.RMWFlush(FirstWrite, false); flush {
		t.Error("F flushed for a locked read")
	}
	// Entering L via BI does not write through, so L starts dirty.
	if out := p.OnProc(FirstWrite, 1, EvWrite); out.Dirty != DirtySet {
		t.Errorf("entering L via BI left dirty=%v, want set", out.Dirty)
	}
}

func TestRWBEvictionPolicy(t *testing.T) {
	p := NewRWB(2)
	if !p.WritebackOnEvict(Local, true) {
		t.Error("Local must be written back")
	}
	// The Section 5 claim: an initialized-once line (F) evicts silently,
	// halving the array-initialization bus writes relative to RB.
	for _, s := range []State{Invalid, Readable, FirstWrite} {
		if p.WritebackOnEvict(s, true) {
			t.Errorf("state %v must evict silently", s)
		}
	}
}

func TestRWBStatesAndName(t *testing.T) {
	p := NewRWB(2)
	if p.Name() != "rwb" {
		t.Errorf("Name() = %q", p.Name())
	}
	if n := len(p.States()); n != 4 {
		t.Errorf("len(States()) = %d, want 4", n)
	}
}

func TestRWBForeignStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OnSnoop from a Goodman state did not panic")
		}
	}()
	NewRWB(2).OnSnoop(DirtyState, 0, false, SnBusRead)
}
