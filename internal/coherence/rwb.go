package coherence

import "fmt"

// RWB is the paper's second scheme (Section 5, Figure 5-1): caches also
// read the data part of bus writes ("write broadcast"), a new FirstWrite
// (F) state marks a line whose most recent writer this cache is, and a
// line only turns Local after Threshold uninterrupted writes by the same
// PE, signalled with a bus invalidate (BI).
//
// The configurations for an address are the RB ones plus an intermediate
// one: exactly one cache in F and every other interested cache in R, all
// holding the latest (broadcast) value, with memory current.
//
// The paper uses two writes ("two writes to a variable with out any
// intervening references to the variable by any other PE is enough to
// indicate local usage") and notes that "straightforward modifications are
// possible if one wishes at least k uninterrupted writes"; Threshold is
// that k. The per-line aux value counts the current uninterrupted write
// streak while the line is in F.
type RWB struct {
	// Threshold is k: the number of uninterrupted writes after which the
	// line is assumed local. Must be at least 2 (with k=1 the first write
	// would go straight to Local, which is exactly the RB scheme).
	Threshold uint8
}

// NewRWB returns the RWB scheme with the given write threshold k (the
// paper's scheme is k=2).
func NewRWB(k uint8) RWB {
	if k < 2 {
		panic(fmt.Sprintf("rwb: threshold %d, need >= 2 (use RB for write-invalidate-on-first-write)", k))
	}
	return RWB{Threshold: k}
}

// Name implements Protocol.
func (p RWB) Name() string { return "rwb" }

// States implements Protocol.
func (p RWB) States() []State { return []State{Invalid, Readable, FirstWrite, Local} }

// OnProc implements Protocol. It is the processor-request half of
// Figure 5-1.
func (p RWB) OnProc(s State, aux uint8, e ProcEvent) ProcOutcome {
	switch s {
	case Invalid:
		if e == EvRead {
			return ProcOutcome{Next: Readable, Action: ActRead, Dirty: DirtyClear}
		}
		// "a bus write caused by a cache miss will be treated as above
		// causing all other caches to assume state R and this cache state
		// F." First write of a potential streak.
		return ProcOutcome{Next: FirstWrite, NextAux: 1, Action: ActWrite, Dirty: DirtyClear}
	case Readable:
		if e == EvRead {
			return ProcOutcome{Next: Readable, Action: ActNone}
		}
		// "The first write to a variable ... in shared configuration
		// causes all caches to remain in state R except for the i'th cache
		// that goes into state F."
		return ProcOutcome{Next: FirstWrite, NextAux: 1, Action: ActWrite, Dirty: DirtyClear}
	case FirstWrite:
		if e == EvRead {
			// Own reads do not interrupt the streak.
			return ProcOutcome{Next: FirstWrite, NextAux: aux, Action: ActNone}
		}
		if aux+1 >= p.Threshold {
			// "A subsequent write by PE_i then confirms the fact that the
			// variable is to be assumed local. Cache i enters state L and
			// broadcasts an invalidate signal." BI carries no data, so the
			// line is dirty from here on.
			return ProcOutcome{Next: Local, NextAux: 0, Action: ActInv, Dirty: DirtySet}
		}
		// k > 2: keep writing through until the streak reaches k.
		return ProcOutcome{Next: FirstWrite, NextAux: aux + 1, Action: ActWrite, Dirty: DirtyClear}
	case Local:
		if e == EvRead {
			return ProcOutcome{Next: Local, Action: ActNone}
		}
		return ProcOutcome{Next: Local, Action: ActNone, Dirty: DirtySet}
	default:
		panic(fmt.Sprintf("rwb: OnProc from foreign state %v", s))
	}
}

// OnSnoop implements Protocol. It is the bus-request half of Figure 5-1.
// The difference from RB: bus writes carry usable data, so observers adopt
// the value and become Readable instead of Invalid.
func (p RWB) OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome {
	switch s {
	case Invalid:
		switch ev {
		case SnBusRead, SnBusInv:
			return SnoopOutcome{Next: Invalid}
		case SnBusWrite:
			// "The data written is read by all caches and they in turn
			// enter state R."
			return SnoopOutcome{Next: Readable, TakeData: true, Dirty: DirtyClear}
		case SnReadData:
			return SnoopOutcome{Next: Readable, TakeData: true, Dirty: DirtyClear}
		}
	case Readable:
		switch ev {
		case SnBusRead:
			return SnoopOutcome{Next: Readable}
		case SnBusWrite:
			// Adopt the broadcast value, stay Readable: this is the
			// "cyclical pattern: written by some one PE and then read by
			// others" optimization — subsequent reads cause no bus
			// activity.
			return SnoopOutcome{Next: Readable, TakeData: true, Dirty: DirtyClear}
		case SnBusInv:
			return SnoopOutcome{Next: Invalid}
		case SnReadData:
			return SnoopOutcome{Next: Readable}
		}
	case FirstWrite:
		switch ev {
		case SnBusRead:
			// "While still in this intermediate configuration ..., all
			// reads have no configuration effect and data can be fetched
			// from any cache" (memory is current, so it responds). The
			// read is an intervening reference by another PE, so the
			// write streak restarts.
			return SnoopOutcome{Next: FirstWrite, NextAux: 0}
		case SnBusWrite:
			// "A write by some other PE_j will cause cache j to change to
			// state F and cause a bus write to occur. The data written is
			// read by all caches and they in turn enter state R."
			return SnoopOutcome{Next: Readable, TakeData: true, Dirty: DirtyClear}
		case SnBusInv:
			return SnoopOutcome{Next: Invalid, Dirty: DirtyClear}
		case SnReadData:
			return SnoopOutcome{Next: FirstWrite, NextAux: aux}
		}
	case Local:
		switch ev {
		case SnBusRead:
			// Identical to RB: interrupt, flush, become Readable.
			return SnoopOutcome{Next: Readable, Inhibit: true, Dirty: DirtyClear}
		case SnBusWrite:
			// Unlike RB the broadcast data is usable, so the owner demotes
			// to Readable with the new value instead of Invalid.
			return SnoopOutcome{Next: Readable, TakeData: true, Dirty: DirtyClear}
		case SnBusInv:
			return SnoopOutcome{Next: Invalid, Dirty: DirtyClear}
		case SnReadData:
			return SnoopOutcome{Next: Local}
		}
	default:
		panic(fmt.Sprintf("rwb: OnSnoop from foreign state %v", s))
	}
	panic(fmt.Sprintf("rwb: OnSnoop(%v) missed event %v", s, ev))
}

// RMWFlush implements Protocol: as in RB, only a dirty Local owner flushes
// for a locked read (F lines are always clean — every F write went through
// to memory).
func (p RWB) RMWFlush(s State, dirty bool) (bool, State, DirtyEffect) {
	if s == Local && dirty {
		return true, Local, DirtyClear
	}
	return false, s, DirtyKeep
}

// RMWSuccess implements Protocol: a successful Test-and-Set is a write, so
// it follows the write-streak rules — from R or I the issuer enters F and
// the write part is broadcast as a bus write that the other caches snarf
// (Figure 6-3: "P2 Locks S" yields R F R, all holding 1); from F with a
// full streak the issuer enters L and the write part is an invalidate.
func (p RWB) RMWSuccess(s State, aux uint8) (State, uint8, Action) {
	out := p.OnProc(s, aux, EvWrite)
	broadcast := out.Action
	if broadcast == ActNone {
		// Issuer already Local: the write stays local, but the RMW
		// transaction itself was on the bus; other caches hold no copy,
		// so broadcasting the write is harmless and keeps memory current.
		broadcast = ActWrite
	}
	return out.Next, out.NextAux, broadcast
}

// Cachable implements Protocol: RWB is transparent.
func (p RWB) Cachable(c Class, e ProcEvent) bool { return true }

// WritebackOnEvict implements Protocol: Local is the only state whose value
// may be absent from memory. This is the Section 5 array-initialization
// claim: under RB an initializing write leaves the line Local (write-back
// on eviction, two bus writes per element), under RWB it leaves the line
// FirstWrite (clean, one bus write per element).
func (p RWB) WritebackOnEvict(s State, dirty bool) bool { return s == Local }

// LocalRMW implements Protocol: as in RB, only a Local line is exclusive.
// An F line is not — every other interested cache holds a Readable copy.
func (p RWB) LocalRMW(s State) bool { return s == Local }
