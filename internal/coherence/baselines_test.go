package coherence

import "testing"

func TestGoodmanWriteOnceSequence(t *testing.T) {
	p := Goodman{}
	// Read miss -> Valid.
	out := p.OnProc(Invalid, 0, EvRead)
	if out.Next != Valid || out.Action != ActRead {
		t.Fatalf("read miss = %+v", out)
	}
	// First write: write through once -> Reserved.
	out = p.OnProc(Valid, 0, EvWrite)
	if out.Next != Reserved || out.Action != ActWrite || out.Dirty != DirtyClear {
		t.Fatalf("first write = %+v, want write-through to Reserved", out)
	}
	// Second write: purely local -> Dirty.
	out = p.OnProc(Reserved, 0, EvWrite)
	if out.Next != DirtyState || out.Action != ActNone || out.Dirty != DirtySet {
		t.Fatalf("second write = %+v, want local to Dirty", out)
	}
	// Subsequent writes stay Dirty with no bus activity.
	out = p.OnProc(DirtyState, 0, EvWrite)
	if out.Next != DirtyState || out.Action != ActNone {
		t.Fatalf("third write = %+v", out)
	}
}

func TestGoodmanWriteMissIsReadThenWrite(t *testing.T) {
	out := Goodman{}.OnProc(Invalid, 0, EvWrite)
	if out.Next != Reserved || out.Action != ActReadThenWrite {
		t.Fatalf("write miss = %+v, want BR+BW to Reserved", out)
	}
}

// TestGoodmanIsEventBroadcastOnly captures the property the paper improves
// on: write-once caches never gain data from observed transactions.
func TestGoodmanIsEventBroadcastOnly(t *testing.T) {
	p := Goodman{}
	for _, s := range p.States() {
		for _, ev := range []SnoopEvent{SnBusRead, SnBusWrite, SnBusInv, SnReadData} {
			if out := p.OnSnoop(s, 0, s == DirtyState, ev); out.TakeData {
				t.Errorf("goodman %v+%v took broadcast data", s, ev)
			}
		}
	}
	// An Invalid copy stays Invalid even when the data flies by.
	if out := p.OnSnoop(Invalid, 0, false, SnReadData); out.Next != Invalid {
		t.Error("Invalid was refreshed by broadcast read data")
	}
}

func TestGoodmanSnoopDemotions(t *testing.T) {
	p := Goodman{}
	// Reserved loses exclusivity on another's read.
	if out := p.OnSnoop(Reserved, 0, false, SnBusRead); out.Next != Valid || out.Inhibit {
		t.Errorf("Reserved+BR = %+v, want demotion to Valid without inhibit", out)
	}
	// Dirty must service the read.
	if out := p.OnSnoop(DirtyState, 0, true, SnBusRead); out.Next != Valid || !out.Inhibit {
		t.Errorf("Dirty+BR = %+v, want inhibit and demotion to Valid", out)
	}
	// Writes invalidate every holder.
	for _, s := range []State{Valid, Reserved, DirtyState} {
		if out := p.OnSnoop(s, 0, s == DirtyState, SnBusWrite); out.Next != Invalid {
			t.Errorf("%v+BW -> %v, want Invalid", s, out.Next)
		}
	}
}

func TestGoodmanRMW(t *testing.T) {
	p := Goodman{}
	if flush, next, _ := p.RMWFlush(DirtyState, true); !flush || next != Reserved {
		t.Error("Dirty must flush for a locked read and become Reserved")
	}
	if flush, _, _ := p.RMWFlush(Reserved, false); flush {
		t.Error("Reserved flushed (memory is current)")
	}
	if next, _, bc := p.RMWSuccess(Valid, 0); next != Reserved || bc != ActWrite {
		t.Error("RMW success should reserve the line via a write-through")
	}
	if !p.WritebackOnEvict(DirtyState, true) || p.WritebackOnEvict(Reserved, false) {
		t.Error("only Dirty lines write back on eviction")
	}
}

func TestWriteThroughBehavior(t *testing.T) {
	p := WriteThrough{}
	if out := p.OnProc(Invalid, 0, EvRead); out.Next != Valid || out.Action != ActRead {
		t.Fatalf("read miss = %+v", out)
	}
	// Write miss: no allocate.
	if out := p.OnProc(Invalid, 0, EvWrite); out.Next != Invalid || out.Action != ActWrite || !out.NoAllocate {
		t.Fatalf("write miss = %+v, want no-allocate write-through", out)
	}
	// Every write hit goes to the bus.
	if out := p.OnProc(Valid, 0, EvWrite); out.Action != ActWrite || out.Next != Valid {
		t.Fatalf("write hit = %+v", out)
	}
	// Observed writes invalidate.
	if out := p.OnSnoop(Valid, 0, false, SnBusWrite); out.Next != Invalid {
		t.Fatal("observed write did not invalidate")
	}
	// Nothing is ever dirty.
	if flush, _, _ := p.RMWFlush(Valid, false); flush {
		t.Fatal("write-through flushed")
	}
	if p.WritebackOnEvict(Valid, false) {
		t.Fatal("write-through wrote back")
	}
}

func TestCmStarClassPolicy(t *testing.T) {
	p := CmStar{}
	if !p.Cachable(ClassCode, EvRead) || !p.Cachable(ClassLocal, EvRead) {
		t.Error("code and local data must be cachable")
	}
	if p.Cachable(ClassShared, EvRead) || p.Cachable(ClassShared, EvWrite) {
		t.Error("shared data must not be cachable (Table 1-1 emulation)")
	}
	if p.Cachable(ClassUnknown, EvRead) {
		t.Error("unclassified data must bypass the Cm* cache")
	}
	// Local writes are write-through even on a hit (counted as misses in
	// Table 1-1).
	if out := p.OnProc(Valid, 0, EvWrite); out.Action != ActWrite {
		t.Error("local write hit did not write through")
	}
	// Snooping is inert.
	for _, s := range p.States() {
		for _, ev := range []SnoopEvent{SnBusRead, SnBusWrite, SnBusInv, SnReadData} {
			out := p.OnSnoop(s, 0, false, ev)
			if out.Next != s || out.Inhibit || out.TakeData {
				t.Errorf("cmstar snoop %v+%v reacted: %+v", s, ev, out)
			}
		}
	}
}

func TestNoCacheBypassesEverything(t *testing.T) {
	p := NoCache{}
	for _, c := range []Class{ClassUnknown, ClassCode, ClassLocal, ClassShared} {
		if p.Cachable(c, EvRead) {
			t.Errorf("class %v cachable under nocache", c)
		}
	}
	if out := p.OnProc(Invalid, 0, EvRead); out.Action != ActRead || !out.NoAllocate {
		t.Fatalf("read = %+v", out)
	}
	if out := p.OnProc(Invalid, 0, EvWrite); out.Action != ActWrite || !out.NoAllocate {
		t.Fatalf("write = %+v", out)
	}
}

func TestRegistry(t *testing.T) {
	for _, k := range Kinds() {
		p := New(k)
		if p.Name() != k.String() {
			t.Errorf("New(%v).Name() = %q, want %q", k, p.Name(), k.String())
		}
		byName, err := ByName(k.String())
		if err != nil {
			t.Errorf("ByName(%q): %v", k.String(), err)
			continue
		}
		if byName.Name() != p.Name() {
			t.Errorf("ByName(%q) resolved to %q", k.String(), byName.Name())
		}
	}
	if _, err := ByName("mesi"); err == nil {
		t.Error("ByName of unknown protocol did not error")
	}
}

func TestStateStrings(t *testing.T) {
	letters := map[State]string{
		Invalid: "I", Readable: "R", Local: "L", FirstWrite: "F",
		NotPresent: "NP", Valid: "V", Reserved: "Rv", DirtyState: "D",
	}
	for s, want := range letters {
		if got := s.Letter(); got != want {
			t.Errorf("%v.Letter() = %q, want %q", s, got, want)
		}
		if s.String() == "" {
			t.Errorf("%v has empty String()", s)
		}
	}
	if State(200).Letter() == "" || State(200).String() == "" {
		t.Error("out-of-range state has empty representation")
	}
}

func TestEventAndActionStrings(t *testing.T) {
	if EvRead.String() != "CR" || EvWrite.String() != "CW" {
		t.Error("ProcEvent strings diverge from the figures' legend")
	}
	if ActRead.String() != "BR" || ActWrite.String() != "BW" || ActInv.String() != "BI" {
		t.Error("Action strings diverge from the figures' legend")
	}
	if ActNone.String() != "-" || ActReadThenWrite.String() != "BR+BW" {
		t.Error("auxiliary Action strings wrong")
	}
	if SnBusRead.String() != "BR" || SnReadData.String() != "BRdata" {
		t.Error("SnoopEvent strings wrong")
	}
	for _, c := range []Class{ClassUnknown, ClassCode, ClassLocal, ClassShared} {
		if c.String() == "" {
			t.Errorf("class %d has empty String()", c)
		}
	}
}

// TestProtocolsArePure: calling the same transition twice yields identical
// outcomes — the property the model checker relies on.
func TestProtocolsArePure(t *testing.T) {
	for _, k := range Kinds() {
		p := New(k)
		for _, s := range p.States() {
			for _, e := range []ProcEvent{EvRead, EvWrite} {
				a := p.OnProc(s, 1, e)
				b := p.OnProc(s, 1, e)
				if a != b {
					t.Errorf("%v: OnProc(%v,%v) not deterministic", k, s, e)
				}
			}
			for _, ev := range []SnoopEvent{SnBusRead, SnBusWrite, SnBusInv, SnReadData} {
				a := p.OnSnoop(s, 1, true, ev)
				b := p.OnSnoop(s, 1, true, ev)
				if a != b {
					t.Errorf("%v: OnSnoop(%v,%v) not deterministic", k, s, ev)
				}
			}
		}
	}
}

// TestOnlyOwnersInhibit: across all protocols, only states that can hold a
// value newer than memory inhibit bus reads.
func TestOnlyOwnersInhibit(t *testing.T) {
	ownerStates := map[string]map[State]bool{
		"rb":           {Local: true},
		"rwb":          {Local: true},
		"goodman":      {DirtyState: true},
		"writethrough": {},
		"cmstar":       {},
		"nocache":      {},
		"illinois":     {DirtyState: true},
		"rb-dirty":     {Local: true},
	}
	for _, k := range Kinds() {
		p := New(k)
		owners := ownerStates[p.Name()]
		for _, s := range p.States() {
			out := p.OnSnoop(s, 0, true, SnBusRead)
			if out.Inhibit != owners[s] {
				t.Errorf("%v: state %v inhibit = %v, want %v", k, s, out.Inhibit, owners[s])
			}
		}
	}
}

// TestLocalRMWOnlyForExclusiveLatestStates: a local Test-and-Set is legal
// only in states that are simultaneously exclusive and latest-valued.
func TestLocalRMWOnlyForExclusiveLatestStates(t *testing.T) {
	want := map[string]map[State]bool{
		"rb":           {Local: true},
		"rwb":          {Local: true},
		"goodman":      {Reserved: true, DirtyState: true},
		"writethrough": {},
		"cmstar":       {},
		"nocache":      {},
		"illinois":     {Reserved: true, DirtyState: true},
		"rb-dirty":     {Local: true},
	}
	for _, k := range Kinds() {
		p := New(k)
		for _, s := range p.States() {
			if got := p.LocalRMW(s); got != want[p.Name()][s] {
				t.Errorf("%v: LocalRMW(%v) = %v, want %v", k, s, got, want[p.Name()][s])
			}
		}
	}
}
