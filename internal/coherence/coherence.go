// Package coherence implements the paper's cache consistency schemes as
// pure state-transition tables: the RB scheme of Section 3 (Figure 3-1),
// the RWB scheme of Section 5 (Figure 5-1), and the comparison baselines —
// Goodman's write-once protocol [GOO83], a write-through-invalidate
// protocol, the Cm*-style cache used for Table 1-1 (code and local data
// cachable, write-through local data, shared data uncached), and a no-cache
// configuration.
//
// A Protocol is deliberately side-effect free: it maps (state, event) to an
// outcome and never touches a cache. The same tables therefore drive the
// cycle-level simulator (internal/cache, internal/machine), the transition
// diagram renderings of Figures 3-1 and 5-1 (internal/experiments), and the
// exhaustive product-machine consistency checker (internal/check) that
// mechanizes the Section 4 proof.
package coherence

import (
	"fmt"
	"sort"
)

// State is the tag attached to a cache address line. Each protocol uses a
// subset. The paper's states are Invalid (I), Readable (R), Local (L) and —
// for RWB — FirstWrite (F); the Goodman baseline uses Valid, Reserved and
// DirtyState.
type State uint8

const (
	// Invalid: "the data in the cache is assumed to be incorrect and thus
	// any reference to it will cause a corresponding bus action."
	Invalid State = iota
	// Readable: "the data in the cache is valid and consistent with main
	// memory, and can be read immediately from the cache."
	Readable
	// Local: "the data can be read or written locally causing no bus
	// activity." At most one cache holds a line in Local (the lemma of
	// Section 4); it holds the latest value and interrupts bus reads.
	Local
	// FirstWrite is the RWB scheme's intermediate state F: this cache
	// performed the most recent write, which was broadcast, so every other
	// interested cache is Readable with the same value.
	FirstWrite
	// NotPresent models an address whose line is absent from the cache
	// (the NP extension in the Section 4 product machine). The cache
	// layer, not the protocols, normally deals with allocation; NP appears
	// in protocol tables only through the model checker.
	NotPresent
	// Valid is the Goodman/write-through "clean, possibly shared" state.
	Valid
	// Reserved is Goodman's written-once state: memory is current and no
	// other cache holds a copy.
	Reserved
	// DirtyState is Goodman's written-many state: memory is stale and this
	// cache owns the only copy.
	DirtyState
	numStates
)

// Letter returns the single-letter tag used in the paper's figures.
func (s State) Letter() string {
	switch s {
	case Invalid:
		return "I"
	case Readable:
		return "R"
	case Local:
		return "L"
	case FirstWrite:
		return "F"
	case NotPresent:
		return "NP"
	case Valid:
		return "V"
	case Reserved:
		return "Rv"
	case DirtyState:
		return "D"
	}
	return fmt.Sprintf("S%d", uint8(s))
}

// String returns the descriptive name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case Readable:
		return "Readable"
	case Local:
		return "Local"
	case FirstWrite:
		return "FirstWrite"
	case NotPresent:
		return "NotPresent"
	case Valid:
		return "Valid"
	case Reserved:
		return "Reserved"
	case DirtyState:
		return "Dirty"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// ProcEvent is a processor-side access offered to the cache.
type ProcEvent uint8

const (
	// EvRead is a CPU read request (CR in the figures).
	EvRead ProcEvent = iota
	// EvWrite is a CPU write request (CW in the figures).
	EvWrite
)

func (e ProcEvent) String() string {
	if e == EvRead {
		return "CR"
	}
	return "CW"
}

// Class is the reference's data class. The paper's schemes are transparent
// and never consult it; only the Cm*-style baseline (whose emulation could
// not cache shared data, Table 1-1) and the workload statistics use it.
type Class uint8

const (
	ClassUnknown Class = iota
	ClassCode          // instruction fetch / read-only shared
	ClassLocal         // private data
	ClassShared        // read/write shared data
)

func (c Class) String() string {
	switch c {
	case ClassCode:
		return "code"
	case ClassLocal:
		return "local"
	case ClassShared:
		return "shared"
	default:
		return "unknown"
	}
}

// Action is the bus activity a transition requires.
type Action uint8

const (
	// ActNone: the access is satisfied entirely within the cache.
	ActNone Action = iota
	// ActRead: generate a bus read (modifier 3 in the figures).
	ActRead
	// ActWrite: generate a bus write, i.e. write through (modifier 1).
	ActWrite
	// ActInv: generate the RWB bus invalidate signal (modifier 4).
	ActInv
	// ActReadThenWrite: fetch the line with a bus read, then write it
	// through — Goodman's write-miss sequence.
	ActReadThenWrite
)

func (a Action) String() string {
	switch a {
	case ActNone:
		return "-"
	case ActRead:
		return "BR"
	case ActWrite:
		return "BW"
	case ActInv:
		return "BI"
	case ActReadThenWrite:
		return "BR+BW"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// DirtyEffect describes how a transition changes the line's dirty bit.
// Dirtiness matters only for the Local/Dirty states: a line becomes dirty
// exactly when it is written without bus activity, and the dirty bit gates
// the flush on a snooped locked (RMW) read.
type DirtyEffect uint8

const (
	DirtyKeep DirtyEffect = iota
	DirtySet
	DirtyClear
)

// ProcOutcome is the protocol's answer to a CPU access.
type ProcOutcome struct {
	Next    State  // state after the access (and its bus action) completes
	NextAux uint8  // protocol-private per-line counter (RWB write streak)
	Action  Action // required bus activity
	Dirty   DirtyEffect
	// NoAllocate marks a bus access whose result must not be cached: the
	// Cm*-style baseline's shared references and all no-cache traffic.
	NoAllocate bool
}

// SnoopEvent is a bus transaction observed by a non-issuing cache.
type SnoopEvent uint8

const (
	// SnBusRead: another cache issued a bus read for this address; the
	// outcome's Inhibit decides whether this cache kills and services it.
	SnBusRead SnoopEvent = iota
	// SnBusWrite: another cache performed a bus write (including the flush
	// writes that replace interrupted reads); the data is on the bus.
	SnBusWrite
	// SnBusInv: the RWB invalidate signal.
	SnBusInv
	// SnReadData: the data answering a bus read is on the bus — the
	// broadcast that the RB scheme exploits.
	SnReadData
)

func (e SnoopEvent) String() string {
	switch e {
	case SnBusRead:
		return "BR"
	case SnBusWrite:
		return "BW"
	case SnBusInv:
		return "BI"
	case SnReadData:
		return "BRdata"
	}
	return fmt.Sprintf("SnoopEvent(%d)", uint8(e))
}

// SnoopOutcome is the protocol's reaction to an observed transaction.
type SnoopOutcome struct {
	Next    State
	NextAux uint8
	// Inhibit (SnBusRead only): interrupt the read and supply the cached
	// value; the bus converts the slot into a write-through of that value
	// (modifier 2 in the figures).
	Inhibit bool
	// TakeData (SnBusWrite/SnReadData): adopt the broadcast value into the
	// cache line.
	TakeData bool
	Dirty    DirtyEffect
}

// Protocol is a cache consistency scheme expressed as transition tables.
// Implementations must be pure: identical arguments yield identical
// outcomes, with no retained state (per-line counters travel through aux).
type Protocol interface {
	// Name returns the scheme's short name ("rb", "rwb", ...).
	Name() string
	// States returns the states the scheme uses, in presentation order.
	States() []State
	// OnProc maps a CPU access against a line in (s, aux) to an outcome.
	OnProc(s State, aux uint8, e ProcEvent) ProcOutcome
	// OnSnoop maps an observed bus transaction against a line in
	// (s, aux, dirty) to a reaction. It is never invoked for transactions
	// the line's own cache issued.
	OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome
	// RMWFlush decides whether a line must flush its value so a locked
	// (Test-and-Set) read observes the latest value, and the line's state
	// afterwards. Unlike SnBusRead this is non-cachable: clean owners keep
	// their state (Figures 6-1/6-2 keep the spinning caches unchanged).
	RMWFlush(s State, dirty bool) (flush bool, next State, d DirtyEffect)
	// RMWSuccess maps the issuer's line state across a successful
	// Test-and-Set; broadcast is the transaction's write-part op as seen
	// by the other caches (ActWrite or ActInv).
	RMWSuccess(s State, aux uint8) (next State, nextAux uint8, broadcast Action)
	// LocalRMW reports whether a Test-and-Set may complete entirely within
	// a cache holding the line in state s: true only for states that are
	// exclusive (no other copy exists) and hold the latest value, making
	// the in-cache RMW globally atomic without a bus transaction.
	LocalRMW(s State) bool
	// Cachable reports whether references of the given class may be
	// cached. The paper's schemes always return true (transparency);
	// the Cm* and no-cache baselines do not.
	Cachable(c Class, e ProcEvent) bool
	// WritebackOnEvict reports whether a line in state s (with the given
	// dirty bit) must be written back to memory when its frame is reused
	// ("Only those overwritten items that are tagged local need to be
	// written back"). The paper's schemes ignore the dirty bit — they
	// have no such tag — which is exactly what the rb-dirty variant's
	// ablation quantifies.
	WritebackOnEvict(s State, dirty bool) bool
}

// Kind identifies a protocol implementation.
type Kind uint8

const (
	// KindRB is the paper's RB (read-broadcast) scheme, Section 3.
	KindRB Kind = iota
	// KindRWB is the paper's RWB (read-write-broadcast) scheme, Section 5.
	KindRWB
	// KindGoodman is Goodman's write-once scheme [GOO83], the design the
	// paper extends ("event broadcasting" only).
	KindGoodman
	// KindWriteThrough is a write-through-invalidate baseline.
	KindWriteThrough
	// KindCmStar emulates the Cm* measurement setup of Table 1-1.
	KindCmStar
	// KindNoCache sends every reference to the bus.
	KindNoCache
	// KindIllinois is the Illinois/MESI-style protocol (Papamarcos &
	// Patel, ISCA 1984) with a clean-exclusive state.
	KindIllinois
	// KindRBDirty is RB with a dirty bit consulted at eviction.
	KindRBDirty
	numKinds
)

// Kinds returns all protocol kinds in presentation order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

func (k Kind) String() string {
	switch k {
	case KindRB:
		return "rb"
	case KindRWB:
		return "rwb"
	case KindGoodman:
		return "goodman"
	case KindWriteThrough:
		return "writethrough"
	case KindCmStar:
		return "cmstar"
	case KindNoCache:
		return "nocache"
	case KindIllinois:
		return "illinois"
	case KindRBDirty:
		return "rb-dirty"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// New returns a fresh protocol of the given kind with default parameters
// (RWB uses the paper's k=2 write threshold).
func New(k Kind) Protocol {
	switch k {
	case KindRB:
		return RB{}
	case KindRWB:
		return NewRWB(2)
	case KindGoodman:
		return Goodman{}
	case KindWriteThrough:
		return WriteThrough{}
	case KindCmStar:
		return CmStar{}
	case KindNoCache:
		return NoCache{}
	case KindIllinois:
		return Illinois{}
	case KindRBDirty:
		return RBDirtyEvict{}
	}
	panic(fmt.Sprintf("coherence: unknown kind %d", k))
}

// ByName resolves a protocol by its Name. It returns an error listing the
// valid names on failure.
func ByName(name string) (Protocol, error) {
	for _, k := range Kinds() {
		p := New(k)
		if p.Name() == name {
			return p, nil
		}
	}
	names := make([]string, 0, int(numKinds))
	for _, k := range Kinds() {
		names = append(names, k.String())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("coherence: unknown protocol %q (valid: %v)", name, names)
}
