package coherence

import "fmt"

// WriteThrough is the classic write-through-with-invalidate baseline: every
// write goes to the bus and memory, every other copy is invalidated, and a
// cache never gains information from transactions it merely observes
// (beyond the invalidation itself). It bounds the paper's schemes from
// below: correct, simple, and maximally bus-hungry for write-heavy and
// lock-heavy workloads.
//
// States: Invalid and Valid. Writes do not allocate (a write miss updates
// memory without installing the line), the common choice for write-through
// caches of the period.
type WriteThrough struct{}

// Name implements Protocol.
func (WriteThrough) Name() string { return "writethrough" }

// States implements Protocol.
func (WriteThrough) States() []State { return []State{Invalid, Valid} }

// OnProc implements Protocol.
func (WriteThrough) OnProc(s State, aux uint8, e ProcEvent) ProcOutcome {
	switch s {
	case Invalid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActRead, Dirty: DirtyClear}
		}
		// Write miss: write through without allocating.
		return ProcOutcome{Next: Invalid, Action: ActWrite, NoAllocate: true}
	case Valid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActNone}
		}
		// Write hit: update the copy and write through.
		return ProcOutcome{Next: Valid, Action: ActWrite, Dirty: DirtyClear}
	default:
		panic(fmt.Sprintf("writethrough: OnProc from foreign state %v", s))
	}
}

// OnSnoop implements Protocol.
func (WriteThrough) OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome {
	switch s {
	case Invalid:
		return SnoopOutcome{Next: Invalid}
	case Valid:
		switch ev {
		case SnBusRead, SnReadData, SnBusInv:
			return SnoopOutcome{Next: Valid}
		case SnBusWrite:
			return SnoopOutcome{Next: Invalid}
		}
	default:
		panic(fmt.Sprintf("writethrough: OnSnoop from foreign state %v", s))
	}
	panic(fmt.Sprintf("writethrough: OnSnoop(%v) missed event %v", s, ev))
}

// RMWFlush implements Protocol: memory is always current under pure
// write-through, so nothing ever flushes.
func (WriteThrough) RMWFlush(s State, dirty bool) (bool, State, DirtyEffect) {
	return false, s, DirtyKeep
}

// RMWSuccess implements Protocol: the set is an ordinary write-through; a
// Valid issuer keeps its (updated) copy, an Invalid issuer stays Invalid.
func (WriteThrough) RMWSuccess(s State, aux uint8) (State, uint8, Action) {
	if s == Valid {
		return Valid, 0, ActWrite
	}
	return Invalid, 0, ActWrite
}

// Cachable implements Protocol.
func (WriteThrough) Cachable(c Class, e ProcEvent) bool { return true }

// WritebackOnEvict implements Protocol: memory is always current.
func (WriteThrough) WritebackOnEvict(s State, dirty bool) bool { return false }

// LocalRMW implements Protocol: Valid lines may be shared, so Test-and-Set
// always takes the bus.
func (WriteThrough) LocalRMW(s State) bool { return false }
