package coherence

import "fmt"

// CmStar emulates the cache configuration of the paper's motivating
// measurements (Table 1-1, from Raskin's Cm* experiments): "only code and
// local data were considered cachable and a write-through policy was
// adopted for local data. Thus writes to local data were counted as cache
// misses since they caused communication external to the processor/cache.
// All references to shared (non-code) data also caused a cache miss."
//
// Unlike the paper's schemes, this baseline is not transparent: it needs
// the reference's class (which the Cm* experiments knew statically) to
// decide cachability. There is no coherence problem to solve — shared data
// never enters the cache — so snooping is a no-op.
type CmStar struct{}

// Name implements Protocol.
func (CmStar) Name() string { return "cmstar" }

// States implements Protocol.
func (CmStar) States() []State { return []State{Invalid, Valid} }

// OnProc implements Protocol. Class-dependent behavior is expressed via
// Cachable: the cache layer only consults OnProc for cachable references,
// and issues uncached bus traffic for the rest.
func (CmStar) OnProc(s State, aux uint8, e ProcEvent) ProcOutcome {
	switch s {
	case Invalid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActRead, Dirty: DirtyClear}
		}
		// Local-data write miss: write through, no allocate.
		return ProcOutcome{Next: Invalid, Action: ActWrite, NoAllocate: true}
	case Valid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActNone}
		}
		// Local-data write hit: update the copy and write through — still
		// external communication, hence a "miss" in Table 1-1's counting.
		return ProcOutcome{Next: Valid, Action: ActWrite, Dirty: DirtyClear}
	default:
		panic(fmt.Sprintf("cmstar: OnProc from foreign state %v", s))
	}
}

// OnSnoop implements Protocol: Cm* caches hold only code and private data,
// so observed bus traffic never concerns a cached line; nothing reacts.
func (CmStar) OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome {
	switch s {
	case Invalid:
		return SnoopOutcome{Next: Invalid}
	case Valid:
		return SnoopOutcome{Next: Valid}
	default:
		panic(fmt.Sprintf("cmstar: OnSnoop from foreign state %v", s))
	}
}

// RMWFlush implements Protocol: shared data is never cached, so a locked
// read always finds memory current.
func (CmStar) RMWFlush(s State, dirty bool) (bool, State, DirtyEffect) {
	return false, s, DirtyKeep
}

// RMWSuccess implements Protocol: Test-and-Set targets shared data, which
// stays out of the cache.
func (CmStar) RMWSuccess(s State, aux uint8) (State, uint8, Action) {
	return Invalid, 0, ActWrite
}

// Cachable implements Protocol: only code and local data enter the cache.
func (CmStar) Cachable(c Class, e ProcEvent) bool {
	switch c {
	case ClassCode, ClassLocal:
		return true
	default:
		// Shared and unclassified references bypass the cache entirely.
		return false
	}
}

// WritebackOnEvict implements Protocol: write-through keeps memory current.
func (CmStar) WritebackOnEvict(s State, dirty bool) bool { return false }

// LocalRMW implements Protocol: shared data is never cached.
func (CmStar) LocalRMW(s State) bool { return false }
