package coherence

import "fmt"

// Illinois implements the Illinois/MESI-style protocol of Papamarcos &
// Patel, published at the same ISCA as this paper (1984) — the natural
// contemporaneous comparison point. It refines Goodman's write-once with
// a clean-exclusive state: a read miss installs Exclusive when the bus's
// shared line is quiet (no other cache held a copy), so a subsequent write
// needs no bus transaction at all.
//
// State mapping onto this package's State set: Invalid, Valid = Shared,
// Reserved = Exclusive (clean), DirtyState = Modified.
//
// Like Goodman — and unlike the paper's schemes — it is event-broadcast
// only: observed transactions never deliver usable data.
type Illinois struct{}

// Name implements Protocol.
func (Illinois) Name() string { return "illinois" }

// States implements Protocol.
func (Illinois) States() []State { return []State{Invalid, Valid, Reserved, DirtyState} }

// OnProc implements Protocol. The Invalid read miss defers its target
// state to ReadMissTarget (the shared-line decision); OnProc reports the
// conservative Shared target for callers without bus feedback (the model
// checker explores both via ReadMissTarget).
func (Illinois) OnProc(s State, aux uint8, e ProcEvent) ProcOutcome {
	switch s {
	case Invalid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActRead, Dirty: DirtyClear}
		}
		// Write miss: fetch then write through once, claiming the line.
		return ProcOutcome{Next: Reserved, Action: ActReadThenWrite, Dirty: DirtyClear}
	case Valid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActNone}
		}
		// Shared write: invalidate the other copies via a write-through.
		return ProcOutcome{Next: Reserved, Action: ActWrite, Dirty: DirtyClear}
	case Reserved:
		if e == EvRead {
			return ProcOutcome{Next: Reserved, Action: ActNone}
		}
		// The Illinois payoff: writing a clean-exclusive line is free.
		return ProcOutcome{Next: DirtyState, Action: ActNone, Dirty: DirtySet}
	case DirtyState:
		if e == EvRead {
			return ProcOutcome{Next: DirtyState, Action: ActNone}
		}
		return ProcOutcome{Next: DirtyState, Action: ActNone, Dirty: DirtySet}
	default:
		panic(fmt.Sprintf("illinois: OnProc from foreign state %v", s))
	}
}

// ReadMissTarget implements SharedAware: a read miss installs Exclusive
// when no other cache held a copy, Shared otherwise.
func (Illinois) ReadMissTarget(sharedLine bool) State {
	if sharedLine {
		return Valid
	}
	return Reserved
}

// OnSnoop implements Protocol.
func (Illinois) OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome {
	switch s {
	case Invalid:
		return SnoopOutcome{Next: Invalid}
	case Valid:
		switch ev {
		case SnBusRead, SnReadData, SnBusInv:
			return SnoopOutcome{Next: Valid}
		case SnBusWrite:
			return SnoopOutcome{Next: Invalid}
		}
	case Reserved:
		switch ev {
		case SnBusRead:
			// Exclusivity lost; memory is current, no flush needed.
			return SnoopOutcome{Next: Valid}
		case SnReadData, SnBusInv:
			return SnoopOutcome{Next: Reserved}
		case SnBusWrite:
			return SnoopOutcome{Next: Invalid}
		}
	case DirtyState:
		switch ev {
		case SnBusRead:
			// Supply the line (write it back in the read's slot), demote.
			return SnoopOutcome{Next: Valid, Inhibit: true, Dirty: DirtyClear}
		case SnReadData, SnBusInv:
			return SnoopOutcome{Next: DirtyState}
		case SnBusWrite:
			return SnoopOutcome{Next: Invalid, Dirty: DirtyClear}
		}
	default:
		panic(fmt.Sprintf("illinois: OnSnoop from foreign state %v", s))
	}
	panic(fmt.Sprintf("illinois: OnSnoop(%v) missed event %v", s, ev))
}

// RMWFlush implements Protocol: only Modified lines hold values memory
// lacks; flushing leaves the line clean-exclusive.
func (Illinois) RMWFlush(s State, dirty bool) (bool, State, DirtyEffect) {
	if s == DirtyState {
		return true, Reserved, DirtyClear
	}
	return false, s, DirtyKeep
}

// RMWSuccess implements Protocol.
func (Illinois) RMWSuccess(s State, aux uint8) (State, uint8, Action) {
	return Reserved, 0, ActWrite
}

// LocalRMW implements Protocol: Exclusive and Modified lines are the sole
// copies, so Test-and-Set completes in the cache.
func (Illinois) LocalRMW(s State) bool { return s == Reserved || s == DirtyState }

// Cachable implements Protocol.
func (Illinois) Cachable(c Class, e ProcEvent) bool { return true }

// WritebackOnEvict implements Protocol.
func (Illinois) WritebackOnEvict(s State, dirty bool) bool { return s == DirtyState }

// SharedAware is the optional Protocol extension for schemes whose read
// miss consults the bus's shared line (Illinois/MESI family). The cache
// layer uses ReadMissTarget instead of OnProc's read-miss Next when the
// protocol implements it.
type SharedAware interface {
	ReadMissTarget(sharedLine bool) State
}
