package coherence

import "testing"

func TestIllinoisReadMissTarget(t *testing.T) {
	p := Illinois{}
	if got := p.ReadMissTarget(false); got != Reserved {
		t.Errorf("quiet shared line -> %v, want Exclusive (Reserved)", got)
	}
	if got := p.ReadMissTarget(true); got != Valid {
		t.Errorf("asserted shared line -> %v, want Shared (Valid)", got)
	}
}

// TestIllinoisSilentUpgrade is the protocol's defining transition: writing
// a clean-exclusive line takes no bus transaction.
func TestIllinoisSilentUpgrade(t *testing.T) {
	p := Illinois{}
	out := p.OnProc(Reserved, 0, EvWrite)
	if out.Action != ActNone || out.Next != DirtyState || out.Dirty != DirtySet {
		t.Fatalf("E+write = %+v, want silent upgrade to Modified", out)
	}
	// Contrast with Goodman, which writes through from its Reserved too —
	// but only reaches Reserved via a bus write; Illinois reaches
	// Exclusive on a quiet read miss.
	if g := (Goodman{}).OnProc(Valid, 0, EvWrite); g.Action != ActWrite {
		t.Fatalf("goodman shared write = %+v", g)
	}
}

func TestIllinoisSnoopMatrix(t *testing.T) {
	p := Illinois{}
	cases := []struct {
		s       State
		ev      SnoopEvent
		next    State
		inhibit bool
	}{
		{Valid, SnBusRead, Valid, false},
		{Valid, SnBusWrite, Invalid, false},
		{Reserved, SnBusRead, Valid, false}, // exclusivity lost, no flush
		{Reserved, SnBusWrite, Invalid, false},
		{DirtyState, SnBusRead, Valid, true}, // supply and demote
		{DirtyState, SnBusWrite, Invalid, false},
		{Invalid, SnReadData, Invalid, false}, // event-broadcast only
	}
	for _, c := range cases {
		got := p.OnSnoop(c.s, 0, c.s == DirtyState, c.ev)
		if got.Next != c.next || got.Inhibit != c.inhibit {
			t.Errorf("OnSnoop(%v, %v) = (%v, %v), want (%v, %v)",
				c.s, c.ev, got.Next, got.Inhibit, c.next, c.inhibit)
		}
		if got.TakeData {
			t.Errorf("illinois %v+%v took broadcast data", c.s, c.ev)
		}
	}
}

func TestIllinoisRMW(t *testing.T) {
	p := Illinois{}
	if flush, next, _ := p.RMWFlush(DirtyState, true); !flush || next != Reserved {
		t.Error("Modified must flush for a locked read, leaving clean-exclusive")
	}
	if flush, _, _ := p.RMWFlush(Reserved, false); flush {
		t.Error("Exclusive flushed (memory is current)")
	}
	if !p.LocalRMW(Reserved) || !p.LocalRMW(DirtyState) || p.LocalRMW(Valid) {
		t.Error("LocalRMW states wrong")
	}
	if next, _, bc := p.RMWSuccess(Valid, 0); next != Reserved || bc != ActWrite {
		t.Error("RMW success wrong")
	}
}

func TestIllinoisEvictionAndTransparency(t *testing.T) {
	p := Illinois{}
	if !p.WritebackOnEvict(DirtyState, true) || p.WritebackOnEvict(Reserved, false) || p.WritebackOnEvict(Valid, false) {
		t.Error("writeback policy wrong")
	}
	for _, c := range []Class{ClassUnknown, ClassCode, ClassLocal, ClassShared} {
		if !p.Cachable(c, EvRead) {
			t.Errorf("class %v not cachable", c)
		}
	}
	if p.Name() != "illinois" || len(p.States()) != 4 {
		t.Error("identity wrong")
	}
}

func TestIllinoisForeignStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign state did not panic")
		}
	}()
	Illinois{}.OnProc(Local, 0, EvRead)
}
