package coherence

import "testing"

// TestRBTransitionDiagram encodes Figure 3-1 transition by transition:
// every (state, CPU event) pair and every (state, bus event) pair, with the
// modifier actions (1 = generate BW, 2 = interrupt BR and supply data,
// 3 = generate BR).
func TestRBTransitionDiagram(t *testing.T) {
	p := RB{}

	procCases := []struct {
		s      State
		e      ProcEvent
		next   State
		action Action
	}{
		// Invalid: CR -> R with BR (modifier 3); CW -> L with BW (modifier 1).
		{Invalid, EvRead, Readable, ActRead},
		{Invalid, EvWrite, Local, ActWrite},
		// Readable: CR hits; CW -> L with BW.
		{Readable, EvRead, Readable, ActNone},
		{Readable, EvWrite, Local, ActWrite},
		// Local: both hit with no bus activity.
		{Local, EvRead, Local, ActNone},
		{Local, EvWrite, Local, ActNone},
	}
	for _, c := range procCases {
		got := p.OnProc(c.s, 0, c.e)
		if got.Next != c.next || got.Action != c.action {
			t.Errorf("OnProc(%v, %v) = (%v, %v), want (%v, %v)",
				c.s, c.e, got.Next, got.Action, c.next, c.action)
		}
	}

	snoopCases := []struct {
		s       State
		ev      SnoopEvent
		next    State
		inhibit bool
		take    bool
	}{
		// Invalid: BW has no effect; read data is broadcast-taken -> R.
		{Invalid, SnBusRead, Invalid, false, false},
		{Invalid, SnBusWrite, Invalid, false, false},
		{Invalid, SnReadData, Readable, false, true},
		// Readable: BR no effect; BW invalidates.
		{Readable, SnBusRead, Readable, false, false},
		{Readable, SnBusWrite, Invalid, false, false},
		{Readable, SnReadData, Readable, false, false},
		// Local: BR is interrupted and serviced (modifier 2), -> R;
		// BW invalidates.
		{Local, SnBusRead, Readable, true, false},
		{Local, SnBusWrite, Invalid, false, false},
		{Local, SnReadData, Local, false, false},
	}
	for _, c := range snoopCases {
		got := p.OnSnoop(c.s, 0, true, c.ev)
		if got.Next != c.next || got.Inhibit != c.inhibit || got.TakeData != c.take {
			t.Errorf("OnSnoop(%v, %v) = (%v, inhibit=%v, take=%v), want (%v, %v, %v)",
				c.s, c.ev, got.Next, got.Inhibit, got.TakeData, c.next, c.inhibit, c.take)
		}
	}
}

// TestRBWriteIsWriteThrough verifies that every transition into Local via a
// bus write leaves the line clean (memory just got the value), while a
// local write in L dirties it — the invariant behind the RMW flush rule.
func TestRBWriteIsWriteThrough(t *testing.T) {
	p := RB{}
	for _, s := range []State{Invalid, Readable} {
		out := p.OnProc(s, 0, EvWrite)
		if out.Dirty != DirtyClear {
			t.Errorf("write from %v should leave the line clean, got %v", s, out.Dirty)
		}
	}
	if out := p.OnProc(Local, 0, EvWrite); out.Dirty != DirtySet {
		t.Errorf("local write in L should dirty the line, got %v", out.Dirty)
	}
}

// TestRBLocalFlushClearsDirty: after servicing a bus read, the former owner
// is Readable and clean.
func TestRBLocalFlushClearsDirty(t *testing.T) {
	out := RB{}.OnSnoop(Local, 0, true, SnBusRead)
	if !out.Inhibit || out.Next != Readable || out.Dirty != DirtyClear {
		t.Fatalf("L+BR snoop = %+v, want inhibit -> Readable clean", out)
	}
}

func TestRBRMWFlushOnlyWhenDirty(t *testing.T) {
	p := RB{}
	if flush, next, d := p.RMWFlush(Local, true); !flush || next != Local || d != DirtyClear {
		t.Errorf("dirty Local must flush for a locked read and stay Local; got flush=%v next=%v dirty=%v", flush, next, d)
	}
	if flush, _, _ := p.RMWFlush(Local, false); flush {
		t.Error("clean Local must not flush for a locked read (Figure 6-1 keeps P2 in L)")
	}
	for _, s := range []State{Invalid, Readable} {
		if flush, _, _ := p.RMWFlush(s, true); flush {
			t.Errorf("state %v must never flush", s)
		}
	}
}

func TestRBRMWSuccessMakesLocal(t *testing.T) {
	next, _, bc := RB{}.RMWSuccess(Readable, 0)
	if next != Local || bc != ActWrite {
		t.Fatalf("RMW success = (%v, %v), want (Local, BW)", next, bc)
	}
}

func TestRBEvictionPolicy(t *testing.T) {
	p := RB{}
	if !p.WritebackOnEvict(Local, false) {
		t.Error("Local lines must be written back on eviction, even clean")
	}
	for _, s := range []State{Invalid, Readable} {
		if p.WritebackOnEvict(s, true) {
			t.Errorf("state %v must not be written back", s)
		}
	}
}

func TestRBTransparent(t *testing.T) {
	p := RB{}
	for _, c := range []Class{ClassUnknown, ClassCode, ClassLocal, ClassShared} {
		for _, e := range []ProcEvent{EvRead, EvWrite} {
			if !p.Cachable(c, e) {
				t.Errorf("RB must cache %v %v references (transparency)", c, e)
			}
		}
	}
}

func TestRBStatesAndName(t *testing.T) {
	p := RB{}
	if p.Name() != "rb" {
		t.Errorf("Name() = %q", p.Name())
	}
	want := []State{Invalid, Readable, Local}
	got := p.States()
	if len(got) != len(want) {
		t.Fatalf("States() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("States() = %v, want %v", got, want)
		}
	}
}

func TestRBForeignStatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OnProc from a Goodman state did not panic")
		}
	}()
	RB{}.OnProc(Reserved, 0, EvRead)
}

func TestRBDirtyEvictVariant(t *testing.T) {
	p := RBDirtyEvict{}
	if p.Name() != "rb-dirty" {
		t.Fatalf("Name() = %q", p.Name())
	}
	// Clean Local lines drop silently; dirty ones write back.
	if p.WritebackOnEvict(Local, false) {
		t.Error("clean Local written back under rb-dirty")
	}
	if !p.WritebackOnEvict(Local, true) {
		t.Error("dirty Local not written back")
	}
	// Every other behavior is inherited from RB verbatim.
	if out := p.OnProc(Readable, 0, EvWrite); out.Next != Local || out.Action != ActWrite {
		t.Errorf("inherited transition diverged: %+v", out)
	}
}
