// Fuzzing lives in the external test package so it can borrow the
// outcome-sanity rules from internal/lint (which imports coherence):
// the fuzzer and the static table audit enforce the same invariants,
// one over random probes, one over exhaustive enumeration.
package coherence_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/lint"
)

// FuzzProtocolStep drives every protocol hook of a fuzzer-chosen kind
// with a fuzzer-chosen (state, event, aux, dirty) probe and asserts the
// two properties the simulator assumes on every step: no table hole
// panics, and the outcome passes the shared sanity rules. States and
// events are folded into the protocol's declared domain, so every run
// lands on a meaningful table row rather than rejecting most inputs.
func FuzzProtocolStep(f *testing.F) {
	kinds := coherence.Kinds()
	// Seed one probe per protocol plus the interesting corners: the RWB
	// threshold region (aux 1..2), a snooped write against a dirty line,
	// and saturated aux.
	for i := range kinds {
		f.Add(uint8(i), uint8(0), uint8(0), uint8(0), false)
	}
	f.Add(uint8(1), uint8(2), uint8(1), uint8(1), false) // rwb near threshold
	f.Add(uint8(0), uint8(2), uint8(1), uint8(0), true)  // rb Local, dirty, snoop write
	f.Add(uint8(6), uint8(3), uint8(1), uint8(255), true)

	f.Fuzz(func(t *testing.T, kindSel, stateSel, evSel, aux uint8, dirty bool) {
		p := coherence.New(kinds[int(kindSel)%len(kinds)])
		states := p.States()
		if len(states) == 0 {
			t.Fatalf("%s declares no states", p.Name())
		}
		s := states[int(stateSel)%len(states)]
		declared := map[coherence.State]bool{}
		for _, d := range states {
			declared[d] = true
		}

		step := func(desc string, fn func()) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: %s panics: %v", p.Name(), desc, r)
				}
			}()
			fn()
		}

		pe := coherence.ProcEvent(evSel % 2)
		step("OnProc", func() {
			out := p.OnProc(s, aux, pe)
			if !declared[out.Next] {
				t.Errorf("%s: OnProc(%v, aux=%d, %v) targets undeclared state %v", p.Name(), s, aux, pe, out.Next)
			}
			for _, v := range lint.CheckProcOutcome(s, pe, out) {
				t.Errorf("%s: OnProc(%v, aux=%d, %v): %s", p.Name(), s, aux, pe, v)
			}
		})

		se := coherence.SnoopEvent(evSel % 4)
		step("OnSnoop", func() {
			out := p.OnSnoop(s, aux, dirty, se)
			if !declared[out.Next] {
				t.Errorf("%s: OnSnoop(%v, aux=%d, dirty=%v, %v) targets undeclared state %v", p.Name(), s, aux, dirty, se, out.Next)
			}
			for _, v := range lint.CheckSnoopOutcome(s, se, out) {
				t.Errorf("%s: OnSnoop(%v, aux=%d, dirty=%v, %v): %s", p.Name(), s, aux, dirty, se, v)
			}
		})

		step("RMWFlush", func() {
			flush, next, _ := p.RMWFlush(s, dirty)
			if !declared[next] {
				t.Errorf("%s: RMWFlush(%v, dirty=%v) targets undeclared state %v", p.Name(), s, dirty, next)
			}
			if !flush && next != s {
				t.Errorf("%s: RMWFlush(%v, dirty=%v) changes state to %v without flushing", p.Name(), s, dirty, next)
			}
		})

		step("RMWSuccess", func() {
			next, _, bcast := p.RMWSuccess(s, aux)
			if !declared[next] {
				t.Errorf("%s: RMWSuccess(%v, aux=%d) targets undeclared state %v", p.Name(), s, aux, next)
			}
			if bcast != coherence.ActWrite && bcast != coherence.ActInv {
				t.Errorf("%s: RMWSuccess(%v, aux=%d) broadcasts %v; the locked write part must be BW or BI", p.Name(), s, aux, bcast)
			}
		})

		step("LocalRMW", func() { p.LocalRMW(s) })
		step("WritebackOnEvict", func() { p.WritebackOnEvict(s, dirty) })
		c := coherence.Class(evSel % 4)
		step("Cachable", func() { p.Cachable(c, pe) })
		if sa, ok := p.(coherence.SharedAware); ok {
			step("ReadMissTarget", func() {
				if next := sa.ReadMissTarget(dirty); !declared[next] {
					t.Errorf("%s: ReadMissTarget(%v) targets undeclared state %v", p.Name(), dirty, next)
				}
			})
		}
	})
}
