package coherence

// NoCache sends every reference to the bus: the configuration a
// shared-memory machine has before any of the paper's machinery is added,
// and the denominator for all bus-traffic comparisons (Section 7's
// bandwidth arithmetic with a miss ratio of 1).
type NoCache struct{}

// Name implements Protocol.
func (NoCache) Name() string { return "nocache" }

// States implements Protocol.
func (NoCache) States() []State { return []State{Invalid} }

// OnProc implements Protocol: every access is an uncached bus transaction.
func (NoCache) OnProc(s State, aux uint8, e ProcEvent) ProcOutcome {
	if e == EvRead {
		return ProcOutcome{Next: Invalid, Action: ActRead, NoAllocate: true}
	}
	return ProcOutcome{Next: Invalid, Action: ActWrite, NoAllocate: true}
}

// OnSnoop implements Protocol: nothing is cached, nothing reacts.
func (NoCache) OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome {
	return SnoopOutcome{Next: Invalid}
}

// RMWFlush implements Protocol.
func (NoCache) RMWFlush(s State, dirty bool) (bool, State, DirtyEffect) {
	return false, s, DirtyKeep
}

// RMWSuccess implements Protocol.
func (NoCache) RMWSuccess(s State, aux uint8) (State, uint8, Action) {
	return Invalid, 0, ActWrite
}

// Cachable implements Protocol: nothing is.
func (NoCache) Cachable(c Class, e ProcEvent) bool { return false }

// WritebackOnEvict implements Protocol.
func (NoCache) WritebackOnEvict(s State, dirty bool) bool { return false }

// LocalRMW implements Protocol.
func (NoCache) LocalRMW(s State) bool { return false }
