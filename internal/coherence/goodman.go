package coherence

import "fmt"

// Goodman implements the write-once scheme of [GOO83] ("Using Cache Memory
// to Reduce Processor-Memory Traffic"), the design the paper's schemes
// extend. The paper classifies it as "event broadcasting": caches note the
// occurrence of bus reads and writes but never the data, so — unlike RB —
// an Invalid copy cannot be refreshed by someone else's bus read, and —
// unlike RWB — a bus write always invalidates rather than updates.
//
// States: Invalid, Valid (clean, possibly shared), Reserved (written
// exactly once since fetched; memory current; no other copies), DirtyState
// (written more than once; memory stale; sole copy).
type Goodman struct{}

// Name implements Protocol.
func (Goodman) Name() string { return "goodman" }

// States implements Protocol.
func (Goodman) States() []State { return []State{Invalid, Valid, Reserved, DirtyState} }

// OnProc implements Protocol.
func (Goodman) OnProc(s State, aux uint8, e ProcEvent) ProcOutcome {
	switch s {
	case Invalid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActRead, Dirty: DirtyClear}
		}
		// Write miss: fetch the line, then write through once (the
		// "write-once" that gives the scheme its name).
		return ProcOutcome{Next: Reserved, Action: ActReadThenWrite, Dirty: DirtyClear}
	case Valid:
		if e == EvRead {
			return ProcOutcome{Next: Valid, Action: ActNone}
		}
		// First write: write through, invalidating all other copies, and
		// reserve the line.
		return ProcOutcome{Next: Reserved, Action: ActWrite, Dirty: DirtyClear}
	case Reserved:
		if e == EvRead {
			return ProcOutcome{Next: Reserved, Action: ActNone}
		}
		// Second write: purely local; memory is now stale.
		return ProcOutcome{Next: DirtyState, Action: ActNone, Dirty: DirtySet}
	case DirtyState:
		if e == EvRead {
			return ProcOutcome{Next: DirtyState, Action: ActNone}
		}
		return ProcOutcome{Next: DirtyState, Action: ActNone, Dirty: DirtySet}
	default:
		panic(fmt.Sprintf("goodman: OnProc from foreign state %v", s))
	}
}

// OnSnoop implements Protocol. Note the two deliberate non-reactions that
// distinguish event broadcasting from the paper's data broadcasting:
// Invalid ignores SnReadData, and every holder of a copy is invalidated
// (never updated) by a bus write.
func (Goodman) OnSnoop(s State, aux uint8, dirty bool, ev SnoopEvent) SnoopOutcome {
	switch s {
	case Invalid:
		return SnoopOutcome{Next: Invalid}
	case Valid:
		switch ev {
		case SnBusRead, SnReadData, SnBusInv:
			return SnoopOutcome{Next: Valid}
		case SnBusWrite:
			return SnoopOutcome{Next: Invalid}
		}
	case Reserved:
		switch ev {
		case SnBusRead:
			// Another cache fetches the line; memory is current, so no
			// inhibit is needed, but exclusivity is lost.
			return SnoopOutcome{Next: Valid}
		case SnReadData, SnBusInv:
			return SnoopOutcome{Next: Reserved}
		case SnBusWrite:
			return SnoopOutcome{Next: Invalid}
		}
	case DirtyState:
		switch ev {
		case SnBusRead:
			// Memory is stale: interrupt the read, supply the value (the
			// bus writes it through), and demote to Valid.
			return SnoopOutcome{Next: Valid, Inhibit: true, Dirty: DirtyClear}
		case SnReadData, SnBusInv:
			return SnoopOutcome{Next: DirtyState}
		case SnBusWrite:
			return SnoopOutcome{Next: Invalid, Dirty: DirtyClear}
		}
	default:
		panic(fmt.Sprintf("goodman: OnSnoop from foreign state %v", s))
	}
	panic(fmt.Sprintf("goodman: OnSnoop(%v) missed event %v", s, ev))
}

// RMWFlush implements Protocol: DirtyState is by definition dirty; flushing
// for a locked read brings memory current, leaving the line effectively
// Reserved (sole copy, memory current).
func (Goodman) RMWFlush(s State, dirty bool) (bool, State, DirtyEffect) {
	if s == DirtyState {
		return true, Reserved, DirtyClear
	}
	return false, s, DirtyKeep
}

// RMWSuccess implements Protocol: the successful set is a write-through, so
// the issuer holds a written-once line.
func (Goodman) RMWSuccess(s State, aux uint8) (State, uint8, Action) {
	return Reserved, 0, ActWrite
}

// Cachable implements Protocol: write-once is transparent.
func (Goodman) Cachable(c Class, e ProcEvent) bool { return true }

// WritebackOnEvict implements Protocol: only DirtyState lines have values
// absent from memory.
func (Goodman) WritebackOnEvict(s State, dirty bool) bool { return s == DirtyState }

// LocalRMW implements Protocol: Reserved and Dirty lines are exclusive (no
// other cache holds a copy), so a Test-and-Set completes in the cache.
func (Goodman) LocalRMW(s State) bool { return s == Reserved || s == DirtyState }
