package hier

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
)

// clusterLine is one entry of the inclusive cluster cache. The cluster
// level never holds dirty data (the L1s are write-through), so a line is
// either absent or a current copy of memory.
type clusterLine struct {
	valid bool
	addr  bus.Addr
	data  bus.Word
}

// globalOp identifies a global-bus transaction owed or completed.
type globalOp struct {
	op   bus.Op
	addr bus.Addr
	data bus.Word
}

// globalDone is a completed global transaction awaiting its local
// consumer. The embedded globalOp is the *identity* the local retry must
// match; results live in separate fields.
type globalDone struct {
	globalOp
	fetched bus.Word // OpRead: the word memory returned
	old     bus.Word // OpRMW: the locked read's observed value
	success bool     // OpRMW: the set was performed
}

// adapter joins one cluster's local bus to the global bus. On the local
// side it is the memory port (bus.Memory + StallableMemory + RMWMemory);
// on the global side it is a snooper and requester.
type adapter struct {
	m     *Machine
	id    int // cluster id == global bus source id
	lines []clusterLine
	nset  int
	l1s   []*cache.Cache // filled in by New after the local bus is wired

	pending *globalOp   // transaction owed to the global bus
	done    *globalDone // completed, awaiting local consumption

	hits uint64 // local misses served without the global bus
}

func newAdapter(m *Machine, id, lines int) (*adapter, error) {
	if lines <= 0 || lines&(lines-1) != 0 {
		return nil, fmt.Errorf("hier: ClusterLines = %d, need a positive power of two", lines)
	}
	return &adapter{m: m, id: id, lines: make([]clusterLine, lines), nset: lines}, nil
}

func (a *adapter) busy() bool { return a.pending != nil || a.done != nil }

// lookup returns the cluster line for addr, or nil.
func (a *adapter) lookup(ad bus.Addr) *clusterLine {
	ln := &a.lines[int(ad)&(a.nset-1)]
	if ln.valid && ln.addr == ad {
		return ln
	}
	return nil
}

// install places addr in the cluster cache, maintaining inclusion: the
// victim's L1 copies are invalidated in the same cycle (the combinational
// downward snoop).
func (a *adapter) install(ad bus.Addr, data bus.Word) {
	ln := &a.lines[int(ad)&(a.nset-1)]
	if ln.valid && ln.addr != ad {
		a.invalidateDown(ln.addr)
	}
	*ln = clusterLine{valid: true, addr: ad, data: data}
}

// invalidateDown removes every L1 copy of addr in this cluster.
const downSource = -1 // never a valid L1 id, so no snooper is excluded

func (a *adapter) invalidateDown(ad bus.Addr) {
	for _, c := range a.l1s {
		c.ObserveWrite(bus.OpWrite, ad, 0, downSource)
	}
}

// ensurePending queues op for the global bus if the adapter is free.
func (a *adapter) ensurePending(op globalOp) {
	if a.pending == nil && (a.done == nil || a.done.globalOp != op) {
		o := op
		a.pending = &o
	}
}

// matchDone consumes and returns the completed transaction if it matches.
func (a *adapter) matchDone(op globalOp) *globalDone {
	if a.done != nil && a.done.globalOp == op {
		d := a.done
		a.done = nil
		return d
	}
	return nil
}

// wantsGlobal reports whether the adapter needs a global grant. It holds
// back while a completed transaction awaits consumption, so done is never
// overwritten.
func (a *adapter) wantsGlobal() bool { return a.pending != nil && a.done == nil }

// --- local side: bus.Memory / StallableMemory / RMWMemory ---

// Ready implements bus.StallableMemory: the local transaction can proceed
// if the cluster cache can serve it or its global counterpart completed;
// otherwise the needed global transaction is queued.
func (a *adapter) Ready(r bus.Request) bool {
	switch r.Op {
	case bus.OpRead:
		if a.lookup(r.Addr) != nil {
			return true
		}
		op := globalOp{op: bus.OpRead, addr: r.Addr}
		if a.done != nil && a.done.globalOp == op {
			return true
		}
		a.ensurePending(op)
		return false
	case bus.OpWrite:
		op := globalOp{op: bus.OpWrite, addr: r.Addr, data: r.Data}
		if a.done != nil && a.done.globalOp == op {
			return true
		}
		a.ensurePending(op)
		return false
	case bus.OpRMW:
		op := globalOp{op: bus.OpRMW, addr: r.Addr, data: r.Data}
		if a.done != nil && a.done.globalOp == op {
			return true
		}
		a.ensurePending(op)
		return false
	default:
		// OpInv carries no data and needs no global counterpart: the
		// local bus delivers it to every cache in the cluster directly.
		return true
	}
}

// ReadWord implements bus.Memory: serve from the cluster cache, or
// consume the completed global read and install the line.
func (a *adapter) ReadWord(ad bus.Addr) bus.Word {
	if d := a.matchDone(globalOp{op: bus.OpRead, addr: ad}); d != nil {
		a.install(ad, d.fetched)
		return d.fetched
	}
	if ln := a.lookup(ad); ln != nil {
		a.hits++
		return ln.data
	}
	panic(fmt.Sprintf("hier: cluster %d read of %d with neither line nor completed fetch", a.id, ad))
}

// WriteWord implements bus.Memory: the matching global write already
// updated memory and invalidated the other clusters; absorb it locally,
// keeping the cluster line (if present) current.
func (a *adapter) WriteWord(ad bus.Addr, w bus.Word) {
	if d := a.matchDone(globalOp{op: bus.OpWrite, addr: ad, data: w}); d == nil {
		panic(fmt.Sprintf("hier: cluster %d write of %d without a completed global write", a.id, ad))
	}
	if ln := a.lookup(ad); ln != nil {
		ln.data = w
	}
}

// RMW implements bus.RMWMemory: replay the globally executed atomic cycle.
func (a *adapter) RMW(ad bus.Addr, set bus.Word) bus.Word {
	d := a.matchDone(globalOp{op: bus.OpRMW, addr: ad, data: set})
	if d == nil {
		panic(fmt.Sprintf("hier: cluster %d RMW of %d without a completed global RMW", a.id, ad))
	}
	if d.success {
		if ln := a.lookup(ad); ln != nil {
			ln.data = set
		}
	}
	return d.old
}

// --- global side: bus.Requester / bus.Snooper ---

// BusGrant implements bus.Requester.
func (a *adapter) BusGrant(bank, banks int) (bus.Request, bool) {
	if !a.wantsGlobal() {
		return bus.Request{}, false
	}
	return bus.Request{Source: a.id, Op: a.pending.op, Addr: a.pending.addr, Data: a.pending.data}, true
}

// globalCompleted folds a finished global transaction: record it for the
// stalled local transaction, close the own-cluster staleness window, and
// feed the machine's oracle at this — the — serialization point.
func (a *adapter) globalCompleted(req bus.Request, res bus.Result) {
	if a.pending == nil || a.pending.op != req.Op || a.pending.addr != req.Addr {
		panic(fmt.Sprintf("hier: cluster %d completed unexpected %v addr %d", a.id, req.Op, req.Addr))
	}
	if res.Killed {
		panic("hier: global read killed (no cluster ever owns dirty data)")
	}
	op := *a.pending
	a.pending = nil
	switch req.Op {
	case bus.OpRead:
		a.done = &globalDone{globalOp: op, fetched: res.Data}
	case bus.OpWrite:
		a.done = &globalDone{globalOp: op}
		// The write is now globally visible: no copy below this cluster
		// may survive with the old value (the issuing PE's own L1 line is
		// refreshed when its local transaction completes).
		if ln := a.lookup(req.Addr); ln != nil {
			ln.data = req.Data
		}
		a.invalidateDown(req.Addr)
		a.m.foldWrite(req.Addr, req.Data)
	case bus.OpRMW:
		a.done = &globalDone{globalOp: op, old: res.Data, success: res.RMWSuccess}
		a.m.checkRMWOld(req.Addr, res.Data)
		if res.RMWSuccess {
			if ln := a.lookup(req.Addr); ln != nil {
				ln.data = req.Data
			}
			a.invalidateDown(req.Addr)
			a.m.foldWrite(req.Addr, req.Data)
		}
	default:
		// Invalidates never cross to the global bus (see Ready).
		panic(fmt.Sprintf("hier: cluster %d completed global %v", a.id, req.Op))
	}
}

// SnoopRead implements bus.Snooper: clusters never own dirty data, so
// they never interrupt global reads.
func (a *adapter) SnoopRead(ad bus.Addr, source int) (bool, bus.Word) { return false, 0 }

// SnoopRMWRead implements bus.Snooper: nothing dirty, nothing to flush.
func (a *adapter) SnoopRMWRead(ad bus.Addr, source int) (bool, bus.Word) { return false, 0 }

// ObserveWrite implements bus.Snooper: another cluster wrote — invalidate
// the cluster line and, inclusively, every L1 copy below it. A completed
// but not-yet-consumed read fetch of the same address is now stale too:
// drop it so the waiting local transaction refetches the new value.
func (a *adapter) ObserveWrite(op bus.Op, ad bus.Addr, d bus.Word, source int) {
	if ln := a.lookup(ad); ln != nil {
		ln.valid = false
		a.invalidateDown(ad)
	}
	if a.done != nil && a.done.op == bus.OpRead && a.done.addr == ad {
		a.done = nil
	}
}

// ObserveReadData implements bus.Snooper: cluster lines are always
// current, so broadcast read data carries no news.
func (a *adapter) ObserveReadData(ad bus.Addr, d bus.Word, source int) {}
