package hier

import (
	"testing"

	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Clusters: 2, PEsPerCluster: 2}, nil); err == nil {
		t.Error("mismatched agent groups accepted")
	}
	if _, err := New(Config{Clusters: 1, PEsPerCluster: 2},
		[][]workload.Agent{{workload.Idle()}}); err == nil {
		t.Error("short cluster accepted")
	}
	if _, err := New(Config{Clusters: 1, PEsPerCluster: 1, ClusterLines: 3},
		[][]workload.Agent{{workload.Idle()}}); err == nil {
		t.Error("bad cluster cache size accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew did not panic")
			}
		}()
		MustNew(Config{Clusters: 1, PEsPerCluster: 1}, nil)
	}()
}

// groups builds a Clusters x PEsPerCluster agent matrix from a generator.
func groups(clusters, pes int, gen func(c, p int) workload.Agent) [][]workload.Agent {
	out := make([][]workload.Agent, clusters)
	for c := range out {
		out[c] = make([]workload.Agent, pes)
		for p := range out[c] {
			out[c][p] = gen(c, p)
		}
	}
	return out
}

func TestSingleWriteReadAcrossClusters(t *testing.T) {
	// PE (0,0) writes; PE (1,0) reads the value after a delay.
	agents := groups(2, 1, func(c, p int) workload.Agent {
		if c == 0 {
			return workload.NewTrace(workload.Write(5, 42, 0))
		}
		return workload.NewTrace(workload.Compute(50), workload.Read(5, 0))
	})
	m := MustNew(Config{Clusters: 2, PEsPerCluster: 1, CheckConsistency: true}, agents)
	if _, err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("not done")
	}
	if m.Memory().Peek(5) != 42 {
		t.Fatal("write did not reach memory")
	}
}

// TestRandomWorkloadsConsistent is the hierarchy's oracle test: shared
// random traffic across 4 clusters x 2 PEs with reads checked against the
// global serialization order.
func TestRandomWorkloadsConsistent(t *testing.T) {
	agents := groups(4, 2, func(c, p int) workload.Agent {
		return workload.NewRandom(0, 32, 300, 0.4, 0.1, uint64(c*10+p+1))
	})
	m := MustNew(Config{
		Clusters: 4, PEsPerCluster: 2,
		L1Lines: 16, ClusterLines: 64,
		CheckConsistency: true,
	}, agents)
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("machine did not drain")
	}
}

// TestSmallClusterCacheForcesInclusionEvictions exercises the inclusive
// eviction path (cluster victim invalidating L1 copies) under the oracle.
func TestSmallClusterCacheForcesInclusionEvictions(t *testing.T) {
	agents := groups(2, 2, func(c, p int) workload.Agent {
		return workload.NewRandom(0, 64, 400, 0.3, 0.05, uint64(c*7+p+1))
	})
	m := MustNew(Config{
		Clusters: 2, PEsPerCluster: 2,
		L1Lines: 8, ClusterLines: 8, // cluster smaller than the footprint
		CheckConsistency: true,
	}, agents)
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("machine did not drain")
	}
}

// TestMachineWideMutualExclusion: spinlocks contending across cluster
// boundaries still serialize (the adapter delegates RMWs to the global
// bus).
func TestMachineWideMutualExclusion(t *testing.T) {
	const clusters, pes, iters = 2, 2, 10
	var locks []*workload.Spinlock
	agents := groups(clusters, pes, func(c, p int) workload.Agent {
		s := workload.MustSpinlock(workload.SpinlockConfig{
			Lock: 100, Strategy: workload.StrategyTTS, Iterations: iters,
			CriticalReads: 2, CriticalWrites: 2,
			GuardedBase: 200, GuardedWords: 4,
			Seed: uint64(c*10 + p),
		})
		locks = append(locks, s)
		return s
	})
	m := MustNew(Config{Clusters: clusters, PEsPerCluster: pes, CheckConsistency: true}, agents)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("deadlocked")
	}
	total := 0
	for _, s := range locks {
		total += s.Acquisitions()
	}
	if total != clusters*pes*iters {
		t.Fatalf("acquisitions = %d, want %d", total, clusters*pes*iters)
	}
}

// TestBarrierAcrossClusters: the sense-reversing barrier spans clusters.
func TestBarrierAcrossClusters(t *testing.T) {
	const clusters, pes, rounds = 2, 2, 5
	var barriers []*workload.Barrier
	agents := groups(clusters, pes, func(c, p int) workload.Agent {
		b := workload.MustBarrier(workload.BarrierConfig{
			Lock: 0, Counter: 1, Sense: 2, Progress: 16,
			Participants: clusters * pes, Rounds: rounds,
			WorkCycles: 1 + 5*(c*pes+p),
			ID:         c*pes + p,
		})
		barriers = append(barriers, b)
		return b
	})
	m := MustNew(Config{Clusters: clusters, PEsPerCluster: pes, CheckConsistency: true}, agents)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("barrier deadlocked")
	}
	for i, b := range barriers {
		if b.Rounds() != rounds {
			t.Errorf("PE %d: %d rounds", i, b.Rounds())
		}
		if err := b.Err(); err != nil {
			t.Error(err)
		}
	}
}

// TestClusterCacheFiltersGlobalTraffic is the hierarchy's reason to
// exist: read-heavy workloads mostly hit the cluster cache, so the global
// bus sees a small fraction of the local traffic.
func TestClusterCacheFiltersGlobalTraffic(t *testing.T) {
	// Tiny L1s (to force local misses) with a big cluster cache.
	agents := groups(2, 4, func(c, p int) workload.Agent {
		return workload.NewRandom(0, 128, 600, 0.05, 0, uint64(c*10+p+1))
	})
	m := MustNew(Config{
		Clusters: 2, PEsPerCluster: 4,
		L1Lines: 8, ClusterLines: 512,
		CheckConsistency: true,
	}, agents)
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("not done")
	}
	mt := m.Metrics()
	if mt.ClusterHits == 0 {
		t.Fatal("cluster cache never hit")
	}
	if fr := mt.FilterRatio(); fr < 0.5 {
		t.Fatalf("filter ratio = %.2f, want most local traffic kept off the global bus", fr)
	}
	if mt.TotalRefs == 0 || len(mt.Locals) != 2 {
		t.Fatalf("metrics shape: %+v", mt)
	}
}

// TestGlobalLatencyStretchesRuntime: adding global memory latency slows
// the machine but changes no results.
func TestGlobalLatencyStretchesRuntime(t *testing.T) {
	run := func(lat int) uint64 {
		agents := groups(2, 2, func(c, p int) workload.Agent {
			return workload.NewRandom(0, 64, 200, 0.5, 0, uint64(c*10+p+1))
		})
		m := MustNew(Config{
			Clusters: 2, PEsPerCluster: 2,
			GlobalLatency:    lat,
			CheckConsistency: true,
		}, agents)
		if _, err := m.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		if !m.Done() {
			t.Fatal("not done")
		}
		return m.Metrics().Cycles
	}
	fast, slow := run(0), run(4)
	if slow <= fast {
		t.Fatalf("latency 4 ran in %d cycles, latency 0 in %d", slow, fast)
	}
}

// TestProducerConsumerAcrossClusters: the cyclical write-then-read-by-
// others pattern works across the hierarchy.
func TestProducerConsumerAcrossClusters(t *testing.T) {
	const items = 10
	cons := workload.NewConsumer(10, 11, items)
	agents := [][]workload.Agent{
		{workload.NewProducer(10, 11, items, 30)},
		{cons},
	}
	m := MustNew(Config{Clusters: 2, PEsPerCluster: 1, CheckConsistency: true}, agents)
	if _, err := m.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if cons.Received() != items {
		t.Fatalf("consumed %d of %d", cons.Received(), items)
	}
}

// TestStaleFetchRace is the regression test for a subtle hierarchy bug: a
// completed global read awaiting its local consumer must be dropped when
// another cluster writes the same address in between — otherwise the
// waiting PE reads a value from before the write. High contention on few
// words with busy local buses maximizes the window.
func TestStaleFetchRace(t *testing.T) {
	agents := groups(4, 4, func(c, p int) workload.Agent {
		return workload.NewRandom(0, 8, 500, 0.3, 0.02, uint64(c*13+p+1))
	})
	m := MustNew(Config{
		Clusters: 4, PEsPerCluster: 4,
		L1Lines: 8, ClusterLines: 32,
		CheckConsistency: true,
	}, agents)
	if _, err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("machine did not drain")
	}
}

// TestHierMetricsShape sanity-checks the aggregate accessors.
func TestHierMetricsShape(t *testing.T) {
	agents := groups(2, 1, func(c, p int) workload.Agent {
		return workload.NewRandom(0, 16, 50, 0.2, 0, uint64(c+1))
	})
	m := MustNew(Config{Clusters: 2, PEsPerCluster: 1, CheckConsistency: true}, agents)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	mt := m.Metrics()
	if mt.TotalRefs != 100 {
		t.Fatalf("TotalRefs = %d", mt.TotalRefs)
	}
	if mt.LocalTransactions() == 0 || mt.Global.Transactions() == 0 {
		t.Fatal("no traffic counted")
	}
	if fr := mt.FilterRatio(); fr < 0 || fr > 1 {
		t.Fatalf("FilterRatio = %v", fr)
	}
	var empty Metrics
	if empty.FilterRatio() != 0 {
		t.Fatal("empty FilterRatio != 0")
	}
	// Accessors reach each level.
	if m.Global() == nil || m.Local(0) == nil || m.Cache(0, 0) == nil || m.Proc(1, 0) == nil {
		t.Fatal("accessors broken")
	}
	if m.Cycle() == 0 || m.Err() != nil {
		t.Fatal("cycle/err accessors broken")
	}
}
