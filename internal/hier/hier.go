// Package hier explores the paper's first "promising for further
// research" direction (Section 8): extending the cache schemes "to
// hierarchical structures more amiable to large scale parallel
// processing".
//
// The machine is a two-level hierarchy: clusters of processing elements,
// each with private L1 caches on a cluster-local shared bus, joined by a
// global shared bus through per-cluster adapters. The adapter owns an
// inclusive cluster cache that filters local read misses away from the
// global bus, snoops the global bus to keep the cluster coherent (an
// observed global write invalidates the cluster line and, in the same
// cycle, every L1 copy below it — modeling a combinational hierarchical
// snoop, the two-level analogue of the paper's assumption 5), and
// delegates atomic Test-and-Set cycles to the global bus so locks are
// machine-wide atomic.
//
// Simplifications, documented in DESIGN.md: the L1 caches run the
// write-through-invalidate protocol (so every write is globally
// serialized through the adapter and the cluster cache never holds dirty
// data), and a local transaction that needs the global bus stalls until
// its global transaction completes. The hierarchy's payoff — the cluster
// cache filtering local traffic from the global bus — is measured by the
// fan-out experiment in internal/experiments.
package hier

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/processor"
	"repro/internal/workload"
)

// Config describes a hierarchical machine.
type Config struct {
	// Clusters is the number of clusters on the global bus.
	Clusters int
	// PEsPerCluster is the number of processing elements per cluster.
	PEsPerCluster int
	// L1Lines is each PE's private cache size (power of two).
	L1Lines int
	// ClusterLines is each cluster cache's size (power of two); it should
	// dominate the sum of its L1s for effective filtering.
	ClusterLines int
	// GlobalLatency is extra hold cycles per global transaction.
	GlobalLatency int
	// CheckConsistency enables the read-latest oracle.
	CheckConsistency bool
}

func (c Config) withDefaults() Config {
	if c.Clusters == 0 {
		c.Clusters = 2
	}
	if c.PEsPerCluster == 0 {
		c.PEsPerCluster = 4
	}
	if c.L1Lines == 0 {
		c.L1Lines = 256
	}
	if c.ClusterLines == 0 {
		c.ClusterLines = 2048
	}
	return c
}

// Machine is the assembled two-level multiprocessor.
type Machine struct {
	cfg      Config
	mem      *memory.Memory
	global   *bus.Bus
	clusters []*cluster

	oracle   map[bus.Addr]bus.Word
	pristine map[bus.Addr]bus.Word
	cycle    uint64
	err      error
}

// cluster is one local bus with its PEs and adapter.
type cluster struct {
	id      int
	local   *bus.Bus
	adapter *adapter
	caches  []*cache.Cache
	procs   []*processor.Processor
	slotted []bool
}

// New builds a hierarchical machine. agents[c][p] is the program of PE p
// in cluster c; len(agents) and the inner lengths must match the config.
func New(cfg Config, agents [][]workload.Agent) (*Machine, error) {
	cfg = cfg.withDefaults()
	if len(agents) != cfg.Clusters {
		return nil, fmt.Errorf("hier: %d agent groups for %d clusters", len(agents), cfg.Clusters)
	}
	m := &Machine{
		cfg:      cfg,
		mem:      memory.New(),
		oracle:   make(map[bus.Addr]bus.Word),
		pristine: make(map[bus.Addr]bus.Word),
	}
	m.global = bus.New(recordingMem{m})
	m.global.MemLatency = cfg.GlobalLatency
	for ci := 0; ci < cfg.Clusters; ci++ {
		if len(agents[ci]) != cfg.PEsPerCluster {
			return nil, fmt.Errorf("hier: cluster %d has %d agents, want %d", ci, len(agents[ci]), cfg.PEsPerCluster)
		}
		cl := &cluster{id: ci}
		ad, err := newAdapter(m, ci, cfg.ClusterLines)
		if err != nil {
			return nil, err
		}
		cl.adapter = ad
		cl.local = bus.New(ad)
		m.global.Attach(ci, ad)
		m.global.AttachRequester(ci, ad)
		for pi := 0; pi < cfg.PEsPerCluster; pi++ {
			c, err := cache.New(pi, coherence.WriteThrough{}, cache.Config{Lines: cfg.L1Lines})
			if err != nil {
				return nil, err
			}
			if cfg.CheckConsistency {
				c.OnResolve = m.checkRead
			}
			cl.local.Attach(pi, c)
			cl.local.AttachRequester(pi, c)
			cl.caches = append(cl.caches, c)
			cl.procs = append(cl.procs, processor.New(pi, agents[ci][pi], c))
			cl.slotted = append(cl.slotted, false)
		}
		ad.l1s = cl.caches
		m.clusters = append(m.clusters, cl)
	}
	return m, nil
}

// MustNew is New panicking on error.
func MustNew(cfg Config, agents [][]workload.Agent) *Machine {
	m, err := New(cfg, agents)
	if err != nil {
		panic(err)
	}
	return m
}

// recordingMem is the global bus's memory port: the real store, with
// pristine values recorded for the oracle fallback.
type recordingMem struct{ m *Machine }

func (r recordingMem) ReadWord(a bus.Addr) bus.Word { return r.m.mem.ReadWord(a) }

func (r recordingMem) WriteWord(a bus.Addr, w bus.Word) {
	if _, seen := r.m.pristine[a]; !seen {
		r.m.pristine[a] = r.m.mem.Peek(a)
	}
	r.m.mem.WriteWord(a, w)
}

// Memory returns the shared main memory.
func (m *Machine) Memory() *memory.Memory { return m.mem }

// Global returns the global bus (for statistics).
func (m *Machine) Global() *bus.Bus { return m.global }

// Local returns cluster ci's local bus.
func (m *Machine) Local(ci int) *bus.Bus { return m.clusters[ci].local }

// Cache returns the L1 of PE p in cluster c.
func (m *Machine) Cache(c, p int) *cache.Cache { return m.clusters[c].caches[p] }

// Proc returns PE p of cluster c.
func (m *Machine) Proc(c, p int) *processor.Processor { return m.clusters[c].procs[p] }

// Cycle returns the cycles executed.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Err returns the first consistency violation.
func (m *Machine) Err() error { return m.err }

// Done reports whether every PE halted and every queue drained.
func (m *Machine) Done() bool {
	for _, cl := range m.clusters {
		if cl.adapter.busy() {
			return false
		}
		for i, p := range cl.procs {
			if !p.Halted() || cl.caches[i].Busy() {
				return false
			}
		}
	}
	return true
}

// latest is the oracle's view of an address.
func (m *Machine) latest(a bus.Addr) bus.Word {
	if v, ok := m.oracle[a]; ok {
		return v
	}
	if v, ok := m.pristine[a]; ok {
		return v
	}
	return m.mem.Peek(a)
}

// checkRead validates an L1 read resolution against the oracle. Writes
// and RMWs fold at their *global* serialization points (foldWrite); only
// reads bind locally.
func (m *Machine) checkRead(info cache.ResolveInfo) {
	if m.err != nil || info.RMW || info.Ev != coherence.EvRead {
		return
	}
	if exp := m.latest(info.Addr); info.Value != exp {
		m.err = fmt.Errorf("hier: consistency violation at cycle %d: read addr %d saw %d, latest written is %d",
			m.cycle, info.Addr, info.Value, exp)
	}
}

// foldWrite records a globally serialized write (or successful RMW set).
func (m *Machine) foldWrite(a bus.Addr, v bus.Word) {
	if m.cfg.CheckConsistency {
		m.oracle[a] = v
	}
}

// checkRMWOld validates a locked read's observed value at its global
// serialization point.
func (m *Machine) checkRMWOld(a bus.Addr, old bus.Word) {
	if !m.cfg.CheckConsistency || m.err != nil {
		return
	}
	if exp := m.latest(a); old != exp {
		m.err = fmt.Errorf("hier: consistency violation at cycle %d: locked read of addr %d saw %d, latest written is %d",
			m.cycle, a, old, exp)
	}
}

// Step executes one cycle: global bus, then every local bus, then every
// PE, then request-line management.
func (m *Machine) Step() error {
	if m.err != nil {
		return m.err
	}
	m.cycle++

	// 1. Global bus: at most one machine-wide transaction.
	if req, res, ok := m.global.Tick(); ok {
		m.clusters[req.Source].adapter.globalCompleted(req, res)
	}

	// 2. Local buses.
	for _, cl := range m.clusters {
		if req, res, ok := cl.local.Tick(); ok {
			c := cl.caches[req.Source]
			switch c.BusCompleted(req, res) {
			case cache.ProgressRetry, cache.ProgressMoreUrgent:
				cl.local.PrioritySlot(req.Source)
			case cache.ProgressDone, cache.ProgressMore:
				// Done delivers below; More re-arbitrates normally.
			}
			if v, ok := c.TakeResolved(); ok {
				cl.procs[req.Source].Deliver(v)
			}
		}
	}

	// 3. CPU phase.
	for _, cl := range m.clusters {
		for _, p := range cl.procs {
			p.CPUPhase()
		}
	}

	// 4. Request lines: local slots per cluster, then the adapters'
	// global slots.
	for _, cl := range m.clusters {
		for i, c := range cl.caches {
			if c.NeedsPriority() {
				cl.local.PrioritySlot(i)
				continue
			}
			if _, want := c.WantsBus(); want {
				cl.local.RequestSlot(i)
				cl.slotted[i] = true
			} else if cl.slotted[i] {
				cl.local.CancelSlot(i)
				cl.slotted[i] = false
			}
		}
		for i, c := range cl.caches {
			if v, ok := c.TakeResolved(); ok {
				cl.procs[i].Deliver(v)
			}
		}
		if cl.adapter.wantsGlobal() {
			m.global.RequestSlot(cl.id)
		}
	}
	return m.err
}

// Run executes until done or maxCycles elapse.
func (m *Machine) Run(maxCycles uint64) (uint64, error) {
	start := m.cycle
	for m.cycle-start < maxCycles && !m.Done() {
		if err := m.Step(); err != nil {
			return m.cycle - start, err
		}
	}
	return m.cycle - start, m.err
}

// Metrics summarizes the two-level traffic.
type Metrics struct {
	Cycles      uint64
	Global      bus.Stats
	Locals      []bus.Stats
	TotalRefs   uint64
	ClusterHits uint64 // local misses served by the cluster cache
}

// Metrics returns the counters.
func (m *Machine) Metrics() Metrics {
	mt := Metrics{Cycles: m.cycle, Global: m.global.Stats()}
	for _, cl := range m.clusters {
		mt.Locals = append(mt.Locals, cl.local.Stats())
		mt.ClusterHits += cl.adapter.hits
		for _, p := range cl.procs {
			mt.TotalRefs += p.Stats().Retired
		}
	}
	return mt
}

// LocalTransactions sums transactions over all local buses.
func (mt Metrics) LocalTransactions() uint64 {
	var t uint64
	for _, l := range mt.Locals {
		t += l.Transactions()
	}
	return t
}

// FilterRatio is the fraction of local bus transactions that the cluster
// caches kept off the global bus.
func (mt Metrics) FilterRatio() float64 {
	local := mt.LocalTransactions()
	if local == 0 {
		return 0
	}
	return 1 - float64(mt.Global.Transactions())/float64(local)
}
