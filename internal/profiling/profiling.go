// Package profiling wires the conventional -cpuprofile / -memprofile
// flags into the simulator's command-line front ends, so a slow run can
// be handed straight to `go tool pprof` without instrumenting anything.
// It is observability only: enabling a profile never changes what a
// simulation computes.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles. cpuPath and memPath may each be
// empty (that profile is skipped). The returned stop function flushes
// and closes whatever was started; call it exactly once, on the normal
// exit path — a run aborted via os.Exit simply loses the profile, which
// is the standard net/http/pprof-style tradeoff.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
