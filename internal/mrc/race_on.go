//go:build race

package mrc

const raceEnabled = true
