package mrc

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/stackdist"
	"repro/internal/workload"
)

// sizes is the exactness grid: every power of two the acceptance bound
// cares about, from one line past the largest simulated geometry.
var testSizes = stackdist.PowersOfTwo(0, 13)

// checkExact cross-validates an online profiler against the offline
// stack algorithm over the same stream.
func checkExact(t *testing.T, label string, on *Profiler, off *stackdist.Profiler) {
	t.Helper()
	if on.Refs() != off.Refs() || on.Colds() != off.Colds() || on.Footprint() != off.Footprint() {
		t.Fatalf("%s: refs/colds/footprint = %d/%d/%d online vs %d/%d/%d offline",
			label, on.Refs(), on.Colds(), on.Footprint(), off.Refs(), off.Colds(), off.Footprint())
	}
	onCurve := on.Curve(testSizes)
	offCurve := off.Curve(testSizes)
	if !reflect.DeepEqual(onCurve, offCurve) {
		t.Fatalf("%s: curves differ\nonline:  %+v\noffline: %+v", label, onCurve, offCurve)
	}
	// Spot-check a size beyond the grid and size 0 (no cache).
	for _, s := range []int{0, 1 << 20} {
		if on.Misses(s) != off.Misses(s) {
			t.Fatalf("%s: Misses(%d) = %d online vs %d offline", label, s, on.Misses(s), off.Misses(s))
		}
	}
}

// xorshift is a tiny deterministic generator for the synthetic streams.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

// TestProfilerMatchesStackdistStreams drives adversarial address
// patterns through both profilers: uniform random over footprints that
// straddle the bucket boundaries, cyclic scans (the LRU worst case,
// every reference at distance footprint-1), reverse scans (every
// reference at distance 0... footprint-1 mixed), strides, and a
// sparse-directory pattern above the dense window.
func TestProfilerMatchesStackdistStreams(t *testing.T) {
	type gen struct {
		name string
		next func(i int, rng *xorshift) bus.Addr
		n    int
	}
	gens := []gen{
		{"uniform-small", func(i int, rng *xorshift) bus.Addr { return bus.Addr(rng.next() % 7) }, 4000},
		{"uniform-1k", func(i int, rng *xorshift) bus.Addr { return bus.Addr(rng.next() % 1000) }, 20000},
		{"uniform-9k", func(i int, rng *xorshift) bus.Addr { return bus.Addr(rng.next() % 9001) }, 40000},
		{"cyclic-scan", func(i int, rng *xorshift) bus.Addr { return bus.Addr(i % 600) }, 12000},
		{"sawtooth", func(i int, rng *xorshift) bus.Addr {
			p := i % 1024
			if (i/1024)%2 == 1 {
				p = 1023 - p
			}
			return bus.Addr(p)
		}, 16000},
		{"stride-17", func(i int, rng *xorshift) bus.Addr { return bus.Addr((i * 17) % 5000) }, 20000},
		{"zipfish", func(i int, rng *xorshift) bus.Addr {
			// Skewed: half the references hit 8 hot addresses.
			if rng.next()%2 == 0 {
				return bus.Addr(rng.next() % 8)
			}
			return bus.Addr(8 + rng.next()%4000)
		}, 30000},
		{"sparse-window", func(i int, rng *xorshift) bus.Addr {
			// Above denseLimit: exercises the map fallback.
			return bus.Addr(denseLimit) + bus.Addr(rng.next()%300)
		}, 6000},
		{"mixed-windows", func(i int, rng *xorshift) bus.Addr {
			if i%3 == 0 {
				return bus.Addr(denseLimit) + bus.Addr(rng.next()%100)
			}
			return bus.Addr(rng.next() % (3 * pageSize))
		}, 15000},
	}
	for _, g := range gens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			on := New()
			off := stackdist.New()
			rng := xorshift(0x9e3779b97f4a7c15)
			for i := 0; i < g.n; i++ {
				a := g.next(i, &rng)
				on.Touch(a)
				off.Touch(a)
			}
			checkExact(t, g.name, on, off)
		})
	}
}

// teeProbe feeds the online profilers and records the raw streams for
// the offline replay.
type teeProbe struct {
	pe, global *Profiler
	rec        *[]bus.Addr
	all        *[]bus.Addr
}

func (p *teeProbe) OnRef(a bus.Addr) {
	p.pe.Touch(a)
	p.global.Touch(a)
	*p.rec = append(*p.rec, a)
	*p.all = append(*p.all, a)
}

// TestOnlineMatchesOffline is the tentpole cross-validation: for every
// protocol and several seeds, one live profiled run must reproduce the
// offline stackdist curve exactly — per PE and machine-wide — and the
// plain Attach path must match the instrumented run bit for bit.
func TestOnlineMatchesOffline(t *testing.T) {
	const pes = 4
	const refsPerPE = 1500
	layout := workload.DefaultLayout()
	prof := workload.PDEProfile()
	build := func(k coherence.Kind, seed uint64) *machine.Machine {
		agents := make([]workload.Agent, pes)
		for i := range agents {
			agents[i] = workload.MustApp(prof, layout, i, seed, refsPerPE)
		}
		m, err := machine.New(machine.Config{Protocol: coherence.New(k), CacheLines: 64}, agents)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	run := func(m *machine.Machine) {
		t.Helper()
		if _, err := m.Run(uint64(refsPerPE) * 200); err != nil {
			t.Fatal(err)
		}
		if !m.Done() {
			t.Fatal("machine did not drain")
		}
	}
	for _, k := range coherence.Kinds() {
		for _, seed := range []uint64{1, 2, 3} {
			k, seed := k, seed
			t.Run(fmt.Sprintf("%s/seed%d", k, seed), func(t *testing.T) {
				// Instrumented run: online profilers plus raw stream capture.
				m := build(k, seed)
				perPE := make([]*Profiler, pes)
				recs := make([][]bus.Addr, pes)
				global := New()
				var all []bus.Addr
				for i := 0; i < pes; i++ {
					perPE[i] = New()
					m.Cache(i).SetProbe(&teeProbe{pe: perPE[i], global: global, rec: &recs[i], all: &all})
				}
				run(m)

				// Offline replay of the captured streams.
				offAll := stackdist.New()
				for _, a := range all {
					offAll.Touch(a)
				}
				checkExact(t, "machine", global, offAll)
				for i := 0; i < pes; i++ {
					off := stackdist.New()
					for _, a := range recs[i] {
						off.Touch(a)
					}
					checkExact(t, fmt.Sprintf("pe%d", i), perPE[i], off)
				}

				// The production Attach path on a fresh identical machine
				// must yield the same curves (and identical metrics: the
				// probe must not perturb the simulation).
				m2 := build(k, seed)
				set := Attach(m2)
				run(m2)
				if !reflect.DeepEqual(set.Global.Curve(testSizes), global.Curve(testSizes)) {
					t.Fatal("Attach path curve differs from instrumented run")
				}
				for i := 0; i < pes; i++ {
					if !reflect.DeepEqual(set.PerPE[i].Curve(testSizes), perPE[i].Curve(testSizes)) {
						t.Fatalf("Attach path pe%d curve differs", i)
					}
				}
				m3 := build(k, seed)
				run(m3)
				if got, want := m2.Metrics(), m3.Metrics(); !reflect.DeepEqual(got, want) {
					t.Fatalf("profiling perturbed the run:\nprofiled:   %+v\nunprofiled: %+v", got, want)
				}
			})
		}
	}
}

// TestDocsShape pins the serialization order: machine scope first, then
// pe0..peN, points ascending — the determinism the store byte-compare
// relies on.
func TestDocsShape(t *testing.T) {
	agents := []workload.Agent{
		workload.NewRandom(0, 128, 400, 0.3, 0, 7),
		workload.NewRandom(4096, 128, 400, 0.3, 0, 8),
	}
	m, err := machine.New(machine.Config{Protocol: coherence.RB{}, CacheLines: 32}, agents)
	if err != nil {
		t.Fatal(err)
	}
	set := Attach(m)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	docs := set.Docs(DefaultSizes())
	if len(docs) != 3 {
		t.Fatalf("got %d docs, want 3", len(docs))
	}
	for i, want := range []string{"machine", "pe0", "pe1"} {
		if docs[i].Scope != want {
			t.Fatalf("docs[%d].Scope = %q, want %q", i, docs[i].Scope, want)
		}
		pts := docs[i].Points
		for j := 1; j < len(pts); j++ {
			if pts[j-1].Lines >= pts[j].Lines {
				t.Fatalf("docs[%d] points not ascending: %+v", i, pts)
			}
		}
		if docs[i].Refs == 0 {
			t.Fatalf("docs[%d] observed no references", i)
		}
	}
	if docs[0].Refs != docs[1].Refs+docs[2].Refs {
		t.Fatalf("machine refs %d != sum of per-PE refs %d+%d", docs[0].Refs, docs[1].Refs, docs[2].Refs)
	}
}

// TestProfilerSteadyStateAllocFree pins the tentpole's hot-path budget:
// once the footprint's nodes and directory pages exist, a profiled
// cycle loop allocates exactly as much as an unprofiled one — nothing.
func TestProfilerSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; run without -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	const pes = 4
	agents := make([]workload.Agent, pes)
	for i := range agents {
		// Bounded footprint (256 words per PE) so the cold path drains
		// during warmup; effectively endless so the loop never idles.
		agents[i] = workload.NewRandom(bus.Addr(i)<<12, 256, 1<<30, 0.3, 0.02, uint64(i+1))
	}
	m, err := machine.New(machine.Config{Protocol: coherence.RB{}, CacheLines: 64}, agents)
	if err != nil {
		t.Fatal(err)
	}
	Attach(m)
	if err := m.RunFor(20_000); err != nil {
		t.Fatal(err)
	}
	const chunk = 2_000
	avg := testing.AllocsPerRun(5, func() {
		if err := m.RunFor(chunk); err != nil {
			t.Fatal(err)
		}
	})
	if perCycle := avg / chunk; perCycle != 0 {
		t.Errorf("profiled steady state allocates: %.6f allocs/cycle (%v allocs per %d cycles)",
			perCycle, avg, chunk)
	}
}

// BenchmarkTouch measures the steady-state hot path: every address
// already resident, mixed reuse distances from a power-law sweep.
func BenchmarkTouch(b *testing.B) {
	p := New()
	const footprint = 4096
	for a := 0; a < footprint; a++ {
		p.Touch(bus.Addr(a))
	}
	rng := uint64(12345)
	addrs := make([]bus.Addr, 8192)
	for i := range addrs {
		rng = rng*6364136223846793005 + 1442695040888963407
		// Power-law-ish reuse: small distances dominate.
		d := int(rng>>33) % footprint
		d = d * d / footprint
		addrs[i] = bus.Addr(d)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Touch(addrs[i%len(addrs)])
	}
}
