// Package mrc is the online miss-ratio-curve profiler: a MIMIR-style
// logarithmically bucketed reuse-distance estimator that rides the live
// cache reference path (cache.Probe) and, from a single simulation run,
// yields the hit-rate-vs-cache-size curve of every power-of-two
// fully-associative LRU cache — per PE and machine-wide — without a
// cache-size sweep.
//
// # Exactness
//
// MIMIR buckets trade accuracy for speed; this implementation keeps the
// speed and discards the error at the sizes anyone asks about. Bucket
// boundaries sit exactly at powers of two: bucket 0 holds reuse distance
// 0 and bucket b>=1 holds distances [2^(b-1), 2^b). A fully-associative
// LRU of S=2^j lines misses a reference iff its reuse distance is >= S
// (Mattson), and every distance >= 2^j lands in a bucket >= j+1 whole —
// so at power-of-two sizes the bucketed histogram reproduces
// internal/stackdist exactly:
//
//	Misses(2^j) = colds + sum_{b >= j+1} counts[b]
//
// Between powers of two the curve is bounded by its bracketing exact
// points (miss count is monotone non-increasing in size), which is the
// bucket-error bound DESIGN.md states.
//
// # Mechanics
//
// The profiler keeps the exact LRU stack as an intrusive doubly-linked
// list over an index-addressed node arena, with a marker pointing at the
// last node of each bucket (stack position 2^k-1). A hit at bucket b
// moves the node to the front; instead of renumbering the stack, each
// marker for buckets 0..b-1 slides one node toward the head — the single
// node per bucket that crossed a power-of-two boundary gets its bucket
// field bumped. That is O(log footprint) pointer moves per reference,
// no allocation, and no per-node position bookkeeping.
//
// Address-to-node lookup uses the same dense paged directory idiom as
// internal/memory: O(1), allocation-free once the footprint's pages
// exist, with a sparse map fallback above the dense window. All growth
// (arena, pages, map) happens on cold references only, so a warmed
// steady state stays //hotpath:allocfree.
package mrc

import (
	"fmt"
	"math/bits"

	"repro/internal/bus"
	"repro/internal/stackdist"
)

const (
	// maxBuckets bounds the bucket index: distances up to 2^32 distinct
	// addresses, far beyond any simulable footprint.
	maxBuckets = 34

	// pageBits sizes the dense directory pages (4096 entries, 16 KiB).
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1

	// denseLimit caps the dense directory's address window; addresses at
	// or above it fall back to the sparse map. 2^24 matches
	// internal/memory's window and covers every generated layout.
	denseLimit = 1 << 24

	// none is the nil node index.
	none = int32(-1)
)

// node is one LRU-stack entry. prev is toward the head (more recently
// used), next toward the tail.
type node struct {
	addr   bus.Addr
	prev   int32
	next   int32
	bucket uint8
}

// Profiler is one reference stream's online reuse-distance histogram.
// It is not safe for concurrent use; the machine's CPU phase feeds it
// single-threaded in deterministic PE order.
type Profiler struct {
	nodes []node

	// pages is the dense addr -> node-index directory (value+1; 0 means
	// absent). sparse backs addresses >= denseLimit.
	pages  [][]int32
	sparse map[bus.Addr]int32

	head, tail int32
	length     int

	// markers[k] is the node at stack position 2^k-1 (the last node of
	// bucket k), or none while the stack is shorter than 2^k.
	markers [maxBuckets]int32

	counts [maxBuckets]uint64
	colds  uint64
	refs   uint64
}

// New creates an empty profiler.
func New() *Profiler {
	p := &Profiler{head: none, tail: none, sparse: make(map[bus.Addr]int32)}
	for i := range p.markers {
		p.markers[i] = none
	}
	return p
}

// find returns the node index holding addr, or none.
//
//hotpath:allocfree
func (p *Profiler) find(a bus.Addr) int32 {
	if a < denseLimit {
		pg := int(a >> pageBits)
		if pg >= len(p.pages) || p.pages[pg] == nil {
			return none
		}
		return p.pages[pg][int(a)&pageMask] - 1
	}
	if ni, ok := p.sparse[a]; ok {
		return ni
	}
	return none
}

// Touch records one reference. The steady state (every address already
// seen) is allocation-free; first-ever references go through the cold
// path, which may grow the arena or the directory.
//
//hotpath:allocfree
func (p *Profiler) Touch(a bus.Addr) {
	p.refs++
	ni := p.find(a)
	if ni < 0 {
		p.insertCold(a)
		return
	}
	nodes := p.nodes
	n := &nodes[ni]
	b := int(n.bucket)
	p.counts[b]++
	if b == 0 {
		// Distance 0: the node is already the head; nothing moves.
		return
	}
	// The node leaves position d in [2^(b-1), 2^b) for position 0; every
	// node above it slides down one. Only the last node of each bucket
	// 0..b-1 crosses a power-of-two boundary: it is the marker's node,
	// its bucket bumps, and the marker retreats to its predecessor.
	// (The stack holds > d nodes, so markers 0..b-1 all exist.)
	for k := b - 1; k >= 1; k-- {
		mk := p.markers[k]
		nodes[mk].bucket = uint8(k + 1)
		p.markers[k] = nodes[mk].prev
	}
	oldHead := p.head
	nodes[oldHead].bucket = 1
	// Unlink n (it has a predecessor: b >= 1 means it is not the head).
	prev, next := n.prev, n.next
	if p.markers[b] == ni {
		// n was the last node of its own bucket (position 2^b-1 exactly);
		// its predecessor slides into that slot. The predecessor's bucket
		// is already right: either it shares bucket b, or (b == 1) it is
		// the old head whose bucket the line above just set.
		p.markers[b] = prev
	}
	nodes[prev].next = next
	if next >= 0 {
		nodes[next].prev = prev
	} else {
		p.tail = prev
	}
	// Relink at the head.
	n.prev = none
	n.next = oldHead
	n.bucket = 0
	nodes[oldHead].prev = ni
	p.head = ni
	p.markers[0] = ni
}

// insertCold handles a first-ever reference: allocate a node, push it on
// the head, and slide every marker whose position the push shifted. Not
// on the hot path by definition — the reference is a compulsory miss —
// so this is where all growth allocation lives.
func (p *Profiler) insertCold(a bus.Addr) {
	p.colds++
	ni := int32(len(p.nodes))
	p.nodes = append(p.nodes, node{addr: a, prev: none, next: p.head})
	p.setIndex(a, ni)
	L := p.length
	for k := 0; k < maxBuckets-1 && (1<<k)-1 <= L; k++ {
		if L >= 1<<k {
			// Marker k exists: its node crosses into bucket k+1.
			mk := p.markers[k]
			p.nodes[mk].bucket = uint8(k + 1)
			if k == 0 {
				p.markers[0] = ni
			} else {
				p.markers[k] = p.nodes[mk].prev
			}
		} else {
			// L == 2^k-1: the push grows the stack to 2^k and marker k is
			// born at the old tail (now position 2^k-1, already bucket k).
			if k == 0 {
				p.markers[0] = ni
			} else {
				p.markers[k] = p.tail
			}
		}
	}
	if p.head >= 0 {
		p.nodes[p.head].prev = ni
	}
	p.head = ni
	if p.tail < 0 {
		p.tail = ni
	}
	p.length = L + 1
}

// setIndex records addr -> node index in the directory.
func (p *Profiler) setIndex(a bus.Addr, ni int32) {
	if a < denseLimit {
		pg := int(a >> pageBits)
		for pg >= len(p.pages) {
			p.pages = append(p.pages, nil)
		}
		if p.pages[pg] == nil {
			p.pages[pg] = make([]int32, pageSize)
		}
		p.pages[pg][int(a)&pageMask] = ni + 1
		return
	}
	p.sparse[a] = ni
}

// Refs returns the number of references recorded.
func (p *Profiler) Refs() uint64 { return p.refs }

// Colds returns the number of first-ever references (compulsory misses).
func (p *Profiler) Colds() uint64 { return p.colds }

// Footprint returns the number of distinct addresses seen.
func (p *Profiler) Footprint() int { return p.length }

// Misses returns the exact miss count of a fully-associative LRU cache
// with the given number of lines. lines must be zero (no cache: every
// reference misses) or a power of two — the sizes the bucket boundaries
// make exact.
func (p *Profiler) Misses(lines int) uint64 {
	if lines <= 0 {
		return p.refs
	}
	if bits.OnesCount(uint(lines)) != 1 {
		panic(fmt.Sprintf("mrc: Misses(%d): size must be a power of two", lines))
	}
	j := bits.TrailingZeros(uint(lines))
	misses := p.colds
	for b := j + 1; b < maxBuckets; b++ {
		misses += p.counts[b]
	}
	return misses
}

// MissRatio returns Misses(lines)/Refs.
func (p *Profiler) MissRatio(lines int) float64 {
	if p.refs == 0 {
		return 0
	}
	return float64(p.Misses(lines)) / float64(p.refs)
}

// Curve evaluates the miss curve at the given sizes (each a power of
// two), ascending in the result — the same shape stackdist.Curve
// returns, so cross-validation is a direct comparison.
func (p *Profiler) Curve(sizes []int) []stackdist.CurvePoint {
	out := make([]stackdist.CurvePoint, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, stackdist.CurvePoint{Lines: s, Misses: p.Misses(s), MissRatio: p.MissRatio(s)})
	}
	// Sizes are caller-ordered; emit ascending without assuming it.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Lines > out[j].Lines; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Buckets returns the raw bucketed histogram in ascending bucket order:
// point i carries the bucket's smallest distance in Lines and its count
// in Misses. Emission order is fixed by the array — never a map walk —
// so serialized curves are deterministic.
func (p *Profiler) Buckets() []stackdist.CurvePoint {
	out := make([]stackdist.CurvePoint, 0, maxBuckets)
	for b := 0; b < maxBuckets; b++ {
		if p.counts[b] == 0 {
			continue
		}
		lo := 0
		if b >= 1 {
			lo = 1 << (b - 1)
		}
		out = append(out, stackdist.CurvePoint{Lines: lo, Misses: p.counts[b]})
	}
	return out
}

// DefaultSizes is the conventional evaluation grid: every power of two
// from a single line to 8192 lines, bracketing all simulated cache
// geometries.
func DefaultSizes() []int { return stackdist.PowersOfTwo(0, 13) }
