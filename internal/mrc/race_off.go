//go:build !race

package mrc

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so the zero-alloc regression only asserts
// without it.
const raceEnabled = false
