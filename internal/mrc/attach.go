package mrc

import (
	"fmt"
	"sync"

	"repro/internal/bus"
	"repro/internal/machine"
	"repro/internal/stackdist"
)

// probe feeds one PE's references into its own profiler and the shared
// machine-wide profiler. The CPU phase visits PEs in index order, so the
// machine-wide stream is the deterministic in-order interleaving.
type probe struct {
	pe     *Profiler
	global *Profiler
}

// OnRef implements cache.Probe.
//
//hotpath:allocfree
func (p *probe) OnRef(a bus.Addr) {
	p.pe.Touch(a)
	p.global.Touch(a)
}

// Set is one machine's attached profilers: one per PE plus the
// machine-wide union stream (the what-if curve for a single shared
// cache serving every PE).
type Set struct {
	PerPE  []*Profiler
	Global *Profiler
}

// Attach installs fresh profilers on every cache of m and returns them.
// Probes are machine wiring (they survive Machine.Reset), so a recycled
// machine must be re-attached per measured trial — which also gives each
// trial its own zeroed histograms.
func Attach(m *machine.Machine) *Set {
	n := m.Processors()
	s := &Set{Global: New(), PerPE: make([]*Profiler, n)}
	for i := 0; i < n; i++ {
		s.PerPE[i] = New()
		m.Cache(i).SetProbe(&probe{pe: s.PerPE[i], global: s.Global})
	}
	return s
}

// Detach removes the probes from every cache of m, restoring the
// zero-overhead unprofiled path.
func Detach(m *machine.Machine) {
	for i := 0; i < m.Processors(); i++ {
		m.Cache(i).SetProbe(nil)
	}
}

// CurveDoc is one profiler's serialized curve. Scope is "machine" for
// the union stream or "pe<N>" for a single PE. Points are ascending in
// Lines — emission is array-ordered, never a map walk, so the rendered
// bytes are deterministic.
type CurveDoc struct {
	Scope     string                 `json:"scope"`
	Refs      uint64                 `json:"refs"`
	Colds     uint64                 `json:"colds"`
	Footprint int                    `json:"footprint"`
	Points    []stackdist.CurvePoint `json:"points"`
}

// docFor serializes one profiler.
func docFor(scope string, p *Profiler, sizes []int) CurveDoc {
	return CurveDoc{
		Scope:     scope,
		Refs:      p.Refs(),
		Colds:     p.Colds(),
		Footprint: p.Footprint(),
		Points:    p.Curve(sizes),
	}
}

// Docs serializes the set's curves in fixed order: machine-wide first,
// then pe0..peN.
func (s *Set) Docs(sizes []int) []CurveDoc {
	out := make([]CurveDoc, 0, len(s.PerPE)+1)
	out = append(out, docFor("machine", s.Global, sizes))
	for i, p := range s.PerPE {
		out = append(out, docFor(fmt.Sprintf("pe%d", i), p, sizes))
	}
	return out
}

// Capture is one profiled trial: the machine shape and seed it ran
// under, plus the attached profiler set.
type Capture struct {
	Shape string
	Seed  uint64
	Set   *Set
}

// Collector accumulates captures across the machines an experiment
// builds. Experiments reach it through Params.Profile: Params.Machine
// attaches a fresh Set to every machine it constructs (or recycles), so
// a multi-shape experiment yields one capture per shape. Append order is
// the experiment's deterministic construction order; the mutex only
// guards against engines running trials of one job concurrently.
type Collector struct {
	mu   sync.Mutex
	caps []Capture
}

// Attach profiles m and records the capture.
func (c *Collector) Attach(shape string, seed uint64, m *machine.Machine) {
	s := Attach(m)
	c.mu.Lock()
	c.caps = append(c.caps, Capture{Shape: shape, Seed: seed, Set: s})
	c.mu.Unlock()
}

// Captures returns the recorded trials in capture order.
func (c *Collector) Captures() []Capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Capture, len(c.caps))
	copy(out, c.caps)
	return out
}
