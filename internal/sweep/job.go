// Package sweep is the experiment-orchestration engine (DESIGN.md S21).
// It expands (experiment × seed replica) specifications into a
// deterministic job set, runs the jobs on a bounded worker pool, memoizes
// results in a content-addressed, versioned artifact store with a JSONL
// journal (checkpoint/resume and incremental re-runs), and merges the
// outputs in canonical job order — so a parallel sweep is byte-identical
// to a serial one, and a warm re-run executes zero simulation jobs.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/experiments"
)

// keyEpoch versions the cache-key derivation itself. Bumping it orphans
// every previously memoized object (they simply stop being referenced).
const keyEpoch = "sweep-job-v2"

// JobSpec is the full configuration of one job: the experiment (which
// encapsulates protocol, machine configuration and workload) plus the
// point on its declared parameter axes. Its content hash is the cache
// key.
type JobSpec struct {
	Experiment string `json:"experiment"`
	// Version is the experiment's cache epoch (experiments.Experiment.Version).
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	Scale   int    `json:"scale"`
	// Salt carries the experiment's content salt (experiments.Experiment.Salt):
	// for trace-driven experiments, the hash of the registered trace bytes.
	// It folds runtime-registered content into the cache key so a memoized
	// artifact can never be served for a same-named experiment with
	// different trace data.
	Salt string `json:"salt,omitempty"`
}

// Key returns the job's content-hash cache key: a truncated SHA-256 over
// the canonical rendering of the configuration.
func (s JobSpec) Key() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d|%d|%s",
		keyEpoch, s.Experiment, s.Version, s.Seed, s.Scale, s.Salt)))
	return hex.EncodeToString(h[:16])
}

// Params converts the spec to experiment parameters.
func (s JobSpec) Params() experiments.Params {
	return experiments.Params{Seed: s.Seed, Scale: s.Scale}
}

// Spec selects one experiment and its replication: every seed becomes one
// job (a replica), later aggregated into a single mean±stddev table.
type Spec struct {
	Experiment string
	// Version and Axes mirror the experiment's declaration; SpecFor
	// fills them from the registry.
	Version int
	Axes    experiments.Axes
	// Seeds are the replica seeds, in run order; empty means {1}.
	Seeds []uint64
	// Scale is the workload multiplier; 0 means 1.
	Scale int
	// Salt mirrors the experiment's content salt; SpecFor fills it.
	Salt string
}

// Job is one schedulable unit: a JobSpec plus its canonical position.
type Job struct {
	// Index is the job's position in canonical (merge) order.
	Index int
	// SpecIndex says which input Spec produced the job, so replicas can
	// be regrouped for aggregation.
	SpecIndex int
	Spec      JobSpec
	Key       string
}

// Expand flattens specs into the canonical job set: spec order × seed
// order, with undeclared axes normalized (a seed-insensitive experiment
// yields one job regardless of how many seeds were requested) and
// duplicate seeds dropped.
func Expand(specs []Spec) []Job {
	var jobs []Job
	for si, sp := range specs {
		seeds := sp.Seeds
		if len(seeds) == 0 {
			seeds = []uint64{1}
		}
		scale := sp.Scale
		if scale == 0 {
			scale = 1
		}
		if !sp.Axes.Scale {
			scale = 1
		}
		if !sp.Axes.Seed {
			seeds = seeds[:1]
		}
		seen := make(map[uint64]bool, len(seeds))
		for _, seed := range seeds {
			if !sp.Axes.Seed {
				seed = 1
			}
			if seen[seed] {
				continue
			}
			seen[seed] = true
			js := JobSpec{Experiment: sp.Experiment, Version: sp.Version, Seed: seed, Scale: scale, Salt: sp.Salt}
			jobs = append(jobs, Job{
				Index:     len(jobs),
				SpecIndex: si,
				Spec:      js,
				Key:       js.Key(),
			})
		}
	}
	return jobs
}

// SpecFor builds the Spec for a registered experiment, pulling its
// declared axes and version from the registry.
func SpecFor(id string, seeds []uint64, scale int) (Spec, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return Spec{}, err
	}
	return Spec{
		Experiment: e.ID,
		Version:    e.Version,
		Axes:       e.Axes,
		Seeds:      seeds,
		Scale:      scale,
		Salt:       e.Salt,
	}, nil
}

// AllSpecs builds one Spec per registered experiment, in registration
// (paper) order — the cmd/paperrepro "regenerate everything" job set.
func AllSpecs(seeds []uint64, scale int) []Spec {
	all := experiments.All()
	specs := make([]Spec, 0, len(all))
	for _, e := range all {
		specs = append(specs, Spec{
			Experiment: e.ID,
			Version:    e.Version,
			Axes:       e.Axes,
			Seeds:      seeds,
			Scale:      scale,
			Salt:       e.Salt,
		})
	}
	return specs
}
