package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// Runner executes one job and returns its table. The default runner goes
// through the experiments registry; tests inject counters and fakes.
type Runner func(spec JobSpec) (*report.Table, error)

// ExperimentRunner is the production Runner: it resolves the job's
// experiment in the registry and executes it with the job's parameters.
func ExperimentRunner(spec JobSpec) (*report.Table, error) {
	e, err := experiments.ByID(spec.Experiment)
	if err != nil {
		return nil, err
	}
	if e.Version != spec.Version {
		return nil, fmt.Errorf("sweep: %s is at version %d but the job was expanded at version %d; rebuild the specs",
			e.ID, e.Version, spec.Version)
	}
	return e.Run(spec.Params())
}

// Options configures an Engine.
type Options struct {
	// Workers sizes the pool; 0 means GOMAXPROCS.
	Workers int
	// Store memoizes results; nil means a fresh in-memory store (no
	// caching across runs).
	Store Store
	// Events, when non-nil, receives a live JSONL progress stream (job
	// start/finish, wall time, cache hit/miss). Event order follows
	// completion order, not canonical order — it is observability, not
	// an artifact. Internally this is NewWriterSink(Events) appended to
	// Sink; the byte format is unchanged.
	Events io.Writer
	// Sink, when non-nil, receives every progress event as a value —
	// the exported subscriber path (a Hub for fan-out/replay, or any
	// custom EventSink). It sees the same events as the Events stream.
	Sink EventSink
	// Runner executes jobs; nil means ExperimentRunner.
	Runner Runner
	// JobTimeout, when positive, bounds each job's wall-clock time. A job
	// that exceeds it is marked failed with a TimeoutError (its goroutine
	// is abandoned, not killed) and the sweep continues.
	JobTimeout time.Duration
}

// Engine runs sweeps.
type Engine struct {
	opts Options
	sink MultiSink
}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.Runner == nil {
		opts.Runner = ExperimentRunner
	}
	e := &Engine{opts: opts}
	if ws := NewWriterSink(opts.Events); ws != nil {
		e.sink = append(e.sink, ws)
	}
	if opts.Sink != nil {
		e.sink = append(e.sink, opts.Sink)
	}
	return e
}

// Event is one progress record on the Events stream.
type Event struct {
	Event      string  `json:"event"` // "start", "done", "failed", "sweep"
	Job        int     `json:"job,omitempty"`
	Key        string  `json:"key,omitempty"`
	Experiment string  `json:"experiment,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Scale      int     `json:"scale,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	WallMS     float64 `json:"wall_ms,omitempty"`
	Jobs       int     `json:"jobs,omitempty"`
	Executed   int     `json:"executed,omitempty"`
	CacheHits  int     `json:"cache_hits,omitempty"`
	Failed     int     `json:"failed,omitempty"`
	// Error carries a failed job's full error text — for panics that
	// includes the recovered value and the worker's stack trace.
	Error string `json:"error,omitempty"`
}

// JobResult pairs a job with its table.
type JobResult struct {
	Job    Job
	Table  *report.Table
	Cached bool
	Wall   time.Duration
}

// ExperimentStat aggregates the jobs of one input spec.
type ExperimentStat struct {
	Experiment string
	Jobs       int
	Executed   int
	CacheHits  int
	// Wall is the summed per-job wall time (CPU-ish cost, not latency).
	Wall time.Duration
}

// Outcome is a completed sweep.
type Outcome struct {
	// Jobs holds every job result in canonical order.
	Jobs []JobResult
	// Tables holds one table per input Spec, in spec order, with seed
	// replicas aggregated into mean ±stddev (ci95) cells.
	Tables []*report.Table
	// Executed counts jobs that ran a simulation; CacheHits counts jobs
	// served from the store.
	Executed  int
	CacheHits int
	// Failed lists jobs that panicked or timed out, in canonical job
	// order. When non-empty, Run also returns a *FailureSummary error;
	// the successful jobs' results are still present (their Outcome
	// entries are filled and their objects are in the store), and specs
	// none of whose jobs succeeded have a nil entry in Tables.
	Failed []JobFailure
	// Wall is the sweep's end-to-end latency.
	Wall time.Duration
	// Stats breaks the sweep down per input spec, in spec order.
	Stats []ExperimentStat
}

// wallNow reads the wall clock for progress timing only; no simulation
// result ever depends on it.
func wallNow() time.Time {
	//lint:ignore observability-only wall time; results never depend on it
	return time.Now()
}

func (e *Engine) emit(ev Event) {
	e.sink.Emit(ev)
}

// Run expands specs into jobs, executes them on the worker pool, and
// merges the results in canonical order.
//
// Memoization: a job whose key is in the store is a cache hit and runs no
// simulation. Checkpointing: as the completion frontier advances, jobs
// are journaled in canonical order, so an interrupted sweep resumes by
// re-running only jobs that never made it into the store. Cancelling ctx
// stops dispatch; jobs already running complete (and are journaled)
// before Run returns ctx's error.
func (e *Engine) Run(ctx context.Context, specs []Spec) (*Outcome, error) {
	jobs := Expand(specs)
	start := wallNow()
	journaled, err := e.opts.Store.JournalKeys()
	if err != nil {
		return nil, err
	}

	results := make([]JobResult, len(jobs))
	failed := make([]*JobFailure, len(jobs))
	var (
		mu       sync.Mutex
		done     = make([]bool, len(jobs))
		frontier int
		firstErr error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range jobs {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				// The producer's select can hand out one more index after
				// cancellation; re-check here so no job starts post-cancel.
				if ctx.Err() != nil {
					continue
				}
				res, err := e.runJob(jobs[i])
				mu.Lock()
				if err != nil && !recoverable(err) {
					// Infrastructure errors (store I/O, bad spec, runner
					// errors) fail the whole sweep fast.
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: job %d (%s seed=%d scale=%d): %w",
							i, jobs[i].Spec.Experiment, jobs[i].Spec.Seed, jobs[i].Spec.Scale, err)
					}
					mu.Unlock()
					cancel()
					continue
				}
				if err != nil {
					// A panic or timeout poisons only its own job: record
					// the failure, keep draining the queue, and surface
					// everything in the FailureSummary at the end.
					failed[i] = &JobFailure{Job: jobs[i], Err: err}
					results[i] = JobResult{Job: jobs[i]}
					e.emit(Event{Event: "failed", Job: i, Key: jobs[i].Key,
						Experiment: jobs[i].Spec.Experiment, Seed: jobs[i].Spec.Seed,
						Scale: jobs[i].Spec.Scale, Error: err.Error()})
				} else {
					results[i] = res
				}
				done[i] = true
				// Advance the journal frontier: lines land in canonical
				// order no matter which worker finished when. Failed jobs
				// advance the frontier but write no line — they are not
				// done and must re-run on resume.
				for frontier < len(jobs) && done[frontier] {
					j := jobs[frontier]
					if failed[frontier] == nil && !journaled[j.Key] {
						line := JournalLine{
							Key:        j.Key,
							Experiment: j.Spec.Experiment,
							Seed:       j.Spec.Seed,
							Scale:      j.Spec.Scale,
							Cached:     results[frontier].Cached,
						}
						if jerr := e.opts.Store.AppendJournal(line); jerr != nil && firstErr == nil {
							firstErr = jerr
							cancel()
						}
						journaled[j.Key] = true
					}
					frontier++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := &Outcome{Jobs: results, Wall: wallNow().Sub(start)}
	for i, r := range results {
		switch {
		case failed[i] != nil:
			out.Failed = append(out.Failed, *failed[i])
		case r.Cached:
			out.CacheHits++
		default:
			out.Executed++
		}
	}
	if err := e.merge(out, specs, results, failed); err != nil {
		return nil, err
	}
	e.emit(Event{Event: "sweep", Jobs: len(jobs), Executed: out.Executed,
		CacheHits: out.CacheHits, Failed: len(out.Failed),
		WallMS: float64(out.Wall) / float64(time.Millisecond)})
	if len(out.Failed) > 0 {
		return out, &FailureSummary{Failures: out.Failed}
	}
	return out, nil
}

// runJob serves one job from the store or executes it and memoizes the
// result.
func (e *Engine) runJob(j Job) (JobResult, error) {
	e.emit(Event{Event: "start", Job: j.Index, Key: j.Key,
		Experiment: j.Spec.Experiment, Seed: j.Spec.Seed, Scale: j.Spec.Scale})
	start := wallNow()
	res, ok, err := e.opts.Store.Get(j.Key)
	if err != nil {
		return JobResult{}, err
	}
	var table *report.Table
	cached := false
	if ok && res.Table != nil {
		table = res.Table
		cached = true
	} else {
		table, err = e.callRunner(j.Spec)
		if err != nil {
			return JobResult{}, err
		}
		if table == nil {
			return JobResult{}, fmt.Errorf("runner returned no table")
		}
		if err := e.opts.Store.Put(&Result{Key: j.Key, Spec: j.Spec, Table: table}); err != nil {
			return JobResult{}, err
		}
	}
	wall := wallNow().Sub(start)
	e.emit(Event{Event: "done", Job: j.Index, Key: j.Key,
		Experiment: j.Spec.Experiment, Seed: j.Spec.Seed, Scale: j.Spec.Scale,
		Cached: cached, WallMS: float64(wall) / float64(time.Millisecond)})
	return JobResult{Job: j, Table: table, Cached: cached, Wall: wall}, nil
}

// callRunner executes the configured Runner with panic recovery and,
// when Options.JobTimeout is set, a wall-clock budget. A recovered panic
// comes back as a *PanicError carrying the stack; a budget overrun comes
// back as a *TimeoutError (the runner goroutine is abandoned — Go cannot
// kill it — and its eventual result is discarded).
func (e *Engine) callRunner(spec JobSpec) (*report.Table, error) {
	run := func() (t *report.Table, err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		return e.opts.Runner(spec)
	}
	if e.opts.JobTimeout <= 0 {
		return run()
	}
	type answer struct {
		table *report.Table
		err   error
	}
	ch := make(chan answer, 1)
	go func() {
		t, err := run()
		ch <- answer{t, err}
	}()
	//lint:ignore determinism the job timeout is a harness wall-clock budget, not simulation state
	timer := time.NewTimer(e.opts.JobTimeout)
	defer timer.Stop()
	select {
	case a := <-ch:
		return a.table, a.err
	case <-timer.C:
		return nil, &TimeoutError{After: e.opts.JobTimeout}
	}
}

// merge regroups replicas by input spec, aggregates them, and fills the
// per-spec statistics — all in spec order, so the merged output is
// independent of scheduling. Failed jobs contribute no replica; a spec
// none of whose jobs succeeded gets a nil table (Tables stays aligned
// with specs, and Run returns a FailureSummary alongside the outcome).
func (e *Engine) merge(out *Outcome, specs []Spec, results []JobResult, failed []*JobFailure) error {
	bySpec := make([][]JobResult, len(specs))
	for i, r := range results {
		if failed[i] != nil {
			continue
		}
		bySpec[r.Job.SpecIndex] = append(bySpec[r.Job.SpecIndex], r)
	}
	for si := range specs {
		group := bySpec[si]
		stat := ExperimentStat{Experiment: specs[si].Experiment, Jobs: len(group)}
		tables := make([]*report.Table, 0, len(group))
		for _, r := range group {
			tables = append(tables, r.Table)
			stat.Wall += r.Wall
			if r.Cached {
				stat.CacheHits++
			} else {
				stat.Executed++
			}
		}
		var merged *report.Table
		if len(tables) > 0 {
			var err error
			merged, err = Aggregate(tables)
			if err != nil {
				return fmt.Errorf("sweep: aggregating %s: %w", specs[si].Experiment, err)
			}
		}
		out.Tables = append(out.Tables, merged)
		out.Stats = append(out.Stats, stat)
	}
	return nil
}
