package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/experiments"
	"repro/internal/report"
)

// Runner executes one job and returns its table. The default runner goes
// through the experiments registry; tests inject counters and fakes.
type Runner func(spec JobSpec) (*report.Table, error)

// BatchRunner executes one job with the batch arena its fused job group
// shares: jobs differing only in seed recycle the group's machines by
// generation reset instead of rebuilding them. The arena belongs to one
// worker goroutine at a time (groups are dispatched whole), so runners
// need no locking. Results must be byte-identical to the unbatched
// path — Machine.Reset's contract, pinned by TestResetEqualsFresh and
// the engine's fused-vs-unfused identity test.
type BatchRunner func(spec JobSpec, arena *batch.Arena) (*report.Table, error)

// resolveExperiment is the registry + version-epoch lookup shared by both
// production runners.
func resolveExperiment(spec JobSpec) (experiments.Experiment, error) {
	e, err := experiments.ByID(spec.Experiment)
	if err != nil {
		return experiments.Experiment{}, err
	}
	if e.Version != spec.Version {
		return experiments.Experiment{}, fmt.Errorf("sweep: %s is at version %d but the job was expanded at version %d; rebuild the specs",
			e.ID, e.Version, spec.Version)
	}
	return e, nil
}

// ExperimentRunner is the production Runner: it resolves the job's
// experiment in the registry and executes it with the job's parameters.
func ExperimentRunner(spec JobSpec) (*report.Table, error) {
	e, err := resolveExperiment(spec)
	if err != nil {
		return nil, err
	}
	return e.Run(spec.Params())
}

// ExperimentBatchRunner is ExperimentRunner with the fused group's arena
// attached to the run's Params, so the experiment's machines are
// recycled across the group's seeds.
func ExperimentBatchRunner(spec JobSpec, arena *batch.Arena) (*report.Table, error) {
	e, err := resolveExperiment(spec)
	if err != nil {
		return nil, err
	}
	p := spec.Params()
	p.Arena = arena
	return e.Run(p)
}

// Options configures an Engine.
type Options struct {
	// Workers sizes the pool; 0 means GOMAXPROCS.
	Workers int
	// Store memoizes results; nil means a fresh in-memory store (no
	// caching across runs).
	Store Store
	// Events, when non-nil, receives a live JSONL progress stream (job
	// start/finish, wall time, cache hit/miss). Event order follows
	// completion order, not canonical order — it is observability, not
	// an artifact. Internally this is NewWriterSink(Events) appended to
	// Sink; the byte format is unchanged.
	Events io.Writer
	// Sink, when non-nil, receives every progress event as a value —
	// the exported subscriber path (a Hub for fan-out/replay, or any
	// custom EventSink). It sees the same events as the Events stream.
	Sink EventSink
	// Runner executes jobs; nil means ExperimentRunner.
	Runner Runner
	// BatchRunner, when non-nil, turns on same-shape job fusion: Expand's
	// canonical job order is cut into maximal runs of jobs equal in
	// everything but seed (experiment, version, scale), each run is
	// dispatched to one worker as a unit, and its jobs execute through
	// BatchRunner with a shared batch.Arena. Journal order, events, cache
	// keys, and store envelopes are unchanged — fusion only changes which
	// worker runs which job and how machines are allocated. When both
	// Runner and BatchRunner are nil, the engine defaults to the batched
	// experiment path (ExperimentRunner + ExperimentBatchRunner); set
	// Runner alone to opt out of fusion.
	BatchRunner BatchRunner
	// JobTimeout, when positive, bounds each job's wall-clock time. A job
	// that exceeds it is marked failed with a TimeoutError (its goroutine
	// is abandoned, not killed) and the sweep continues.
	JobTimeout time.Duration
}

// Engine runs sweeps.
type Engine struct {
	opts Options
	sink MultiSink
}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.Runner == nil {
		// Batched by default: the service layers construct engines with
		// both runners nil and inherit fusion transparently.
		if opts.BatchRunner == nil {
			opts.BatchRunner = ExperimentBatchRunner
		}
		opts.Runner = ExperimentRunner
	}
	e := &Engine{opts: opts}
	if ws := NewWriterSink(opts.Events); ws != nil {
		e.sink = append(e.sink, ws)
	}
	if opts.Sink != nil {
		e.sink = append(e.sink, opts.Sink)
	}
	return e
}

// Event is one progress record on the Events stream.
type Event struct {
	Event      string  `json:"event"` // "start", "done", "failed", "sweep"
	Job        int     `json:"job,omitempty"`
	Key        string  `json:"key,omitempty"`
	Experiment string  `json:"experiment,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Scale      int     `json:"scale,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	WallMS     float64 `json:"wall_ms,omitempty"`
	Jobs       int     `json:"jobs,omitempty"`
	Executed   int     `json:"executed,omitempty"`
	CacheHits  int     `json:"cache_hits,omitempty"`
	Failed     int     `json:"failed,omitempty"`
	// Error carries a failed job's full error text — for panics that
	// includes the recovered value and the worker's stack trace.
	Error string `json:"error,omitempty"`
}

// JobResult pairs a job with its table.
type JobResult struct {
	Job    Job
	Table  *report.Table
	Cached bool
	Wall   time.Duration
}

// ExperimentStat aggregates the jobs of one input spec.
type ExperimentStat struct {
	Experiment string
	Jobs       int
	Executed   int
	CacheHits  int
	// Wall is the summed per-job wall time (CPU-ish cost, not latency).
	Wall time.Duration
}

// Outcome is a completed sweep.
type Outcome struct {
	// Jobs holds every job result in canonical order.
	Jobs []JobResult
	// Tables holds one table per input Spec, in spec order, with seed
	// replicas aggregated into mean ±stddev (ci95) cells.
	Tables []*report.Table
	// Executed counts jobs that ran a simulation; CacheHits counts jobs
	// served from the store.
	Executed  int
	CacheHits int
	// Failed lists jobs that panicked or timed out, in canonical job
	// order. When non-empty, Run also returns a *FailureSummary error;
	// the successful jobs' results are still present (their Outcome
	// entries are filled and their objects are in the store), and specs
	// none of whose jobs succeeded have a nil entry in Tables.
	Failed []JobFailure
	// Wall is the sweep's end-to-end latency.
	Wall time.Duration
	// Stats breaks the sweep down per input spec, in spec order.
	Stats []ExperimentStat
}

// wallNow reads the wall clock for progress timing only; no simulation
// result ever depends on it.
func wallNow() time.Time {
	//lint:ignore observability-only wall time; results never depend on it
	return time.Now()
}

func (e *Engine) emit(ev Event) {
	e.sink.Emit(ev)
}

// Run expands specs into jobs, executes them on the worker pool, and
// merges the results in canonical order.
//
// Memoization: a job whose key is in the store is a cache hit and runs no
// simulation. Checkpointing: as the completion frontier advances, jobs
// are journaled in canonical order, so an interrupted sweep resumes by
// re-running only jobs that never made it into the store. Cancelling ctx
// stops dispatch; jobs already running complete (and are journaled)
// before Run returns ctx's error.
func (e *Engine) Run(ctx context.Context, specs []Spec) (*Outcome, error) {
	jobs := Expand(specs)
	start := wallNow()
	journaled, err := e.opts.Store.JournalKeys()
	if err != nil {
		return nil, err
	}

	results := make([]JobResult, len(jobs))
	failed := make([]*JobFailure, len(jobs))
	var (
		mu       sync.Mutex
		done     = make([]bool, len(jobs))
		frontier int
		firstErr error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// finish records one job's outcome and advances the journal frontier:
	// lines land in canonical order no matter which worker finished when.
	finish := func(i int, res JobResult, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && !recoverable(err) {
			// Infrastructure errors (store I/O, bad spec, runner errors)
			// fail the whole sweep fast.
			if firstErr == nil {
				firstErr = fmt.Errorf("sweep: job %d (%s seed=%d scale=%d): %w",
					i, jobs[i].Spec.Experiment, jobs[i].Spec.Seed, jobs[i].Spec.Scale, err)
			}
			cancel()
			return
		}
		if err != nil {
			// A panic or timeout poisons only its own job: record the
			// failure, keep draining the queue, and surface everything in
			// the FailureSummary at the end.
			failed[i] = &JobFailure{Job: jobs[i], Err: err}
			results[i] = JobResult{Job: jobs[i]}
			e.emit(Event{Event: "failed", Job: i, Key: jobs[i].Key,
				Experiment: jobs[i].Spec.Experiment, Seed: jobs[i].Spec.Seed,
				Scale: jobs[i].Spec.Scale, Error: err.Error()})
		} else {
			results[i] = res
		}
		done[i] = true
		// Failed jobs advance the frontier but write no line — they are
		// not done and must re-run on resume.
		for frontier < len(jobs) && done[frontier] {
			j := jobs[frontier]
			if failed[frontier] == nil && !journaled[j.Key] {
				line := JournalLine{
					Key:        j.Key,
					Experiment: j.Spec.Experiment,
					Seed:       j.Spec.Seed,
					Scale:      j.Spec.Scale,
					Cached:     results[frontier].Cached,
				}
				if jerr := e.opts.Store.AppendJournal(line); jerr != nil && firstErr == nil {
					firstErr = jerr
					cancel()
				}
				journaled[j.Key] = true
			}
			frontier++
		}
	}

	// The dispatch unit is a fused group: a maximal run of canonical-order
	// jobs equal in everything but seed. Without a BatchRunner every group
	// is a single job and dispatch degenerates to the historical per-job
	// scheduling; with one, a group shares one arena on one worker.
	groups := fuseGroups(jobs, e.opts.BatchRunner != nil)

	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for gi := range groups {
			select {
			case idxCh <- gi:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < e.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range idxCh {
				g := groups[gi]
				var arena *batch.Arena
				if e.opts.BatchRunner != nil {
					arena = batch.New()
				}
				for i := g.start; i < g.end; i++ {
					// The producer's select can hand out one more group
					// after cancellation; re-check here so no job starts
					// post-cancel.
					if ctx.Err() != nil {
						continue
					}
					res, err := e.runJob(jobs[i], arena)
					if err != nil && arena != nil {
						// A panicked runner may have left the arena's
						// machines mid-run, and a timed-out runner's
						// abandoned goroutine may still be touching them:
						// quarantine the arena, give the rest of the group
						// a fresh one.
						arena = batch.New()
					}
					finish(i, res, err)
				}
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := &Outcome{Jobs: results, Wall: wallNow().Sub(start)}
	for i, r := range results {
		switch {
		case failed[i] != nil:
			out.Failed = append(out.Failed, *failed[i])
		case r.Cached:
			out.CacheHits++
		default:
			out.Executed++
		}
	}
	if err := e.merge(out, specs, results, failed); err != nil {
		return nil, err
	}
	e.emit(Event{Event: "sweep", Jobs: len(jobs), Executed: out.Executed,
		CacheHits: out.CacheHits, Failed: len(out.Failed),
		WallMS: float64(out.Wall) / float64(time.Millisecond)})
	if len(out.Failed) > 0 {
		return out, &FailureSummary{Failures: out.Failed}
	}
	return out, nil
}

// jobGroup is one fused dispatch unit: jobs[start:end] in canonical
// order, all sharing a machine shape (equal experiment, version, scale).
type jobGroup struct{ start, end int }

// fuseGroups cuts the canonical job order into dispatch units. Expand is
// spec-major with seeds innermost, so a spec's seed replicas are always
// contiguous and fusion never reorders anything.
func fuseGroups(jobs []Job, fuse bool) []jobGroup {
	var groups []jobGroup
	for i := 0; i < len(jobs); {
		j := i + 1
		for fuse && j < len(jobs) && sameJobShape(jobs[i].Spec, jobs[j].Spec) {
			j++
		}
		groups = append(groups, jobGroup{i, j})
		i = j
	}
	return groups
}

// sameShape reports whether two jobs differ only in seed — the fusion
// criterion and exactly the deltas Machine.Reset can absorb.
func sameJobShape(a, b JobSpec) bool {
	return a.Experiment == b.Experiment && a.Version == b.Version && a.Scale == b.Scale
}

// runJob serves one job from the store or executes it and memoizes the
// result. arena, when non-nil, is the fused group's machine arena.
func (e *Engine) runJob(j Job, arena *batch.Arena) (JobResult, error) {
	e.emit(Event{Event: "start", Job: j.Index, Key: j.Key,
		Experiment: j.Spec.Experiment, Seed: j.Spec.Seed, Scale: j.Spec.Scale})
	start := wallNow()
	res, ok, err := e.opts.Store.Get(j.Key)
	if err != nil {
		return JobResult{}, err
	}
	var table *report.Table
	cached := false
	if ok && res.Table != nil {
		table = res.Table
		cached = true
	} else {
		table, err = e.callRunner(j.Spec, arena)
		if err != nil {
			return JobResult{}, err
		}
		if table == nil {
			return JobResult{}, fmt.Errorf("runner returned no table")
		}
		if err := e.opts.Store.Put(&Result{Key: j.Key, Spec: j.Spec, Table: table}); err != nil {
			return JobResult{}, err
		}
	}
	wall := wallNow().Sub(start)
	e.emit(Event{Event: "done", Job: j.Index, Key: j.Key,
		Experiment: j.Spec.Experiment, Seed: j.Spec.Seed, Scale: j.Spec.Scale,
		Cached: cached, WallMS: float64(wall) / float64(time.Millisecond)})
	return JobResult{Job: j, Table: table, Cached: cached, Wall: wall}, nil
}

// callRunner executes the configured Runner with panic recovery and,
// when Options.JobTimeout is set, a wall-clock budget. A recovered panic
// comes back as a *PanicError carrying the stack; a budget overrun comes
// back as a *TimeoutError (the runner goroutine is abandoned — Go cannot
// kill it — and its eventual result is discarded).
func (e *Engine) callRunner(spec JobSpec, arena *batch.Arena) (*report.Table, error) {
	run := func() (t *report.Table, err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		if arena != nil && e.opts.BatchRunner != nil {
			return e.opts.BatchRunner(spec, arena)
		}
		return e.opts.Runner(spec)
	}
	if e.opts.JobTimeout <= 0 {
		return run()
	}
	type answer struct {
		table *report.Table
		err   error
	}
	ch := make(chan answer, 1)
	go func() {
		t, err := run()
		ch <- answer{t, err}
	}()
	//lint:ignore determinism the job timeout is a harness wall-clock budget, not simulation state
	timer := time.NewTimer(e.opts.JobTimeout)
	defer timer.Stop()
	select {
	case a := <-ch:
		return a.table, a.err
	case <-timer.C:
		return nil, &TimeoutError{After: e.opts.JobTimeout}
	}
}

// merge regroups replicas by input spec, aggregates them, and fills the
// per-spec statistics — all in spec order, so the merged output is
// independent of scheduling. Failed jobs contribute no replica; a spec
// none of whose jobs succeeded gets a nil table (Tables stays aligned
// with specs, and Run returns a FailureSummary alongside the outcome).
func (e *Engine) merge(out *Outcome, specs []Spec, results []JobResult, failed []*JobFailure) error {
	bySpec := make([][]JobResult, len(specs))
	for i, r := range results {
		if failed[i] != nil {
			continue
		}
		bySpec[r.Job.SpecIndex] = append(bySpec[r.Job.SpecIndex], r)
	}
	for si := range specs {
		group := bySpec[si]
		stat := ExperimentStat{Experiment: specs[si].Experiment, Jobs: len(group)}
		tables := make([]*report.Table, 0, len(group))
		for _, r := range group {
			tables = append(tables, r.Table)
			stat.Wall += r.Wall
			if r.Cached {
				stat.CacheHits++
			} else {
				stat.Executed++
			}
		}
		var merged *report.Table
		if len(tables) > 0 {
			var err error
			merged, err = Aggregate(tables)
			if err != nil {
				return fmt.Errorf("sweep: aggregating %s: %w", specs[si].Experiment, err)
			}
		}
		out.Tables = append(out.Tables, merged)
		out.Stats = append(out.Stats, stat)
	}
	return nil
}
