package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestWriterSinkMatchesLegacyFormat pins the JSONL byte format of the
// Events writer path: one marshalled Event per line, exactly as the
// engine emitted before the sink refactor.
func TestWriterSinkMatchesLegacyFormat(t *testing.T) {
	var buf bytes.Buffer
	sink := NewWriterSink(&buf)
	evs := []Event{
		{Event: "start", Job: 0, Key: "k0", Experiment: "fig6-1", Seed: 1, Scale: 1},
		{Event: "done", Job: 0, Key: "k0", Experiment: "fig6-1", Seed: 1, Scale: 1, WallMS: 1.5},
		{Event: "sweep", Jobs: 1, Executed: 1},
	}
	for _, ev := range evs {
		sink.Emit(ev)
	}
	var want bytes.Buffer
	for _, ev := range evs {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		want.Write(append(data, '\n'))
	}
	if !bytes.Equal(buf.Bytes(), want.Bytes()) {
		t.Fatalf("writer sink bytes differ from legacy format:\n got %q\nwant %q", buf.Bytes(), want.Bytes())
	}
}

// TestEngineEventsAndSinkAgree runs one sweep with both the legacy
// Events writer and a Hub sink attached: the hub must buffer exactly the
// events the JSONL stream carries, in the same order.
func TestEngineEventsAndSinkAgree(t *testing.T) {
	var buf bytes.Buffer
	hub := NewHub()
	specs := fakeSpecs([]uint64{1, 2})
	if _, err := New(Options{Workers: 1, Runner: fakeRunner, Events: &buf, Sink: hub}).
		Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	hub.Close()
	var fromWriter []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		fromWriter = append(fromWriter, ev)
	}
	fromHub := hub.Snapshot()
	if len(fromHub) != len(fromWriter) {
		t.Fatalf("hub saw %d events, writer saw %d", len(fromHub), len(fromWriter))
	}
	for i := range fromHub {
		if fromHub[i] != fromWriter[i] {
			t.Fatalf("event %d differs: hub %+v writer %+v", i, fromHub[i], fromWriter[i])
		}
	}
}

// TestHubReplayAndLive checks the subscriber contract: a subscription
// created after some events replays them all, then follows live events,
// and drains cleanly at Close.
func TestHubReplayAndLive(t *testing.T) {
	hub := NewHub()
	for i := 0; i < 3; i++ {
		hub.Emit(Event{Event: "start", Job: i})
	}
	sub := hub.Subscribe()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		ev, ok := sub.Next(ctx)
		if !ok || ev.Job != i {
			t.Fatalf("replay event %d: got %+v ok=%v", i, ev, ok)
		}
	}
	// Live phase: the emitter runs concurrently with the blocked reader.
	go func() {
		for i := 3; i < 6; i++ {
			hub.Emit(Event{Event: "done", Job: i})
		}
		hub.Close()
	}()
	for i := 3; i < 6; i++ {
		ev, ok := sub.Next(ctx)
		if !ok || ev.Job != i {
			t.Fatalf("live event %d: got %+v ok=%v", i, ev, ok)
		}
	}
	if _, ok := sub.Next(ctx); ok {
		t.Fatal("subscription did not report closed after drain")
	}
}

// TestHubManySubscribersRace fans a concurrent emitter out to several
// concurrent subscribers — the -race pass is the real assertion; each
// subscriber must also see every event exactly once, in order.
func TestHubManySubscribersRace(t *testing.T) {
	hub := NewHub()
	const events, readers = 200, 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := hub.Subscribe()
			for i := 0; i < events; i++ {
				ev, ok := sub.Next(context.Background())
				if !ok || ev.Job != i {
					errs <- fmt.Errorf("got %+v ok=%v, want job %d", ev, ok, i)
					return
				}
			}
			if _, ok := sub.Next(context.Background()); ok {
				errs <- fmt.Errorf("subscription still open after close")
			}
		}()
	}
	for i := 0; i < events; i++ {
		hub.Emit(Event{Event: "start", Job: i})
	}
	hub.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSubscriptionNextHonorsContext ensures a blocked Next wakes up and
// returns ok=false when its context is cancelled, without the hub
// closing.
func TestSubscriptionNextHonorsContext(t *testing.T) {
	hub := NewHub()
	sub := hub.Subscribe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an event from an empty hub")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not wake on context cancellation")
	}
}
