package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/report"
)

// fakeSpecs builds a small mixed job set: two seed-replicated
// experiments and one axis-free one.
func fakeSpecs(seeds []uint64) []Spec {
	return []Spec{
		{Experiment: "fake-a", Version: 1, Axes: experiments.Axes{Seed: true, Scale: true}, Seeds: seeds, Scale: 1},
		{Experiment: "fake-flat", Version: 1, Seeds: seeds, Scale: 1},
		{Experiment: "fake-b", Version: 2, Axes: experiments.Axes{Seed: true}, Seeds: seeds, Scale: 1},
	}
}

// fakeRunner deterministically derives a table from the job spec, with a
// seed-dependent numeric column so aggregation has something to do. The
// busy loop varies per job to scramble parallel completion order.
func fakeRunner(spec JobSpec) (*report.Table, error) {
	spin := int(spec.Seed%7) * 1000
	x := 0
	for i := 0; i < spin; i++ {
		x += i
	}
	_ = x
	t := &report.Table{
		ID:      spec.Experiment,
		Title:   "fake " + spec.Experiment,
		Columns: []string{"label", "metric"},
	}
	t.AddRowf(spec.Experiment, float64(spec.Seed*10+uint64(spec.Scale)))
	t.AddRowf("constant", 42.0)
	return t, nil
}

// countingRunner wraps a runner with an execution counter.
func countingRunner(r Runner, n *atomic.Int64) Runner {
	return func(spec JobSpec) (*report.Table, error) {
		n.Add(1)
		return r(spec)
	}
}

// renderAll flattens an outcome's merged tables to bytes.
func renderAll(out *Outcome) []byte {
	var b bytes.Buffer
	for _, tb := range out.Tables {
		b.WriteString(tb.Plain())
		b.WriteByte('\n')
	}
	return b.Bytes()
}

func TestExpandAxesAndOrder(t *testing.T) {
	jobs := Expand(fakeSpecs([]uint64{3, 1, 3}))
	// fake-a: seeds 3,1 (dup dropped); fake-flat: collapsed to seed 1;
	// fake-b: seeds 3,1.
	wantSeeds := []uint64{3, 1, 1, 3, 1}
	wantExp := []string{"fake-a", "fake-a", "fake-flat", "fake-b", "fake-b"}
	if len(jobs) != len(wantSeeds) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(wantSeeds))
	}
	keys := map[string]bool{}
	for i, j := range jobs {
		if j.Index != i {
			t.Errorf("job %d has index %d", i, j.Index)
		}
		if j.Spec.Seed != wantSeeds[i] || j.Spec.Experiment != wantExp[i] {
			t.Errorf("job %d = %s seed %d, want %s seed %d",
				i, j.Spec.Experiment, j.Spec.Seed, wantExp[i], wantSeeds[i])
		}
		if keys[j.Key] {
			t.Errorf("duplicate key %s", j.Key)
		}
		keys[j.Key] = true
	}
	// Keys are content hashes: version changes must change them.
	a := JobSpec{Experiment: "x", Version: 1, Seed: 1, Scale: 1}
	b := a
	b.Version = 2
	if a.Key() == b.Key() {
		t.Error("version bump did not invalidate the cache key")
	}
}

// TestDeterministicAcrossWorkers is the engine's core contract: the
// merged report and the journal are byte-identical whether the sweep ran
// on one worker or many.
func TestDeterministicAcrossWorkers(t *testing.T) {
	specs := fakeSpecs([]uint64{1, 2, 3, 4, 5})
	serialStore := NewMemStore()
	serial, err := New(Options{Workers: 1, Store: serialStore, Runner: fakeRunner}).
		Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers *= 2 {
		parStore := NewMemStore()
		par, err := New(Options{Workers: workers, Store: parStore, Runner: fakeRunner}).
			Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderAll(serial), renderAll(par)) {
			t.Errorf("workers=%d: merged report differs from serial", workers)
		}
		if !bytes.Equal(serialStore.JournalBytes(), parStore.JournalBytes()) {
			t.Errorf("workers=%d: journal differs from serial:\nserial:\n%s\nparallel:\n%s",
				workers, serialStore.JournalBytes(), parStore.JournalBytes())
		}
	}
}

func TestWarmCacheExecutesNothing(t *testing.T) {
	specs := fakeSpecs([]uint64{1, 2, 3})
	store := NewMemStore()
	var n atomic.Int64
	eng := New(Options{Workers: 4, Store: store, Runner: countingRunner(fakeRunner, &n)})
	cold, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Executed != len(cold.Jobs) || cold.CacheHits != 0 {
		t.Fatalf("cold run: executed %d cached %d of %d", cold.Executed, cold.CacheHits, len(cold.Jobs))
	}
	before := n.Load()
	warm, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Executed != 0 || warm.CacheHits != len(warm.Jobs) {
		t.Errorf("warm run: executed %d cached %d, want 0/%d", warm.Executed, warm.CacheHits, len(warm.Jobs))
	}
	if n.Load() != before {
		t.Errorf("warm run invoked the runner %d times", n.Load()-before)
	}
	if !bytes.Equal(renderAll(cold), renderAll(warm)) {
		t.Error("warm merged report differs from cold")
	}
	// The journal gained nothing on the warm pass.
	if got := bytes.Count(store.JournalBytes(), []byte("\n")); got != len(cold.Jobs) {
		t.Errorf("journal has %d lines, want %d", got, len(cold.Jobs))
	}
}

// TestKillAndResume interrupts a sweep by cancelling the context after k
// jobs, then verifies the resumed sweep executes exactly the missing jobs
// and produces the same bytes as an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	specs := fakeSpecs([]uint64{1, 2, 3, 4})
	total := len(Expand(specs))
	const k = 4
	if total <= k {
		t.Fatalf("want more than %d jobs, got %d", k, total)
	}

	// Reference: uninterrupted serial run.
	ref, err := New(Options{Workers: 1, Runner: fakeRunner}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	store := NewMemStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n atomic.Int64
	killer := func(spec JobSpec) (*report.Table, error) {
		tb, err := fakeRunner(spec)
		if n.Add(1) == k {
			cancel()
		}
		return tb, err
	}
	_, err = New(Options{Workers: 1, Store: store, Runner: killer}).Run(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if n.Load() != k {
		t.Fatalf("interrupted run executed %d jobs, want %d", n.Load(), k)
	}
	if got := bytes.Count(store.JournalBytes(), []byte("\n")); got != k {
		t.Fatalf("interrupted journal has %d lines, want %d", got, k)
	}

	var resumed atomic.Int64
	out, err := New(Options{Workers: 2, Store: store, Runner: countingRunner(fakeRunner, &resumed)}).
		Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(resumed.Load()); got != total-k {
		t.Errorf("resume executed %d jobs, want %d", got, total-k)
	}
	if out.CacheHits != k {
		t.Errorf("resume cache hits %d, want %d", out.CacheHits, k)
	}
	if !bytes.Equal(renderAll(ref), renderAll(out)) {
		t.Error("resumed merged report differs from uninterrupted run")
	}
	if got := bytes.Count(store.JournalBytes(), []byte("\n")); got != total {
		t.Errorf("final journal has %d lines, want %d", got, total)
	}
}

// TestJournalTruncationResume simulates a hard kill against the on-disk
// store: the journal is truncated to a prefix (including a torn final
// line) and the un-journaled objects are deleted; the resumed sweep must
// execute exactly the missing jobs.
func TestJournalTruncationResume(t *testing.T) {
	specs := fakeSpecs([]uint64{1, 2, 3, 4})
	dir := t.TempDir()
	store, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(Options{Workers: 3, Store: store, Runner: fakeRunner}).
		Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Jobs)

	data, err := os.ReadFile(store.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != total {
		t.Fatalf("journal has %d lines, want %d", len(lines), total)
	}
	const keep = 3
	// Keep `keep` whole lines plus a torn fragment of the next — the
	// shape a killed process leaves behind.
	truncated := strings.Join(lines[:keep], "\n") + "\n" + lines[keep][:10]
	if err := os.WriteFile(store.JournalPath(), []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}
	kept, err := store.JournalKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != keep {
		t.Fatalf("truncated journal yields %d keys, want %d (torn line must be ignored)", len(kept), keep)
	}
	for _, j := range full.Jobs {
		if !kept[j.Job.Key] {
			if err := os.Remove(dir + "/objects/" + j.Job.Key + ".json"); err != nil {
				t.Fatal(err)
			}
		}
	}

	var n atomic.Int64
	out, err := New(Options{Workers: 2, Store: store, Runner: countingRunner(fakeRunner, &n)}).
		Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(n.Load()); got != total-keep {
		t.Errorf("resume executed %d jobs, want %d", got, total-keep)
	}
	if !bytes.Equal(renderAll(full), renderAll(out)) {
		t.Error("resumed merged report differs from the original run")
	}
}

func TestDirStoreRoundTripAndVersioning(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Experiment: "fake-a", Version: 1, Seed: 7, Scale: 2}
	tb, _ := fakeRunner(spec)
	if err := store.Put(&Result{Key: spec.Key(), Spec: spec, Table: tb}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Get(spec.Key())
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if got.Table.Plain() != tb.Plain() {
		t.Error("round-tripped table differs")
	}
	if _, ok, _ := store.Get("no-such-key"); ok {
		t.Error("phantom object")
	}

	// An incompatible layout version clears the store.
	if err := os.WriteFile(dir+"/VERSION", []byte("sweep-store-v0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	store2, err := OpenDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := store2.Get(spec.Key()); ok {
		t.Error("object survived a store-version bump")
	}
	if v, err := os.ReadFile(dir + "/VERSION"); err != nil || strings.TrimSpace(string(v)) != storeVersion {
		t.Errorf("VERSION not rewritten: %q %v", v, err)
	}
}

func TestAggregate(t *testing.T) {
	mk := func(metric string) *report.Table {
		return &report.Table{
			ID:      "agg",
			Columns: []string{"label", "metric"},
			Rows:    [][]string{{"row", metric}},
			Note:    "base note",
		}
	}
	// Single replica passes through untouched (pointer identity keeps
	// byte-identity with a direct run).
	single := mk("1.5")
	got, err := Aggregate([]*report.Table{single})
	if err != nil {
		t.Fatal(err)
	}
	if got != single {
		t.Error("single replica was not passed through")
	}

	out, err := Aggregate([]*report.Table{mk("10"), mk("20"), mk("30")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0] != "row" {
		t.Errorf("label cell rewritten to %q", out.Rows[0][0])
	}
	cell := out.Rows[0][1]
	if !strings.Contains(cell, "20") || !strings.Contains(cell, "±10") || !strings.Contains(cell, "ci") {
		t.Errorf("aggregated cell %q missing mean/sd/ci", cell)
	}
	if !strings.Contains(out.Note, "3 seeds") || !strings.Contains(out.Note, "base note") {
		t.Errorf("note %q", out.Note)
	}

	// Identical numeric cells keep their original formatting.
	out, err = Aggregate([]*report.Table{mk("7.25"), mk("7.25")})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][1] != "7.25" {
		t.Errorf("identical cells reformatted to %q", out.Rows[0][1])
	}

	// Shape mismatches are errors, not silent misalignment.
	bad := mk("1")
	bad.Rows = append(bad.Rows, []string{"extra", "2"})
	if _, err := Aggregate([]*report.Table{mk("1"), bad}); err == nil {
		t.Error("row-count mismatch not rejected")
	}
}

func TestEventsStream(t *testing.T) {
	var buf bytes.Buffer
	specs := fakeSpecs([]uint64{1, 2})
	if _, err := New(Options{Workers: 2, Runner: fakeRunner, Events: &buf}).
		Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	var starts, dones, sweeps int
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		switch {
		case strings.Contains(line, `"event":"start"`):
			starts++
		case strings.Contains(line, `"event":"done"`):
			dones++
		case strings.Contains(line, `"event":"sweep"`):
			sweeps++
		default:
			t.Errorf("unrecognized event line %q", line)
		}
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Errorf("event line is not one JSON object: %q", line)
		}
	}
	total := len(Expand(specs))
	if starts != total || dones != total || sweeps != 1 {
		t.Errorf("got %d starts, %d dones, %d sweeps; want %d/%d/1", starts, dones, sweeps, total, total)
	}
}

func TestRunnerErrorAborts(t *testing.T) {
	boom := func(spec JobSpec) (*report.Table, error) {
		if spec.Seed == 2 {
			return nil, fmt.Errorf("boom")
		}
		return fakeRunner(spec)
	}
	_, err := New(Options{Workers: 2, Runner: boom}).
		Run(context.Background(), fakeSpecs([]uint64{1, 2, 3}))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want job error", err)
	}
}

// TestExperimentRunnerIntegration drives cheap registry experiments
// through the real runner and checks the merged output matches a direct
// experiment run byte for byte.
func TestExperimentRunnerIntegration(t *testing.T) {
	ids := []string{"fig3-1", "fig6-1", "section7-sbb"}
	var specs []Spec
	for _, id := range ids {
		sp, err := SpecFor(id, []uint64{1, 2}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Axes.Seed {
			t.Fatalf("%s unexpectedly declares a seed axis", id)
		}
		specs = append(specs, sp)
	}
	out, err := New(Options{Workers: 2}).Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != len(ids) { // axis-free: one job each despite 2 seeds
		t.Fatalf("expanded to %d jobs, want %d", len(out.Jobs), len(ids))
	}
	for i, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := e.Run(experiments.Params{Seed: 1, Scale: 1})
		if err != nil {
			t.Fatal(err)
		}
		if out.Tables[i].Plain() != direct.Plain() {
			t.Errorf("%s: sweep output differs from direct run", id)
		}
	}

	// A stale spec version is refused, not silently served.
	stale := specs[0]
	stale.Version = 99
	if _, err := New(Options{Workers: 1}).Run(context.Background(), []Spec{stale}); err == nil {
		t.Error("stale experiment version accepted")
	}
}
