package sweep

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/report"
	"repro/internal/stats"
)

// Aggregate merges seed-replica tables of one experiment into a single
// table. With one replica the table passes through untouched (so a
// single-seed sweep is byte-identical to a direct experiment run). With
// several, every cell that parses as a number in all replicas becomes
// "mean ±stddev (ci ...)" — sample stddev over the seeds, ci the 95%
// confidence half-width 1.96·sd/√n — while cells whose text is identical
// across replicas (labels, protocol names) pass through. Differing
// non-numeric cells keep the first replica's value; the note records the
// aggregation either way.
func Aggregate(tables []*report.Table) (*report.Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("no replicas")
	}
	first := tables[0]
	if len(tables) == 1 {
		return first, nil
	}
	for i, t := range tables[1:] {
		if err := sameShape(first, t); err != nil {
			return nil, fmt.Errorf("replica %d: %w", i+1, err)
		}
	}
	n := len(tables)
	out := &report.Table{
		ID:      first.ID,
		Title:   first.Title,
		Columns: append([]string(nil), first.Columns...),
	}
	note := fmt.Sprintf("aggregated over %d seeds: numeric cells are mean ±stddev (ci = 1.96·sd/√n)", n)
	if first.Note != "" {
		note = first.Note + " | " + note
	}
	out.Note = note
	for r := range first.Rows {
		row := make([]string, len(first.Columns))
		for c := range first.Columns {
			row[c] = aggregateCell(tables, r, c)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// sameShape checks that two replica tables can be merged cell-wise.
func sameShape(a, b *report.Table) error {
	if a.ID != b.ID {
		return fmt.Errorf("table ID %q != %q", b.ID, a.ID)
	}
	if len(a.Columns) != len(b.Columns) {
		return fmt.Errorf("column count %d != %d", len(b.Columns), len(a.Columns))
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row count %d != %d", len(b.Rows), len(a.Rows))
	}
	return nil
}

// aggregateCell merges one (row, column) position across replicas.
func aggregateCell(tables []*report.Table, r, c int) string {
	firstCell := tables[0].Rows[r][c]
	var w stats.Welford
	numeric, identical := true, true
	for _, t := range tables {
		cell := t.Rows[r][c]
		if cell != firstCell {
			identical = false
		}
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			numeric = false
			continue
		}
		w.Observe(v)
	}
	if identical || !numeric {
		return firstCell
	}
	sd := w.StdDev()
	ci := 1.96 * sd / math.Sqrt(float64(w.Count()))
	return report.FormatMeanSD(w.Mean(), sd, ci)
}
