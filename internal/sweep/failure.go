package sweep

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// PanicError wraps a panic recovered inside a sweep worker. The job that
// panicked is marked failed and the run keeps draining the queue — one
// poisoned cell must not take down a long campaign — but the failure (with
// the recovered value and stack) is journaled on the events stream and
// surfaced in the run's FailureSummary.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("runner panicked: %v\n%s", p.Value, p.Stack)
}

// TimeoutError marks a job that exceeded Options.JobTimeout. The runner's
// goroutine cannot be killed and is abandoned; the job is marked failed
// and the sweep continues.
type TimeoutError struct {
	// After is the configured per-job wall-clock budget.
	After time.Duration
}

func (t *TimeoutError) Error() string {
	return fmt.Sprintf("runner exceeded the %v per-job timeout", t.After)
}

// JobFailure pairs a failed job with its error.
type JobFailure struct {
	Job Job
	Err error
}

// FailureSummary is the error Run returns when recoverable failures
// (panics, timeouts) occurred: the returned Outcome still carries every
// successful job's result (partial-result journaling), but the run as a
// whole is a failure and callers must exit non-zero.
type FailureSummary struct {
	// Failures lists the failed jobs in canonical job order.
	Failures []JobFailure
}

func (f *FailureSummary) Error() string {
	if len(f.Failures) == 0 {
		return "sweep: failure summary with no failures"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep: %d job(s) failed:", len(f.Failures))
	for _, jf := range f.Failures {
		first, _, _ := strings.Cut(jf.Err.Error(), "\n")
		fmt.Fprintf(&sb, "\n  job %d (%s seed=%d scale=%d): %s",
			jf.Job.Index, jf.Job.Spec.Experiment, jf.Job.Spec.Seed, jf.Job.Spec.Scale, first)
	}
	return sb.String()
}

// recoverable reports whether err is a per-job failure the sweep should
// absorb and continue past (panic, timeout), as opposed to an
// infrastructure error (store I/O, bad spec) that fail-fasts the run.
func recoverable(err error) bool {
	var pe *PanicError
	var te *TimeoutError
	return errors.As(err, &pe) || errors.As(err, &te)
}
