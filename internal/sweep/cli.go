package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// ReportRunError is the one uniform rendering of an Engine.Run error for
// every CLI (cmd/sweep, cmd/paperrepro, cmd/faultcampaign). It writes
// the diagnosis to w prefixed with the tool name and returns the exit
// code the process must use:
//
//	0    err was nil — nothing was written
//	130  the run was interrupted (context.Canceled): completed jobs are
//	     journaled, so re-running with the same cache directory resumes
//	1    per-job failures (a *FailureSummary: panics, timeouts) — every
//	     failure is listed and the completed/total tally printed — or
//	     any other infrastructure error
//
// out may be nil (it is, whenever err is not a FailureSummary).
func ReportRunError(w io.Writer, tool string, out *Outcome, err error) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(w, "%s: interrupted; completed jobs are journaled — re-run with the same -cache-dir to resume\n", tool)
		return 130
	}
	var failures *FailureSummary
	if errors.As(err, &failures) {
		// Per-job failures: the successful jobs' results are in the
		// store; report every failure and make the caller exit non-zero
		// rather than presenting a partial result as complete.
		fmt.Fprintf(w, "%s: %s\n", tool, failures.Error())
		if out != nil {
			fmt.Fprintf(w, "%s: %d of %d job(s) completed and are journaled; re-run to retry the failures\n",
				tool, len(out.Jobs)-len(out.Failed), len(out.Jobs))
		}
		return 1
	}
	fmt.Fprintf(w, "%s: %v\n", tool, err)
	return 1
}
