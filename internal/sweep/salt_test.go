package sweep

import (
	"testing"

	"repro/internal/experiments"
)

// TestSaltChangesKey pins the cache-safety property behind trace
// workloads: same experiment coordinates, different registered content,
// different cache key.
func TestSaltChangesKey(t *testing.T) {
	a := JobSpec{Experiment: "trace-x", Version: 1, Seed: 1, Scale: 1}
	b := a
	b.Salt = "deadbeefdeadbeef"
	if a.Key() == b.Key() {
		t.Fatal("salt does not reach the cache key")
	}
}

// TestSaltFlowsFromRegistry checks the full path: a registered trace's
// content salt lands on the Spec, the expanded Job, and the key.
func TestSaltFlowsFromRegistry(t *testing.T) {
	raw := []byte("0 read 5 shared\n0 halt\n")
	if err := experiments.RegisterTrace("sweep-salt-probe", raw); err != nil {
		t.Fatal(err)
	}
	sp, err := SpecFor("trace-sweep-salt-probe", nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := experiments.TraceSalt(raw)
	if sp.Salt != want {
		t.Fatalf("Spec.Salt = %q, want %q", sp.Salt, want)
	}
	jobs := Expand([]Spec{sp})
	if len(jobs) != 1 {
		t.Fatalf("expanded %d jobs, want 1 (no declared axes)", len(jobs))
	}
	if jobs[0].Spec.Salt != want {
		t.Fatalf("JobSpec.Salt = %q, want %q", jobs[0].Spec.Salt, want)
	}
	unsalted := jobs[0].Spec
	unsalted.Salt = ""
	if unsalted.Key() == jobs[0].Key {
		t.Fatal("salted and unsalted keys collide")
	}
}
