package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/report"
)

// TestPanicRecoveryDrainsQueue is the regression test for the worker
// panic path: one job deterministically panics, the run keeps draining
// the rest, the failure carries the panicking stack, and the events
// stream journals it — no wedged pool, no lost results, non-nil error.
func TestPanicRecoveryDrainsQueue(t *testing.T) {
	var executed atomic.Int64
	runner := func(spec JobSpec) (*report.Table, error) {
		executed.Add(1)
		if spec.Seed == 2 {
			panic("poisoned cell")
		}
		return fakeRunner(spec)
	}
	var events bytes.Buffer
	eng := New(Options{Workers: 4, Runner: runner, Events: &events})
	specs := []Spec{{
		Experiment: "fake-a", Version: 1,
		Axes: fakeSpecs(nil)[0].Axes, Seeds: []uint64{1, 2, 3, 4}, Scale: 1,
	}}
	out, err := eng.Run(context.Background(), specs)
	var summary *FailureSummary
	if !errors.As(err, &summary) {
		t.Fatalf("Run returned %v, want a *FailureSummary", err)
	}
	if out == nil {
		t.Fatal("Run returned a nil outcome alongside the failure summary")
	}
	if got := executed.Load(); got != 4 {
		t.Errorf("executed %d jobs, want 4 (queue must drain past the panic)", got)
	}
	if len(out.Failed) != 1 || len(summary.Failures) != 1 {
		t.Fatalf("got %d outcome failures / %d summary failures, want 1/1", len(out.Failed), len(summary.Failures))
	}
	var pe *PanicError
	if !errors.As(out.Failed[0].Err, &pe) {
		t.Fatalf("failure error is %T, want *PanicError", out.Failed[0].Err)
	}
	if !strings.Contains(pe.Error(), "poisoned cell") || !strings.Contains(pe.Error(), "goroutine") {
		t.Errorf("panic error lacks value or stack: %s", pe.Error())
	}
	if out.Failed[0].Job.Spec.Seed != 2 {
		t.Errorf("failed job has seed %d, want 2", out.Failed[0].Job.Spec.Seed)
	}
	// The three healthy replicas still produced a merged table.
	if len(out.Tables) != 1 || out.Tables[0] == nil {
		t.Fatalf("expected a merged table from the surviving replicas, got %+v", out.Tables)
	}
	// The failure (with stack) is on the events stream.
	var sawFailed bool
	for _, raw := range strings.Split(events.String(), "\n") {
		if strings.TrimSpace(raw) == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", raw, err)
		}
		if ev.Event == "failed" {
			sawFailed = true
			if !strings.Contains(ev.Error, "poisoned cell") || !strings.Contains(ev.Error, "goroutine") {
				t.Errorf("failed event lacks panic value or stack: %q", ev.Error)
			}
		}
	}
	if !sawFailed {
		t.Error("events stream has no \"failed\" record")
	}
	// The panicking job must not be journaled as done: a resume re-runs
	// exactly it.
	done, err2 := eng.opts.Store.JournalKeys()
	if err2 != nil {
		t.Fatalf("JournalKeys: %v", err2)
	}
	failedKey := out.Failed[0].Job.Key
	if done[failedKey] {
		t.Error("failed job was journaled as done")
	}
	if len(done) != 3 {
		t.Errorf("journal has %d keys, want 3 (the successful jobs)", len(done))
	}
}

// TestPanickingJobReRunsOnResume closes the loop: after a run with a
// panic, a second run over the same store re-executes only the failed job.
func TestPanickingJobReRunsOnResume(t *testing.T) {
	store, err := OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{{
		Experiment: "fake-a", Version: 1,
		Axes: fakeSpecs(nil)[0].Axes, Seeds: []uint64{1, 2, 3}, Scale: 1,
	}}
	poison := atomic.Bool{}
	poison.Store(true)
	var executed atomic.Int64
	runner := func(spec JobSpec) (*report.Table, error) {
		executed.Add(1)
		if poison.Load() && spec.Seed == 2 {
			panic("first-run poison")
		}
		return fakeRunner(spec)
	}
	if _, err := New(Options{Workers: 1, Store: store, Runner: runner}).Run(context.Background(), specs); err == nil {
		t.Fatal("first run unexpectedly succeeded")
	}
	poison.Store(false)
	executed.Store(0)
	out, err := New(Options{Workers: 1, Store: store, Runner: runner}).Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if got := executed.Load(); got != 1 {
		t.Errorf("resume executed %d jobs, want 1 (only the previously failed one)", got)
	}
	if out.CacheHits != 2 || out.Executed != 1 {
		t.Errorf("resume: %d cache hits / %d executed, want 2/1", out.CacheHits, out.Executed)
	}
}

// TestJobTimeout pins the wall-clock budget: a hung runner is abandoned,
// the job fails with a TimeoutError, and the other jobs complete.
func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	runner := func(spec JobSpec) (*report.Table, error) {
		if spec.Seed == 2 {
			<-release // hang until the test tears down
		}
		return fakeRunner(spec)
	}
	eng := New(Options{Workers: 2, Runner: runner, JobTimeout: 50 * time.Millisecond})
	specs := []Spec{{
		Experiment: "fake-a", Version: 1,
		Axes: fakeSpecs(nil)[0].Axes, Seeds: []uint64{1, 2, 3}, Scale: 1,
	}}
	out, err := eng.Run(context.Background(), specs)
	var summary *FailureSummary
	if !errors.As(err, &summary) {
		t.Fatalf("Run returned %v, want a *FailureSummary", err)
	}
	if len(out.Failed) != 1 {
		t.Fatalf("got %d failures, want 1", len(out.Failed))
	}
	var te *TimeoutError
	if !errors.As(out.Failed[0].Err, &te) {
		t.Fatalf("failure error is %T, want *TimeoutError", out.Failed[0].Err)
	}
	if out.Failed[0].Job.Spec.Seed != 2 {
		t.Errorf("timed-out job has seed %d, want 2", out.Failed[0].Job.Spec.Seed)
	}
	if out.Executed != 2 {
		t.Errorf("executed %d, want 2 healthy jobs", out.Executed)
	}
}

// corruptOneObject finds the store's single object file and rewrites it
// with mutate, returning its path.
func corruptOneObject(t *testing.T, store *DirStore, mutate func([]byte) []byte) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(store.Dir(), "objects", "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one object, got %v (err %v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(matches[0], mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return matches[0]
}

// TestDirStoreCorruptEntryQuarantined covers the two corruption shapes
// the resume path must survive: a truncated entry and a bit-flipped
// entry. Both must read as misses, move to quarantine/, and recompute —
// never silently load.
func TestDirStoreCorruptEntryQuarantined(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/3] }},
		{"bit-flipped", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x01
			return c
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store, err := OpenDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			specs := []Spec{{Experiment: "fake-flat", Version: 1, Seeds: []uint64{1}, Scale: 1}}
			var executed atomic.Int64
			runner := countingRunner(fakeRunner, &executed)
			if _, err := New(Options{Workers: 1, Store: store, Runner: runner}).Run(context.Background(), specs); err != nil {
				t.Fatalf("seed run: %v", err)
			}
			if executed.Load() != 1 {
				t.Fatalf("seed run executed %d jobs, want 1", executed.Load())
			}
			objPath := corruptOneObject(t, store, tc.mutate)

			// Journal says done, object is corrupt: the job must re-run.
			out, err := New(Options{Workers: 1, Store: store, Runner: runner}).Run(context.Background(), specs)
			if err != nil {
				t.Fatalf("rerun: %v", err)
			}
			if executed.Load() != 2 {
				t.Errorf("corrupt entry served from cache: executed %d, want 2", executed.Load())
			}
			if out.CacheHits != 0 || out.Executed != 1 {
				t.Errorf("rerun: %d hits / %d executed, want 0/1", out.CacheHits, out.Executed)
			}
			if store.Quarantined() != 1 {
				t.Errorf("Quarantined() = %d, want 1", store.Quarantined())
			}
			qPath := filepath.Join(store.Dir(), "quarantine", filepath.Base(objPath))
			if _, err := os.Stat(qPath); err != nil {
				t.Errorf("corrupt object not in quarantine: %v", err)
			}
			// The recomputed object must be healthy: a third run is a pure
			// cache hit.
			out, err = New(Options{Workers: 1, Store: store, Runner: runner}).Run(context.Background(), specs)
			if err != nil {
				t.Fatalf("third run: %v", err)
			}
			if out.CacheHits != 1 || executed.Load() != 2 {
				t.Errorf("third run: %d hits, executed total %d; want 1 hit and no new execution", out.CacheHits, executed.Load())
			}
		})
	}
}

// TestDirStoreEnvelopeRoundTrip pins the v2 framing: what Put writes, Get
// verifies and returns intact, and the raw file carries a hex digest.
func TestDirStoreEnvelopeRoundTrip(t *testing.T) {
	store, err := OpenDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tbl := &report.Table{ID: "x", Columns: []string{"a"}}
	tbl.AddRow("1")
	spec := JobSpec{Experiment: "x", Version: 1, Seed: 9, Scale: 1}
	if err := store.Put(&Result{Key: spec.Key(), Spec: spec, Table: tbl}); err != nil {
		t.Fatal(err)
	}
	res, ok, err := store.Get(spec.Key())
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v)", ok, err)
	}
	if res.Table.ID != "x" || len(res.Table.Rows) != 1 {
		t.Errorf("round-trip mangled the table: %+v", res.Table)
	}
	data, err := os.ReadFile(filepath.Join(store.Dir(), "objects", spec.Key()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("object is not an envelope: %v", err)
	}
	if len(env.SHA256) != 64 {
		t.Errorf("sha256 field is %q, want 64 hex chars", env.SHA256)
	}
}
