package sweep

import (
	"bytes"
	"context"
	"testing"
)

// realSpecs expands a couple of fast, seed-dependent experiments — two
// distinct shapes, several seeds each, exactly the fusion scenario.
func realSpecs(t *testing.T, seeds []uint64) []Spec {
	t.Helper()
	var specs []Spec
	for _, id := range []string{"ablation-threshold", "ablation-private"} {
		s, err := SpecFor(id, seeds, 1)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// TestBatchedMatchesUnbatched is the fusion identity contract: a batched
// engine (fused same-shape groups, arena-recycled machines) must produce
// byte-identical merged reports, journals, and store envelopes to the
// unbatched per-job path.
func TestBatchedMatchesUnbatched(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	specs := realSpecs(t, []uint64{1, 2, 3})

	unbatchedStore := NewMemStore()
	unbatched, err := New(Options{Workers: 2, Store: unbatchedStore, Runner: ExperimentRunner}).
		Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	batchedStore := NewMemStore()
	batched, err := New(Options{Workers: 2, Store: batchedStore}). // nil runners = batched default
									Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	if batched.Executed != unbatched.Executed || batched.CacheHits != unbatched.CacheHits {
		t.Errorf("batched executed/cached = %d/%d, unbatched %d/%d",
			batched.Executed, batched.CacheHits, unbatched.Executed, unbatched.CacheHits)
	}
	if !bytes.Equal(renderAll(batched), renderAll(unbatched)) {
		t.Errorf("batched merged report differs from unbatched:\nbatched:\n%s\nunbatched:\n%s",
			renderAll(batched), renderAll(unbatched))
	}
	if !bytes.Equal(batchedStore.JournalBytes(), unbatchedStore.JournalBytes()) {
		t.Errorf("batched journal differs from unbatched:\nbatched:\n%s\nunbatched:\n%s",
			batchedStore.JournalBytes(), unbatchedStore.JournalBytes())
	}
	// The on-disk envelopes are content-addressed; compare them raw,
	// byte for byte, per job key.
	for _, j := range Expand(specs) {
		want, ok, err := unbatchedStore.GetRaw(j.Key)
		if err != nil || !ok {
			t.Fatalf("unbatched store missing %s: %v", j.Key, err)
		}
		got, ok, err := batchedStore.GetRaw(j.Key)
		if err != nil || !ok {
			t.Fatalf("batched store missing %s: %v", j.Key, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("envelope for %s (%s seed %d) differs between batched and unbatched",
				j.Key, j.Spec.Experiment, j.Spec.Seed)
		}
	}
}

// TestFuseGroups pins the group-cutting rules: same-shape runs fuse,
// shape changes cut, and fuse=false degenerates to one job per group.
func TestFuseGroups(t *testing.T) {
	mk := func(exp string, seed uint64) Job {
		return Job{Spec: JobSpec{Experiment: exp, Version: 1, Seed: seed, Scale: 1}}
	}
	jobs := []Job{mk("a", 1), mk("a", 2), mk("a", 3), mk("b", 1), mk("b", 2)}
	got := fuseGroups(jobs, true)
	want := []jobGroup{{0, 3}, {3, 5}}
	if len(got) != len(want) {
		t.Fatalf("got %d groups %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
	}
	unfused := fuseGroups(jobs, false)
	if len(unfused) != len(jobs) {
		t.Fatalf("unfused got %d groups, want %d", len(unfused), len(jobs))
	}
	for i, g := range unfused {
		if g.start != i || g.end != i+1 {
			t.Fatalf("unfused group %d = %v", i, g)
		}
	}
	if got := fuseGroups(nil, true); len(got) != 0 {
		t.Fatalf("empty jobs produced groups %v", got)
	}
}
