package sweep

import (
	"context"
	"encoding/json"
	"io"
	"sync"
)

// EventSink receives the engine's progress events. Emit may be called
// concurrently from every worker goroutine; implementations must be
// race-safe. Events arrive in completion order, not canonical order —
// the stream is observability, never an artifact.
type EventSink interface {
	Emit(Event)
}

// WriterSink adapts an io.Writer into an EventSink that renders each
// event as one JSON line — the exact byte format the engine has always
// produced for Options.Events (cmd/sweep -events). A nil writer yields a
// nil sink.
type WriterSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterSink wraps w; it returns nil when w is nil so callers can
// pass the result straight into a sink list.
func NewWriterSink(w io.Writer) *WriterSink {
	if w == nil {
		return nil
	}
	return &WriterSink{w: w}
}

// Emit implements EventSink: one marshalled JSON object per line, whole
// lines only (the mutex keeps concurrent workers from interleaving).
func (s *WriterSink) Emit(ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.w.Write(append(data, '\n'))
	s.mu.Unlock()
}

// Hub is a race-safe fan-out EventSink with replay: it buffers every
// event it sees, and a Subscription created at any time first replays
// the buffer from the beginning and then follows the live stream. This
// is the service layer's bridge from one engine run to any number of
// late-joining progress watchers (SSE/JSONL clients).
//
// The buffer is unbounded by design: a sweep of J jobs emits O(J)
// events, and the hub lives only as long as its run is worth replaying.
type Hub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
}

// NewHub returns an empty open hub.
func NewHub() *Hub {
	h := &Hub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// Emit implements EventSink.
func (h *Hub) Emit(ev Event) {
	h.mu.Lock()
	if !h.closed {
		h.events = append(h.events, ev)
	}
	h.mu.Unlock()
	h.cond.Broadcast()
}

// Close marks the stream complete: blocked subscribers drain whatever
// remains and then see ok=false. Emit after Close is a no-op. Close is
// idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// Snapshot returns a copy of every event buffered so far.
func (h *Hub) Snapshot() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

// Subscribe returns a subscription positioned at the start of the
// buffer: the full history replays first, then live events follow.
func (h *Hub) Subscribe() *Subscription {
	return &Subscription{hub: h}
}

// Subscription is one reader's cursor into a Hub. It is not safe for
// concurrent use by multiple goroutines (each reader subscribes
// itself).
type Subscription struct {
	hub  *Hub
	next int
}

// Next blocks until another event is available and returns it. It
// returns ok=false when the hub is closed and fully drained, or when
// ctx is done (whichever happens first).
func (s *Subscription) Next(ctx context.Context) (Event, bool) {
	h := s.hub
	// Wake the cond wait when the context fires; AfterFunc's stop also
	// detaches the watcher once we return.
	stop := context.AfterFunc(ctx, h.cond.Broadcast)
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if s.next < len(h.events) {
			ev := h.events[s.next]
			s.next++
			return ev, true
		}
		if h.closed || ctx.Err() != nil {
			return Event{}, false
		}
		h.cond.Wait()
	}
}

// MultiSink fans one event out to several sinks in order; nil entries
// are skipped.
type MultiSink []EventSink

// Emit implements EventSink.
func (m MultiSink) Emit(ev Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(ev)
		}
	}
}
