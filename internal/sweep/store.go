package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/report"
)

// storeVersion is written to the store's VERSION file. A directory whose
// version does not match is cleared: its objects were produced by an
// incompatible layout and must not be served. v2 wraps every object in a
// SHA-256-checksummed envelope.
const storeVersion = "sweep-store-v2"

// Result is one memoized job output.
type Result struct {
	Key   string        `json:"key"`
	Spec  JobSpec       `json:"spec"`
	Table *report.Table `json:"table"`
}

// JournalLine records one completed job. The engine appends lines in
// canonical job order (a frontier), so for a given store state the
// journal bytes are identical whatever the worker count, and a truncated
// journal marks exactly a prefix of the sweep as done.
type JournalLine struct {
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Scale      int    `json:"scale"`
	Cached     bool   `json:"cached"`
}

// Store memoizes job results and keeps the completion journal. Get and
// Put may be called concurrently from workers; the engine serializes
// AppendJournal calls itself (they must land in canonical order).
type Store interface {
	// Get returns the memoized result for key, if present.
	Get(key string) (*Result, bool, error)
	// Put memoizes a result under res.Key.
	Put(res *Result) error
	// JournalKeys returns the keys recorded as done by earlier runs.
	JournalKeys() (map[string]bool, error)
	// AppendJournal appends one completion record.
	AppendJournal(line JournalLine) error
}

// RawStore is the optional replication surface of a Store: access to a
// result's exact payload bytes. Replica fills copy payloads verbatim so
// a replica's envelopes are byte-identical to the owner's — re-encoding
// a decoded Result could never guarantee that. Both MemStore and
// DirStore implement it.
type RawStore interface {
	// GetRaw returns the verified payload bytes for key, if present.
	GetRaw(key string) ([]byte, bool, error)
	// PutRaw stores payload under key exactly as given (the DirStore
	// wraps it in a fresh checksummed envelope).
	PutRaw(key string, payload []byte) error
}

// MemStore is an in-memory Store: the default when no cache directory is
// configured, and the store the benchmarks use so every iteration is
// cold.
type MemStore struct {
	mu      sync.Mutex
	objects map[string][]byte
	journal [][]byte
	done    map[string]bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: map[string][]byte{}, done: map[string]bool{}}
}

// Get implements Store.
func (m *MemStore) Get(key string) (*Result, bool, error) {
	m.mu.Lock()
	data, ok := m.objects[key]
	m.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, false, fmt.Errorf("memstore: corrupt object %s: %w", key, err)
	}
	return &res, true, nil
}

// Put implements Store.
func (m *MemStore) Put(res *Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.objects[res.Key] = data
	m.mu.Unlock()
	return nil
}

// GetRaw implements RawStore.
func (m *MemStore) GetRaw(key string) ([]byte, bool, error) {
	m.mu.Lock()
	data, ok := m.objects[key]
	m.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, true, nil
}

// PutRaw implements RawStore.
func (m *MemStore) PutRaw(key string, payload []byte) error {
	data := make([]byte, len(payload))
	copy(data, payload)
	m.mu.Lock()
	m.objects[key] = data
	m.mu.Unlock()
	return nil
}

// JournalKeys implements Store.
func (m *MemStore) JournalKeys() (map[string]bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]bool, len(m.done))
	for k := range m.done {
		out[k] = true
	}
	return out, nil
}

// AppendJournal implements Store.
func (m *MemStore) AppendJournal(line JournalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.journal = append(m.journal, data)
	m.done[line.Key] = true
	m.mu.Unlock()
	return nil
}

// JournalBytes renders the journal as it would appear on disk — the
// determinism tests compare these across worker counts.
func (m *MemStore) JournalBytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	for _, line := range m.journal {
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// DirStore is the on-disk Store:
//
//	<dir>/VERSION          store-layout version stamp
//	<dir>/objects/<key>.json   one checksummed Result envelope per job key
//	<dir>/quarantine/      corrupt objects moved aside for post-mortem
//	<dir>/journal.jsonl    completion journal, canonical order
//
// Objects are written atomically (temp file + rename), so an interrupted
// sweep leaves only whole objects; the journal is append-only and a torn
// final line is ignored on load.
//
// Every object is an envelope {sha256, result}: Get recomputes the
// payload hash and refuses to serve an entry whose bytes don't verify —
// truncation, a flipped bit, or a hand-edited file all classify as
// corruption. Corrupt entries are moved to quarantine/ (never deleted,
// never served) and the job transparently re-runs.
type DirStore struct {
	dir string

	mu sync.Mutex
	// quarantined counts objects moved aside by this process.
	quarantined int
}

// envelope is the on-disk object framing: the Result payload plus the
// hex SHA-256 of its exact bytes.
type envelope struct {
	SHA256 string          `json:"sha256"`
	Result json.RawMessage `json:"result"`
}

// OpenDirStore opens (or initializes) the store rooted at dir. A store
// written by an incompatible layout version is cleared.
func OpenDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, err
	}
	vfile := filepath.Join(dir, "VERSION")
	data, err := os.ReadFile(vfile)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh store.
	case err != nil:
		return nil, err
	case strings.TrimSpace(string(data)) != storeVersion:
		// Incompatible layout: drop the stale artifacts.
		if err := os.RemoveAll(filepath.Join(dir, "objects")); err != nil {
			return nil, err
		}
		if err := os.RemoveAll(filepath.Join(dir, "quarantine")); err != nil {
			return nil, err
		}
		if err := os.Remove(filepath.Join(dir, "journal.jsonl")); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
			return nil, err
		}
	default:
		return &DirStore{dir: dir}, nil
	}
	if err := os.WriteFile(vfile, []byte(storeVersion+"\n"), 0o644); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) objectPath(key string) string {
	return filepath.Join(d.dir, "objects", key+".json")
}

// JournalPath returns the journal file location (the resume tests
// truncate it to simulate an interruption).
func (d *DirStore) JournalPath() string {
	return filepath.Join(d.dir, "journal.jsonl")
}

// Get implements Store. An entry that fails to parse or whose payload
// bytes don't match the recorded SHA-256 is quarantined and reported as
// a miss — a corrupt cache entry is never silently loaded.
func (d *DirStore) Get(key string) (*Result, bool, error) {
	data, err := os.ReadFile(d.objectPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		// Truncated or torn object (hard kill mid-write, disk damage).
		return nil, false, d.quarantine(key)
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		// Bit rot or tampering: the payload no longer matches its hash.
		return nil, false, d.quarantine(key)
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, false, d.quarantine(key)
	}
	return &res, true, nil
}

// quarantine moves a corrupt object out of objects/ so it can never be
// served again but stays on disk for inspection; the caller's job
// recomputes and re-Puts a fresh entry.
func (d *DirStore) quarantine(key string) error {
	qdir := filepath.Join(d.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	if err := os.Rename(d.objectPath(key), filepath.Join(qdir, key+".json")); err != nil {
		return err
	}
	d.mu.Lock()
	d.quarantined++
	d.mu.Unlock()
	return nil
}

// Quarantined returns how many corrupt objects this process has moved to
// quarantine/.
func (d *DirStore) Quarantined() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.quarantined
}

// Put implements Store.
func (d *DirStore) Put(res *Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return err
	}
	return d.PutRaw(res.Key, payload)
}

// GetRaw implements RawStore: the checksum-verified payload bytes, with
// the same quarantine-on-corruption semantics as Get.
func (d *DirStore) GetRaw(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(d.objectPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false, d.quarantine(key)
	}
	sum := sha256.Sum256(env.Result)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, false, d.quarantine(key)
	}
	return []byte(env.Result), true, nil
}

// PutRaw implements RawStore. The temp file gets a unique name
// (os.CreateTemp), so two concurrent writers of the same key can never
// interleave into one torn temp file; the final rename is atomic and
// last-writer-wins with byte-identical content for content-addressed
// keys.
func (d *DirStore) PutRaw(key string, payload []byte) error {
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(envelope{
		SHA256: hex.EncodeToString(sum[:]),
		Result: payload,
	})
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Join(d.dir, "objects"), key+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, d.objectPath(key))
}

// JournalKeys implements Store. Unparsable lines (a torn append from an
// interrupted run) are skipped, which is exactly the resume semantics:
// the job re-runs.
func (d *DirStore) JournalKeys() (map[string]bool, error) {
	done := map[string]bool{}
	data, err := os.ReadFile(d.JournalPath())
	if errors.Is(err, fs.ErrNotExist) {
		return done, nil
	}
	if err != nil {
		return nil, err
	}
	for _, raw := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(raw) == "" {
			continue
		}
		var line JournalLine
		if err := json.Unmarshal([]byte(raw), &line); err != nil {
			continue
		}
		done[line.Key] = true
	}
	return done, nil
}

// AppendJournal implements Store.
func (d *DirStore) AppendJournal(line JournalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(d.JournalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return err
	}
	return f.Sync()
}
