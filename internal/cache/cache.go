// Package cache implements the private per-processor cache of the paper's
// machine: a direct-mapped (optionally set-associative), one-word-block tag
// store driven by a coherence.Protocol, with a processor port, a bus
// request/grant port, and a snoop port.
//
// A cache has at most one outstanding processor operation — the PE blocks
// until its access completes (paper assumption 5) — but an operation may
// require several bus transactions (a victim write-back before a miss,
// Goodman's read-then-write miss, a retried read after a Local owner's
// interrupt). The cache re-derives the transaction it needs every time it
// is granted the bus, because snooped traffic can change the line's state
// while the request line is asserted: a planned write-back becomes
// unnecessary (or wrong!) once the victim has been invalidated, and a
// pending RWB read can be satisfied outright by a snarfed bus write.
package cache

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coherence"
)

// Config sizes a cache.
type Config struct {
	// Lines is the total number of one-word line frames. Must be a
	// positive power of two. Table 1-1 uses 256..2048.
	Lines int
	// Ways is the set associativity; 1 (the default if zero) is the
	// paper's direct-mapped organization ("A direct-mapping cache with a
	// one word blocksize is assumed"). Must divide Lines.
	Ways int
}

func (c Config) normalized() Config {
	if c.Ways == 0 {
		c.Ways = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Lines <= 0 || c.Lines&(c.Lines-1) != 0 {
		return fmt.Errorf("cache: Lines = %d, need a positive power of two", c.Lines)
	}
	if c.Ways <= 0 || c.Lines%c.Ways != 0 {
		return fmt.Errorf("cache: Ways = %d does not divide Lines = %d", c.Ways, c.Lines)
	}
	return nil
}

// line is one tag-store entry. State, aux, dirty, data and the LRU stamp
// mutate from every phase (CPU hits, own bus completions, snoop
// reactions), so they are //phase:any; valid only flips on bus-phase
// events (write-back evictions, RMW copy drops). addr changes only
// through install's whole-struct store, which phaseaudit does not track
// field-by-field, so it carries no annotation.
type line struct {
	//phase:bus
	valid bool
	addr  bus.Addr
	//phase:any
	state coherence.State
	//phase:any
	aux uint8
	//phase:any
	dirty bool
	//phase:any
	data bus.Word
	//phase:any
	lastUse uint64
}

// ClassStats breaks processor accesses down by reference class — the
// columns of Table 1-1. A "miss" is any access that needed bus activity,
// which for the Cm* baseline includes every write-through local write and
// every uncached shared reference, exactly as Raskin's experiment counted
// them.
// Only the CPU phase classifies accesses, so the per-class counters are
// cpu-owned.
type ClassStats struct {
	//phase:cpu
	Reads uint64
	//phase:cpu
	ReadMisses uint64
	//phase:cpu
	Writes uint64
	//phase:cpu
	WriteMisses uint64
}

// Stats counts cache activity, with the miss-class breakdown Table 1-1
// reports.
type Stats struct {
	ByClass       [4]ClassStats // indexed by coherence.Class
	Reads         uint64        // processor read requests
	Writes        uint64        // processor write requests
	RMWs          uint64        // processor Test-and-Set requests
	ReadHits      uint64
	WriteHits     uint64 // writes satisfied with no bus activity
	LocalRMWs     uint64 // Test-and-Sets completed inside the cache
	Evictions     uint64 // frames reassigned to a new address
	Writebacks    uint64 // eviction write-backs performed
	Snarfs        uint64 // values adopted from observed transactions
	InvalidatedBy uint64 // lines invalidated by observed traffic
	FlushSupplied uint64 // bus reads this cache interrupted and serviced
	RMWFlushes    uint64 // locked-read flushes supplied
	Retries       uint64 // reads re-issued after an interrupt
	Bypasses      uint64 // non-cachable accesses sent straight to the bus

	// Fault-injection counters (always zero without injection).
	FaultInvalidates uint64 // lines spuriously invalidated via InjectInvalidate
	FaultStaleFlips  uint64 // line data perturbed via InjectStale
}

// MissRatio returns 1 - hits/accesses over reads and writes (Test-and-Sets
// excluded: the paper accounts for them separately in Section 6).
func (s *Stats) MissRatio() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	hits := s.ReadHits + s.WriteHits
	return 1 - float64(hits)/float64(total)
}

// pending is the cache's single in-flight processor operation.
type pending struct {
	ev    coherence.ProcEvent
	class coherence.Class
	addr  bus.Addr
	data  bus.Word // value to write / to set on RMW success
	rmw   bool
	// retry flips only on bus-phase events (the kill and the successful
	// re-read both arrive via BusCompleted).
	//phase:bus
	retry bool // the read was killed; re-issue with Retry set
	// Two-phase Test-and-Set support (the paper's textual "read with
	// lock" / "store back and unlock" realization):
	lockRead bool // phase 1: non-cachable locked bus read
	unlock   bool // phase 2: the write releases the bus lock
	bypass   bool // force a non-cachable transaction regardless of class
}

// Progress reports what a completed bus transaction did for the cache's
// pending operation.
type Progress uint8

const (
	// ProgressDone: the operation completed; TakeResolved yields its value.
	ProgressDone Progress = iota
	// ProgressMore: further bus work is needed (ask WantsBus and re-slot).
	ProgressMore
	// ProgressMoreUrgent: further bus work is needed and must be granted
	// ahead of ordinary requests — the write leg of a fetch-then-write
	// miss, which would otherwise livelock under heavy invalidation
	// traffic (the fetched line can be invalidated before the write ever
	// wins arbitration).
	ProgressMoreUrgent
	// ProgressRetry: the read was interrupted; re-slot with priority.
	ProgressRetry
)

// ResolveInfo describes a completed processor operation at the moment its
// result value binds. The machine's sequential-consistency oracle hooks
// this: the binding moment — not the (possibly later) delivery to the
// processor — is the operation's position in the serialization order of
// the Section 4 proof.
type ResolveInfo struct {
	RMW   bool
	Ev    coherence.ProcEvent
	Addr  bus.Addr
	Data  bus.Word // value written (stores) or set on success (RMW)
	Value bus.Word // bound result: loaded value, or the RMW's old word
}

// Cache is one processing element's private cache.
type Cache struct {
	id    int
	proto coherence.Protocol
	cfg   Config
	sets  [][]line
	nsets int

	//phase:any
	useClock uint64
	// The single in-flight operation and its completion value are embedded
	// (not heap-allocated per miss) so the steady-state cycle loop stays
	// allocation-free; hasPend/hasResolved play the role the nil pointers
	// used to. New operations start in the CPU phase (and, for the second
	// leg of a two-phase Test-and-Set, at delivery time), so pend and
	// hasPend mutate from every phase; resolutions only bind in the bus
	// and request-line phases.
	//phase:any
	pend pending
	//phase:any
	hasPend bool
	//phase:bus,snoop
	resolved bus.Word // completion value awaiting pickup
	//phase:bus,snoop
	hasResolved bool

	// plan memoization: the transaction a blocked cache needs is a pure
	// function of its lines and pending op, so it is recomputed only after
	// a mutation (processor access, own bus completion, snooped traffic
	// that touched a line). With many PEs most caches are blocked most
	// cycles, and without the memo every one of them re-derives the same
	// plan every cycle. The memo is invalidated (planOK) from any phase
	// but recomputed only where it is consulted: grant time (bus) and
	// request-line management (snoop).
	//phase:any
	planOK bool
	//phase:bus,snoop
	planReq bus.Request
	//phase:bus,snoop
	planNeed bool
	//phase:any
	gen uint64 // mutation generation, see Gen

	// OnResolve, when non-nil, is invoked synchronously whenever an
	// operation's result binds — on cache hits, bus completions, and
	// snoop-satisfied resolutions alike.
	OnResolve func(ResolveInfo)

	// probe, when non-nil, observes the processor's reference stream (see
	// Probe). Like OnResolve it is wiring, not run state: Reset keeps it.
	probe Probe

	// pres, when non-nil, is the machine-wide holder table the bus uses
	// to dispatch snoops only to frame holders; the cache keeps it exact
	// at the three points a frame's (valid, addr) binding changes.
	pres *bus.Presence

	//phase:any
	stats Stats
}

// New creates a cache for PE id using the given protocol.
func New(id int, proto coherence.Protocol, cfg Config) (*Cache, error) {
	cfg = cfg.normalized()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if proto == nil {
		return nil, fmt.Errorf("cache: nil protocol")
	}
	nsets := cfg.Lines / cfg.Ways
	sets := make([][]line, nsets)
	backing := make([]line, cfg.Lines)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{id: id, proto: proto, cfg: cfg, sets: sets, nsets: nsets}, nil
}

// Reset returns the cache to its freshly constructed state — every frame
// invalid, no in-flight operation, no memoized plan, zero counters —
// without reallocating the line arena. Identity (id, protocol, geometry)
// and wiring (OnResolve, probe, presence table) survive: they are the machine's
// shape, re-applied by the machine when it differs. The caller owns the
// presence table and resets it separately; the cache starts with no
// valid frames, so it needs no un-recording here.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.useClock = 0
	c.pend = pending{}
	c.hasPend = false
	c.resolved = 0
	c.hasResolved = false
	c.planOK = false
	c.planReq = bus.Request{}
	c.planNeed = false
	c.gen = 0
	c.stats = Stats{}
}

// MustNew is New panicking on error, for tests and fixed-config tools.
func MustNew(id int, proto coherence.Protocol, cfg Config) *Cache {
	c, err := New(id, proto, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// ID returns the PE/bus source id.
func (c *Cache) ID() int { return c.id }

// SetPresence registers the shared holder table this cache reports its
// frame occupancy to (see bus.Presence). Must be set before any traffic;
// the cache starts with no valid frames, so the table needs no seeding.
func (c *Cache) SetPresence(p *bus.Presence) { c.pres = p }

// Probe is the cache's reference-stream observation port (internal/mrc
// plugs an online reuse-distance profiler into it). It fires once per
// processor memory reference — reads, writes, and Test-and-Sets — at the
// moment the CPU phase issues the operation, before hit/miss is known,
// so the observed stream equals the workload's operation stream. The
// two-phase Test-and-Set counts once (at its locked read), matching the
// one reference the instruction makes.
//
// The same contract as bus.Injector applies: a nil probe costs exactly
// one pointer test per reference, and the address is passed by value so
// a probe call cannot make the hot path allocate.
type Probe interface {
	// OnRef observes one processor reference. Called from the CPU phase
	// (//phase:cpu); implementations must be allocation-free.
	OnRef(a bus.Addr)
}

// SetProbe installs (or, with nil, removes) the reference-stream probe.
// Like OnResolve it is machine wiring and survives Reset; callers attach
// a fresh probe per measured run.
func (c *Cache) SetProbe(p Probe) { c.probe = p }

// Protocol returns the cache's coherence scheme.
func (c *Cache) Protocol() coherence.Protocol { return c.proto }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// setFor returns the set index of an address.
func (c *Cache) setFor(a bus.Addr) int { return int(a) & (c.nsets - 1) }

// lookup returns the line holding addr, or nil.
//
//hotpath:allocfree
func (c *Cache) lookup(a bus.Addr) *line {
	set := c.sets[c.setFor(a)]
	for i := range set {
		if set[i].valid && set[i].addr == a {
			return &set[i]
		}
	}
	return nil
}

// Lookup exposes a line's protocol state for diagnostics and the figure
// renderings: it returns the state, the cached value, and whether the
// address is present at all.
func (c *Cache) Lookup(a bus.Addr) (coherence.State, bus.Word, bool) {
	if ln := c.lookup(a); ln != nil {
		return ln.state, ln.data, true
	}
	return coherence.NotPresent, 0, false
}

// Busy reports whether an operation is in flight.
func (c *Cache) Busy() bool { return c.hasPend || c.hasResolved }

// mutated discards the memoized plan and advances the generation
// counter; every path that changes a line or the pending op calls it
// before (or instead of) the change.
//
//hotpath:allocfree
func (c *Cache) mutated() {
	c.planOK = false
	c.gen++
}

// Gen returns the cache's mutation generation: it advances on every
// change to a line or to the in-flight operation (processor accesses,
// own bus completions, snooped traffic that touched a held line, local
// resolutions). A caller that saw generation g and sees it again can
// skip the cache entirely — its bus needs, pending state and resolved
// value are all exactly as last observed. The machine's cycle loop uses
// this to poll only caches something happened to.
func (c *Cache) Gen() uint64 { return c.gen }

// setPend records p as the in-flight operation.
//
//hotpath:allocfree
func (c *Cache) setPend(p pending) {
	c.pend = p
	c.hasPend = true
	c.mutated()
}

// touch updates the line's LRU stamp.
//
//hotpath:allocfree
func (c *Cache) touch(ln *line) {
	c.useClock++
	ln.lastUse = c.useClock
}

// applyDirty folds a DirtyEffect into a line.
func applyDirty(ln *line, d coherence.DirtyEffect) {
	switch d {
	case coherence.DirtySet:
		ln.dirty = true
	case coherence.DirtyClear:
		ln.dirty = false
	case coherence.DirtyKeep:
		// The transition leaves the dirty bit alone.
	}
}

// Access offers a processor read or write. If it completes without the bus
// (a hit the protocol satisfies locally), done is true and value carries
// the read result. Otherwise the operation is left pending; the caller
// must assert a bus slot at WantsBusAddr and feed grants/completions back.
//
//phase:cpu
//hotpath:allocfree
func (c *Cache) Access(ev coherence.ProcEvent, a bus.Addr, data bus.Word, class coherence.Class) (done bool, value bus.Word) {
	if c.Busy() {
		panic(fmt.Sprintf("cache %d: Access while busy", c.id))
	}
	if c.probe != nil {
		c.probe.OnRef(a)
	}
	cls := &c.stats.ByClass[int(class)&3]
	if ev == coherence.EvRead {
		c.stats.Reads++
		cls.Reads++
	} else {
		c.stats.Writes++
		cls.Writes++
	}
	if !c.proto.Cachable(class, ev) {
		c.stats.Bypasses++
		c.countMiss(cls, ev)
		c.setPend(pending{ev: ev, class: class, addr: a, data: data})
		return false, 0
	}
	if ln := c.lookup(a); ln != nil {
		out := c.proto.OnProc(ln.state, ln.aux, ev)
		if out.Action == coherence.ActNone {
			c.mutated()
			ln.state, ln.aux = out.Next, out.NextAux
			applyDirty(ln, out.Dirty)
			if ev == coherence.EvWrite {
				ln.data = data
				c.stats.WriteHits++
			} else {
				c.stats.ReadHits++
			}
			c.touch(ln)
			c.fire(false, ev, a, data, ln.data)
			return true, ln.data
		}
	}
	c.countMiss(cls, ev)
	c.setPend(pending{ev: ev, class: class, addr: a, data: data})
	return false, 0
}

//hotpath:allocfree
func (c *Cache) countMiss(cls *ClassStats, ev coherence.ProcEvent) {
	if ev == coherence.EvRead {
		cls.ReadMisses++
	} else {
		cls.WriteMisses++
	}
}

// fire reports a bound result to the OnResolve hook.
//
//hotpath:allocfree
func (c *Cache) fire(rmw bool, ev coherence.ProcEvent, a bus.Addr, data, value bus.Word) {
	if c.OnResolve != nil {
		c.OnResolve(ResolveInfo{RMW: rmw, Ev: ev, Addr: a, Data: data, Value: value})
	}
}

// resolve finishes the pending operation p, binding value as its result.
//
//hotpath:allocfree
func (c *Cache) resolve(p *pending, value bus.Word) {
	c.hasPend = false
	c.resolved = value
	c.hasResolved = true
	c.mutated()
	c.fire(p.rmw, p.ev, p.addr, p.data, value)
}

// AccessRMW offers a Test-and-Set of setVal against addr. If the line is
// held in a state where the protocol allows a purely local RMW, it
// completes immediately; otherwise a bus OpRMW is left pending. The value
// delivered on completion is the *old* word (0 means the test succeeded).
//
//phase:cpu
//hotpath:allocfree
func (c *Cache) AccessRMW(a bus.Addr, setVal bus.Word) (done bool, old bus.Word) {
	if c.Busy() {
		panic(fmt.Sprintf("cache %d: AccessRMW while busy", c.id))
	}
	if c.probe != nil {
		c.probe.OnRef(a)
	}
	c.stats.RMWs++
	if ln := c.lookup(a); ln != nil && c.proto.LocalRMW(ln.state) {
		c.stats.LocalRMWs++
		c.mutated()
		old = ln.data
		if old == 0 {
			out := c.proto.OnProc(ln.state, ln.aux, coherence.EvWrite)
			// LocalRMW states satisfy writes locally by construction.
			ln.state, ln.aux = out.Next, out.NextAux
			applyDirty(ln, out.Dirty)
			ln.data = setVal
		}
		c.touch(ln)
		c.fire(true, coherence.EvWrite, a, setVal, old)
		return true, old
	}
	c.setPend(pending{ev: coherence.EvWrite, addr: a, data: setVal, rmw: true})
	return false, 0
}

// TryLocalRMW attempts the in-cache Test-and-Set fast path (exclusive
// latest copy); it reports whether it completed, without falling back to
// a bus operation.
//
//phase:cpu
//hotpath:allocfree
func (c *Cache) TryLocalRMW(a bus.Addr, setVal bus.Word) (done bool, old bus.Word) {
	ln := c.lookup(a)
	if ln == nil || !c.proto.LocalRMW(ln.state) {
		// Not issued: the caller falls back to AccessLockedRead, which
		// probes the reference once.
		return false, 0
	}
	if c.probe != nil {
		c.probe.OnRef(a)
	}
	c.stats.RMWs++
	c.stats.LocalRMWs++
	c.mutated()
	old = ln.data
	if old == 0 {
		out := c.proto.OnProc(ln.state, ln.aux, coherence.EvWrite)
		ln.state, ln.aux = out.Next, out.NextAux
		applyDirty(ln, out.Dirty)
		ln.data = setVal
	}
	c.touch(ln)
	c.fire(true, coherence.EvWrite, a, setVal, old)
	return true, old
}

// AccessLockedRead issues phase 1 of a two-phase Test-and-Set: the
// paper's non-cachable "read with lock" bus operation. The delivered
// value is the locked word; the caller must follow with
// AccessUnlockWrite.
//
//phase:cpu
//hotpath:allocfree
func (c *Cache) AccessLockedRead(a bus.Addr) {
	if c.Busy() {
		panic(fmt.Sprintf("cache %d: AccessLockedRead while busy", c.id))
	}
	if c.probe != nil {
		c.probe.OnRef(a)
	}
	c.stats.RMWs++
	c.setPend(pending{ev: coherence.EvRead, addr: a, lockRead: true, bypass: true})
}

// AccessUnlockWrite issues phase 2: the "modified value is stored back
// into the shared memory cell and the lock removed". cached selects the
// successful path (a real write that follows the protocol's write
// transition, taking the line Local under RB) versus the failed path (the
// old value is restored without touching any cache state, matching the
// paper's treatment of a failed Test-and-Set as non-cachable).
//
// The second leg starts at delivery time, which happens in the bus phase
// (a grant completed) or the request-line phase (a local resolution),
// never in the CPU phase.
//
//phase:bus,snoop
//hotpath:allocfree
func (c *Cache) AccessUnlockWrite(a bus.Addr, v bus.Word, cached bool) {
	if c.Busy() {
		panic(fmt.Sprintf("cache %d: AccessUnlockWrite while busy", c.id))
	}
	c.setPend(pending{ev: coherence.EvWrite, addr: a, data: v, unlock: true, bypass: !cached})
}

// WantsBus reports whether the cache needs a bus grant, and for which
// address (the machine uses the address to pick the bank, Figure 7-1).
// The needed address can change as snooped traffic changes line states;
// callers should re-check after every bus cycle.
//
//phase:snoop
//hotpath:allocfree
func (c *Cache) WantsBus() (bus.Addr, bool) {
	if !c.hasPend {
		return 0, false
	}
	req, need := c.planCached()
	if !need {
		return 0, false
	}
	return req.Addr, true
}

// NeedsPriority reports whether the pending operation is an interrupted
// read owed an immediate retry.
//
//hotpath:allocfree
func (c *Cache) NeedsPriority() bool { return c.hasPend && c.pend.retry }

// PendingString names the in-flight processor operation for diagnostics —
// the machine's watchdog embeds it in StallError so a wedged run reports
// *which* transaction never completed. It is side-effect free (it does
// not run plan), describing the operation rather than the next bus leg.
func (c *Cache) PendingString() string {
	if c.hasResolved {
		return fmt.Sprintf("resolved value=%d awaiting pickup", c.resolved)
	}
	if !c.hasPend {
		return "idle"
	}
	p := &c.pend
	op := "read"
	if p.ev == coherence.EvWrite {
		op = "write"
	}
	switch {
	case p.rmw:
		op = "rmw"
	case p.lockRead:
		op = "locked-read"
	case p.unlock:
		op = "unlock-write"
	}
	s := fmt.Sprintf("%s addr=%d", op, p.addr)
	if p.ev == coherence.EvWrite {
		s += fmt.Sprintf(" data=%d", p.data)
	}
	if p.retry {
		s += " retry"
	}
	if p.bypass {
		s += " bypass"
	}
	return s
}

// planCached returns the memoized plan, recomputing it only after a
// mutation. Safe because plan with unchanged state is deterministic, and
// its only side effects (local resolution) would already have fired on
// the call that populated the memo.
//
//hotpath:allocfree
func (c *Cache) planCached() (bus.Request, bool) {
	if !c.planOK {
		c.planReq, c.planNeed, _ = c.plan()
		c.planOK = true
	}
	return c.planReq, c.planNeed
}

// plan derives the bus transaction the pending operation needs right now.
// need=false with resolvedLocally=true means the operation just completed
// without the bus (state changed under us); need=false with
// resolvedLocally=false cannot happen while pend is live.
//
//hotpath:allocfree
func (c *Cache) plan() (req bus.Request, need bool, resolvedLocally bool) {
	if !c.hasPend {
		return bus.Request{}, false, false
	}
	p := &c.pend
	if p.rmw {
		return c.planRMW(p)
	}
	if p.bypass || !c.proto.Cachable(p.class, p.ev) {
		op := bus.OpRead
		if p.ev == coherence.EvWrite {
			op = bus.OpWrite
		}
		return bus.Request{Source: c.id, Op: op, Addr: p.addr, Data: p.data,
			Retry: p.retry, Lock: p.lockRead, Unlock: p.unlock}, true, false
	}
	ln := c.lookup(p.addr)
	state, aux := coherence.Invalid, uint8(0)
	if ln != nil {
		state, aux = ln.state, ln.aux
	}
	out := c.proto.OnProc(state, aux, p.ev)
	if out.Action == coherence.ActNone && p.unlock {
		// The protocol could satisfy this write in-cache (e.g. Illinois's
		// silent Exclusive upgrade), but an unlocking write must reach
		// the bus regardless — the lock register is waiting on it.
		return bus.Request{Source: c.id, Op: bus.OpWrite, Addr: p.addr, Data: p.data, Unlock: true}, true, false
	}
	if out.Action == coherence.ActNone {
		// A snooped transaction satisfied the access while we waited
		// (e.g. RWB snarfed the value we were about to read).
		c.completeLocally(ln, out)
		return bus.Request{}, false, true
	}
	// Allocation: if the line is absent and will be installed, the victim
	// frame may need a write-back first.
	if ln == nil && !out.NoAllocate {
		if victim := c.victim(p.addr); victim.valid && c.proto.WritebackOnEvict(victim.state, victim.dirty) {
			return bus.Request{Source: c.id, Op: bus.OpWrite, Addr: victim.addr, Data: victim.data}, true, false
		}
	}
	switch out.Action {
	case coherence.ActRead, coherence.ActReadThenWrite:
		return bus.Request{Source: c.id, Op: bus.OpRead, Addr: p.addr, Retry: p.retry}, true, false
	case coherence.ActWrite:
		return bus.Request{Source: c.id, Op: bus.OpWrite, Addr: p.addr, Data: p.data, Unlock: p.unlock}, true, false
	case coherence.ActInv:
		return bus.Request{Source: c.id, Op: bus.OpInv, Addr: p.addr, Unlock: p.unlock}, true, false
	default:
		// ActNone was handled above as an in-cache completion.
		panic(fmt.Sprintf("cache %d: unplannable action %v", c.id, out.Action))
	}
}

//hotpath:allocfree
func (c *Cache) planRMW(p *pending) (bus.Request, bool, bool) {
	ln := c.lookup(p.addr)
	if ln != nil && c.proto.LocalRMW(ln.state) {
		// The line turned exclusive while we waited; finish in-cache.
		c.stats.LocalRMWs++
		c.mutated()
		old := ln.data
		if old == 0 {
			out := c.proto.OnProc(ln.state, ln.aux, coherence.EvWrite)
			ln.state, ln.aux = out.Next, out.NextAux
			applyDirty(ln, out.Dirty)
			ln.data = p.data
		}
		c.touch(ln)
		c.resolve(p, old)
		return bus.Request{}, false, true
	}
	state, aux := coherence.Invalid, uint8(0)
	if ln != nil {
		state, aux = ln.state, ln.aux
	}
	next, _, broadcast := c.proto.RMWSuccess(state, aux)
	// If success will install the line, a victim write-back may be owed.
	if ln == nil && next != coherence.Invalid {
		if victim := c.victim(p.addr); victim.valid && c.proto.WritebackOnEvict(victim.state, victim.dirty) {
			return bus.Request{Source: c.id, Op: bus.OpWrite, Addr: victim.addr, Data: victim.data}, true, false
		}
	}
	successOp := bus.OpWrite
	if broadcast == coherence.ActInv {
		successOp = bus.OpInv
	}
	return bus.Request{Source: c.id, Op: bus.OpRMW, Addr: p.addr, Data: p.data, SuccessOp: successOp}, true, false
}

// completeLocally finishes the pending op against a (possibly nil) line.
//
//hotpath:allocfree
func (c *Cache) completeLocally(ln *line, out coherence.ProcOutcome) {
	p := &c.pend
	var v bus.Word
	c.mutated()
	if ln != nil {
		ln.state, ln.aux = out.Next, out.NextAux
		applyDirty(ln, out.Dirty)
		if p.ev == coherence.EvWrite {
			ln.data = p.data
			c.stats.WriteHits++
		} else {
			c.stats.ReadHits++
		}
		c.touch(ln)
		v = ln.data
	}
	c.resolve(p, v)
}

// victim returns the frame that would hold addr, choosing the
// least-recently-used way. It never returns the frame of addr itself (the
// caller checked the address is absent).
//
//hotpath:allocfree
func (c *Cache) victim(a bus.Addr) *line {
	set := c.sets[c.setFor(a)]
	best := &set[0]
	for i := range set {
		ln := &set[i]
		if !ln.valid {
			return ln
		}
		if ln.lastUse < best.lastUse {
			best = ln
		}
	}
	return best
}

// install places addr into its set, evicting the LRU way. The victim was
// already written back if the protocol required it (plan schedules the
// write-back transaction before the installing one).
//
//hotpath:allocfree
func (c *Cache) install(a bus.Addr, st coherence.State, aux uint8, dirty bool, data bus.Word) *line {
	ln := c.victim(a)
	if ln.valid {
		c.stats.Evictions++
		if c.pres != nil {
			c.pres.Remove(ln.addr, c.id)
		}
	}
	*ln = line{valid: true, addr: a, state: st, aux: aux, dirty: dirty, data: data}
	if c.pres != nil {
		c.pres.Add(a, c.id)
	}
	c.touch(ln)
	return ln
}

// BusGrant implements bus.Requester: the arbiter granted us the bus
// serving (bank, banks); supply the transaction or withdraw.
//
//phase:bus
//hotpath:allocfree
func (c *Cache) BusGrant(bank, banks int) (bus.Request, bool) {
	req, need := c.planCached()
	if !need {
		return bus.Request{}, false
	}
	if banks > 1 && int(req.Addr)&(banks-1) != bank {
		// Our next transaction belongs to another bank; withdraw here.
		return bus.Request{}, false
	}
	return req, true
}

// BusCompleted folds the result of our own granted transaction back into
// the cache and reports how the pending operation progressed.
//
//phase:bus
//hotpath:allocfree
func (c *Cache) BusCompleted(req bus.Request, res bus.Result) Progress {
	if !c.hasPend {
		panic(fmt.Sprintf("cache %d: BusCompleted with nothing pending", c.id))
	}
	c.mutated()
	p := &c.pend
	// A transaction for a different address is a victim write-back: the
	// frame is freed (an eviction) and the pending miss continues.
	if req.Addr != p.addr {
		if ln := c.lookup(req.Addr); ln != nil {
			c.stats.Writebacks++
			c.stats.Evictions++
			ln.valid = false
			ln.dirty = false
			if c.pres != nil {
				c.pres.Remove(req.Addr, c.id)
			}
		}
		return ProgressMore
	}
	if p.rmw {
		return c.rmwCompleted(p, req, res)
	}
	switch req.Op {
	case bus.OpRead:
		if res.Killed {
			// Interrupted by the Local owner; "retried immediately".
			p.retry = true
			c.stats.Retries++
			return ProgressRetry
		}
		return c.readCompleted(p, res)
	case bus.OpWrite:
		return c.writeCompleted(p)
	case bus.OpInv:
		return c.invCompleted(p)
	default:
		// OpRMW completions take the rmwCompleted path above.
		panic(fmt.Sprintf("cache %d: unexpected completed op %v", c.id, req.Op))
	}
}

//hotpath:allocfree
func (c *Cache) readCompleted(p *pending, res bus.Result) Progress {
	if p.bypass || !c.proto.Cachable(p.class, p.ev) {
		// Uncached (or locked) read: deliver without installing.
		c.resolve(p, res.Data)
		return ProgressDone
	}
	p.retry = false // the (possibly retried) read part is done
	ln := c.lookup(p.addr)
	state, aux := coherence.Invalid, uint8(0)
	if ln != nil {
		state, aux = ln.state, ln.aux
	}
	out := c.proto.OnProc(state, aux, coherence.EvRead)
	// Install (or refresh) the line with the fetched word in the
	// protocol's read-miss target state; shared-line-aware protocols
	// (Illinois) pick the state from the bus's shared signal instead.
	next := out.Next
	if sa, ok := c.proto.(coherence.SharedAware); ok {
		next = sa.ReadMissTarget(res.SharedLine)
	}
	if ln == nil {
		ln = c.install(p.addr, next, out.NextAux, false, res.Data)
	} else {
		ln.state, ln.aux = next, out.NextAux
		applyDirty(ln, out.Dirty)
		ln.data = res.Data
		c.touch(ln)
	}
	if p.ev == coherence.EvWrite {
		// Fetch-then-write miss: the read part is done; the write part
		// follows and must win the bus before snooped invalidations can
		// undo the fetch.
		return ProgressMoreUrgent
	}
	c.resolve(p, res.Data)
	return ProgressDone
}

//hotpath:allocfree
func (c *Cache) writeCompleted(p *pending) Progress {
	if p.bypass || !c.proto.Cachable(p.class, p.ev) {
		c.resolve(p, p.data)
		return ProgressDone
	}
	ln := c.lookup(p.addr)
	state, aux := coherence.Invalid, uint8(0)
	if ln != nil {
		state, aux = ln.state, ln.aux
	}
	out := c.proto.OnProc(state, aux, coherence.EvWrite)
	if out.NoAllocate {
		if ln != nil {
			// Write-through no-allocate protocols keep an existing copy
			// coherent on a write hit.
			ln.state, ln.aux = out.Next, out.NextAux
			applyDirty(ln, out.Dirty)
			ln.data = p.data
			c.touch(ln)
		}
	} else if ln == nil {
		ln = c.install(p.addr, out.Next, out.NextAux, out.Dirty == coherence.DirtySet, p.data)
	} else {
		ln.state, ln.aux = out.Next, out.NextAux
		applyDirty(ln, out.Dirty)
		ln.data = p.data
		c.touch(ln)
	}
	c.resolve(p, p.data)
	return ProgressDone
}

//hotpath:allocfree
func (c *Cache) invCompleted(p *pending) Progress {
	ln := c.lookup(p.addr)
	if ln == nil {
		panic(fmt.Sprintf("cache %d: BI completed for absent line %d", c.id, p.addr))
	}
	out := c.proto.OnProc(ln.state, ln.aux, coherence.EvWrite)
	ln.state, ln.aux = out.Next, out.NextAux
	applyDirty(ln, out.Dirty)
	ln.data = p.data
	c.touch(ln)
	c.resolve(p, p.data)
	return ProgressDone
}

//hotpath:allocfree
func (c *Cache) rmwCompleted(p *pending, req bus.Request, res bus.Result) Progress {
	old := res.Data
	if res.RMWSuccess {
		ln := c.lookup(p.addr)
		state, aux := coherence.Invalid, uint8(0)
		if ln != nil {
			state, aux = ln.state, ln.aux
		}
		next, nextAux, _ := c.proto.RMWSuccess(state, aux)
		if next != coherence.Invalid {
			// The locked transaction updated memory, so the line is clean
			// even when the broadcast was an invalidate.
			if ln == nil {
				c.install(p.addr, next, nextAux, false, p.data)
			} else {
				ln.state, ln.aux = next, nextAux
				ln.dirty = false
				ln.data = p.data
				c.touch(ln)
			}
		} else if ln != nil {
			// Protocols that do not retain RMW targets drop the copy.
			ln.valid = false
			if c.pres != nil {
				c.pres.Remove(p.addr, c.id)
			}
		}
	}
	c.resolve(p, old)
	return ProgressDone
}

// TakeResolved delivers and clears a completed operation's value. The
// machine polls it at the end of the bus phase and of the request-line
// phase, the two places a value can have bound.
//
//phase:bus,snoop
//hotpath:allocfree
func (c *Cache) TakeResolved() (bus.Word, bool) {
	if !c.hasResolved {
		return 0, false
	}
	c.hasResolved = false
	return c.resolved, true
}

// HasCopy implements bus.CopyHolder: the cache drives the shared line
// when it holds a valid copy.
//
//phase:bus
//hotpath:allocfree
func (c *Cache) HasCopy(a bus.Addr) bool {
	ln := c.lookup(a)
	return ln != nil && ln.state != coherence.Invalid
}

// --- snoop port (bus.Snooper) ---

// SnoopRead implements bus.Snooper.
//
//phase:bus
//hotpath:allocfree
func (c *Cache) SnoopRead(a bus.Addr, source int) (bool, bus.Word) {
	ln := c.lookup(a)
	if ln == nil {
		return false, 0
	}
	c.mutated()
	out := c.proto.OnSnoop(ln.state, ln.aux, ln.dirty, coherence.SnBusRead)
	data := ln.data
	ln.state, ln.aux = out.Next, out.NextAux
	applyDirty(ln, out.Dirty)
	if out.Inhibit {
		c.stats.FlushSupplied++
		return true, data
	}
	return false, 0
}

// SnoopRMWRead implements bus.Snooper.
//
//phase:bus
//hotpath:allocfree
func (c *Cache) SnoopRMWRead(a bus.Addr, source int) (bool, bus.Word) {
	ln := c.lookup(a)
	if ln == nil {
		return false, 0
	}
	flush, next, d := c.proto.RMWFlush(ln.state, ln.dirty)
	if !flush {
		return false, 0
	}
	c.mutated()
	data := ln.data
	ln.state = next
	applyDirty(ln, d)
	c.stats.RMWFlushes++
	return true, data
}

// ObserveWrite implements bus.Snooper.
//
//phase:bus
//hotpath:allocfree
func (c *Cache) ObserveWrite(op bus.Op, a bus.Addr, d bus.Word, source int) {
	ln := c.lookup(a)
	if ln == nil {
		return
	}
	c.mutated()
	ev := coherence.SnBusWrite
	if op == bus.OpInv {
		ev = coherence.SnBusInv
	}
	wasUsable := ln.state != coherence.Invalid
	out := c.proto.OnSnoop(ln.state, ln.aux, ln.dirty, ev)
	ln.state, ln.aux = out.Next, out.NextAux
	applyDirty(ln, out.Dirty)
	if out.TakeData {
		ln.data = d
		c.stats.Snarfs++
	}
	if wasUsable && ln.state == coherence.Invalid {
		c.stats.InvalidatedBy++
	}
}

// ObserveReadData implements bus.Snooper.
//
//phase:bus
//hotpath:allocfree
func (c *Cache) ObserveReadData(a bus.Addr, d bus.Word, source int) {
	ln := c.lookup(a)
	if ln == nil {
		return
	}
	c.mutated()
	out := c.proto.OnSnoop(ln.state, ln.aux, ln.dirty, coherence.SnReadData)
	ln.state, ln.aux = out.Next, out.NextAux
	applyDirty(ln, out.Dirty)
	if out.TakeData {
		ln.data = d
		c.stats.Snarfs++
	}
}

// --- fault-injection port (driven by internal/fault) ---

// InjectInvalidate spuriously drops the line holding a, modeling a tag or
// state-bit upset: the frame goes Invalid with no write-back, so a dirty
// Local value is silently lost. It reports whether a valid line was hit.
// The presence table is kept exact, and the plan memo is discarded, so the
// perturbed cache behaves exactly as if it never held the line.
func (c *Cache) InjectInvalidate(a bus.Addr) bool {
	ln := c.lookup(a)
	if ln == nil {
		return false
	}
	c.mutated()
	ln.valid = false
	ln.dirty = false
	if c.pres != nil {
		c.pres.Remove(a, c.id)
	}
	c.stats.FaultInvalidates++
	return true
}

// InjectStale XORs mask into the cached data of the line holding a,
// modeling a data-array bit upset: the state machinery is untouched, only
// the value the cache will serve (or write back) is wrong. It reports
// whether a valid line was hit.
func (c *Cache) InjectStale(a bus.Addr, mask bus.Word) bool {
	ln := c.lookup(a)
	if ln == nil {
		return false
	}
	c.mutated()
	ln.data ^= mask
	c.stats.FaultStaleFlips++
	return true
}

// Contents returns every valid line (address, state, value), used by the
// fault-recovery experiment to scavenge clean copies.
type Entry struct {
	Addr  bus.Addr
	State coherence.State
	Dirty bool
	Data  bus.Word
}

// Entries lists all valid lines in ascending address order is NOT
// guaranteed; callers sort if they need determinism.
func (c *Cache) Entries() []Entry {
	var out []Entry
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				out = append(out, Entry{Addr: set[i].addr, State: set[i].state, Dirty: set[i].dirty, Data: set[i].data})
			}
		}
	}
	return out
}
