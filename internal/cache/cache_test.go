package cache

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/memory"
)

// rig wires n caches of one protocol to a bus and memory and provides a
// minimal drive loop (the full machine lives in internal/machine; this is
// just enough to unit-test cache behavior end to end).
type rig struct {
	t      *testing.T
	mem    *memory.Memory
	bus    *bus.Bus
	caches []*Cache
}

func newRig(t *testing.T, protoName string, n, lines int) *rig {
	t.Helper()
	proto, err := coherence.ByName(protoName)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, mem: memory.New()}
	r.bus = bus.New(r.mem)
	for i := 0; i < n; i++ {
		c := MustNew(i, proto, Config{Lines: lines})
		r.bus.Attach(i, c)
		r.bus.AttachRequester(i, c)
		r.caches = append(r.caches, c)
	}
	return r
}

// drive runs bus cycles until cache id's pending operation resolves.
func (r *rig) drive(id int) bus.Word {
	r.t.Helper()
	for cycle := 0; cycle < 1000; cycle++ {
		if v, ok := r.caches[id].TakeResolved(); ok {
			return v
		}
		for _, c := range r.caches {
			if c.NeedsPriority() {
				r.bus.PrioritySlot(c.ID())
			} else if _, want := c.WantsBus(); want && !r.bus.Slotted(c.ID()) {
				r.bus.RequestSlot(c.ID())
			}
		}
		req, res, ok := r.bus.Tick()
		if ok {
			r.caches[req.Source].BusCompleted(req, res)
		}
	}
	r.t.Fatal("drive: no resolution within 1000 cycles")
	return 0
}

func (r *rig) read(id int, a bus.Addr) bus.Word {
	r.t.Helper()
	done, v := r.caches[id].Access(coherence.EvRead, a, 0, coherence.ClassShared)
	if done {
		return v
	}
	return r.drive(id)
}

func (r *rig) write(id int, a bus.Addr, v bus.Word) {
	r.t.Helper()
	done, _ := r.caches[id].Access(coherence.EvWrite, a, v, coherence.ClassShared)
	if !done {
		r.drive(id)
	}
}

func (r *rig) ts(id int, a bus.Addr, set bus.Word) bus.Word {
	r.t.Helper()
	done, old := r.caches[id].AccessRMW(a, set)
	if done {
		return old
	}
	return r.drive(id)
}

func (r *rig) state(id int, a bus.Addr) coherence.State {
	s, _, _ := r.caches[id].Lookup(a)
	return s
}

func TestConfigValidation(t *testing.T) {
	proto := coherence.RB{}
	if _, err := New(0, proto, Config{Lines: 3}); err == nil {
		t.Error("non-power-of-two Lines accepted")
	}
	if _, err := New(0, proto, Config{Lines: 8, Ways: 3}); err == nil {
		t.Error("Ways not dividing Lines accepted")
	}
	if _, err := New(0, nil, Config{Lines: 8}); err == nil {
		t.Error("nil protocol accepted")
	}
	if c, err := New(0, proto, Config{Lines: 8}); err != nil || c == nil {
		t.Errorf("valid config rejected: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew with bad config did not panic")
			}
		}()
		MustNew(0, proto, Config{Lines: 0})
	}()
}

func TestReadMissInstallsThenHits(t *testing.T) {
	r := newRig(t, "rb", 1, 16)
	r.mem.Poke(5, 42)
	if v := r.read(0, 5); v != 42 {
		t.Fatalf("read = %d, want 42", v)
	}
	if r.state(0, 5) != coherence.Readable {
		t.Fatalf("state = %v, want Readable", r.state(0, 5))
	}
	// Second read hits with no bus traffic.
	before := r.bus.Stats().Transactions()
	if v := r.read(0, 5); v != 42 {
		t.Fatalf("second read = %d", v)
	}
	if r.bus.Stats().Transactions() != before {
		t.Fatal("read hit generated bus traffic")
	}
	st := r.caches[0].Stats()
	if st.Reads != 2 || st.ReadHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRBWriteTakesLocalAndInvalidatesOthers(t *testing.T) {
	r := newRig(t, "rb", 3, 16)
	r.mem.Poke(7, 1)
	// Everyone reads the word. (The broadcast only refreshes caches that
	// already contain the address, so each cache fetches it once.)
	for id := 0; id < 3; id++ {
		if v := r.read(id, 7); v != 1 {
			t.Fatal("read wrong value")
		}
		if r.state(id, 7) != coherence.Readable {
			t.Fatalf("cache %d state = %v, want Readable", id, r.state(id, 7))
		}
	}
	// One write moves the writer to Local and invalidates the rest.
	r.write(1, 7, 99)
	if r.state(1, 7) != coherence.Local {
		t.Fatalf("writer state = %v, want Local", r.state(1, 7))
	}
	if r.state(0, 7) != coherence.Invalid || r.state(2, 7) != coherence.Invalid {
		t.Fatal("other caches not invalidated")
	}
	// Write-through: memory has the value.
	if r.mem.Peek(7) != 99 {
		t.Fatalf("memory = %d, want 99 (write-through)", r.mem.Peek(7))
	}
}

func TestRBReadOfLocalLineFlushesAndBroadcasts(t *testing.T) {
	r := newRig(t, "rb", 3, 16)
	r.write(1, 7, 10) // cache 1 Local
	// Dirty it with a second (purely local) write.
	r.write(1, 7, 20)
	if r.mem.Peek(7) != 10 {
		t.Fatal("local write leaked to memory")
	}
	// Cache 0 reads: interrupt, flush, retry; everyone ends Readable.
	if v := r.read(0, 7); v != 20 {
		t.Fatalf("read = %d, want the flushed 20", v)
	}
	if r.mem.Peek(7) != 20 {
		t.Fatal("flush did not update memory")
	}
	for id := 0; id < 3; id++ {
		want := coherence.Readable
		if id == 2 {
			// Cache 2 never touched address 7; under RB it holds no line
			// and cannot pick up the broadcast.
			want = coherence.NotPresent
		}
		if got := r.state(id, 7); got != want {
			t.Fatalf("cache %d state = %v, want %v", id, got, want)
		}
	}
	st := r.bus.Stats()
	if st.KilledReads != 1 || st.Retries != 1 {
		t.Fatalf("bus stats = %+v, want 1 killed read and 1 retry", st)
	}
	if r.caches[1].Stats().FlushSupplied != 1 {
		t.Fatal("owner's flush not counted")
	}
}

func TestRBBroadcastRefreshesInvalidCopies(t *testing.T) {
	r := newRig(t, "rb", 3, 16)
	r.mem.Poke(3, 5)
	r.read(0, 3)
	r.read(1, 3)
	r.write(2, 3, 6) // invalidates 0 and 1
	if r.state(0, 3) != coherence.Invalid || r.state(1, 3) != coherence.Invalid {
		t.Fatal("write did not invalidate")
	}
	// Cache 0 re-reads: 1's Invalid copy is refreshed by the broadcast.
	if v := r.read(0, 3); v != 6 {
		t.Fatalf("read = %d", v)
	}
	if r.state(1, 3) != coherence.Readable {
		t.Fatal("cache 1 did not pick up the read broadcast")
	}
	if _, v, ok := r.caches[1].Lookup(3); !ok || v != 6 {
		t.Fatalf("cache 1 value = %d, want 6", v)
	}
	if r.caches[1].Stats().Snarfs == 0 {
		t.Fatal("broadcast take not counted")
	}
}

func TestEvictionWritesBackLocalLine(t *testing.T) {
	// Direct-mapped 4-line cache: addresses 2 and 6 collide (set = a mod 4).
	r := newRig(t, "rb", 1, 4)
	r.write(0, 2, 11) // Local, then dirty it
	r.write(0, 2, 12)
	if r.mem.Peek(2) != 11 {
		t.Fatal("setup: local write should not reach memory")
	}
	r.read(0, 6) // conflicts: eviction must write 12 back first
	if r.mem.Peek(2) != 12 {
		t.Fatalf("memory = %d after eviction, want 12", r.mem.Peek(2))
	}
	if r.state(0, 2) != coherence.NotPresent {
		t.Fatal("victim still present")
	}
	st := r.caches[0].Stats()
	if st.Writebacks != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 writeback, 1 eviction", st)
	}
	// The whole miss needed two bus transactions: BW (writeback) + BR.
	bs := r.bus.Stats()
	if bs.Writes() != 2 || bs.Reads() != 1 { // writes: 2 CPU write-throughs... see below
		// write(2,11) was a BW; write(2,12) was local; writeback BW; read BR.
		t.Fatalf("bus stats = %+v", bs)
	}
}

func TestRBCleanLocalStillWritesBackOnEvict(t *testing.T) {
	// Paper fidelity: RB has no dirty bit for eviction purposes — every
	// Local line writes back, even if clean. This is what doubles RB's
	// array-initialization traffic (Section 5).
	r := newRig(t, "rb", 1, 4)
	r.write(0, 2, 11) // Local, clean (write-through happened)
	r.read(0, 6)
	st := r.caches[0].Stats()
	if st.Writebacks != 1 {
		t.Fatalf("clean Local line was not written back (writebacks=%d)", st.Writebacks)
	}
}

func TestRWBFirstWriteEvictsSilently(t *testing.T) {
	// The Section 5 claim, cache-level view: a single initializing write
	// leaves an RWB line in F (clean), which evicts without a write-back.
	r := newRig(t, "rwb", 1, 4)
	r.write(0, 2, 11) // F, clean
	if r.state(0, 2) != coherence.FirstWrite {
		t.Fatalf("state = %v, want FirstWrite", r.state(0, 2))
	}
	r.read(0, 6)
	if st := r.caches[0].Stats(); st.Writebacks != 0 {
		t.Fatalf("F line wrote back (writebacks=%d)", st.Writebacks)
	}
}

func TestRWBSecondWriteClaimsLocalViaInvalidate(t *testing.T) {
	r := newRig(t, "rwb", 2, 16)
	r.mem.Poke(4, 0)
	r.read(1, 4) // cache 1 holds R
	r.write(0, 4, 1)
	if r.state(0, 4) != coherence.FirstWrite {
		t.Fatalf("after first write: %v", r.state(0, 4))
	}
	// Cache 1 snarfed the write.
	if s, v, _ := r.caches[1].Lookup(4); s != coherence.Readable || v != 1 {
		t.Fatalf("cache 1 = (%v, %d), want (Readable, 1)", s, v)
	}
	invBefore := r.bus.Stats().Invalidates()
	r.write(0, 4, 2)
	if r.state(0, 4) != coherence.Local {
		t.Fatalf("after second write: %v, want Local", r.state(0, 4))
	}
	if r.state(1, 4) != coherence.Invalid {
		t.Fatal("BI did not invalidate cache 1")
	}
	if r.bus.Stats().Invalidates() != invBefore+1 {
		t.Fatal("no BI on the bus")
	}
	// BI carries no data: memory still has the first write's value.
	if r.mem.Peek(4) != 1 {
		t.Fatalf("memory = %d, want 1 (BI carries no data)", r.mem.Peek(4))
	}
}

func TestRWBSnoopedReadResetsWriteStreak(t *testing.T) {
	// Cache 0 is in F (one write done); cache 1's read is granted before
	// cache 0's second write (round-robin). The snooped read is an
	// intervening reference, so the streak resets: the second write goes
	// out as a BW (not BI) and cache 1 snarfs the new value.
	r := newRig(t, "rwb", 2, 16)
	r.mem.Poke(9, 1)
	r.read(0, 9)
	r.write(0, 9, 2) // cache 0: F, streak 1
	done, _ := r.caches[1].Access(coherence.EvRead, 9, 0, coherence.ClassShared)
	if done {
		t.Fatal("read unexpectedly hit")
	}
	done0, _ := r.caches[0].Access(coherence.EvWrite, 9, 3, coherence.ClassShared)
	if done0 {
		t.Fatal("F-state second write should need the bus")
	}
	// Round-robin after cache 0's last grant favors cache 1: the read
	// serializes first and returns the pre-write value.
	if v := r.drive(1); v != 2 {
		t.Fatalf("cache 1 read %d, want 2 (read serialized before the write)", v)
	}
	r.drive(0)
	// The write was demoted to a BW by the streak reset...
	if got := r.bus.Stats().Invalidates(); got != 0 {
		t.Fatalf("BI count = %d, want 0 (streak was reset)", got)
	}
	if r.state(0, 9) != coherence.FirstWrite {
		t.Fatalf("writer state = %v, want FirstWrite", r.state(0, 9))
	}
	// ...and cache 1 snarfed the broadcast value.
	if _, v, _ := r.caches[1].Lookup(9); v != 3 {
		t.Fatalf("cache 1 value = %d, want snarfed 3", v)
	}
}

func TestRWBPendingReadSatisfiedBySnarf(t *testing.T) {
	// A cache holding an Invalid copy and waiting for the bus can be
	// satisfied by snarfing another PE's bus write — its own bus read is
	// withdrawn, costing zero extra transactions.
	r := newRig(t, "rwb", 3, 16)
	r.mem.Poke(9, 1)
	r.read(1, 9)     // cache 1: R(1)
	r.write(0, 9, 2) // cache 0: F; cache 1 snarfs
	r.write(0, 9, 3) // cache 0: L via BI; cache 1: Invalid
	if r.state(1, 9) != coherence.Invalid {
		t.Fatal("setup: cache 1 should hold an Invalid copy")
	}
	// Dummy transaction by cache 1 so round-robin favors cache 2 next.
	r.read(1, 11)
	// Cache 1 wants to read 9 (pending BR); cache 2 writes 9 first.
	done, _ := r.caches[1].Access(coherence.EvRead, 9, 0, coherence.ClassShared)
	if done {
		t.Fatal("read of Invalid copy unexpectedly hit")
	}
	done2, _ := r.caches[2].Access(coherence.EvWrite, 9, 5, coherence.ClassShared)
	if done2 {
		t.Fatal("cache 2 write unexpectedly hit")
	}
	readsBefore := r.bus.Stats().Reads()
	if v := r.drive(1); v != 5 {
		t.Fatalf("cache 1 read %d, want 5 (snarfed from cache 2's write)", v)
	}
	r.drive(2)
	if got := r.bus.Stats().Reads(); got != readsBefore {
		t.Fatalf("bus reads grew by %d; the pending read should have been withdrawn", got-readsBefore)
	}
	if r.state(1, 9) != coherence.Readable {
		t.Fatalf("cache 1 state = %v, want Readable", r.state(1, 9))
	}
}

func TestGoodmanWriteMissIsTwoTransactions(t *testing.T) {
	r := newRig(t, "goodman", 1, 16)
	r.write(0, 5, 77)
	if r.state(0, 5) != coherence.Reserved {
		t.Fatalf("state = %v, want Reserved", r.state(0, 5))
	}
	bs := r.bus.Stats()
	if bs.Reads() != 1 || bs.Writes() != 1 {
		t.Fatalf("bus stats = %+v, want 1 BR + 1 BW", bs)
	}
	if r.mem.Peek(5) != 77 {
		t.Fatal("write-once did not reach memory")
	}
}

func TestGoodmanDirtyOwnerServicesRead(t *testing.T) {
	r := newRig(t, "goodman", 2, 16)
	r.write(0, 5, 1) // Reserved
	r.write(0, 5, 2) // Dirty (local)
	if r.mem.Peek(5) != 1 {
		t.Fatal("dirty write leaked")
	}
	if v := r.read(1, 5); v != 2 {
		t.Fatalf("read = %d, want 2", v)
	}
	if r.state(0, 5) != coherence.Valid {
		t.Fatalf("owner state = %v, want Valid", r.state(0, 5))
	}
	if r.mem.Peek(5) != 2 {
		t.Fatal("flush did not reach memory")
	}
}

func TestTSLocalFastPath(t *testing.T) {
	r := newRig(t, "rb", 1, 16)
	r.write(0, 8, 0) // Local with value 0
	before := r.bus.Stats().Transactions()
	old := r.ts(0, 8, 1)
	if old != 0 {
		t.Fatalf("TS old = %d, want 0", old)
	}
	if r.bus.Stats().Transactions() != before {
		t.Fatal("local TS generated bus traffic")
	}
	if r.caches[0].Stats().LocalRMWs != 1 {
		t.Fatal("local TS not counted")
	}
	// The lock is held; a second local TS fails.
	if old := r.ts(0, 8, 1); old != 1 {
		t.Fatalf("second TS old = %d, want 1", old)
	}
}

func TestTSBusPath(t *testing.T) {
	r := newRig(t, "rb", 2, 16)
	// Cache 0 acquires over the bus.
	if old := r.ts(0, 8, 1); old != 0 {
		t.Fatal("first TS should succeed")
	}
	if r.state(0, 8) != coherence.Local {
		t.Fatalf("winner state = %v, want Local", r.state(0, 8))
	}
	if r.mem.Peek(8) != 1 {
		t.Fatal("TS write did not reach memory")
	}
	// Cache 1 fails; its cache state is untouched (non-cachable read).
	if old := r.ts(1, 8, 1); old != 1 {
		t.Fatal("second TS should fail")
	}
	if r.state(1, 8) != coherence.NotPresent {
		t.Fatalf("loser state = %v, want NotPresent", r.state(1, 8))
	}
	bs := r.bus.Stats()
	if bs.RMWSuccess != 1 || bs.RMWFailure != 1 {
		t.Fatalf("bus stats = %+v", bs)
	}
}

func TestTSDirtyOwnerFlushSequence(t *testing.T) {
	// The release-and-reacquire sequence behind Figure 6-1's last rows:
	// the holder releases locally (dirty L), the next TS's locked read
	// forces a flush, then succeeds.
	r := newRig(t, "rb", 2, 16)
	r.ts(0, 8, 1)    // acquire: L(1) clean
	r.write(0, 8, 0) // release locally: L(0) dirty; memory still 1
	if r.mem.Peek(8) != 1 {
		t.Fatal("release leaked to memory")
	}
	old := r.ts(1, 8, 1)
	if old != 0 {
		t.Fatalf("TS after flush: old = %d, want 0", old)
	}
	if r.mem.Peek(8) != 1 {
		t.Fatal("acquired lock not in memory")
	}
	// The old holder was invalidated by the success write.
	if r.state(0, 8) != coherence.Invalid {
		t.Fatalf("old holder = %v, want Invalid", r.state(0, 8))
	}
	if r.bus.Stats().RMWFlushes != 1 {
		t.Fatal("locked-read flush not counted")
	}
}

func TestCmStarSharedBypassesCache(t *testing.T) {
	r := newRig(t, "cmstar", 1, 16)
	r.mem.Poke(3, 9)
	done, _ := r.caches[0].Access(coherence.EvRead, 3, 0, coherence.ClassShared)
	if done {
		t.Fatal("shared read serviced by cache")
	}
	if v := r.drive(0); v != 9 {
		t.Fatalf("bypass read = %d, want 9", v)
	}
	if r.state(0, 3) != coherence.NotPresent {
		t.Fatal("bypass read allocated a line")
	}
	if r.caches[0].Stats().Bypasses != 1 {
		t.Fatal("bypass not counted")
	}
	// Code reads are cached.
	done, _ = r.caches[0].Access(coherence.EvRead, 4, 0, coherence.ClassCode)
	if done {
		t.Fatal("first code read should miss")
	}
	r.drive(0)
	if r.state(0, 4) != coherence.Valid {
		t.Fatal("code read did not allocate")
	}
}

func TestLRUWithTwoWays(t *testing.T) {
	// 4 lines, 2 ways -> 2 sets. Addresses 0, 2, 4 share set 0.
	proto := coherence.RB{}
	mem := memory.New()
	b := bus.New(mem)
	c := MustNew(0, proto, Config{Lines: 4, Ways: 2})
	b.Attach(0, c)
	b.AttachRequester(0, c)
	r := &rig{t: t, mem: mem, bus: b, caches: []*Cache{c}}

	mem.Poke(0, 100)
	mem.Poke(2, 102)
	mem.Poke(4, 104)
	r.read(0, 0)
	r.read(0, 2)
	r.read(0, 0) // touch 0: now 2 is LRU
	r.read(0, 4) // evicts 2
	if r.state(0, 2) != coherence.NotPresent {
		t.Fatal("LRU did not evict address 2")
	}
	if r.state(0, 0) != coherence.Readable || r.state(0, 4) != coherence.Readable {
		t.Fatal("wrong lines evicted")
	}
}

func TestEntriesListsValidLines(t *testing.T) {
	r := newRig(t, "rb", 1, 16)
	r.write(0, 1, 10)
	r.read(0, 2)
	entries := r.caches[0].Entries()
	if len(entries) != 2 {
		t.Fatalf("Entries() returned %d lines, want 2", len(entries))
	}
	byAddr := map[bus.Addr]Entry{}
	for _, e := range entries {
		byAddr[e.Addr] = e
	}
	if byAddr[1].State != coherence.Local || byAddr[1].Data != 10 {
		t.Fatalf("entry for addr 1 = %+v", byAddr[1])
	}
}

func TestMissRatio(t *testing.T) {
	r := newRig(t, "rb", 1, 16)
	r.read(0, 1) // miss
	r.read(0, 1) // hit
	r.read(0, 1) // hit
	r.read(0, 2) // miss
	st := r.caches[0].Stats()
	if got := st.MissRatio(); got != 0.5 {
		t.Fatalf("MissRatio = %g, want 0.5", got)
	}
	var empty Stats
	if empty.MissRatio() != 0 {
		t.Fatal("empty MissRatio != 0")
	}
}

func TestAccessWhileBusyPanics(t *testing.T) {
	r := newRig(t, "rb", 1, 16)
	r.caches[0].Access(coherence.EvRead, 1, 0, coherence.ClassShared) // pending
	defer func() {
		if recover() == nil {
			t.Fatal("second Access did not panic")
		}
	}()
	r.caches[0].Access(coherence.EvRead, 2, 0, coherence.ClassShared)
}

func TestWriteThroughWriteMissDoesNotAllocate(t *testing.T) {
	r := newRig(t, "writethrough", 1, 16)
	r.write(0, 5, 50)
	if r.state(0, 5) != coherence.NotPresent {
		t.Fatal("write miss allocated")
	}
	if r.mem.Peek(5) != 50 {
		t.Fatal("write lost")
	}
	// Read allocates; a write hit then updates both copy and memory.
	r.read(0, 5)
	r.write(0, 5, 51)
	if s, v, _ := r.caches[0].Lookup(5); s != coherence.Valid || v != 51 {
		t.Fatalf("line = (%v, %d)", s, v)
	}
	if r.mem.Peek(5) != 51 {
		t.Fatal("write hit did not write through")
	}
}

func TestIllinoisCleanExclusiveEndToEnd(t *testing.T) {
	// One cache reads a quiet line -> Exclusive; its write is then free.
	r := newRig(t, "illinois", 2, 16)
	r.mem.Poke(5, 9)
	if v := r.read(0, 5); v != 9 {
		t.Fatal("read wrong value")
	}
	if r.state(0, 5) != coherence.Reserved {
		t.Fatalf("quiet read installed %v, want Exclusive (Reserved)", r.state(0, 5))
	}
	before := r.bus.Stats().Transactions()
	r.write(0, 5, 10)
	if r.bus.Stats().Transactions() != before {
		t.Fatal("writing a clean-exclusive line used the bus")
	}
	if r.state(0, 5) != coherence.DirtyState {
		t.Fatalf("state after silent upgrade = %v", r.state(0, 5))
	}
	// The second cache's read asserts the shared line was quiet, gets the
	// dirty data via the owner's flush, and both end Shared.
	if v := r.read(1, 5); v != 10 {
		t.Fatalf("cross read = %d, want 10", v)
	}
	if r.state(0, 5) != coherence.Valid || r.state(1, 5) != coherence.Valid {
		t.Fatalf("post-share states = %v, %v", r.state(0, 5), r.state(1, 5))
	}
	// Now the line is shared: a fresh reader installs Shared, not
	// Exclusive.
	r.mem.Poke(6, 1)
	r.read(0, 6)
	if v := r.read(1, 6); v != 1 {
		t.Fatal("shared read wrong")
	}
	if r.state(1, 6) != coherence.Valid {
		t.Fatalf("shared-line read installed %v, want Shared (Valid)", r.state(1, 6))
	}
}

func TestIllinoisWriteMissOnQuietLineIsReadPlusSilentUpgrade(t *testing.T) {
	r := newRig(t, "illinois", 2, 16)
	r.write(0, 5, 77)
	// The fetch installed Exclusive, so the write part was free: exactly
	// one bus transaction (the read), zero bus writes.
	bs := r.bus.Stats()
	if bs.Reads() != 1 || bs.Writes() != 0 {
		t.Fatalf("bus stats = reads %d writes %d, want 1/0", bs.Reads(), bs.Writes())
	}
	if r.state(0, 5) != coherence.DirtyState {
		t.Fatalf("state = %v, want Modified", r.state(0, 5))
	}
}

func TestTwoPhasePrimitivesAtCacheLevel(t *testing.T) {
	r := newRig(t, "rb", 2, 16)
	c := r.caches[0]
	if c.Protocol().Name() != "rb" {
		t.Fatal("Protocol accessor broken")
	}

	// Locked read: non-cachable, takes the bus lock.
	c.AccessLockedRead(8)
	if v := r.drive(0); v != 0 {
		t.Fatalf("locked read = %d", v)
	}
	if h, a := r.bus.Locked(); h != 0 || a != 8 {
		t.Fatalf("lock = (%d,%d)", h, a)
	}
	if _, _, present := c.Lookup(8); present {
		t.Fatal("locked read installed a line")
	}

	// Cached unlock write: follows the protocol (RB -> Local) and
	// releases the lock.
	c.AccessUnlockWrite(8, 1, true)
	r.drive(0)
	if h, _ := r.bus.Locked(); h != -1 {
		t.Fatal("unlock write did not release")
	}
	if r.state(0, 8) != coherence.Local {
		t.Fatalf("state after cached unlock = %v", r.state(0, 8))
	}

	// TryLocalRMW fast path on the Local line.
	if done, old := c.TryLocalRMW(8, 2); !done || old != 1 {
		t.Fatalf("TryLocalRMW = (%v, %d), want (true, 1)", done, old)
	}
	// Not exclusive -> declined.
	if done, _ := r.caches[1].TryLocalRMW(8, 2); done {
		t.Fatal("TryLocalRMW succeeded without an exclusive copy")
	}

	// Bypass (failed-TS) unlock write: restores a value without touching
	// cache state.
	r.caches[1].AccessLockedRead(8)
	r.drive(1)
	r.caches[1].AccessUnlockWrite(8, 1, false)
	r.drive(1)
	if _, _, present := r.caches[1].Lookup(8); present {
		t.Fatal("bypass unlock installed a line")
	}
	if h, _ := r.bus.Locked(); h != -1 {
		t.Fatal("bypass unlock did not release")
	}
}

func TestBusyPanicsForTwoPhasePrimitives(t *testing.T) {
	r := newRig(t, "rb", 1, 16)
	r.caches[0].AccessLockedRead(8) // pending
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s while busy did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AccessLockedRead", func() { r.caches[0].AccessLockedRead(9) })
	mustPanic("AccessUnlockWrite", func() { r.caches[0].AccessUnlockWrite(9, 1, true) })
	mustPanic("AccessRMW", func() { r.caches[0].AccessRMW(9, 1) })
}

func TestRMWWithVictimWriteback(t *testing.T) {
	// A Test-and-Set whose target's frame holds a dirty Local victim must
	// write the victim back before the RMW installs the new line.
	r := newRig(t, "rb", 1, 4)
	r.write(0, 2, 11)    // Local
	r.write(0, 2, 12)    // dirty
	old := r.ts(0, 6, 1) // same frame (2 % 4 == 6 % 4)
	if old != 0 {
		t.Fatalf("TS old = %d", old)
	}
	if r.mem.Peek(2) != 12 {
		t.Fatal("victim not written back before RMW install")
	}
	if r.state(0, 6) != coherence.Local {
		t.Fatalf("RMW target state = %v", r.state(0, 6))
	}
}

func TestWriteThroughRMWKeepsNoLine(t *testing.T) {
	// WriteThrough's RMWSuccess next state is Invalid when the issuer had
	// no line: the rmwCompleted drop-copy path.
	r := newRig(t, "writethrough", 1, 16)
	r.read(0, 6) // install Valid
	if old := r.ts(0, 6, 1); old != 0 {
		t.Fatal("TS failed")
	}
	// Valid issuer keeps an updated copy under writethrough.
	if s, v, _ := r.caches[0].Lookup(6); s != coherence.Valid || v != 1 {
		t.Fatalf("line = (%v, %d)", s, v)
	}
	// And from NotPresent the line stays out.
	if old := r.ts(0, 7, 1); old != 0 {
		t.Fatal("TS failed")
	}
	if _, _, present := r.caches[0].Lookup(7); present {
		t.Fatal("writethrough RMW installed a line")
	}
}
