package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDelayGrowsAndCaps: the pre-jitter schedule doubles from Base and
// never exceeds Cap, whatever the attempt index.
func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Delay(200); got != 80*time.Millisecond {
		t.Fatalf("Delay(200) = %v, want the 80ms cap (no overflow)", got)
	}
}

// TestJitterDeterministicUnderSeed: the jittered schedule is a pure
// function of (policy, seed) — same seed, same delays; different
// seeds, different delays; and every delay stays inside the
// [d*(1-jitter), d) envelope.
func TestJitterDeterministicUnderSeed(t *testing.T) {
	a := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Jitter: 0.5, Seed: 42}
	b := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Jitter: 0.5, Seed: 42}
	c := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Jitter: 0.5, Seed: 43}
	diff := false
	for i := 0; i < 8; i++ {
		da, db, dc := a.Delay(i), b.Delay(i), c.Delay(i)
		if da != db {
			t.Fatalf("Delay(%d) differs under the same seed: %v vs %v", i, da, db)
		}
		if da != dc {
			diff = true
		}
		full := Policy{Base: a.Base, Cap: a.Cap, Jitter: -1}.Delay(i)
		if da < full/2 || da > full {
			t.Fatalf("Delay(%d) = %v outside the jitter envelope [%v, %v]", i, da, full/2, full)
		}
	}
	if !diff {
		t.Fatal("8 delays identical across different seeds; jitter stream is not seed-keyed")
	}
}

// TestDoStopsOnContextCancel: a Do blocked in its backoff wait returns
// promptly with ctx.Err() when the context is cancelled.
func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Base: time.Hour, Cap: time.Hour, MaxAttempts: 3, Jitter: -1}
	errs := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		errs <- Do(ctx, p, func(context.Context) error {
			select {
			case <-started:
			default:
				close(started)
			}
			return errors.New("always fails")
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errs:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation (stuck in the hour-long backoff)")
	}
}

// TestDoHonorsAfterHint: a failure carrying an AfterError waits the
// hinted duration instead of the computed backoff.
func TestDoHonorsAfterHint(t *testing.T) {
	p := Policy{Base: time.Hour, Cap: time.Hour, MaxAttempts: 2, Jitter: -1}
	calls := 0
	start := time.Now()
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls == 1 {
			return &AfterError{After: time.Millisecond, Err: errors.New("shed")}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success on attempt 2", err)
	}
	if calls != 2 {
		t.Fatalf("op ran %d times, want 2", calls)
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("hinted wait took %v; the 1ms hint did not override the hour-long backoff", wall)
	}
}

// TestDoPermanentStopsImmediately: a Permanent failure ends the loop on
// the spot, however many attempts remain.
func TestDoPermanentStopsImmediately(t *testing.T) {
	base := errors.New("bad spec")
	calls := 0
	err := Do(context.Background(), Policy{Base: time.Millisecond, MaxAttempts: 5}, func(context.Context) error {
		calls++
		return Permanent(fmt.Errorf("rejected: %w", base))
	})
	if calls != 1 {
		t.Fatalf("op ran %d times, want 1 (permanent)", calls)
	}
	if err == nil || !errors.Is(err, base) {
		t.Fatalf("Do = %v, want the wrapped permanent error", err)
	}
}

// TestDoReturnsLastError: once the attempt budget is spent, the last
// attempt's error comes back.
func TestDoReturnsLastError(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Base: time.Microsecond, MaxAttempts: 3, Jitter: -1},
		func(context.Context) error {
			calls++
			return fmt.Errorf("attempt %d failed", calls)
		})
	if calls != 3 {
		t.Fatalf("op ran %d times, want 3", calls)
	}
	if err == nil || err.Error() != "attempt 3 failed" {
		t.Fatalf("Do = %v, want the last attempt's error", err)
	}
}
