// Package retry is the repository's single retry policy: capped
// exponential backoff with seeded, deterministic jitter. Before it
// existed the tree had three divergent hand-rolled loops (the cluster
// health prober's doubling backoff, the rebalancer's replica-fill
// retry, and loadgen's Retry-After honoring); they all run through
// Policy now, so "how we retry" is one audited decision instead of
// three accidents.
//
// Determinism: the delay for attempt k is a pure function of
// (Policy, Seed, k) — the jitter stream is a splitmix64 mix of the
// seed and the attempt index, never math/rand and never the wall
// clock. Two processes configured with the same policy and seed
// compute byte-identical backoff schedules, which is what lets the
// chaos campaign replay a run exactly. The *waiting* is wall-clock by
// nature (that is the point of a backoff) and is the one waived
// non-determinism in this package.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Policy describes one retry discipline: up to MaxAttempts tries, the
// k-th failure waiting Delay(k) before the next try.
type Policy struct {
	// Base is the pre-jitter delay after the first failure; it doubles
	// each further failure. 0 means 50ms.
	Base time.Duration
	// Cap bounds the pre-jitter delay; 0 means 5s.
	Cap time.Duration
	// MaxAttempts is the total number of tries, including the first;
	// 0 means 4.
	MaxAttempts int
	// Jitter is the fraction of each delay that is randomized (0..1):
	// the delay for attempt k is d*(1-Jitter) + d*Jitter*u(k) with
	// u(k) drawn from the seeded stream. Negative means no jitter;
	// 0 means the 0.25 default.
	Jitter float64
	// Seed keys the jitter stream. The same (Policy, Seed) always
	// yields the same schedule; derive per-site seeds from stable
	// identity (a worker id hash, a request index), never the clock.
	Seed uint64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.25
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// mix64 is a splitmix64 finalizer: a pure bijective scramble used to
// derive the per-attempt jitter draw from (seed, attempt).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a 64-bit draw onto [0, 1).
func unit(x uint64) float64 {
	return float64(x>>11) / float64(uint64(1)<<53)
}

// Delay returns the wait before try attempt+2 — i.e. Delay(0) is the
// pause after the first failure. It is a pure function: capped
// exponential growth from Base, with the Jitter fraction drawn from
// the seeded stream.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := p.Base
	for i := 0; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	if p.Jitter == 0 {
		return d
	}
	u := unit(mix64(p.Seed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15))
	return time.Duration(float64(d) * ((1 - p.Jitter) + p.Jitter*u))
}

// AfterError carries a server-supplied retry hint (a 429/503
// Retry-After header): when an attempt fails with one, Do waits the
// hinted duration instead of the computed backoff.
type AfterError struct {
	// After is how long the server asked us to wait.
	After time.Duration
	// Err is the underlying failure.
	Err error
}

func (e *AfterError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("retry after %v", e.After)
	}
	return e.Err.Error()
}

func (e *AfterError) Unwrap() error { return e.Err }

// PermanentError marks a failure retrying cannot fix; Do stops
// immediately and returns the wrapped error.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so Do gives up on it immediately (a 400, an
// invalid spec, a closed store — anything deterministic).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// Do runs op under the policy: up to MaxAttempts tries, waiting
// Delay(k) (or the op's AfterError hint) between them, bailing out the
// moment ctx is cancelled or op fails permanently. It returns nil on
// the first success, ctx.Err() on cancellation, and the last attempt's
// error once the budget is spent.
func Do(ctx context.Context, p Policy, op func(context.Context) error) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			wait := p.Delay(attempt - 1)
			var hint *AfterError
			if errors.As(err, &hint) && hint.After > 0 {
				wait = hint.After
			}
			if serr := sleep(ctx, wait); serr != nil {
				return serr
			}
		}
		if err = op(ctx); err == nil {
			return nil
		}
		var perm *PermanentError
		if errors.As(err, &perm) {
			return perm.Err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return err
}

// sleep waits for d or until ctx is cancelled. The backoff wait is the
// one place this package touches wall time; no simulation result ever
// depends on it.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	//lint:ignore determinism backoff waiting is wall-clock by definition; the schedule itself is seed-derived
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
