package lint

import "testing"

func TestDeterminismFixture(t *testing.T) {
	// The fixture seeds five violations — the math/rand import, a map
	// range that prints, one that appends without sorting, one that
	// returns an iteration element, and a time.Now call — while the
	// collect-then-sort, any-match, commutative-fold, map-fill and
	// ignore-waived forms stay silent. Diagnostics arrive sorted by
	// position, i.e. source order.
	expectDiags(t, runOn(t, "testdata/determinism"), [][2]string{
		{"determinism", "import of math/rand"},
		{"determinism", "reaches output through fmt.Println"},
		{"determinism", `reaches slice "keys" via append without a subsequent sort`},
		{"determinism", "selects the returned value"},
		{"determinism", "wall-clock input"},
	})
}
