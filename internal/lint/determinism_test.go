package lint

import "testing"

func TestDeterminismFixture(t *testing.T) {
	// The fixture seeds fourteen violations — a chaos plan seeded from
	// the wall clock, two math/rand imports (the original fixture file
	// and the random shard pick), a map
	// range that prints, one that appends without sorting, one that
	// returns an iteration element, a time.Now call, a map range that
	// journals through json.Encoder, one that emits report rows, a
	// dense-store snapshot whose sparse-overflow keys escape unsorted,
	// a fault plan seeded from the wall clock, a request id minted
	// from the wall clock, a sweep-job body bounded by a time.After
	// deadline, and a miss-ratio curve serialized straight out of a
	// histogram map — while the seed-derived chaos plan,
	// collect-then-sort, any-match, commutative-fold,
	// map-fill, sorted-journal, ignore-waived, sorted-snapshot, seeded
	// fault-plan, content-hash request-id, cycle-budget job,
	// array-ordered curve emission, sorted-histogram curve and
	// rendezvous shard-pick forms stay silent. Diagnostics arrive sorted
	// by position, i.e. source order (chaosplan.go, determinism.go,
	// jobs.go, mrccurve.go, shardpick.go).
	expectDiags(t, runOn(t, "testdata/determinism"), [][2]string{
		{"determinism", "wall-clock input"},
		{"determinism", "import of math/rand"},
		{"determinism", "reaches output through fmt.Println"},
		{"determinism", `reaches slice "keys" via append without a subsequent sort`},
		{"determinism", "selects the returned value"},
		{"determinism", "wall-clock input"},
		{"determinism", "reaches output through json.Encoder.Encode"},
		{"determinism", "reaches output through report.Table.AddRowf"},
		{"determinism", `reaches slice "addrs" via append without a subsequent sort`},
		{"determinism", "wall-clock input"},
		{"determinism", "wall-clock input"},
		{"determinism", "time.After: wall-clock input"},
		{"determinism", `reaches slice "points" via append without a subsequent sort`},
		{"determinism", "import of math/rand"},
	})
}
