package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// phaseaudit enforces the cycle-loop phase-ownership discipline that makes
// the planned parallel multi-bank core (ROADMAP item 3) safe to attempt:
//
//	//phase:bus        on a field: only the bus phase may write it
//	//phase:snoop      (request-line / snoop-resolution phase)
//	//phase:cpu        (CPU phase)
//	//phase:bus,snoop  a comma list: any listed phase may write
//	//phase:any        all three phases may write
//
// The same directive on a method or function declares the phase context(s)
// the function runs in; every annotated function with a body is an
// analysis root. Unannotated functions are transparent: they inherit the
// caller's phase context, so helpers need no annotations. Interface
// methods may carry the directive too — it is then checked at every
// dynamic call site.
//
// A package containing at least one //phase: directive is "phase-scoped".
// Within the call graph reachable from the roots, the analyzer flags:
//
//   - a write (assignment, op-assignment, increment) whose first field
//     selector from the receiver resolves to a field owned by phases that
//     do not cover the current context;
//   - a write to a field of a phase-scoped package that carries no
//     //phase: annotation at all — so deleting an ownership annotation is
//     itself a finding, not a silent loss of checking;
//   - a call from phase context C into a function annotated with phases Q
//     where C is not a subset of Q.
//
// The analysis is write-oriented (reads are unconstrained: the serial
// loop's phase ordering already defines what a read observes) and
// deliberately has one soundness gap: a whole-struct store through a
// pointer ("*ln = line{...}") bypasses field resolution. Such stores are
// rare and reviewed by hand.
const (
	phaseDirectivePrefix = "phase:"
)

// phaseSet is a bitmask of cycle-loop phases.
type phaseSet uint8

const (
	phaseBus phaseSet = 1 << iota
	phaseSnoop
	phaseCPU
)

const phaseAll = phaseBus | phaseSnoop | phaseCPU

func (s phaseSet) String() string {
	if s == phaseAll {
		return "any"
	}
	parts := make([]string, 0, 3)
	if s&phaseBus != 0 {
		parts = append(parts, "bus")
	}
	if s&phaseSnoop != 0 {
		parts = append(parts, "snoop")
	}
	if s&phaseCPU != 0 {
		parts = append(parts, "cpu")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// parsePhasePayload parses the text after "phase:"; ok is false for
// malformed payloads.
func parsePhasePayload(payload string) (phaseSet, bool) {
	var set phaseSet
	for _, name := range strings.Split(payload, ",") {
		switch strings.TrimSpace(name) {
		case "bus":
			set |= phaseBus
		case "snoop":
			set |= phaseSnoop
		case "cpu":
			set |= phaseCPU
		case "any":
			set = phaseAll
		default:
			return 0, false
		}
	}
	return set, set != 0
}

// phaseFunc is one function declaration available for walking.
type phaseFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// phaseProgram is the whole-program phase-ownership index.
type phaseProgram struct {
	fieldOwner map[string]phaseSet // "pkgpath.Type.Field" -> owning phases
	funcPhase  map[string]phaseSet // "pkgpath.Type.Method" / "pkgpath.Func" -> declared context
	funcDecls  map[string]*phaseFunc
	scoped     map[string]bool // package paths containing >=1 //phase: directive
}

// phaseVisit memoizes (function, context) walks.
type phaseVisit struct {
	fn  string
	ctx phaseSet
}

// checkPhases runs phaseaudit over every loaded package. drop names one
// annotation key ("pkgpath.Type.Field" or a function key) whose directive
// is ignored during collection — the test hook that demonstrates deleting
// an ownership annotation surfaces a finding; pass "" for a normal run.
func checkPhases(pkgs []*Package, drop string) []Diagnostic {
	prog, diags := buildPhaseProgram(pkgs, drop)
	if len(prog.scoped) == 0 {
		return diags
	}
	w := &phaseWalker{prog: prog, visited: map[phaseVisit]bool{}}
	roots := make([]string, 0, len(prog.funcPhase))
	for key := range prog.funcPhase {
		roots = append(roots, key)
	}
	sort.Strings(roots)
	for _, key := range roots {
		w.walk(key, prog.funcPhase[key])
	}
	diags = append(diags, w.diags...)
	sortDiags(diags)
	return diags
}

// phaseFieldKeys lists every annotated field key, sorted — the iteration
// domain for the annotation-deletion test.
func phaseFieldKeys(pkgs []*Package) []string {
	prog, _ := buildPhaseProgram(pkgs, "")
	keys := make([]string, 0, len(prog.fieldOwner))
	for key := range prog.fieldOwner {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// buildPhaseProgram collects annotations and declarations from every
// package, emitting diagnostics for malformed directives.
func buildPhaseProgram(pkgs []*Package, drop string) (*phaseProgram, []Diagnostic) {
	prog := &phaseProgram{
		fieldOwner: map[string]phaseSet{},
		funcPhase:  map[string]phaseSet{},
		funcDecls:  map[string]*phaseFunc{},
		scoped:     map[string]bool{},
	}
	var diags []Diagnostic
	record := func(p *Package, key string, set phaseSet, isField bool) {
		prog.scoped[p.Path] = true
		if key == drop && drop != "" {
			return
		}
		if isField {
			prog.fieldOwner[key] = set
		} else {
			prog.funcPhase[key] = set
		}
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					key := p.Path + "." + funcDeclName(d)
					prog.funcDecls[key] = &phaseFunc{pkg: p, decl: d}
					set, pos, ok := phaseDirectives(p, d.Doc)
					if !ok {
						diags = p.diag(diags, pos, "phaseaudit", malformedPhaseMsg)
						continue
					}
					if set != 0 {
						record(p, key, set, false)
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						diags = collectTypePhases(prog, p, ts, record, diags)
					}
				}
			}
		}
	}
	return prog, diags
}

const malformedPhaseMsg = "malformed //phase: directive (want bus, snoop, cpu, any, or a comma-separated list)"

// collectTypePhases collects field annotations from a struct type and
// method annotations from an interface type.
func collectTypePhases(prog *phaseProgram, p *Package, ts *ast.TypeSpec,
	record func(*Package, string, phaseSet, bool), diags []Diagnostic) []Diagnostic {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			set, pos, ok := fieldPhaseDirectives(p, field)
			if !ok {
				diags = p.diag(diags, pos, "phaseaudit", malformedPhaseMsg)
				continue
			}
			if set == 0 {
				continue
			}
			for _, name := range field.Names {
				record(p, p.Path+"."+ts.Name.Name+"."+name.Name, set, true)
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			set, pos, ok := fieldPhaseDirectives(p, m)
			if !ok {
				diags = p.diag(diags, pos, "phaseaudit", malformedPhaseMsg)
				continue
			}
			if set == 0 {
				continue
			}
			for _, name := range m.Names {
				record(p, p.Path+"."+ts.Name.Name+"."+name.Name, set, false)
			}
		}
	}
	return diags
}

// fieldPhaseDirectives reads //phase: lines from a field's doc comment and
// trailing line comment.
func fieldPhaseDirectives(p *Package, field *ast.Field) (phaseSet, token.Pos, bool) {
	set, pos, ok := phaseDirectives(p, field.Doc)
	if !ok {
		return 0, pos, false
	}
	set2, pos2, ok := phaseDirectives(p, field.Comment)
	if !ok {
		return 0, pos2, false
	}
	return set | set2, field.Pos(), true
}

// phaseDirectives extracts the union of //phase: directives in a comment
// group; ok is false (with the offending position) for a malformed one.
func phaseDirectives(p *Package, doc *ast.CommentGroup) (phaseSet, token.Pos, bool) {
	if doc == nil {
		return 0, token.NoPos, true
	}
	var set phaseSet
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		payload, found := strings.CutPrefix(text, phaseDirectivePrefix)
		if !found {
			continue
		}
		s, ok := parsePhasePayload(payload)
		if !ok {
			return 0, c.Pos(), false
		}
		set |= s
	}
	return set, token.NoPos, true
}

// funcDeclName renders "Type.Method" or "Func" for a declaration.
func funcDeclName(d *ast.FuncDecl) string {
	if recv := recvTypeName(d); recv != "" {
		return recv + "." + d.Name.Name
	}
	return d.Name.Name
}

// recvTypeName returns the receiver's type name, "" for plain functions.
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// phaseWalker traverses the call graph from annotated roots.
type phaseWalker struct {
	prog    *phaseProgram
	visited map[phaseVisit]bool
	diags   []Diagnostic
}

func (w *phaseWalker) walk(key string, ctx phaseSet) {
	v := phaseVisit{fn: key, ctx: ctx}
	if w.visited[v] {
		return
	}
	w.visited[v] = true
	fn := w.prog.funcDecls[key]
	if fn == nil || fn.decl.Body == nil {
		return
	}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				w.checkWrite(fn.pkg, lhs, ctx)
			}
		case *ast.IncDecStmt:
			w.checkWrite(fn.pkg, n.X, ctx)
		case *ast.CallExpr:
			w.checkCall(fn.pkg, n, ctx)
		}
		return true
	})
}

// checkCall verifies a call's phase contract and recurses into
// unannotated callees.
func (w *phaseWalker) checkCall(p *Package, call *ast.CallExpr, ctx phaseSet) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return // builtin, type conversion, or func-valued field: a leaf
	}
	key := typeFuncKey(fn)
	if key == "" {
		return
	}
	if q, annotated := w.prog.funcPhase[key]; annotated {
		if ctx&^q != 0 {
			w.diags = p.diag(w.diags, call.Pos(), "phaseaudit",
				fmt.Sprintf("call to //phase:%s function %s from phase context %s", q, key, ctx))
		}
		return // annotated callees are walked as their own roots
	}
	w.walk(key, ctx) // transparent: inherit the caller's context
}

// checkWrite flags a write target whose root field is not owned by every
// phase in ctx.
func (w *phaseWalker) checkWrite(p *Package, target ast.Expr, ctx phaseSet) {
	sel := rootFieldSelector(target)
	if sel == nil {
		return
	}
	key, pkgPath := fieldKeyOf(p, sel)
	if key == "" {
		return
	}
	if owner, annotated := w.prog.fieldOwner[key]; annotated {
		if bad := ctx &^ owner; bad != 0 {
			w.diags = p.diag(w.diags, sel.Pos(), "phaseaudit",
				fmt.Sprintf("write to %s (owned by //phase:%s) from phase context %s", key, owner, bad))
		}
		return
	}
	if w.prog.scoped[pkgPath] {
		w.diags = p.diag(w.diags, sel.Pos(), "phaseaudit",
			fmt.Sprintf("write to %s from phase context %s: field of a phase-scoped package has no //phase: annotation declaring its owner", key, ctx))
	}
}

// rootFieldSelector returns the selector nearest the root of a write
// target ("b.stats" in "b.stats.Grants++", "m.slotBank" in
// "m.slotBank[i] = v"); nil when the target has no field selector.
func rootFieldSelector(e ast.Expr) *ast.SelectorExpr {
	var inner *ast.SelectorExpr
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			inner = x
			e = x.X
		default:
			return inner
		}
	}
}

// fieldKeyOf resolves a field selection to its declaring type's key
// ("pkgpath.Type.Field") and the declaring package path. Both are "" when
// sel is not a field selection or the declaring type is unnamed.
func fieldKeyOf(p *Package, sel *ast.SelectorExpr) (string, string) {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return "", ""
	}
	t := s.Recv()
	idx := s.Index()
	for i, fi := range idx {
		named, st := derefNamed(t)
		if st == nil || fi >= st.NumFields() {
			return "", ""
		}
		f := st.Field(fi)
		if i == len(idx)-1 {
			if named == nil || named.Obj().Pkg() == nil {
				return "", ""
			}
			path := named.Obj().Pkg().Path()
			return path + "." + named.Obj().Name() + "." + f.Name(), path
		}
		t = f.Type()
	}
	return "", ""
}

// derefNamed unwraps one level of pointer and returns the named type (nil
// for unnamed) and underlying struct (nil for non-structs).
func derefNamed(t types.Type) (*types.Named, *types.Struct) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	st, _ := t.Underlying().(*types.Struct)
	return named, st
}

// typeFuncKey renders a types.Func as "pkgpath.Type.Name" (methods,
// including interface methods) or "pkgpath.Name" (functions). "" for
// objects without a package (error.Error, builtins).
func typeFuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		named, _ := derefNamed(recv.Type())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// sortDiags orders diagnostics by position then message — the order Run
// returns and golden files pin.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
