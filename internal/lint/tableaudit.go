package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coherence"
)

// The table audit is the third analyzer family: it loads every protocol
// registered in coherence.Kinds() and verifies, by exhaustive enumeration
// of its transition table, the properties the simulator and the
// Section 4 model checker silently assume:
//
//   - totality: every (declared state, event) pair — processor events,
//     snoop events with both dirty values, RMW hooks — has a defined
//     outcome (no panic) for every probed aux value;
//   - closure and reachability: outcomes only target declared states, and
//     every declared state is reachable from the initial state;
//   - outcome sanity: the structural rules in CheckProcOutcome and
//     CheckSnoopOutcome (shared with FuzzProtocolStep in
//     internal/coherence).
//
// auditAuxProbes are the per-line counter values the audit drives each
// table with; they cover zero, the RWB threshold region, and saturation.
var auditAuxProbes = []uint8{0, 1, 2, 255}

// AuditFinding is one violated table property.
type AuditFinding struct {
	Protocol string
	Rule     string // "totality", "closure", "reachability", "sanity"
	Detail   string
}

// Audit is the result of auditing one protocol's transition table.
type Audit struct {
	Protocol    string
	States      []coherence.State // declared, in presentation order
	Initial     coherence.State
	Unreachable []coherence.State
	Findings    []AuditFinding
	Probes      int // (state, event, aux, dirty) combinations exercised

	proto coherence.Protocol // audited implementation, for Report
}

// Clean reports whether the audit found nothing.
func (a Audit) Clean() bool { return len(a.Findings) == 0 }

// AuditAll audits every registered protocol, in Kinds order.
func AuditAll() []Audit {
	kinds := coherence.Kinds()
	out := make([]Audit, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, AuditProtocol(coherence.New(k)))
	}
	return out
}

// AuditProtocol exhaustively exercises p's transition table.
func AuditProtocol(p coherence.Protocol) Audit {
	a := Audit{Protocol: p.Name(), States: p.States(), Initial: initialState(p), proto: p}
	declared := map[coherence.State]bool{}
	for _, s := range a.States {
		declared[s] = true
	}
	if len(a.States) == 0 {
		a.Findings = append(a.Findings, AuditFinding{a.Protocol, "closure", "protocol declares no states"})
		return a
	}
	if !declared[a.Initial] {
		a.Findings = append(a.Findings, AuditFinding{a.Protocol, "closure",
			fmt.Sprintf("initial state %v is not declared", a.Initial)})
	}

	// reach accumulates the successor relation for the reachability pass.
	reach := map[coherence.State][]coherence.State{}
	edge := func(from, to coherence.State) {
		reach[from] = append(reach[from], to)
	}
	finding := func(rule, format string, args ...any) {
		a.Findings = append(a.Findings, AuditFinding{a.Protocol, rule, fmt.Sprintf(format, args...)})
	}
	// probe runs fn, converting a table hole (panic) into a totality
	// finding and reporting whether the outcome is usable.
	probe := func(desc string, fn func()) bool {
		a.Probes++
		err := catchPanic(fn)
		if err != "" {
			finding("totality", "%s panics: %s", desc, err)
			return false
		}
		return true
	}

	for _, s := range a.States {
		for _, aux := range auditAuxProbes {
			for _, e := range []coherence.ProcEvent{coherence.EvRead, coherence.EvWrite} {
				var out coherence.ProcOutcome
				if !probe(fmt.Sprintf("OnProc(%v, aux=%d, %v)", s, aux, e), func() { out = p.OnProc(s, aux, e) }) {
					continue
				}
				if !declared[out.Next] {
					finding("closure", "OnProc(%v, aux=%d, %v) targets undeclared state %v", s, aux, e, out.Next)
				} else {
					edge(s, out.Next)
				}
				for _, v := range CheckProcOutcome(s, e, out) {
					finding("sanity", "OnProc(%v, aux=%d, %v): %s", s, aux, e, v)
				}
			}
			for _, dirty := range []bool{false, true} {
				for _, ev := range []coherence.SnoopEvent{coherence.SnBusRead, coherence.SnBusWrite, coherence.SnBusInv, coherence.SnReadData} {
					var out coherence.SnoopOutcome
					desc := fmt.Sprintf("OnSnoop(%v, aux=%d, dirty=%v, %v)", s, aux, dirty, ev)
					if !probe(desc, func() { out = p.OnSnoop(s, aux, dirty, ev) }) {
						continue
					}
					if !declared[out.Next] {
						finding("closure", "%s targets undeclared state %v", desc, out.Next)
					} else {
						edge(s, out.Next)
					}
					for _, v := range CheckSnoopOutcome(s, ev, out) {
						finding("sanity", "%s: %s", desc, v)
					}
				}
			}
			var next coherence.State
			var bcast coherence.Action
			if probe(fmt.Sprintf("RMWSuccess(%v, aux=%d)", s, aux), func() { next, _, bcast = p.RMWSuccess(s, aux) }) {
				if !declared[next] {
					finding("closure", "RMWSuccess(%v, aux=%d) targets undeclared state %v", s, aux, next)
				} else {
					edge(s, next)
				}
				if bcast != coherence.ActWrite && bcast != coherence.ActInv {
					finding("sanity", "RMWSuccess(%v, aux=%d) broadcasts %v; the locked write part must be BW or BI", s, aux, bcast)
				}
			}
		}
		for _, dirty := range []bool{false, true} {
			var flush bool
			var next coherence.State
			desc := fmt.Sprintf("RMWFlush(%v, dirty=%v)", s, dirty)
			if probe(desc, func() { flush, next, _ = p.RMWFlush(s, dirty) }) {
				if !declared[next] {
					finding("closure", "%s targets undeclared state %v", desc, next)
				} else {
					edge(s, next)
				}
				if !flush && next != s {
					finding("sanity", "%s changes state to %v without flushing", desc, next)
				}
			}
			probe(fmt.Sprintf("WritebackOnEvict(%v, dirty=%v)", s, dirty), func() { p.WritebackOnEvict(s, dirty) })
		}
		probe(fmt.Sprintf("LocalRMW(%v)", s), func() { p.LocalRMW(s) })
	}
	for _, c := range []coherence.Class{coherence.ClassUnknown, coherence.ClassCode, coherence.ClassLocal, coherence.ClassShared} {
		for _, e := range []coherence.ProcEvent{coherence.EvRead, coherence.EvWrite} {
			probe(fmt.Sprintf("Cachable(%v, %v)", c, e), func() { p.Cachable(c, e) })
		}
	}
	// Shared-line-aware protocols add read-miss edges from the bus's
	// shared-line decision (Illinois installs Exclusive or Shared).
	if sa, ok := p.(coherence.SharedAware); ok {
		for _, shared := range []bool{false, true} {
			var next coherence.State
			desc := fmt.Sprintf("ReadMissTarget(shared=%v)", shared)
			if probe(desc, func() { next = sa.ReadMissTarget(shared) }) {
				if !declared[next] {
					finding("closure", "%s targets undeclared state %v", desc, next)
				} else {
					edge(a.Initial, next)
				}
			}
		}
	}

	// Reachability: BFS over the accumulated successor relation.
	seen := map[coherence.State]bool{a.Initial: true}
	frontier := []coherence.State{a.Initial}
	for len(frontier) > 0 {
		s := frontier[0]
		frontier = frontier[1:]
		for _, t := range reach[s] {
			if !seen[t] {
				seen[t] = true
				frontier = append(frontier, t)
			}
		}
	}
	for _, s := range a.States {
		if !seen[s] {
			a.Unreachable = append(a.Unreachable, s)
			finding("reachability", "state %v is unreachable from initial state %v", s, a.Initial)
		}
	}
	return a
}

// initialState is the state a fresh line starts in: Invalid when the
// protocol declares it, otherwise the first declared state.
func initialState(p coherence.Protocol) coherence.State {
	states := p.States()
	for _, s := range states {
		if s == coherence.Invalid {
			return s
		}
	}
	if len(states) > 0 {
		return states[0]
	}
	return coherence.Invalid
}

// CheckProcOutcome returns the outcome-sanity rules out violates as a
// response to processor event e against a line in state s. The rules are
// shared between the table audit and FuzzProtocolStep:
//
//   - the dirty bit is never set on a line entering Invalid or NotPresent
//     ("no dirty-bit set on Invalid");
//   - a transition that writes through or fetches (BW, BR, BR+BW) leaves
//     the line clean — only bus-silent writes (-) and the data-less
//     invalidate broadcast (BI) may dirty it, so no transition both
//     broadcasts data and marks memory stale;
//   - a no-allocate outcome must name a bus action (bypassing the cache
//     with no bus activity would lose the access entirely);
//   - the action is one of the five declared Actions.
func CheckProcOutcome(s coherence.State, e coherence.ProcEvent, out coherence.ProcOutcome) []string {
	var v []string
	switch out.Action {
	case coherence.ActNone, coherence.ActRead, coherence.ActWrite, coherence.ActInv, coherence.ActReadThenWrite:
	default:
		v = append(v, fmt.Sprintf("unknown action %v", out.Action))
	}
	if out.Dirty == coherence.DirtySet {
		if out.Next == coherence.Invalid || out.Next == coherence.NotPresent {
			v = append(v, fmt.Sprintf("sets the dirty bit while entering %v", out.Next))
		}
		switch out.Action {
		case coherence.ActNone, coherence.ActInv:
		default:
			v = append(v, fmt.Sprintf("sets the dirty bit on a %v transition (data reached memory, the line is clean)", out.Action))
		}
	}
	if out.NoAllocate && out.Action == coherence.ActNone {
		v = append(v, "no-allocate outcome with no bus action loses the access")
	}
	return v
}

// CheckSnoopOutcome returns the outcome-sanity rules out violates as a
// reaction to observed bus event ev against a line in state s:
//
//   - Inhibit only answers SnBusRead (there is nothing to interrupt on a
//     write, an invalidate, or broadcast read data);
//   - TakeData only on events that carry data (SnBusWrite, SnReadData);
//   - never Inhibit and TakeData together (a cache cannot both supply
//     the value and adopt it);
//   - a snooped transaction never sets the dirty bit — dirtiness records
//     a local write that bypassed the bus, which an observer by
//     definition did not perform.
func CheckSnoopOutcome(s coherence.State, ev coherence.SnoopEvent, out coherence.SnoopOutcome) []string {
	var v []string
	if out.Inhibit && ev != coherence.SnBusRead {
		v = append(v, fmt.Sprintf("inhibits a %v (only bus reads can be interrupted)", ev))
	}
	if out.TakeData && ev != coherence.SnBusWrite && ev != coherence.SnReadData {
		v = append(v, fmt.Sprintf("takes data from a %v, which carries none", ev))
	}
	if out.Inhibit && out.TakeData {
		v = append(v, "both inhibits (supplies the value) and takes data")
	}
	if out.Dirty == coherence.DirtySet {
		v = append(v, "sets the dirty bit from a snooped transaction")
	}
	return v
}

// catchPanic runs fn, returning the panic message ("" if none).
func catchPanic(fn func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	fn()
	return ""
}

// Report renders the audit as a stable, diffable text block — the golden
// representation asserted by TestTableAuditGolden, so a protocol change
// that opens a table hole fails CI with a readable diff.
func (a Audit) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol %s\n", a.Protocol)
	letters := make([]string, len(a.States))
	for i, s := range a.States {
		letters[i] = s.Letter()
	}
	fmt.Fprintf(&b, "states: %s (initial %s)\n", strings.Join(letters, " "), a.Initial.Letter())
	if p := a.proto; p != nil {
		for _, s := range a.States {
			for _, e := range []coherence.ProcEvent{coherence.EvRead, coherence.EvWrite} {
				if out, err := safeProc(p, s, 0, e); err == "" {
					extra := ""
					if out.NoAllocate {
						extra = " noalloc"
					}
					if out.Dirty == coherence.DirtySet {
						extra += " dirty"
					}
					fmt.Fprintf(&b, "  %-2s --%s--> %-2s [%s]%s\n", s.Letter(), e, out.Next.Letter(), out.Action, extra)
				}
			}
		}
		for _, s := range a.States {
			for _, ev := range []coherence.SnoopEvent{coherence.SnBusRead, coherence.SnBusWrite, coherence.SnBusInv, coherence.SnReadData} {
				if out, err := safeSnoop(p, s, 0, false, ev); err == "" {
					extra := ""
					if out.Inhibit {
						extra = " inhibit"
					}
					if out.TakeData {
						extra += " take"
					}
					line := fmt.Sprintf("  %-2s ..%s..> %-2s%s", s.Letter(), ev, out.Next.Letter(), extra)
					b.WriteString(strings.TrimRight(line, " ") + "\n")
				}
			}
		}
	}
	if len(a.Unreachable) > 0 {
		letters := make([]string, len(a.Unreachable))
		for i, s := range a.Unreachable {
			letters[i] = s.Letter()
		}
		fmt.Fprintf(&b, "unreachable: %s\n", strings.Join(letters, " "))
	}
	if a.Clean() {
		fmt.Fprintf(&b, "findings: none (%d probes)\n", a.Probes)
	} else {
		rules := make([]string, 0, len(a.Findings))
		for _, f := range a.Findings {
			rules = append(rules, f.Rule+": "+f.Detail)
		}
		sort.Strings(rules)
		fmt.Fprintf(&b, "findings (%d):\n", len(rules))
		for _, r := range rules {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	return b.String()
}

func safeProc(p coherence.Protocol, s coherence.State, aux uint8, e coherence.ProcEvent) (out coherence.ProcOutcome, errMsg string) {
	errMsg = catchPanic(func() { out = p.OnProc(s, aux, e) })
	return out, errMsg
}

func safeSnoop(p coherence.Protocol, s coherence.State, aux uint8, dirty bool, ev coherence.SnoopEvent) (out coherence.SnoopOutcome, errMsg string) {
	errMsg = catchPanic(func() { out = p.OnSnoop(s, aux, dirty, ev) })
	return out, errMsg
}
