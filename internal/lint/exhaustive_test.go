package lint

import (
	"strings"
	"testing"
)

// runOn lints one fixture directory with the table audit off.
func runOn(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	diags, err := Run(Config{Dirs: []string{dir}, SkipTables: true})
	if err != nil {
		t.Fatalf("Run(%s): %v", dir, err)
	}
	return diags
}

// expectDiags asserts that diags is exactly the expected (analyzer,
// message substring) list, in order.
func expectDiags(t *testing.T, diags []Diagnostic, want [][2]string) {
	t.Helper()
	for _, d := range diags {
		t.Logf("  %s", d)
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if diags[i].Analyzer != w[0] {
			t.Errorf("diag %d: analyzer = %q, want %q", i, diags[i].Analyzer, w[0])
		}
		if !strings.Contains(diags[i].Message, w[1]) {
			t.Errorf("diag %d: message %q does not contain %q", i, diags[i].Message, w[1])
		}
	}
}

func TestExhaustiveFixture(t *testing.T) {
	// The fixture seeds two violations: a switch over coherence.State
	// missing five states, and a switch over a local enum missing one
	// constant. Default-covered, fully-covered, ignore-waived and
	// non-constant-case switches must stay silent, as must the sentinel
	// constant numMoods.
	expectDiags(t, runOn(t, "testdata/exhaustive"), [][2]string{
		{"exhaustive", "switch over coherence.State is not exhaustive"},
		{"exhaustive", "missing Angry"},
	})
}

func TestExhaustiveFlagsMissingStates(t *testing.T) {
	diags := runOn(t, "testdata/exhaustive")
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	msg := diags[0].Message
	for _, state := range []string{"DirtyState", "FirstWrite", "NotPresent", "Reserved", "Valid"} {
		if !strings.Contains(msg, state) {
			t.Errorf("missing-state list lacks %s: %s", state, msg)
		}
	}
	if strings.Contains(msg, "numStates") {
		t.Errorf("sentinel numStates demanded by %s", msg)
	}
}

func TestCleanFixture(t *testing.T) {
	if diags := runOn(t, "testdata/clean"); len(diags) != 0 {
		t.Fatalf("clean fixture produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestExpandPatterns(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"testdata/..."})
	if err != nil {
		t.Fatal(err)
	}
	// testdata under the *root* of a walk is not skipped (only nested
	// testdata dirs are), so every fixture package appears.
	want := []string{
		"testdata/allocfree", "testdata/clean", "testdata/determinism",
		"testdata/exhaustive", "testdata/ignorescope", "testdata/phase",
		"testdata/syncaudit",
	}
	if len(dirs) != len(want) {
		t.Fatalf("ExpandPatterns = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("ExpandPatterns = %v, want %v", dirs, want)
		}
	}
}
