package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore reason for suppressing
//	//lint:ignore phaseaudit reason for suppressing
//	//lint:ignore phaseaudit,allocaudit reason for suppressing
//
// placed either on the flagged line itself (trailing comment) or on the
// line directly above it. If the first word is a known analyzer name (or a
// comma-separated list of them), the suppression is scoped to exactly those
// analyzers — an ignored phaseaudit finding does not hide an allocaudit
// finding on the same line. Otherwise the whole first word is part of the
// reason and the directive suppresses every analyzer (the original
// behavior). A reason is required; a bare "//lint:ignore" — or a scoped
// directive with no reason after the analyzer list — suppresses nothing.
const ignoreDirective = "lint:ignore"

// knownAnalyzers is the set of analyzer names a scoped ignore directive can
// name. Adding an analyzer here is part of adding the analyzer.
var knownAnalyzers = map[string]bool{
	"exhaustive":  true,
	"determinism": true,
	"tableaudit":  true,
	"phaseaudit":  true,
	"allocaudit":  true,
	"syncaudit":   true,
}

// ignoreScope records which analyzers one source line's directives
// suppress.
type ignoreScope struct {
	all       bool
	analyzers map[string]bool
}

func (s *ignoreScope) covers(analyzer string) bool {
	return s != nil && (s.all || s.analyzers[analyzer])
}

// parseIgnoreScope splits a directive's payload into its analyzer scope.
// It returns nil for an inert directive (no reason).
func parseIgnoreScope(rest string) *ignoreScope {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	names := strings.Split(fields[0], ",")
	scoped := true
	for _, n := range names {
		if !knownAnalyzers[n] {
			scoped = false
			break
		}
	}
	if !scoped {
		// The first word is part of the reason; suppress everything.
		return &ignoreScope{all: true}
	}
	if len(fields) == 1 {
		return nil // scoped directive with no reason: inert
	}
	sc := &ignoreScope{analyzers: map[string]bool{}}
	for _, n := range names {
		sc.analyzers[n] = true
	}
	return sc
}

// collectIgnores scans every file's comments for ignore directives and
// records the suppressed lines.
func (p *Package) collectIgnores() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				sc := parseIgnoreScope(rest)
				if sc == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.ignores[pos.Filename]
				if lines == nil {
					lines = map[int]*ignoreScope{}
					p.ignores[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment)
				// and the next line (comment above the flagged code).
				lines[pos.Line] = mergeScopes(lines[pos.Line], sc)
				lines[pos.Line+1] = mergeScopes(lines[pos.Line+1], sc)
			}
		}
	}
}

// mergeScopes unions two directives that cover the same line.
func mergeScopes(a, b *ignoreScope) *ignoreScope {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &ignoreScope{all: a.all || b.all, analyzers: map[string]bool{}}
	for n := range a.analyzers {
		out.analyzers[n] = true
	}
	for n := range b.analyzers {
		out.analyzers[n] = true
	}
	return out
}

// suppressed reports whether a finding by the given analyzer anchored at
// pos is covered by an ignore directive.
func (p *Package) suppressed(pos token.Pos, analyzer string) bool {
	position := p.Fset.Position(pos)
	return p.ignores[position.Filename][position.Line].covers(analyzer)
}

// diag builds a Diagnostic anchored at pos. Suppressed findings are
// dropped, unless the Run asked for them (IncludeSuppressed), in which
// case they are kept and marked.
func (p *Package) diag(diags []Diagnostic, pos token.Pos, analyzer, msg string) []Diagnostic {
	d := Diagnostic{Pos: p.Fset.Position(pos), Analyzer: analyzer, Message: msg}
	if p.suppressed(pos, analyzer) {
		if !p.includeSuppressed {
			return diags
		}
		d.Suppressed = true
	}
	return append(diags, d)
}
