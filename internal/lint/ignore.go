package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses a finding:
//
//	//lint:ignore reason for suppressing
//
// placed either on the flagged line itself (trailing comment) or on the
// line directly above it. A reason is required; a bare "//lint:ignore"
// suppresses nothing.
const ignoreDirective = "lint:ignore"

// collectIgnores scans every file's comments for ignore directives and
// records the suppressed lines.
func (p *Package) collectIgnores() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok || strings.TrimSpace(rest) == "" {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.ignores[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					p.ignores[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment)
				// and the next line (comment above the flagged code).
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
}

// suppressed reports whether a finding anchored at pos is covered by an
// ignore directive.
func (p *Package) suppressed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.ignores[position.Filename][position.Line]
}

// diag builds a Diagnostic anchored at pos unless it is suppressed.
func (p *Package) diag(diags []Diagnostic, pos token.Pos, analyzer, msg string) []Diagnostic {
	if p.suppressed(pos) {
		return diags
	}
	return append(diags, Diagnostic{Pos: p.Fset.Position(pos), Analyzer: analyzer, Message: msg})
}
