// Package syncaudit is a protolint test fixture: each seeded violation
// below must be caught by the syncaudit analyzer, and each clean idiom
// must pass. The package lives under testdata so the go tool never builds
// it, but it compiles.
package syncaudit

import (
	"sync"
	"sync/atomic"
)

// Counter mixes atomic and plain access to hits, and acquires its two
// mutexes in both orders.
type Counter struct {
	mu   sync.Mutex
	aux  sync.Mutex
	hits uint64
}

// Inc is the atomic access that puts hits under sync/atomic discipline.
func (c *Counter) Inc() {
	atomic.AddUint64(&c.hits, 1)
}

// Read accesses hits plainly.
func (c *Counter) Read() uint64 {
	return c.hits // seeded violation: plain read of an atomic field
}

// Reset writes hits plainly.
func (c *Counter) Reset() {
	c.hits = 0 // seeded violation: plain write of an atomic field
}

// AtomicRead is the blessed form.
func (c *Counter) AtomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// LockAB acquires mu before aux.
func (c *Counter) LockAB() {
	c.mu.Lock()
	c.aux.Lock() // seeded violation: inverted elsewhere (LockBA)
	c.aux.Unlock()
	c.mu.Unlock()
}

// LockBA acquires aux before mu: the inversion.
func (c *Counter) LockBA() {
	c.aux.Lock()
	c.mu.Lock() // seeded violation: inverted elsewhere (LockAB)
	c.mu.Unlock()
	c.aux.Unlock()
}

// Relock acquires a mutex it already holds.
func (c *Counter) Relock() {
	c.mu.Lock()
	c.mu.Lock() // seeded violation: self-deadlock
	c.mu.Unlock()
	c.mu.Unlock()
}

// Guarded is clean: a deferred unlock keeps mu held to function end, and
// aux is acquired in the same mu-before-aux order as LockAB.
func (c *Counter) Guarded() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aux.Lock()
	c.aux.Unlock()
}
