// Package exhaustive is a protolint test fixture: each seeded violation
// below must be caught by the exhaustive-switch analyzer. The package
// lives under testdata so the go tool never builds it, but it compiles —
// protolint type-checks fixtures exactly like real code.
package exhaustive

import "repro/internal/coherence"

// Mood is a local enum: three constants, no sentinel.
type Mood uint8

const (
	Happy Mood = iota
	Sad
	Angry
)

// numMoods is a sentinel bound: never required in switches.
const numMoods = Mood(3)

// MissingStates switches over coherence.State without covering it and
// without a default: the seeded violation for cross-package enums.
func MissingStates(s coherence.State) string {
	switch s { // want: not exhaustive, missing FirstWrite et al.
	case coherence.Invalid:
		return "I"
	case coherence.Readable:
		return "R"
	case coherence.Local:
		return "L"
	}
	return "?"
}

// MissingMood switches over the local enum, missing Angry.
func MissingMood(m Mood) bool {
	switch m { // want: not exhaustive, missing Angry
	case Happy:
		return true
	case Sad:
		return false
	}
	return false
}

// CoveredByDefault is clean: the default makes intent explicit.
func CoveredByDefault(s coherence.State) bool {
	switch s {
	case coherence.Local:
		return true
	default:
		return false
	}
}

// CoveredFully is clean: every constant (the sentinel excluded) appears.
func CoveredFully(m Mood) int {
	switch m {
	case Happy:
		return 2
	case Sad:
		return 1
	case Angry:
		return 0
	}
	return -1
}

// Waived is non-exhaustive but carries an ignore directive.
func Waived(m Mood) bool {
	//lint:ignore fixture demonstrates suppression
	switch m {
	case Happy:
		return true
	}
	return false
}

// NonConstantCase mixes a variable case expression in: the analyzer
// cannot reason about coverage and must stay silent.
func NonConstantCase(m, boundary Mood) bool {
	switch m {
	case boundary:
		return true
	}
	return false
}
