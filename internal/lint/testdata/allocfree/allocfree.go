// Package allocfree is a protolint test fixture: each seeded violation
// below must be caught by the allocaudit analyzer, and each clean idiom
// must pass. The package lives under testdata so the go tool never builds
// it, but it compiles.
package allocfree

import "fmt"

// Ring is a steady-state scratch structure whose buffers amortize to
// zero allocations.
type Ring struct {
	slots   []int
	names   []string
	targets []int
}

func (r *Ring) reset() {}

func sink(v interface{}) { _ = v }

// Grow appends to a caller-supplied slice with no capacity guarantee.
//
//hotpath:allocfree
func (r *Ring) Grow(xs []int, v int) []int {
	return append(xs, v) // seeded violation: append may grow
}

// Scratch shows the three blessed append forms: a capped local from a
// reslice, a self-append to an owned field, and a reslice argument.
//
//hotpath:allocfree
func (r *Ring) Scratch(v int) {
	t := r.targets[:0]
	t = append(t, v)                   // clean: capped local
	r.targets = t                      // clean
	r.slots = append(r.slots, v)       // clean: self-append to a field
	r.names = append(r.names[:0], "x") // clean: reslice argument
}

// Format allocates through fmt and runtime string concatenation.
//
//hotpath:allocfree
func (r *Ring) Format(name string) string {
	s := fmt.Sprintf("ring-%s", name) // seeded violation: fmt call
	return s + "!"                    // seeded violation: string concatenation
}

// Box passes a non-pointer-shaped value to an interface parameter.
//
//hotpath:allocfree
func (r *Ring) Box(v int) {
	sink(v) // seeded violation: interface boxing
}

// Setup is full of one-time constructs that do not belong on the cycle
// path.
//
//hotpath:allocfree
func (r *Ring) Setup() func() {
	m := map[int]int{} // seeded violation: map literal
	_ = m
	defer r.reset()  // seeded violation: defer record
	return func() {} // seeded violation: closure
}

// Fail panics with formatted detail: panic arguments are terminal and
// exempt.
//
//hotpath:allocfree
func (r *Ring) Fail(code int) {
	if code != 0 {
		panic(fmt.Sprintf("ring: bad code %d", code)) // clean: terminal path
	}
}

// Waived demonstrates the scoped waiver for a reviewed allocation.
//
//hotpath:allocfree
func (r *Ring) Waived() *Ring {
	//lint:ignore allocaudit one-time lazy init is off the steady-state path
	return &Ring{}
}

// Page is a generation-stamped arena page: stale pages are revived in
// place on the hot path, never reallocated.
type Page struct {
	gen   uint64
	words [4]int
}

// Arena recycles pages across generations by bumping gen.
type Arena struct {
	gen   uint64
	pages []*Page
}

// Revive recycles a stale page by value assignment — a memclr plus a
// generation stamp, no allocation.
//
//hotpath:allocfree
func (a *Arena) Revive(p *Page) {
	if p.gen != a.gen {
		*p = Page{gen: a.gen} // clean: in-place value assignment
	}
}

// Reallocate forgets the arena idiom and builds a fresh page per
// generation — the regression generation reset exists to prevent.
//
//hotpath:allocfree
func (a *Arena) Reallocate(i int) {
	if a.pages[i].gen != a.gen {
		a.pages[i] = &Page{gen: a.gen} // seeded violation: escaping composite
	}
}

// Unmarked is not on the hot path: anything goes.
func Unmarked() []int {
	return append([]int{}, 1, 2, 3)
}

// Mislabeled carries a directive naming an unknown mode.
//
//hotpath:nofree
func Mislabeled() {}
