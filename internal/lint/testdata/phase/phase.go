// Package phase is a protolint test fixture: each seeded violation below
// must be caught by the phaseaudit analyzer, and each clean idiom must
// pass. The package lives under testdata so the go tool never builds it,
// but it compiles.
package phase

// Engine is a miniature cycle-loop core with phase-owned state.
type Engine struct {
	//phase:bus
	grants int
	//phase:snoop
	lines [4]int
	//phase:any
	cycle int
	//phase:bus,snoop
	resolved int

	// unowned has no annotation: any write reached from a phase context
	// is itself a finding, so deleting an ownership annotation cannot
	// silently disable checking.
	unowned int

	//phase:wheel
	bogus int // the directive above is malformed: "wheel" is not a phase
}

// Sink is implemented by bus-phase consumers; the directive on the
// interface method is the contract checked at every dynamic call site.
type Sink interface {
	//phase:bus
	Consume(v int)
}

// BusTick is a bus-phase root.
//
//phase:bus
func (e *Engine) BusTick() {
	e.grants++     // clean: bus owns grants
	e.cycle++      // clean: any phase may write cycle
	e.lines[0] = 1 // seeded violation: snoop-owned field written from bus
}

// SnoopTick is a snoop-phase root; helper is unannotated, so it inherits
// the snoop context transparently.
//
//phase:snoop
func (e *Engine) SnoopTick() {
	e.lines[1] = 2 // clean: snoop owns lines
	e.helper()
}

func (e *Engine) helper() {
	e.grants++    // seeded violation: bus-owned field written from snoop
	e.unowned = 3 // seeded violation: unannotated field of a scoped package
}

// CPUTick is a cpu-phase root that calls into a bus-phase function.
//
//phase:cpu
func (e *Engine) CPUTick() {
	e.cycle++   // clean
	e.BusTick() // seeded violation: //phase:bus callee from cpu context
}

// Deliver runs in both the bus and snoop contexts; writing a field owned
// by exactly those phases is clean.
//
//phase:bus,snoop
func (e *Engine) Deliver() {
	e.resolved = 9 // clean
}

// Broadcast is a snoop-phase root making a dynamic call into a bus-phase
// interface method.
//
//phase:snoop
func (e *Engine) Broadcast(s Sink) {
	s.Consume(e.lines[3]) // seeded violation: //phase:bus callee from snoop
}
