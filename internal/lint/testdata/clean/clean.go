// Package clean is a protolint test fixture containing only blessed
// idioms: the linter must report nothing here.
package clean

import (
	"sort"

	"repro/internal/coherence"
)

// Letter covers every state via an explicit default.
func Letter(s coherence.State) string {
	switch s {
	case coherence.Local:
		return "L"
	default:
		return s.Letter()
	}
}

// Histogram folds a map order-insensitively and sorts before emitting.
func Histogram(counts map[int]uint64) []int {
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
