// Package ignorescope is a protolint test fixture for analyzer-scoped
// suppression: a "//lint:ignore phaseaudit reason" directive waives only
// the phaseaudit finding on its line — the allocaudit finding on the same
// line must still be reported — while the legacy unscoped form keeps
// suppressing everything.
package ignorescope

// Core is a miniature phase-scoped structure.
type Core struct {
	//phase:bus
	grants []int
}

// CPUStep runs in the CPU phase yet reallocates the bus-owned grants
// slice: one line, two findings. The scoped directive waives the phase
// violation only.
//
//phase:cpu
//hotpath:allocfree
func (c *Core) CPUStep(v int) {
	//lint:ignore phaseaudit seeded fixture: a scoped waiver stays scoped
	c.grants = make([]int, v) // phaseaudit suppressed, allocaudit reported
}

// LegacyWaiver uses the pre-scoping syntax (first word is not an
// analyzer name): both findings on the line are suppressed.
//
//phase:cpu
//hotpath:allocfree
func (c *Core) LegacyWaiver(v int) {
	//lint:ignore reviewed-resize fixture keeps the legacy form working
	c.grants = make([]int, v)
}
