package determinism

// Fixture pair #14: chaos-plan seeding. internal/chaos derives every
// fault decision from a splitmix64 finalizer over (campaign seed, class,
// intensity, request sequence number) — the plan is a pure function, so
// the same seed replays the same faults and a campaign matrix is
// byte-identical across runs and parallelism. Seeding the plan from the
// wall clock instead makes every "repro" inject a different fault
// schedule, which is exactly the nondeterminism the analyzer exists to
// catch.

import wall "time"

// chaosMix is the splitmix64 finalizer internal/chaos builds plans on:
// bijective, stateless, and derived purely from its argument.
func chaosMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ChaosPlanWallClock seeds the fault plan from the wall clock: two runs
// of the "same" campaign cell disagree on which requests get faults, so
// a failed cell can never be replayed.
func ChaosPlanWallClock(seq uint64) uint64 {
	seed := uint64(wall.Now().UnixNano()) // want: wall-clock input
	return chaosMix(seed ^ chaosMix(seq))
}

// ChaosPlanSeeded is the blessed idiom: the plan's only inputs are the
// campaign seed and the request sequence number, so Decide(seq) is a
// pure function and the whole fault schedule replays from the seed.
// This must stay silent.
func ChaosPlanSeeded(campaignSeed, seq uint64) uint64 {
	return chaosMix(campaignSeed ^ chaosMix(seq))
}
