// Package determinism is a protolint test fixture: each seeded violation
// below must be caught by the determinism analyzer, and each clean idiom
// must pass. The package lives under testdata so the go tool never
// builds it, but it compiles.
package determinism

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand" // want: seeded generator required
	"sort"
	"time"

	"repro/internal/report"
	"repro/internal/workload"
)

// PrintLoop leaks map order straight to stdout.
func PrintLoop(m map[string]int) {
	for k, v := range m { // want: reaches output
		fmt.Println(k, v)
	}
}

// CollectUnsorted leaks map order into a slice that is never sorted.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want: append without sort
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted is the blessed idiom: collect, then sort.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FirstMatch returns whichever matching key iteration happens to visit
// first: nondeterministic selection.
func FirstMatch(m map[string]int, want int) string {
	for k, v := range m { // want: selects the returned value
		if v == want {
			return k
		}
	}
	return ""
}

// AnyNegative is clean: the returned value does not depend on which
// element satisfied the predicate.
func AnyNegative(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

// SumValues is clean: addition commutes.
func SumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert is clean: filling another map is order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Stamp consults the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want: wall-clock input
}

// Roll uses the unseeded global generator (the import alone is flagged;
// this keeps it referenced).
func Roll() int {
	return rand.Intn(6)
}

// WaivedClock is time.Now with an ignore directive.
func WaivedClock() time.Time {
	//lint:ignore fixture demonstrates suppression
	return time.Now()
}

// EncodeLoop journals map entries in iteration order: the resulting
// JSONL stream differs run to run.
func EncodeLoop(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range m { // want: reaches output through json.Encoder.Encode
		_ = enc.Encode(map[string]int{k: v})
	}
}

// EncodeSorted is the blessed journal idiom: sort keys, then encode.
func EncodeSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc := json.NewEncoder(w)
	for _, k := range keys {
		_ = enc.Encode(map[string]int{k: m[k]})
	}
}

// RowLoop emits report rows in map order: the rendered table differs
// run to run.
func RowLoop(t *report.Table, m map[string]int) {
	for k, v := range m { // want: reaches output through report.Table.AddRowf
		t.AddRowf(k, v)
	}
}

// hybridStore mirrors internal/memory's dense store: a dense array for
// the hot address range plus a sparse map for the overflow. Its snapshot
// path is the shape the determinism analyzer must keep honest — the
// dense half iterates in place (inherently ordered), but the sparse half
// ranges a map, so its keys must be collected and sorted before any
// consumer sees them.
type hybridStore struct {
	dense  []uint64
	sparse map[uint32]uint64
}

// SnapshotUnsorted walks the sparse overflow straight out of the map:
// the emitted order differs run to run.
func (s *hybridStore) SnapshotUnsorted() []uint32 {
	var addrs []uint32
	for a := range s.dense {
		addrs = append(addrs, uint32(a))
	}
	for a := range s.sparse { // want: append without sort
		addrs = append(addrs, a)
	}
	return addrs
}

// SnapshotSorted is the dense store's blessed idiom: dense pages in
// place, then sparse keys collected and sorted.
func (s *hybridStore) SnapshotSorted() []uint32 {
	addrs := make([]uint32, 0, len(s.dense)+len(s.sparse))
	for a := range s.dense {
		addrs = append(addrs, uint32(a))
	}
	start := len(addrs)
	for a := range s.sparse {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs[start:], func(i, j int) bool { return addrs[start+i] < addrs[start+j] })
	return addrs
}

// PlanFaultTrigger is the fault-plan idiom internal/fault uses: every
// quantity of a fault plan is drawn from a workload.RNG stream derived
// purely from the trial seed, so the same seed replans the same fault
// forever. This must stay silent.
func PlanFaultTrigger(trialSeed, refCycles uint64) uint64 {
	rng := workload.NewRNG(trialSeed*0x9e3779b97f4a7c15 + 1)
	lo := refCycles/10 + 1
	hi := refCycles*3/4 + 2
	return lo + rng.Uint64()%(hi-lo)
}

// PlanFaultTriggerWallClock seeds the plan from the wall clock: the
// "same" campaign injects a different fault every run, so no report is
// reproducible and no divergence is attributable.
func PlanFaultTriggerWallClock(refCycles uint64) uint64 {
	seed := uint64(time.Now().UnixNano()) // want: wall-clock input
	rng := workload.NewRNG(seed)
	return 1 + rng.Uint64()%refCycles
}

// RequestIDFromSpec is the service-layer idiom internal/serve uses:
// request ids are pure content hashes over the normalized spec's job
// keys, so two clients posting the same spec compute the same id and
// their submissions coalesce. This must stay silent.
func RequestIDFromSpec(epoch string, jobKeys []string) string {
	h := sha256.New()
	io.WriteString(h, epoch)
	for _, k := range jobKeys {
		io.WriteString(h, "|"+k)
	}
	sum := h.Sum(nil)
	return "req-" + hex.EncodeToString(sum[:12])
}

// RequestIDWallClock mints ids from the wall clock: identical
// submissions get distinct ids, so nothing ever coalesces and the same
// spec is simulated once per client instead of once.
func RequestIDWallClock() string {
	return fmt.Sprintf("req-%x", time.Now().UnixNano()) // want: wall-clock input
}
