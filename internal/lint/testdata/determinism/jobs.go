package determinism

import (
	"crypto/sha256"
	"encoding/hex"
	"time"
)

// cellKey is the blessed cache-key idiom: a pure content hash of the job
// spec, never salted with wall-clock readings.
func cellKey(spec string) string {
	sum := sha256.Sum256([]byte(spec))
	return hex.EncodeToString(sum[:8])
}

// RunCellWallClock mirrors a sweep job body that bounds its work by wall
// clock: the budget depends on machine load, so the job's outcome — and
// the cache entry recorded under its key — differs run to run.
func RunCellWallClock(spec string, work func() bool) string {
	deadline := time.After(time.Second) // want: wall-clock input
	for {
		select {
		case <-deadline:
			return cellKey(spec) + "-timeout"
		default:
			if work() {
				return cellKey(spec)
			}
		}
	}
}

// RunCellCycleBudget is the blessed sweep idiom: budgets are counted in
// simulated cycles, so the same spec always runs the same work and lands
// on the same cache key.
func RunCellCycleBudget(spec string, cycles uint64, work func() bool) string {
	for c := uint64(0); c < cycles; c++ {
		if work() {
			return cellKey(spec)
		}
	}
	return cellKey(spec) + "-timeout"
}
