package determinism

import (
	"hash/fnv"
	"math/rand" // want: seeded generator required
	"sort"
)

// PickShardRandom is the seeded violation: choosing a worker for a
// request with a PRNG means the same request id can land on different
// workers run to run — coalescing breaks, caches shard-randomly, and a
// resubmission cannot find the flight that ran it.
func PickShardRandom(workers []string) string {
	return workers[rand.Intn(len(workers))]
}

// PickShardRendezvous is the blessed idiom: rendezvous (highest random
// weight) hashing. The pick is a pure function of (request id, worker
// id), so every router instance — and every rerun — agrees on the owner,
// and removing a worker only moves the requests that worker owned.
func PickShardRendezvous(id string, workers []string) string {
	best, bestScore := "", uint64(0)
	sorted := append([]string(nil), workers...)
	sort.Strings(sorted)
	for _, w := range sorted {
		h := fnv.New64a()
		h.Write([]byte(w))
		h.Write([]byte{'|'})
		h.Write([]byte(id))
		if s := h.Sum64(); best == "" || s > bestScore {
			best, bestScore = w, s
		}
	}
	return best
}
