package determinism

import "sort"

// curvePoint mirrors the miss-ratio-curve serialization shape the
// profiler (internal/mrc) emits: one point per evaluated cache size.
// Curve docs are byte-compared across runs (online vs offline
// cross-validation, warm-store verbatim serving), so emission order is
// part of the contract — a map walk anywhere on the serialization path
// breaks every downstream byte comparison nondeterministically.
type curvePoint struct {
	lines  int
	misses uint64
}

// CurveFromHistogramMap ranges the size->misses histogram straight out
// of the map: the same profiler state serializes to differently ordered
// points run to run.
func CurveFromHistogramMap(misses map[int]uint64) []curvePoint {
	var points []curvePoint
	for lines, m := range misses { // want: append without sort
		points = append(points, curvePoint{lines: lines, misses: m})
	}
	return points
}

// CurveFromBuckets is the blessed idiom internal/mrc uses: the histogram
// lives in a fixed bucket array and the curve is emitted by walking it
// in index order — array-ordered, never a map walk, so rendered bytes
// are deterministic. This must stay silent.
func CurveFromBuckets(counts []uint64) []curvePoint {
	points := make([]curvePoint, 0, len(counts))
	for b, m := range counts {
		if m == 0 {
			continue
		}
		points = append(points, curvePoint{lines: 1 << b, misses: m})
	}
	return points
}

// CurveFromHistogramSorted is the acceptable fallback when the
// histogram genuinely is a map (the sparse-footprint path): collect the
// keys, sort, then emit. This must stay silent.
func CurveFromHistogramSorted(misses map[int]uint64) []curvePoint {
	sizes := make([]int, 0, len(misses))
	for lines := range misses {
		sizes = append(sizes, lines)
	}
	sort.Ints(sizes)
	points := make([]curvePoint, 0, len(sizes))
	for _, lines := range sizes {
		points = append(points, curvePoint{lines: lines, misses: misses[lines]})
	}
	return points
}
