package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// checkExhaustive flags every switch over a module-defined enum type that
// neither covers all of the type's declared constants nor carries an
// explicit default clause. "Enum type" means a named (or aliased) type
// whose underlying type is an integer or string and whose defining
// package declares at least two constants of it — coherence.State,
// coherence.SnoopEvent, workload.OpKind and friends.
//
// Unexported sentinel constants whose names begin with "num" or "max"
// (numStates, numKinds — array-sizing bounds, not real values) are not
// required to be covered.
func checkExhaustive(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := enumType(p.Info.Types[sw.Tag].Type)
			if named == nil {
				return true
			}
			consts := enumConstants(named)
			if len(consts) < 2 {
				return true
			}
			missing, analyzable := missingConstants(p, sw, consts)
			if !analyzable || len(missing) == 0 {
				return true
			}
			names := make([]string, len(missing))
			for i, c := range missing {
				names[i] = c.Name()
			}
			obj := named.Obj()
			diags = p.diag(diags, sw.Pos(), "exhaustive",
				fmt.Sprintf("switch over %s.%s is not exhaustive: missing %s (add the cases or an explicit default)",
					obj.Pkg().Name(), obj.Name(), strings.Join(names, ", ")))
			return true
		})
	}
	return diags
}

// enumType unwraps t to a named type defined inside this module with an
// integer or string underlying type, or returns nil.
func enumType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil { // universe types (error)
		return nil
	}
	if !moduleLocal(obj.Pkg().Path()) {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	if basic.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	return named
}

// moduleLocal reports whether an import path belongs to this module (or
// is a directory-shaped path from a standalone load, which has no dots in
// its first element the way domain-qualified third-party paths do).
func moduleLocal(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".") || strings.HasPrefix(path, "./") || strings.HasPrefix(path, "../")
}

// enumConstants returns the declared constants of the named type in its
// defining package, sorted by name, excluding "num"/"max" sentinels.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !c.Exported() && (strings.HasPrefix(name, "num") || strings.HasPrefix(name, "max")) {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// missingConstants computes which enum constants no case clause covers.
// Coverage is by constant value, so aliases count. A default clause
// covers everything. If any case expression is non-constant the switch is
// reported as unanalyzable and never flagged.
func missingConstants(p *Package, sw *ast.SwitchStmt, consts []*types.Const) (missing []*types.Const, analyzable bool) {
	covered := map[string]bool{} // constant.Value.ExactString() -> covered
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil { // default clause
			return nil, true
		}
		for _, expr := range cc.List {
			tv := p.Info.Types[expr]
			if tv.Value == nil {
				return nil, false
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c)
		}
	}
	return missing, true
}
