package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// allocaudit statically complements the runtime TestSteadyStateAllocFree
// pin: a function marked
//
//	//hotpath:allocfree
//
// in its doc comment may not contain heap-allocating constructs, so an
// alloc regression on the steady-state cycle path is caught at lint time
// with a file:line instead of as an opaque benchmark delta. The check is
// not transitive — callees are audited only if they carry the mark
// themselves — and flags, per marked function body:
//
//   - append that can grow its backing array. Allowed: the first argument
//     is a reslice ("x[:0]", "x[:i]"); a self-append to a field
//     ("b.slots = append(b.slots, v)" — a long-lived scratch buffer whose
//     growth amortizes to zero); a self-append to a local initialized
//     from a reslice ("t := b.targets[:0]; t = append(t, v)").
//   - make, new, map/slice composite literals, and &T{} (escaping
//     composites).
//   - func literals (closure allocation).
//   - any fmt call, string concatenation, and string<->[]byte/[]rune
//     conversions.
//   - interface boxing: passing or assigning a concrete non-pointer-shaped
//     value (basic, string, struct, array, slice) to an interface.
//   - go and defer statements.
//
// Arguments of panic(...) are exempt: a panicking hot path is terminal,
// so its formatting may allocate. Everything else is waived per line with
// "//lint:ignore allocaudit reason".
const hotpathDirective = "hotpath:"

// checkAllocFree audits every marked function in the package.
func checkAllocFree(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			marked := false
			for _, c := range fd.Doc.List {
				text := strings.TrimPrefix(c.Text, "//")
				payload, found := strings.CutPrefix(text, hotpathDirective)
				if !found {
					continue
				}
				if payload != "allocfree" {
					diags = p.diag(diags, c.Pos(), "allocaudit",
						fmt.Sprintf("unknown //hotpath: directive %q (only allocfree is defined)", payload))
					continue
				}
				marked = true
			}
			if marked && fd.Body != nil {
				diags = auditAllocFree(p, fd, diags)
			}
		}
	}
	return diags
}

// auditAllocFree scans one marked function body.
func auditAllocFree(p *Package, fd *ast.FuncDecl, diags []Diagnostic) []Diagnostic {
	name := funcDeclName(fd)
	flag := func(pos token.Pos, what string) {
		diags = p.diag(diags, pos, "allocaudit",
			fmt.Sprintf("%s in //hotpath:allocfree function %s", what, name))
	}
	capped := cappedLocals(p, fd.Body)
	panics := panicRanges(p, fd.Body)
	exempt := func(pos token.Pos) bool {
		for _, r := range panics {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	selfAppends := selfAppendCalls(p, fd.Body, capped)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			flag(n.Pos(), "func literal (closure allocation)")
			return false // the closure body runs in an unknown context
		case *ast.GoStmt:
			flag(n.Pos(), "go statement (goroutine + closure allocation)")
		case *ast.DeferStmt:
			flag(n.Pos(), "defer statement (defer record allocation)")
		case *ast.CompositeLit:
			if exempt(n.Pos()) {
				return true
			}
			t := p.Info.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				flag(n.Pos(), "map literal")
			case *types.Slice:
				flag(n.Pos(), "slice literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && !exempt(n.Pos()) {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					flag(n.Pos(), "&composite{} (escaping composite literal)")
				}
			}
		case *ast.BinaryExpr:
			// Constant concatenation folds at compile time; only
			// runtime concatenation allocates.
			if n.Op == token.ADD && !exempt(n.Pos()) &&
				isStringType(p.Info.Types[n].Type) && p.Info.Types[n].Value == nil {
				flag(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 &&
				isStringType(p.Info.Types[n.Lhs[0]].Type) && !exempt(n.Pos()) {
				flag(n.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			if exempt(n.Pos()) {
				return true
			}
			diags = auditCall(p, n, name, capped, selfAppends, diags)
		}
		return true
	})
	return diags
}

// auditCall applies the call-shaped rules (builtins, fmt, conversions,
// interface boxing).
func auditCall(p *Package, call *ast.CallExpr, fname string,
	capped map[types.Object]bool, selfAppends map[*ast.CallExpr]bool, diags []Diagnostic) []Diagnostic {
	flag := func(pos token.Pos, what string) {
		diags = p.diag(diags, pos, "allocaudit",
			fmt.Sprintf("%s in //hotpath:allocfree function %s", what, fname))
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := p.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !appendAllowed(call, capped, selfAppends, p) {
					flag(call.Pos(), "append that may grow its backing array (reslice the target or preallocate)")
				}
			case "make":
				flag(call.Pos(), "make")
			case "new":
				flag(call.Pos(), "new")
			}
			return diags
		}
	case *ast.SelectorExpr:
		if obj := p.Info.Uses[fun.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			flag(call.Pos(), "fmt."+obj.Name()+" call")
			return diags
		}
	}
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if allocConversion(tv.Type, p.Info.Types[call.Args[0]].Type) {
			flag(call.Pos(), "string conversion (copies the contents)")
		}
		return diags
	}
	diags = auditBoxing(p, call, fname, diags)
	return diags
}

// auditBoxing flags concrete non-pointer-shaped arguments passed to
// interface-typed parameters.
func auditBoxing(p *Package, call *ast.CallExpr, fname string, diags []Diagnostic) []Diagnostic {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return diags
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return diags
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.Types[arg].Type
		if boxingAllocates(at) {
			diags = p.diag(diags, arg.Pos(), "allocaudit",
				fmt.Sprintf("interface boxing of %s in //hotpath:allocfree function %s", types.TypeString(at, nil), fname))
		}
	}
	return diags
}

// boxingAllocates reports whether storing a value of concrete type t in an
// interface needs a heap allocation: pointer-shaped kinds (pointers, maps,
// channels, funcs) fit in the interface word; everything else is copied to
// the heap.
func boxingAllocates(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// allocConversion reports whether a conversion from 'from' to 'to' copies
// (string <-> []byte / []rune).
func allocConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	toStr, fromStr := isStringType(to), isStringType(from)
	_, toSlice := to.Underlying().(*types.Slice)
	_, fromSlice := from.Underlying().(*types.Slice)
	return (toStr && fromSlice) || (fromStr && toSlice)
}

// appendAllowed reports whether an append call cannot grow a fresh
// backing array on the steady-state path.
func appendAllowed(call *ast.CallExpr, capped map[types.Object]bool, selfAppends map[*ast.CallExpr]bool, p *Package) bool {
	if len(call.Args) == 0 {
		return false
	}
	if _, ok := call.Args[0].(*ast.SliceExpr); ok {
		return true // append(x[:0], ...) / append(x[:i], ...)
	}
	if selfAppends[call] {
		return true
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil && capped[obj] {
			return true
		}
	}
	return false
}

// selfAppendCalls finds "x = append(x, ...)" assignments where x is a
// field selector (a long-lived scratch buffer) or a capped local.
func selfAppendCalls(p *Package, body *ast.BlockStmt, capped map[types.Object]bool) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if types.ExprString(as.Lhs[0]) != types.ExprString(call.Args[0]) {
			return true
		}
		// Self-append to a field: amortized growth of owned scratch state.
		if _, isSel := as.Lhs[0].(*ast.SelectorExpr); isSel {
			out[call] = true
		}
		return true
	})
	return out
}

// cappedLocals collects local variables initialized from a reslice
// ("t := b.targets[:0]"), whose in-place appends reuse the parent's
// capacity.
func cappedLocals(p *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if _, ok := rhs.(*ast.SliceExpr); !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := p.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// panicRanges returns the [pos, end) source ranges of panic(...) calls.
func panicRanges(p *Package, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			out = append(out, [2]token.Pos{call.Pos(), call.End()})
		}
		return true
	})
	return out
}
