package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package directory.
type Package struct {
	Dir   string
	Path  string // import path ("repro/internal/cache"), best-effort
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// ignores maps filename -> source line -> the analyzer scope its
	// "//lint:ignore" directives suppress (the comment's line and the
	// next).
	ignores map[string]map[int]*ignoreScope

	// includeSuppressed keeps suppressed findings (marked) instead of
	// dropping them; set from Config.IncludeSuppressed by Run.
	includeSuppressed bool
}

// loader parses and type-checks package directories. Imports — both
// standard library and intra-module — resolve through the compiler's
// source importer, so no export data and no external tooling is needed.
type loader struct {
	fset *token.FileSet
	imp  types.Importer
}

func newLoader() *loader {
	fset := token.NewFileSet()
	return &loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// load parses the non-test Go files of dir and type-checks them. A
// directory normally holds one package; if it holds several (package
// clauses differ), each is checked separately.
func (l *loader) load(dir string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := map[string][]*ast.File{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		// Honor build constraints under the default context, exactly as
		// `go build` would: of a //go:build race / !race pair only one
		// file is part of the package, and checking both at once is a
		// spurious redeclaration error.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	names := make([]string, 0, len(byPkg))
	for name := range byPkg {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []*Package
	for _, name := range names {
		files := byPkg[name]
		sort.Slice(files, func(i, j int) bool {
			return l.fset.Position(files[i].Pos()).Filename < l.fset.Position(files[j].Pos()).Filename
		})
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: l.imp}
		path := importPath(dir, name)
		tpkg, err := conf.Check(path, l.fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", dir, err)
		}
		p := &Package{
			Dir:     dir,
			Path:    path,
			Fset:    l.fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			ignores: map[string]map[int]*ignoreScope{},
		}
		p.collectIgnores()
		out = append(out, p)
	}
	return out, nil
}

// importPath derives an import path for dir by locating the enclosing
// go.mod. Failing that (or for package main), the directory path serves;
// the path is only used for display and for module-locality tests.
func importPath(dir, pkgName string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			module := modulePath(data)
			if module == "" {
				return dir
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return dir
			}
			if rel == "." {
				return module
			}
			return module + "/" + filepath.ToSlash(rel)
		}
		parent := filepath.Dir(root)
		if parent == root {
			return dir // no module found
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
