package lint

import (
	"strings"
	"sync"
	"testing"
)

func TestPhaseFixture(t *testing.T) {
	// The fixture seeds six violations: a malformed directive, a
	// snoop-owned field written from the bus phase, a bus-owned field
	// written from the snoop phase (through a transparent helper), a
	// write to an unannotated field of a phase-scoped package, a static
	// call into a bus-phase function from the CPU phase, and a dynamic
	// call into a bus-phase interface method from the snoop phase. The
	// any-owned, multi-owned and matching-phase writes stay silent.
	expectDiags(t, runOn(t, "testdata/phase"), [][2]string{
		{"phaseaudit", "malformed //phase: directive"},
		{"phaseaudit", "Engine.lines (owned by //phase:snoop) from phase context bus"},
		{"phaseaudit", "Engine.grants (owned by //phase:bus) from phase context snoop"},
		{"phaseaudit", "Engine.unowned from phase context snoop"},
		{"phaseaudit", "call to //phase:bus function"},
		{"phaseaudit", "call to //phase:bus function"},
	})
}

// realPhasePkgs loads the phase-annotated simulator packages once and
// shares them across the real-tree tests below (the source importer makes
// loading the expensive step; re-running the AST analysis is cheap).
var (
	realPhaseOnce sync.Once
	realPhasePkgs []*Package
	realPhaseErr  error
)

func loadRealPhasePkgs(t *testing.T) []*Package {
	t.Helper()
	realPhaseOnce.Do(func() {
		l := newLoader()
		for _, dir := range []string{
			"../machine", "../bus", "../cache", "../memory", "../stats", "../processor",
		} {
			pkgs, err := l.load(dir)
			if err != nil {
				realPhaseErr = err
				return
			}
			realPhasePkgs = append(realPhasePkgs, pkgs...)
		}
	})
	if realPhaseErr != nil {
		t.Fatalf("loading simulator packages: %v", realPhaseErr)
	}
	return realPhasePkgs
}

func TestRealTreePhaseClean(t *testing.T) {
	pkgs := loadRealPhasePkgs(t)
	diags := checkPhases(pkgs, "")
	for _, d := range diags {
		t.Errorf("unexpected phaseaudit finding: %s", d)
	}
}

func TestPhaseAnnotationDeletionSurfaces(t *testing.T) {
	// The acceptance property for the annotation scheme: deleting any
	// one ownership annotation must surface a phaseaudit finding naming
	// the field, because a write to an unannotated field of a
	// phase-scoped package is itself a violation.
	pkgs := loadRealPhasePkgs(t)
	keys := phaseFieldKeys(pkgs)
	if len(keys) < 10 {
		t.Fatalf("expected a rich real-tree annotation set, got %d keys: %v", len(keys), keys)
	}
	for _, key := range keys {
		diags := checkPhases(pkgs, key)
		found := false
		for _, d := range diags {
			if d.Analyzer == "phaseaudit" && strings.Contains(d.Message, key) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("deleting the //phase: annotation on %s surfaced no phaseaudit finding", key)
		}
	}
}

func TestCycleLoopRootsAnnotated(t *testing.T) {
	// Deleting a field annotation is caught by the analyzer itself
	// (TestPhaseAnnotationDeletionSurfaces); deleting a phase *root*
	// annotation would instead silently shrink the walked call graph, so
	// the cycle loop's roots are pinned here.
	pkgs := loadRealPhasePkgs(t)
	prog, _ := buildPhaseProgram(pkgs, "")
	want := []struct {
		key string
		set phaseSet
	}{
		{"repro/internal/machine.Machine.busPhase", phaseBus},
		{"repro/internal/machine.Machine.cpuPhase", phaseCPU},
		{"repro/internal/machine.Machine.snoopPhase", phaseSnoop},
		{"repro/internal/machine.Machine.deliver", phaseBus | phaseSnoop},
		{"repro/internal/machine.Machine.checkResolve", phaseAll},
		{"repro/internal/bus.Bus.Tick", phaseBus},
		{"repro/internal/cache.Cache.Access", phaseCPU},
		{"repro/internal/cache.Cache.WantsBus", phaseSnoop},
		{"repro/internal/cache.Cache.BusCompleted", phaseBus},
	}
	for _, w := range want {
		if got := prog.funcPhase[w.key]; got != w.set {
			t.Errorf("root %s: phase set = %v, want %v", w.key, got, w.set)
		}
	}
}
