package lint

import (
	"testing"
)

// TestModuleIsClean runs the full pass — all three analyzer families —
// over the entire module, enforcing the acceptance criterion that
// `protolint ./...` exits zero at merge. Fixture packages live under
// testdata and are skipped by the walk exactly as the go tool would.
func TestModuleIsClean(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("expected the module walk to find >=10 package dirs, got %v", dirs)
	}
	diags, err := Run(Config{Dirs: dirs})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
