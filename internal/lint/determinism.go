package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// checkDeterminism flags constructs whose behavior varies run-to-run:
//
//   - range over a map where the iteration order can escape — the body
//     prints or writes to a stream/builder, appends to a slice declared
//     outside the loop that is never sorted afterwards in the same
//     function, returns a value derived from the iteration variables, or
//     sends on a channel. Order-insensitive folds (summing counters,
//     filling another map) pass.
//   - time.Now / time.Since / time.Until, and the wall-clock timer family
//     time.After / time.Tick / time.NewTimer / time.NewTicker: wall-clock
//     input to a simulator invalidates reproducibility; the event loop
//     owns time. Sweep job bodies and cache-key derivation are the
//     historical offenders — a job deadline from time.After or a cache
//     key salted with time.Since changes results run to run.
//   - importing math/rand (v1 or v2): simulation randomness must come
//     from the seeded, versioned generator in internal/workload.
//
// All three can be waived per line with "//lint:ignore reason" (scope it
// with "//lint:ignore determinism reason" when other analyzers also fire
// on the line).
func checkDeterminism(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				diags = p.diag(diags, imp.Pos(), "determinism",
					fmt.Sprintf("import of %s: simulator randomness must use the seeded generator in internal/workload (rng.go)", path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name := wallClockCall(p, n); name != "" {
					diags = p.diag(diags, n.Pos(), "determinism",
						fmt.Sprintf("time.%s: wall-clock input makes runs non-reproducible; derive time from the event loop", name))
				}
			case *ast.RangeStmt:
				if reason := mapRangeOrderEscapes(p, f, n); reason != "" {
					diags = p.diag(diags, n.Pos(), "determinism",
						fmt.Sprintf("map iteration order %s; collect and sort the keys first", reason))
				}
			}
			return true
		})
	}
	return diags
}

// wallClockCall reports whether call reads the wall clock — directly
// (time.Now/Since/Until) or through a timer (time.After/Tick/NewTimer/
// NewTicker) — returning the function name.
func wallClockCall(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return ""
	}
	switch obj.Name() {
	case "Now", "Since", "Until", "After", "Tick", "NewTimer", "NewTicker":
		return obj.Name()
	}
	return ""
}

// mapRangeOrderEscapes decides whether a range statement iterates a map
// and leaks its iteration order. It returns a human-readable reason, or
// "" when the loop is order-insensitive (or not a map range at all).
func mapRangeOrderEscapes(p *Package, file *ast.File, rng *ast.RangeStmt) string {
	t := p.Info.Types[rng.X].Type
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return ""
	}
	iterObjs := rangeVarObjects(p, rng)

	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := emissionCall(p, n); ok {
				reason = "reaches output through " + name
				return false
			}
			if target := appendTarget(p, rng, n); target != nil {
				if !sortedLater(p, file, rng, target) {
					reason = fmt.Sprintf("reaches slice %q via append without a subsequent sort", target.Name())
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(p, res, iterObjs) {
					reason = "selects the returned value (first match wins nondeterministically)"
					return false
				}
			}
		case *ast.SendStmt:
			reason = "reaches a channel send"
			return false
		}
		return true
	})
	return reason
}

// rangeVarObjects returns the objects bound to the range's key and value
// variables.
func rangeVarObjects(p *Package, rng *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	for _, expr := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := expr.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				objs[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil { // "=" instead of ":="
				objs[obj] = true
			}
		}
	}
	return objs
}

// usesAny reports whether expr references any of the given objects.
func usesAny(p *Package, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// emissionCall recognizes calls that emit bytes or records in call
// order: the fmt print family, io.WriteString, the
// Write/WriteString/WriteByte/WriteRune methods on strings.Builder,
// bytes.Buffer and bufio.Writer, json.Encoder.Encode (JSONL journals),
// and report.Table.AddRow/AddRowf (rendered reports).
func emissionCall(p *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil {
		return "", false
	}
	if pkg := obj.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			switch obj.Name() {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return "fmt." + obj.Name(), true
			}
		case "io":
			if obj.Name() == "WriteString" {
				return "io.WriteString", true
			}
		}
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			recvName := types.TypeString(recv, nil)
			switch fn.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				switch recvName {
				case "strings.Builder", "bytes.Buffer", "bufio.Writer":
					return recvName + "." + fn.Name(), true
				}
			case "Encode":
				if recvName == "encoding/json.Encoder" {
					return "json.Encoder.Encode", true
				}
			case "AddRow", "AddRowf":
				if recvName == "repro/internal/report.Table" {
					return "report.Table." + fn.Name(), true
				}
			}
		}
	}
	return "", false
}

// appendTarget returns the object a call like "x = append(x, ...)"
// assigns to, when that object is declared outside the range statement;
// nil otherwise.
func appendTarget(p *Package, rng *ast.RangeStmt, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.Info.Uses[base]
	if obj == nil {
		return nil
	}
	// Declared inside the loop body -> per-iteration slice, order-safe
	// unless it escapes some other way (covered by the other rules).
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil
	}
	return obj
}

// sortedLater reports whether the enclosing function also passes target
// to a sort.* or slices.Sort* call, the collect-then-sort idiom that
// restores determinism.
func sortedLater(p *Package, file *ast.File, rng *ast.RangeStmt, target types.Object) bool {
	fn := enclosingFuncBody(file, rng)
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		pkg := obj.Pkg().Path()
		isSort := pkg == "sort" || (pkg == "slices" && strings.HasPrefix(obj.Name(), "Sort"))
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if usesAny(p, arg, map[types.Object]bool{target: true}) {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}

// enclosingFuncBody finds the innermost function body containing n.
func enclosingFuncBody(file *ast.File, n ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if node.Pos() > n.Pos() || node.End() < n.End() {
			return false
		}
		switch fn := node.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}
