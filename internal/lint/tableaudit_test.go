package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coherence"
)

// update regenerates the golden audit reports:
//
//	go test ./internal/lint -run TestTableAuditGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestAuditRegisteredProtocolsClean is the merge gate for satellite 1:
// every protocol the module registers must audit clean — total tables,
// no unreachable states, no sanity violations.
func TestAuditRegisteredProtocolsClean(t *testing.T) {
	audits := AuditAll()
	if want := len(coherence.Kinds()); len(audits) != want {
		t.Fatalf("AuditAll returned %d audits, want %d", len(audits), want)
	}
	for _, a := range audits {
		if a.Probes == 0 {
			t.Errorf("%s: audit exercised zero probes", a.Protocol)
		}
		for _, f := range a.Findings {
			t.Errorf("%s: %s: %s", f.Protocol, f.Rule, f.Detail)
		}
		if len(a.Unreachable) > 0 {
			t.Errorf("%s: unreachable states %v", a.Protocol, a.Unreachable)
		}
	}
}

// TestTableAuditGolden pins the full audit report — transition tables,
// reachability, findings — for every registered protocol. A protocol
// edit that opens a table hole or reroutes a transition fails here with
// a readable diff; intentional changes re-bless with -update.
func TestTableAuditGolden(t *testing.T) {
	for _, a := range AuditAll() {
		t.Run(a.Protocol, func(t *testing.T) {
			got := a.Report()
			path := filepath.Join("testdata", "golden", a.Protocol+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("audit report drifted from %s (re-bless with -update if intended)\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}

// badProto seeds one violation of every audit rule:
//
//	totality:     OnProc(Local, CW) has no table entry and panics;
//	closure:      OnProc(Invalid, CW) targets Valid, which is undeclared;
//	reachability: FirstWrite is declared but no transition enters it;
//	sanity:       a write dirties a line entering Invalid over a bus write,
//	              a snooped invalidate claims to take data, a snooped read
//	              both inhibits and takes data, and RMWSuccess broadcasts
//	              a bus read instead of the locked write part.
type badProto struct{}

func (badProto) Name() string { return "bad" }

func (badProto) States() []coherence.State {
	return []coherence.State{coherence.Invalid, coherence.Readable, coherence.Local, coherence.FirstWrite}
}

func (badProto) OnProc(s coherence.State, aux uint8, e coherence.ProcEvent) coherence.ProcOutcome {
	switch {
	case s == coherence.Invalid && e == coherence.EvRead:
		return coherence.ProcOutcome{Next: coherence.Readable, Action: coherence.ActRead}
	case s == coherence.Invalid && e == coherence.EvWrite:
		return coherence.ProcOutcome{Next: coherence.Valid, Action: coherence.ActWrite} // closure: Valid undeclared
	case s == coherence.Readable && e == coherence.EvRead:
		return coherence.ProcOutcome{Next: coherence.Local}
	case s == coherence.Readable && e == coherence.EvWrite:
		return coherence.ProcOutcome{Next: coherence.Invalid, Action: coherence.ActWrite, Dirty: coherence.DirtySet}
	case s == coherence.Local && e == coherence.EvRead:
		return coherence.ProcOutcome{Next: coherence.Local}
	case s == coherence.FirstWrite:
		return coherence.ProcOutcome{Next: coherence.FirstWrite}
	}
	panic("bad: no table entry") // totality: (Local, CW) lands here
}

func (badProto) OnSnoop(s coherence.State, aux uint8, dirty bool, ev coherence.SnoopEvent) coherence.SnoopOutcome {
	switch {
	case s == coherence.Readable && ev == coherence.SnBusInv:
		return coherence.SnoopOutcome{Next: coherence.Invalid, TakeData: true} // sanity: BI carries no data
	case s == coherence.Local && ev == coherence.SnBusRead:
		return coherence.SnoopOutcome{Next: coherence.Local, Inhibit: true, TakeData: true} // sanity: both
	}
	return coherence.SnoopOutcome{Next: s}
}

func (badProto) RMWFlush(s coherence.State, dirty bool) (bool, coherence.State, coherence.DirtyEffect) {
	return false, s, coherence.DirtyKeep
}

func (badProto) RMWSuccess(s coherence.State, aux uint8) (coherence.State, uint8, coherence.Action) {
	return s, 0, coherence.ActRead // sanity: the locked write part must be BW or BI
}

func (badProto) LocalRMW(coherence.State) bool                      { return false }
func (badProto) Cachable(coherence.Class, coherence.ProcEvent) bool { return true }
func (badProto) WritebackOnEvict(coherence.State, bool) bool        { return false }

// TestAuditCatchesSeededViolations proves every audit rule fires: each
// seeded defect in badProto must surface under its own rule name.
func TestAuditCatchesSeededViolations(t *testing.T) {
	a := AuditProtocol(badProto{})
	if a.Clean() {
		t.Fatal("audit of badProto reported clean")
	}
	has := func(rule, substr string) {
		t.Helper()
		for _, f := range a.Findings {
			if f.Rule == rule && strings.Contains(f.Detail, substr) {
				return
			}
		}
		t.Errorf("no %s finding containing %q; findings: %v", rule, substr, a.Findings)
	}
	has("totality", "OnProc(Local")
	has("totality", "panics")
	has("closure", "targets undeclared state Valid")
	has("reachability", "state FirstWrite is unreachable")
	has("sanity", "sets the dirty bit while entering Invalid")
	has("sanity", "sets the dirty bit on a BW transition")
	has("sanity", "takes data from a BI")
	has("sanity", "both inhibits (supplies the value) and takes data")
	has("sanity", "broadcasts BR")
	if len(a.Unreachable) != 1 || a.Unreachable[0] != coherence.FirstWrite {
		t.Errorf("Unreachable = %v, want [FirstWrite]", a.Unreachable)
	}
	// The report for a dirty audit must carry the findings block so the
	// defects stay visible even through the golden path.
	rep := a.Report()
	if !strings.Contains(rep, "findings (") || !strings.Contains(rep, "unreachable: F") {
		t.Errorf("Report() lacks findings/unreachable sections:\n%s", rep)
	}
}
