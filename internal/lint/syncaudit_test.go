package lint

import "testing"

func TestSyncFixture(t *testing.T) {
	// The fixture seeds five violations: two plain accesses (a read and
	// a write) to a field that Inc puts under sync/atomic discipline,
	// both sides of a mu/aux lock-order inversion, and a self-deadlock.
	// The atomic.Load form and the deferred-unlock consistent-order form
	// stay silent.
	expectDiags(t, runOn(t, "testdata/syncaudit"), [][2]string{
		{"syncaudit", "plain access to"},
		{"syncaudit", "plain access to"},
		{"syncaudit", "lock-order inversion"},
		{"syncaudit", "lock-order inversion"},
		{"syncaudit", "self-deadlock"},
	})
}
