// Package lint is protolint's engine: a static-analysis pass over this
// module built entirely on the standard library (go/parser, go/ast,
// go/types, go/importer — no golang.org/x/tools). It complements the
// dynamic verification layers (internal/check's product-machine
// exploration, the race detector) with three analyzer families:
//
//   - exhaustive: every switch over a module-defined enum type (a named
//     integer or string type with declared constants, e.g.
//     coherence.State) must either cover all declared constants or carry
//     an explicit default clause, so adding a protocol state or event
//     kind cannot silently fall through.
//   - determinism: map iteration whose order can reach simulator state,
//     stats output, or trace emission is flagged, as are time.Now and
//     math/rand in simulation packages — every BENCH comparison and
//     Figure 6-x reproduction depends on runs being bit-identical.
//   - tableaudit: every registered coherence.Protocol is audited for
//     totality (state x event always has a defined outcome), reachability
//     (no dead states), and outcome sanity (see tableaudit.go).
//
// Findings can be suppressed with a "//lint:ignore reason" comment on the
// offending line or the line directly above it.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding. Pos is zero-valued for findings that have no
// source location (table-audit findings describe a protocol, not a file).
type Diagnostic struct {
	Pos      token.Position
	Analyzer string // "exhaustive", "determinism" or "tableaudit"
	Message  string
}

// String renders the diagnostic in go vet's file:line:col format.
func (d Diagnostic) String() string {
	if d.Pos.Filename == "" {
		return fmt.Sprintf("protolint: %s (%s)", d.Message, d.Analyzer)
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Config controls a Run.
type Config struct {
	// Dirs are package directories to analyze (see ExpandPatterns).
	Dirs []string
	// SkipTables disables the protocol table audit (it is package-level,
	// not per-directory, so it runs once per Run).
	SkipTables bool
}

// Run loads every package in cfg.Dirs, applies the AST analyzers, runs
// the table audit, and returns all diagnostics sorted by position. The
// error is non-nil only for load failures (unparsable or untypeable
// code), not for findings.
func Run(cfg Config) ([]Diagnostic, error) {
	l := newLoader()
	var diags []Diagnostic
	for _, dir := range cfg.Dirs {
		pkgs, err := l.load(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		for _, p := range pkgs {
			diags = append(diags, checkExhaustive(p)...)
			diags = append(diags, checkDeterminism(p)...)
		}
	}
	if !cfg.SkipTables {
		for _, a := range AuditAll() {
			for _, f := range a.Findings {
				diags = append(diags, Diagnostic{
					Analyzer: "tableaudit",
					Message:  fmt.Sprintf("protocol %s: %s: %s", f.Protocol, f.Rule, f.Detail),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// ExpandPatterns resolves command-line package patterns to directories.
// "./..." (or "dir/...") walks recursively; other arguments name single
// package directories. Directories named testdata, vendored trees, and
// dot/underscore-prefixed entries are skipped, mirroring the go tool.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if pat == "..." {
			root, recursive = ".", true
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("no Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
