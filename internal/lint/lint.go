// Package lint is protolint's engine: a static-analysis pass over this
// module built entirely on the standard library (go/parser, go/ast,
// go/types, go/importer — no golang.org/x/tools). It complements the
// dynamic verification layers (internal/check's product-machine
// exploration, the race detector) with six analyzer families:
//
//   - exhaustive: every switch over a module-defined enum type (a named
//     integer or string type with declared constants, e.g.
//     coherence.State) must either cover all declared constants or carry
//     an explicit default clause, so adding a protocol state or event
//     kind cannot silently fall through.
//   - determinism: map iteration whose order can reach simulator state,
//     stats output, or trace emission is flagged, as are time.Now,
//     wall-clock timers, and math/rand in simulation packages — every
//     BENCH comparison and Figure 6-x reproduction depends on runs being
//     bit-identical.
//   - tableaudit: every registered coherence.Protocol is audited for
//     totality (state x event always has a defined outcome), reachability
//     (no dead states), and outcome sanity (see tableaudit.go).
//   - phaseaudit: "//phase:bus|snoop|cpu|any" annotations declare which
//     cycle-loop phase owns each mutable simulator field; the analyzer
//     walks the call graph from the annotated phase roots and flags every
//     write reached from a phase that does not own it (phaseaudit.go).
//   - allocaudit: functions marked "//hotpath:allocfree" may not contain
//     heap-allocating constructs (allocaudit.go).
//   - syncaudit: fields accessed both atomically and plainly, and locks
//     acquired in inconsistent order, are flagged (syncaudit.go).
//
// Findings can be suppressed with a "//lint:ignore reason" comment on the
// offending line or the line directly above it; prefix the reason with an
// analyzer name (or comma-separated list) to scope the suppression.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding. Pos is zero-valued for findings that have no
// source location (table-audit findings describe a protocol, not a file).
// Suppressed findings are only present when Config.IncludeSuppressed is
// set.
type Diagnostic struct {
	Pos        token.Position
	Analyzer   string // "exhaustive", "determinism", "tableaudit", "phaseaudit", "allocaudit" or "syncaudit"
	Message    string
	Suppressed bool // covered by a //lint:ignore directive
}

// String renders the diagnostic in go vet's file:line:col format.
func (d Diagnostic) String() string {
	if d.Pos.Filename == "" {
		return fmt.Sprintf("protolint: %s (%s)", d.Message, d.Analyzer)
	}
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Config controls a Run.
type Config struct {
	// Dirs are package directories to analyze (see ExpandPatterns).
	Dirs []string
	// SkipTables disables the protocol table audit (it is package-level,
	// not per-directory, so it runs once per Run).
	SkipTables bool
	// IncludeSuppressed keeps findings covered by //lint:ignore
	// directives in the result, marked with Suppressed=true, instead of
	// dropping them. The -format=json CLI output uses this so CI tooling
	// can see waivers.
	IncludeSuppressed bool
}

// Run loads every package in cfg.Dirs, applies the AST analyzers, runs
// the table audit, and returns all diagnostics sorted by position. The
// per-package analyzers (exhaustive, determinism, allocaudit) see one
// package at a time; the whole-program analyzers (phaseaudit, syncaudit)
// see every loaded package at once, because phase ownership and lock
// order are cross-package properties. The error is non-nil only for load
// failures (unparsable or untypeable code), not for findings.
func Run(cfg Config) ([]Diagnostic, error) {
	l := newLoader()
	var all []*Package
	for _, dir := range cfg.Dirs {
		pkgs, err := l.load(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		all = append(all, pkgs...)
	}
	var diags []Diagnostic
	for _, p := range all {
		p.includeSuppressed = cfg.IncludeSuppressed
		diags = append(diags, checkExhaustive(p)...)
		diags = append(diags, checkDeterminism(p)...)
		diags = append(diags, checkAllocFree(p)...)
	}
	diags = append(diags, checkPhases(all, "")...)
	diags = append(diags, checkSync(all)...)
	if !cfg.SkipTables {
		for _, a := range AuditAll() {
			for _, f := range a.Findings {
				diags = append(diags, Diagnostic{
					Analyzer: "tableaudit",
					Message:  fmt.Sprintf("protocol %s: %s: %s", f.Protocol, f.Rule, f.Detail),
				})
			}
		}
	}
	sortDiags(diags)
	return diags, nil
}

// Unsuppressed counts the findings not covered by an ignore directive —
// the number that decides protolint's exit code.
func Unsuppressed(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if !d.Suppressed {
			n++
		}
	}
	return n
}

// jsonDiag is the machine-readable rendering of one finding, one JSON
// object per line (JSON Lines, so CI tooling can stream-parse).
type jsonDiag struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// WriteJSON renders diagnostics as JSON Lines.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiag{
			Analyzer:   d.Analyzer,
			File:       filepath.ToSlash(d.Pos.Filename),
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
		if err := enc.Encode(jd); err != nil {
			return err
		}
	}
	return nil
}

// ExpandPatterns resolves command-line package patterns to directories.
// "./..." (or "dir/...") walks recursively; other arguments name single
// package directories. Directories named testdata, vendored trees, and
// dot/underscore-prefixed entries are skipped, mirroring the go tool.
func ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if pat == "..." {
			root, recursive = ".", true
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			if !hasGoFiles(root) {
				return nil, fmt.Errorf("no Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
