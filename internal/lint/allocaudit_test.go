package lint

import "testing"

func TestAllocFixture(t *testing.T) {
	// The fixture seeds nine violations: a growing append, a fmt call,
	// a runtime string concatenation, interface boxing of an int, a map
	// literal, a defer, a closure, an arena page reallocated instead of
	// revived in place, and an unknown //hotpath: directive. The
	// capped-local / self-append / reslice append forms, the
	// panic-argument exemption, the in-place generation revive, the
	// scoped waiver and the unmarked function stay silent.
	expectDiags(t, runOn(t, "testdata/allocfree"), [][2]string{
		{"allocaudit", "append that may grow its backing array"},
		{"allocaudit", "fmt.Sprintf call"},
		{"allocaudit", "string concatenation"},
		{"allocaudit", "interface boxing of int"},
		{"allocaudit", "map literal"},
		{"allocaudit", "defer statement"},
		{"allocaudit", "func literal"},
		{"allocaudit", "&composite{} (escaping composite literal)"},
		{"allocaudit", `unknown //hotpath: directive "nofree"`},
	})
}
