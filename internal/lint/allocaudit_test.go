package lint

import "testing"

func TestAllocFixture(t *testing.T) {
	// The fixture seeds eight violations: a growing append, a fmt call,
	// a runtime string concatenation, interface boxing of an int, a map
	// literal, a defer, a closure, and an unknown //hotpath: directive.
	// The capped-local / self-append / reslice append forms, the
	// panic-argument exemption, the scoped waiver and the unmarked
	// function stay silent.
	expectDiags(t, runOn(t, "testdata/allocfree"), [][2]string{
		{"allocaudit", "append that may grow its backing array"},
		{"allocaudit", "fmt.Sprintf call"},
		{"allocaudit", "string concatenation"},
		{"allocaudit", "interface boxing of int"},
		{"allocaudit", "map literal"},
		{"allocaudit", "defer statement"},
		{"allocaudit", "func literal"},
		{"allocaudit", `unknown //hotpath: directive "nofree"`},
	})
}
