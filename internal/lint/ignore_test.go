package lint

import "testing"

func TestIgnoreScopeFixture(t *testing.T) {
	// CPUStep's line carries both a phaseaudit finding (CPU phase writes
	// a bus-owned field) and an allocaudit finding (make in a
	// //hotpath:allocfree function). The scoped directive suppresses
	// only the former. LegacyWaiver's unscoped directive suppresses
	// both.
	expectDiags(t, runOn(t, "testdata/ignorescope"), [][2]string{
		{"allocaudit", "make in //hotpath:allocfree function Core.CPUStep"},
	})
}

func TestIncludeSuppressed(t *testing.T) {
	diags, err := Run(Config{
		Dirs:              []string{"testdata/ignorescope"},
		SkipTables:        true,
		IncludeSuppressed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		analyzer   string
		suppressed bool
	}{
		{"phaseaudit", true},  // CPUStep: scoped waiver
		{"allocaudit", false}, // CPUStep: not covered by the scoped waiver
		{"phaseaudit", true},  // LegacyWaiver: unscoped waiver
		{"allocaudit", true},  // LegacyWaiver: unscoped waiver
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("  %s (suppressed=%v)", d, d.Suppressed)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		if diags[i].Analyzer != w.analyzer || diags[i].Suppressed != w.suppressed {
			t.Errorf("diag %d: got (%s, suppressed=%v), want (%s, suppressed=%v)",
				i, diags[i].Analyzer, diags[i].Suppressed, w.analyzer, w.suppressed)
		}
	}
}
