package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// syncaudit guards the harness layers that do run goroutines today
// (serve, sweep, fault campaigns) with two whole-program checks:
//
//   - mixed atomic/plain access: a field whose address is ever passed to a
//     sync/atomic function must be accessed through sync/atomic
//     everywhere; any plain read or write of it is a data race waiting
//     for a scheduler to expose it. (Typed atomics — atomic.Int64 and
//     friends — cannot be mixed and need no checking.)
//   - lock-order inversion: within each function, the mutexes held when
//     another mutex is acquired define acquisition-order edges; if both
//     A-before-B and B-before-A edges exist anywhere in the program, both
//     sites are flagged. Acquiring a mutex already held by the same
//     function is flagged as a self-deadlock. A deferred Unlock keeps the
//     lock held to function end, matching its runtime behavior.
//
// The lock analysis is intraprocedural and linear (no path sensitivity):
// it trades completeness for zero false positives on the repository's
// lock idioms. Findings are waived per line with
// "//lint:ignore syncaudit reason".

// syncEdge records the first site acquiring 'to' while holding 'from'.
type syncEdge struct {
	pkg *Package
	pos token.Pos
}

// checkSync runs both syncaudit checks across all loaded packages.
func checkSync(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, checkAtomicMix(pkgs)...)
	diags = append(diags, checkLockOrder(pkgs)...)
	sortDiags(diags)
	return diags
}

// checkAtomicMix flags plain accesses to fields that are elsewhere
// accessed through sync/atomic.
func checkAtomicMix(pkgs []*Package) []Diagnostic {
	// Pass 1: every field whose address feeds a sync/atomic call.
	atomicFields := map[string]token.Position{}
	atomicArgs := map[*ast.SelectorExpr]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(p, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := un.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					key, _ := fieldKeyOf(p, sel)
					if key == "" {
						continue
					}
					atomicArgs[sel] = true
					if _, seen := atomicFields[key]; !seen {
						atomicFields[key] = p.Fset.Position(sel.Pos())
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: plain selections of those fields.
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicArgs[sel] {
					return true
				}
				key, _ := fieldKeyOf(p, sel)
				if key == "" {
					return true
				}
				first, isAtomic := atomicFields[key]
				if !isAtomic {
					return true
				}
				diags = p.diag(diags, sel.Pos(), "syncaudit",
					fmt.Sprintf("plain access to %s, which is accessed atomically at %s:%d; every access must go through sync/atomic",
						key, first.Filename, first.Line))
				return true
			})
		}
	}
	return diags
}

// isAtomicFuncCall reports whether call invokes a package-level
// sync/atomic function (AddUint64, StoreInt32, ...), not a typed-atomic
// method.
func isAtomicFuncCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkLockOrder builds the global mutex acquisition-order graph and
// flags inversions and self-deadlocks.
func checkLockOrder(pkgs []*Package) []Diagnostic {
	edges := map[string]map[string]syncEdge{}
	var diags []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				diags = scanLocks(p, fd.Body, edges, diags)
			}
		}
	}
	// Inversions: A->B and B->A both present.
	froms := make([]string, 0, len(edges))
	for from := range edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, a := range froms {
		tos := make([]string, 0, len(edges[a]))
		for to := range edges[a] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, b := range tos {
			rev, inverted := edges[b][a]
			if !inverted || a >= b {
				continue // report each pair once, at both sites
			}
			ab, ba := edges[a][b], rev
			diags = ab.pkg.diag(diags, ab.pos, "syncaudit",
				fmt.Sprintf("lock %s acquired while holding %s, but the opposite order occurs at %s (lock-order inversion)",
					b, a, ba.pkg.Fset.Position(ba.pos)))
			diags = ba.pkg.diag(diags, ba.pos, "syncaudit",
				fmt.Sprintf("lock %s acquired while holding %s, but the opposite order occurs at %s (lock-order inversion)",
					a, b, ab.pkg.Fset.Position(ab.pos)))
		}
	}
	return diags
}

// scanLocks walks one function body in source order, tracking held
// mutexes, recording acquisition edges, and flagging self-deadlocks.
func scanLocks(p *Package, body *ast.BlockStmt, edges map[string]map[string]syncEdge, diags []Diagnostic) []Diagnostic {
	var held []string
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at function end; the lock stays
			// held for ordering purposes.
			deferred[n.Call] = true
		case *ast.CallExpr:
			key, op := mutexCall(p, n)
			if key == "" {
				return true
			}
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					if h == key {
						diags = p.diag(diags, n.Pos(), "syncaudit",
							fmt.Sprintf("lock %s acquired while already held (self-deadlock)", key))
						continue
					}
					if edges[h] == nil {
						edges[h] = map[string]syncEdge{}
					}
					if _, seen := edges[h][key]; !seen {
						edges[h][key] = syncEdge{pkg: p, pos: n.Pos()}
					}
				}
				held = append(held, key)
			case "Unlock", "RUnlock":
				if deferred[n] {
					return true
				}
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
	return diags
}

// mutexCall recognizes sync.Mutex / sync.RWMutex method calls, returning
// a stable key for the mutex ("pkgpath.Type.field" for mutex fields, the
// expression text otherwise) and the method name.
func mutexCall(p *Package, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	if recvSel, ok := sel.X.(*ast.SelectorExpr); ok {
		if key, _ := fieldKeyOf(p, recvSel); key != "" {
			return key, fn.Name()
		}
	}
	return p.Path + ":" + types.ExprString(sel.X), fn.Name()
}
