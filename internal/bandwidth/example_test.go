package bandwidth_test

import (
	"fmt"

	"repro/internal/bandwidth"
)

// ExampleModel reproduces the Section 7 worked example.
func ExampleModel() {
	m := bandwidth.PaperExample() // 128 PEs, 1 MACS each, 10% miss ratio
	fmt.Printf("SBB >= %.1f MACS\n", float64(m.RequiredSBB()))
	fmt.Printf("per bus with 2 buses: %.1f MACS\n", float64(m.PerBus(2)))
	// Output:
	// SBB >= 12.8 MACS
	// per bus with 2 buses: 6.4 MACS
}
