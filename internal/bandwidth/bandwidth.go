// Package bandwidth implements the shared-bus bandwidth arithmetic of
// Section 7: the required bus bandwidth SBB ≥ m·x·(1/h) for m processors
// each generating x accesses per second with a cache miss ratio of 1/h,
// the worked example (128 PEs, 1 MACS, 10% misses ⇒ 12.8 MACS), and the
// multiple-shared-bus split of Figure 7-1.
package bandwidth

import "fmt"

// MACS is millions of accesses per second, the paper's bandwidth unit.
type MACS float64

// Model carries the Section 7 parameters.
type Model struct {
	// Processors is m, the number of PEs on the shared bus.
	Processors int
	// AccessRate is x, the references per second one PE generates (MACS).
	AccessRate MACS
	// MissRatio is 1/h, the fraction of references that reach the bus.
	MissRatio float64
}

// Validate reports parameter errors.
func (m Model) Validate() error {
	if m.Processors < 1 {
		return fmt.Errorf("bandwidth: %d processors", m.Processors)
	}
	if m.AccessRate <= 0 {
		return fmt.Errorf("bandwidth: access rate %v", m.AccessRate)
	}
	if m.MissRatio < 0 || m.MissRatio > 1 {
		return fmt.Errorf("bandwidth: miss ratio %v", m.MissRatio)
	}
	return nil
}

// RequiredSBB returns the minimum shared-bus bandwidth: SBB ≥ m·x·(1/h).
func (m Model) RequiredSBB() MACS {
	return MACS(float64(m.Processors) * float64(m.AccessRate) * m.MissRatio)
}

// PerBus returns the bandwidth each of n interleaved buses must carry:
// "Each part of the divided cache will generate, on average, half of the
// traffic ... the required bandwidth for each shared bus will be about
// half" (Figure 7-1, generalized to n banks).
func (m Model) PerBus(buses int) MACS {
	if buses < 1 {
		panic("bandwidth: non-positive bus count")
	}
	return m.RequiredSBB() / MACS(buses)
}

// MaxProcessors returns the largest m a bus of the given bandwidth can
// carry without saturating.
func (m Model) MaxProcessors(sbb MACS) int {
	perPE := float64(m.AccessRate) * m.MissRatio
	if perPE <= 0 {
		return 0
	}
	return int(float64(sbb) / perPE)
}

// Utilization predicts the analytic bus utilization for a bus able to
// carry sbb: demand over capacity, capped at 1.
func (m Model) Utilization(sbb MACS) float64 {
	if sbb <= 0 {
		return 1
	}
	u := float64(m.RequiredSBB()) / float64(sbb)
	if u > 1 {
		return 1
	}
	return u
}

// PaperExample returns the Section 7 worked example: 128 processors, 1
// MACS each, 10 % miss ratio. Its RequiredSBB is 12.8 MACS.
func PaperExample() Model {
	return Model{Processors: 128, AccessRate: 1, MissRatio: 0.10}
}

// SaturationPoint estimates, from a measured per-reference bus-transaction
// rate (transactions per processor reference) and a per-PE issue rate in
// references per bus cycle, how many processors saturate a single bus that
// completes one transaction per cycle. This ties the analytic model to
// simulated traffic: busPerRef plays the role of 1/h.
func SaturationPoint(busPerRef, refsPerCyclePerPE float64) int {
	demand := busPerRef * refsPerCyclePerPE
	if demand <= 0 {
		return 0
	}
	return int(1 / demand)
}
