package bandwidth

import (
	"math"
	"testing"
)

func TestPaperExampleIs12Point8MACS(t *testing.T) {
	// Section 7: 1/h = 10%, m = 128, x = 1 MACS => SBB = 12.8 MACS.
	m := PaperExample()
	if got := m.RequiredSBB(); math.Abs(float64(got)-12.8) > 1e-9 {
		t.Fatalf("RequiredSBB = %v, want 12.8", got)
	}
}

func TestPerBusHalvesWithTwoBuses(t *testing.T) {
	m := PaperExample()
	if got := m.PerBus(2); math.Abs(float64(got)-6.4) > 1e-9 {
		t.Fatalf("PerBus(2) = %v, want 6.4", got)
	}
	if got := m.PerBus(4); math.Abs(float64(got)-3.2) > 1e-9 {
		t.Fatalf("PerBus(4) = %v, want 3.2", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PerBus(0) did not panic")
			}
		}()
		m.PerBus(0)
	}()
}

func TestMaxProcessors(t *testing.T) {
	m := Model{Processors: 1, AccessRate: 1, MissRatio: 0.1}
	// A 12.8-MACS bus supports the paper's 128 processors.
	if got := m.MaxProcessors(12.8); got != 128 {
		t.Fatalf("MaxProcessors(12.8) = %d, want 128", got)
	}
	// The paper's closing claim: "as many as 32 to 256 processors".
	if lo := m.MaxProcessors(3.2); lo != 32 {
		t.Fatalf("MaxProcessors(3.2) = %d, want 32", lo)
	}
	if hi := m.MaxProcessors(25.6); hi != 256 {
		t.Fatalf("MaxProcessors(25.6) = %d, want 256", hi)
	}
	zero := Model{Processors: 1, AccessRate: 0, MissRatio: 0}
	if zero.MaxProcessors(10) != 0 {
		t.Fatal("degenerate model should support 0 processors")
	}
}

func TestUtilization(t *testing.T) {
	m := PaperExample()
	if u := m.Utilization(25.6); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("Utilization(25.6) = %v, want 0.5", u)
	}
	if u := m.Utilization(6.4); u != 1 {
		t.Fatalf("oversubscribed Utilization = %v, want capped at 1", u)
	}
	if u := m.Utilization(0); u != 1 {
		t.Fatalf("zero-capacity Utilization = %v", u)
	}
}

func TestValidate(t *testing.T) {
	good := PaperExample()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{Processors: 0, AccessRate: 1, MissRatio: 0.1},
		{Processors: 1, AccessRate: 0, MissRatio: 0.1},
		{Processors: 1, AccessRate: 1, MissRatio: 1.5},
		{Processors: 1, AccessRate: 1, MissRatio: -0.1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestSaturationPoint(t *testing.T) {
	// 0.1 transactions per reference, 1 reference per cycle per PE:
	// a 1-transaction-per-cycle bus saturates at 10 PEs.
	if got := SaturationPoint(0.1, 1); got != 10 {
		t.Fatalf("SaturationPoint = %d, want 10", got)
	}
	if SaturationPoint(0, 1) != 0 {
		t.Fatal("degenerate saturation point")
	}
}
