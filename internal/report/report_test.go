package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "table1-1",
		Title:   "Cm* Emulated Cache Results",
		Note:    "synthetic workload",
		Columns: []string{"Cache Size", "Read Miss %"},
	}
	t.AddRow("256", "26.1")
	t.AddRowf(512, 21.7)
	return t
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b", "c"}}
	tb.AddRow("1")
	tb.AddRow("1", "2", "3", "4")
	if len(tb.Rows[0]) != 3 || tb.Rows[0][1] != "" {
		t.Fatalf("row 0 = %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 3 || tb.Rows[1][2] != "3" {
		t.Fatalf("row 1 = %v", tb.Rows[1])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:     "0",
		0.123: "0.123",
		1.25:  "1.2",
		26.1:  "26.1",
		128:   "128",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPlainRendering(t *testing.T) {
	out := sample().Plain()
	for _, want := range []string{"Cm* Emulated Cache Results", "table1-1", "Cache Size", "26.1", "note: synthetic workload", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("plain output missing %q:\n%s", want, out)
		}
	}
	// Columns align: both data rows start at the same offsets.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count:\n%s", out)
	}
}

func TestMarkdownRendering(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"**Cm* Emulated Cache Results**", "| Cache Size | Read Miss % |", "|---|---|", "| 256 | 26.1 |", "*synthetic workload*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVRendering(t *testing.T) {
	tb := &Table{Columns: []string{"name", "value"}}
	tb.AddRow(`quo"ted`, "a,b")
	out := tb.CSV()
	if !strings.Contains(out, `"quo""ted"`) || !strings.Contains(out, `"a,b"`) {
		t.Fatalf("CSV quoting wrong:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("CSV header wrong:\n%s", out)
	}
}

func TestRenderDispatch(t *testing.T) {
	tb := sample()
	if tb.Render("csv") != tb.CSV() {
		t.Error("csv dispatch")
	}
	if tb.Render("md") != tb.Markdown() {
		t.Error("md dispatch")
	}
	if tb.Render("markdown") != tb.Markdown() {
		t.Error("markdown dispatch")
	}
	if tb.Render("weird") != tb.Plain() {
		t.Error("fallback dispatch")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("speeds", []string{"a", "bb"}, []float64{10, 5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "speeds" {
		t.Fatalf("chart = %q", out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "#####") || strings.Contains(lines[2], "######") {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
	// Tiny nonzero values keep a visible sliver; zeros stay empty.
	out = BarChart("", []string{"x", "y"}, []float64{1000, 0.1}, 10)
	if !strings.Contains(strings.Split(out, "\n")[1], "#") {
		t.Fatal("tiny value lost its sliver")
	}
	out = BarChart("", []string{"x"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatal("zero value drew a bar")
	}
}

func TestBarChartValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels/values did not panic")
		}
	}()
	BarChart("", []string{"a"}, nil, 10)
}

func TestChartFromTable(t *testing.T) {
	tb := &Table{
		Title:   "sweep",
		Columns: []string{"proto", "pes", "util"},
	}
	tb.AddRow("rb", "4", "0.5")
	tb.AddRow("rb", "8", "1.0")
	out := ChartFromTable(tb, []int{0, 1}, 2, 20)
	if !strings.Contains(out, "rb/4") || !strings.Contains(out, "rb/8") {
		t.Fatalf("labels missing: %q", out)
	}
	if !strings.Contains(out, "sweep — util") {
		t.Fatalf("title missing: %q", out)
	}
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Fatalf("full bar missing: %q", out)
	}
}
