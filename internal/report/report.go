// Package report renders the reproduction's tables and figures as text:
// plain ASCII (the default for terminal output), Markdown (for
// EXPERIMENTS.md), and CSV (for downstream plotting). Every experiment in
// internal/experiments produces a Table; the renderers keep the output of
// cmd/paperrepro, the benchmarks, and the documentation consistent.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	// ID is the paper artifact identifier, e.g. "table1-1" or "fig6-2".
	ID string
	// Title is the caption, e.g. the paper's own table title.
	Title string
	// Note holds caveats (substitutions, calibration remarks).
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of Sprint-formatted values.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = FormatFloat(x)
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// FormatFloat renders a float the way the paper's tables do: one decimal
// for percentages-sized values, more precision for small ratios.
func FormatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 100:
		return fmt.Sprintf("%.0f", x)
	case x >= 1:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// FormatMeanSD renders an aggregated measurement the way the sweep
// engine's multi-seed tables do: mean, sample stddev, and the 95%
// confidence half-width, each through FormatFloat.
func FormatMeanSD(mean, sd, ci float64) string {
	return fmt.Sprintf("%s ±%s (ci %s)", FormatFloat(mean), FormatFloat(sd), FormatFloat(ci))
}

// Plain renders the table as aligned ASCII text.
func (t *Table) Plain() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s (%s)\n", t.Title, t.ID)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s** (`%s`)\n\n", t.Title, t.ID)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells that
// contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Render maps a format name ("plain", "markdown", "csv") to the matching
// renderer; unknown names fall back to plain.
func (t *Table) Render(format string) string {
	switch format {
	case "markdown", "md":
		return t.Markdown()
	case "csv":
		return t.CSV()
	default:
		return t.Plain()
	}
}
