package report

import (
	"fmt"
	"strings"
)

// BarChart renders labeled values as a horizontal ASCII bar chart — the
// closest a terminal gets to the paper's figures. Bars scale to width
// characters for the largest value; each row shows the label, the bar,
// and the numeric value.
func BarChart(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic(fmt.Sprintf("report: %d labels for %d values", len(labels), len(values)))
	}
	if width <= 0 {
		width = 40
	}
	var max float64
	labelW := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		bar := 0
		if max > 0 && v > 0 {
			bar = int(v / max * float64(width))
			if bar == 0 {
				bar = 1 // visible sliver for tiny nonzero values
			}
		}
		fmt.Fprintf(&b, "%-*s  %-*s %s\n", labelW, labels[i], width, strings.Repeat("#", bar), FormatFloat(v))
	}
	return b.String()
}

// ChartFromTable renders one numeric column of a table as a bar chart,
// labeling each bar with the values of the label columns joined by "/".
// Non-numeric cells chart as zero.
func ChartFromTable(t *Table, labelCols []int, valueCol int, width int) string {
	labels := make([]string, 0, len(t.Rows))
	values := make([]float64, 0, len(t.Rows))
	for _, row := range t.Rows {
		parts := make([]string, 0, len(labelCols))
		for _, c := range labelCols {
			if c < len(row) {
				parts = append(parts, row[c])
			}
		}
		labels = append(labels, strings.Join(parts, "/"))
		var v float64
		if valueCol < len(row) {
			fmt.Sscanf(row[valueCol], "%g", &v)
		}
		values = append(values, v)
	}
	title := fmt.Sprintf("%s — %s", t.Title, t.Columns[valueCol])
	return BarChart(title, labels, values, width)
}
