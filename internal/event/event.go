// Package event provides a small deterministic discrete-event simulation
// kernel: a virtual clock, a priority queue of scheduled callbacks, and a
// run loop.
//
// The machine simulator (internal/machine) is fundamentally cycle-stepped —
// the shared bus serializes everything at bus-cycle granularity — but a
// number of mechanisms are most naturally expressed as scheduled events:
// retried bus reads after an interrupt, memory transactions that hold the
// bus for several cycles, processors resuming after a modeled compute
// delay, and periodic statistics sampling. The kernel is also used on its
// own by the trace replay tooling.
//
// Determinism: events scheduled for the same time fire in the order they
// were scheduled (FIFO among equal timestamps). This is essential for
// reproducible simulations and for the consistency oracle, which depends on
// a stable serialization of same-cycle actions.
package event

import (
	"container/heap"
	"fmt"
)

// Time is the virtual simulation time, measured in bus cycles.
type Time uint64

// Func is a callback invoked when its event fires. The loop passes the
// current virtual time.
type Func func(now Time)

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid.
type Handle uint64

// item is a scheduled event in the queue.
type item struct {
	at     Time
	seq    uint64 // tie-break: FIFO among equal timestamps
	handle Handle
	fn     Func
	index  int // heap index; -1 when removed
}

// queue implements heap.Interface ordered by (at, seq).
type queue []*item

func (q queue) Len() int { return len(q) }

func (q queue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q queue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *queue) Push(x any) {
	it := x.(*item)
	it.index = len(*q)
	*q = append(*q, it)
}

func (q *queue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*q = old[:n-1]
	return it
}

// Loop is a discrete-event simulation loop. The zero value is ready to use.
// Loop is not safe for concurrent use; the simulator is single-goroutine by
// design (determinism over parallelism).
type Loop struct {
	now     Time
	q       queue
	seq     uint64
	nextID  Handle
	pending map[Handle]*item
	fired   uint64
}

// New returns an empty loop at time zero.
func New() *Loop {
	return &Loop{pending: make(map[Handle]*item)}
}

func (l *Loop) init() {
	if l.pending == nil {
		l.pending = make(map[Handle]*item)
	}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Len returns the number of pending events.
func (l *Loop) Len() int { return len(l.q) }

// Fired returns the total number of events that have fired.
func (l *Loop) Fired() uint64 { return l.fired }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) is an error expressed by panic, since it indicates a simulator
// bug rather than a recoverable condition.
func (l *Loop) At(t Time, fn Func) Handle {
	if fn == nil {
		panic("event: nil callback")
	}
	if t < l.now {
		panic(fmt.Sprintf("event: scheduling at %d, before now %d", t, l.now))
	}
	l.init()
	l.nextID++
	l.seq++
	it := &item{at: t, seq: l.seq, handle: l.nextID, fn: fn}
	heap.Push(&l.q, it)
	l.pending[it.handle] = it
	return it.handle
}

// After schedules fn to run d cycles from now.
func (l *Loop) After(d Time, fn Func) Handle { return l.At(l.now+d, fn) }

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired, was cancelled, or the handle is
// invalid).
func (l *Loop) Cancel(h Handle) bool {
	it, ok := l.pending[h]
	if !ok {
		return false
	}
	delete(l.pending, h)
	heap.Remove(&l.q, it.index)
	return true
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports whether an event fired (false if the queue was
// empty).
func (l *Loop) Step() bool {
	if len(l.q) == 0 {
		return false
	}
	it := heap.Pop(&l.q).(*item)
	delete(l.pending, it.handle)
	l.now = it.at
	l.fired++
	it.fn(l.now)
	return true
}

// Run fires events until the queue is empty and returns the final time.
func (l *Loop) Run() Time {
	for l.Step() {
	}
	return l.now
}

// RunUntil fires events with timestamps <= deadline, then advances the
// clock to deadline (if it is beyond the last fired event). Events
// scheduled during the run are honored if they fall within the deadline.
func (l *Loop) RunUntil(deadline Time) Time {
	for len(l.q) > 0 && l.q[0].at <= deadline {
		l.Step()
	}
	if l.now < deadline {
		l.now = deadline
	}
	return l.now
}

// Advance moves the clock forward by d without firing events. It panics if
// any pending event would be skipped, since silently skipping events is
// always a simulator bug.
func (l *Loop) Advance(d Time) {
	target := l.now + d
	if len(l.q) > 0 && l.q[0].at < target {
		panic(fmt.Sprintf("event: Advance(%d) would skip event at %d", d, l.q[0].at))
	}
	l.now = target
}

// NextAt returns the timestamp of the earliest pending event. The second
// result is false when the queue is empty.
func (l *Loop) NextAt() (Time, bool) {
	if len(l.q) == 0 {
		return 0, false
	}
	return l.q[0].at, true
}
