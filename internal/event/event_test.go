package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyLoop(t *testing.T) {
	l := New()
	if l.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", l.Now())
	}
	if l.Step() {
		t.Fatal("Step() on empty loop reported an event")
	}
	if got := l.Run(); got != 0 {
		t.Fatalf("Run() = %d, want 0", got)
	}
	if _, ok := l.NextAt(); ok {
		t.Fatal("NextAt() on empty loop reported an event")
	}
}

func TestOrderingByTime(t *testing.T) {
	l := New()
	var got []int
	l.At(30, func(Time) { got = append(got, 3) })
	l.At(10, func(Time) { got = append(got, 1) })
	l.At(20, func(Time) { got = append(got, 2) })
	end := l.Run()
	if end != 30 {
		t.Fatalf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", got, want)
		}
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	l := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		l.At(7, func(Time) { got = append(got, i) })
	}
	l.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-timestamp events out of FIFO order at %d: got %d", i, v)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	l := New()
	var at Time
	l.At(5, func(now Time) {
		l.After(10, func(now Time) { at = now })
	})
	l.Run()
	if at != 15 {
		t.Fatalf("After(10) from t=5 fired at %d, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	l := New()
	fired := false
	h := l.At(10, func(Time) { fired = true })
	if !l.Cancel(h) {
		t.Fatal("Cancel of pending event returned false")
	}
	if l.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	l.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleKeepsHeapValid(t *testing.T) {
	l := New()
	var got []Time
	handles := make([]Handle, 0, 10)
	for i := 1; i <= 10; i++ {
		tm := Time(i)
		handles = append(handles, l.At(tm, func(now Time) { got = append(got, now) }))
	}
	l.Cancel(handles[4]) // t=5
	l.Cancel(handles[7]) // t=8
	l.Run()
	want := []Time{1, 2, 3, 4, 6, 7, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestCancelAlreadyFired(t *testing.T) {
	l := New()
	var h Handle
	h = l.At(1, func(Time) {})
	l.Run()
	if l.Cancel(h) {
		t.Fatal("Cancel of fired event returned true")
	}
}

func TestRunUntil(t *testing.T) {
	l := New()
	var got []Time
	for _, tm := range []Time{5, 10, 15, 20} {
		l.At(tm, func(now Time) { got = append(got, now) })
	}
	if end := l.RunUntil(12); end != 12 {
		t.Fatalf("RunUntil(12) = %d, want 12", end)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Fatalf("events fired by t=12: %v, want [5 10]", got)
	}
	l.RunUntil(100)
	if len(got) != 4 {
		t.Fatalf("events fired by t=100: %v, want all 4", got)
	}
}

func TestRunUntilHonorsNewlyScheduled(t *testing.T) {
	l := New()
	var got []Time
	l.At(1, func(now Time) {
		l.After(1, func(now Time) { got = append(got, now) })
	})
	l.RunUntil(5)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("chained event: got %v, want [2]", got)
	}
}

func TestAdvance(t *testing.T) {
	l := New()
	l.Advance(42)
	if l.Now() != 42 {
		t.Fatalf("Now() = %d after Advance(42)", l.Now())
	}
	l.At(50, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance past a pending event did not panic")
		}
	}()
	l.Advance(20) // would move to 62, past the event at 50
}

func TestSchedulingInPastPanics(t *testing.T) {
	l := New()
	l.Advance(10)
	defer func() {
		if recover() == nil {
			t.Fatal("At() in the past did not panic")
		}
	}()
	l.At(5, func(Time) {})
}

func TestNilCallbackPanics(t *testing.T) {
	l := New()
	defer func() {
		if recover() == nil {
			t.Fatal("At() with nil callback did not panic")
		}
	}()
	l.At(1, nil)
}

func TestFiredCounter(t *testing.T) {
	l := New()
	for i := 0; i < 7; i++ {
		l.At(Time(i), func(Time) {})
	}
	l.Run()
	if l.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", l.Fired())
	}
}

func TestNextAt(t *testing.T) {
	l := New()
	l.At(9, func(Time) {})
	l.At(3, func(Time) {})
	if at, ok := l.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt() = %d,%v want 3,true", at, ok)
	}
}

// Property: for any set of timestamps, events fire in nondecreasing time
// order and exactly once each.
func TestQuickFiringOrder(t *testing.T) {
	f := func(stamps []uint16) bool {
		l := New()
		var fired []Time
		for _, s := range stamps {
			l.At(Time(s), func(now Time) { fired = append(fired, now) })
		}
		l.Run()
		if len(fired) != len(stamps) {
			return false
		}
		sorted := make([]Time, len(stamps))
		for i, s := range stamps {
			sorted[i] = Time(s)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement firing.
func TestQuickCancelSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		l := New()
		n := rng.Intn(50)
		firedCount := 0
		handles := make([]Handle, n)
		for i := 0; i < n; i++ {
			handles[i] = l.At(Time(rng.Intn(20)), func(Time) { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				if l.Cancel(handles[i]) {
					cancelled++
				}
			}
		}
		l.Run()
		if firedCount != n-cancelled {
			t.Fatalf("iter %d: fired %d, want %d", iter, firedCount, n-cancelled)
		}
	}
}
