package cluster

import "sync"

// breakerState is one worker's circuit position.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerSet holds a per-worker circuit breaker: closed (traffic flows,
// consecutive failures counted) → open (candidate skipped for Cooldown
// prober rounds) → half-open (exactly one trial request allowed; its
// outcome snaps the circuit closed or back open). Time is counted in
// prober rounds, not wall clock — Tick() advances on every ProbeOnce —
// so tests and the chaos campaign drive the cooldown deterministically.
type breakerSet struct {
	mu        sync.Mutex
	threshold int // consecutive failures that open the circuit
	cooldown  int // prober rounds an open circuit waits before half-open
	workers   map[string]*breakerEntry
}

type breakerEntry struct {
	state breakerState
	fails int  // consecutive failures while closed
	wait  int  // rounds remaining while open
	trial bool // half-open: trial request currently outstanding
}

func newBreakerSet(threshold, cooldown int) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		workers:   map[string]*breakerEntry{},
	}
}

func (b *breakerSet) entry(id string) *breakerEntry {
	e := b.workers[id]
	if e == nil {
		e = &breakerEntry{}
		b.workers[id] = e
	}
	return e
}

// Allow reports whether a request may be sent to the worker. An open
// circuit refuses; a half-open circuit admits exactly one trial at a
// time (a concurrent second request is refused until the trial lands).
func (b *breakerSet) Allow(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(id)
	switch e.state {
	case breakerOpen:
		return false
	case breakerHalfOpen:
		if e.trial {
			return false
		}
		e.trial = true
		return true
	default:
		return true
	}
}

// OnSuccess records a completed request: any state snaps closed.
func (b *breakerSet) OnSuccess(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(id)
	e.state = breakerClosed
	e.fails, e.wait = 0, 0
	e.trial = false
}

// OnFailure records a failed request. Closed circuits open after
// threshold consecutive failures; a failed half-open trial re-opens
// immediately. It reports whether this failure opened the circuit.
func (b *breakerSet) OnFailure(id string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(id)
	switch e.state {
	case breakerHalfOpen:
		e.state = breakerOpen
		e.wait = b.cooldown
		e.trial = false
		return true
	case breakerClosed:
		e.fails++
		if e.fails >= b.threshold {
			e.state = breakerOpen
			e.wait = b.cooldown
			e.fails = 0
			return true
		}
		return false
	default:
		// Already open: the failure is the skipped candidate's, not a
		// new transition.
		return false
	}
}

// Tick advances every open circuit by one prober round; circuits whose
// cooldown expires move to half-open.
func (b *breakerSet) Tick() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.workers {
		if e.state == breakerOpen {
			e.wait--
			if e.wait <= 0 {
				e.state = breakerHalfOpen
				e.trial = false
			}
		}
	}
}

// State returns the worker's circuit position (observability and tests).
func (b *breakerSet) State(id string) breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.workers[id]; e != nil {
		return e.state
	}
	return breakerClosed
}
