package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTerminalScanner: end and error frames terminate, in both stream
// formats, across chunk boundaries, but not when the marker text
// merely appears inside a data payload.
func TestTerminalScanner(t *testing.T) {
	cases := []struct {
		name   string
		ct     string
		chunks []string
		want   bool
	}{
		{"sse end frame", "text/event-stream", []string{"event: result\ndata: {}\n\nevent: end\ndata: {\"http_code\":200}\n\n"}, true},
		{"sse error frame", "text/event-stream", []string{"event: error\ndata: {\"error\":\"x\"}\n\n"}, true},
		{"sse no terminal", "text/event-stream", []string{"event: result\ndata: {}\n\nevent: resu"}, false},
		{"sse split across chunks", "text/event-stream", []string{"event: result\ndata: {}\n\neve", "nt: end\ndata: {}\n\n"}, true},
		{"sse marker quoted in data", "text/event-stream", []string{"event: result\ndata: {\"note\":\"event: end\"}\n\n"}, false},
		{"ndjson end line", "application/x-ndjson", []string{"{\"event\":\"result\"}\n{\"event\":\"end\",\"http_code\":200}\n"}, true},
		{"ndjson truncated", "application/x-ndjson", []string{"{\"event\":\"result\"}\n{\"event\":\"res"}, false},
		{"ndjson end at stream start", "application/x-ndjson", []string{"{\"event\":\"end\",\"http_code\":200}\n"}, true},
	}
	for _, tc := range cases {
		sc := NewTerminalScanner(tc.ct)
		for _, chunk := range tc.chunks {
			sc.Observe([]byte(chunk))
		}
		if sc.Terminated() != tc.want {
			t.Errorf("%s: Terminated() = %v, want %v", tc.name, sc.Terminated(), tc.want)
		}
	}
}

// TestRelayDetectsTruncatedStream: an SSE stream that ends with a clean
// EOF but no terminal frame is a transport failure — the router appends
// an explicit error frame and bumps mimdrouter_truncated_streams.
// Before the scanner existed this exact stream parsed as a
// short-but-clean result.
func TestRelayDetectsTruncatedStream(t *testing.T) {
	truncating := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: result\ndata: {\"slot\":0}\n\n")
		// Return without an end frame: the client sees a clean EOF.
	}))
	defer truncating.Close()

	r := newTestRouter(t, Options{Workers: []Worker{{ID: "w1", URL: truncating.URL}}})
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/req-x/events", nil))

	body := rec.Body.String()
	if !strings.Contains(body, "event: error") || !strings.Contains(body, "truncated") {
		t.Fatalf("truncated stream relayed without a terminal error frame:\n%s", body)
	}
	if got := r.Metrics().TruncatedStreams(); got != 1 {
		t.Fatalf("TruncatedStreams = %d, want 1", got)
	}

	// A complete stream must NOT be flagged.
	rec2 := httptest.NewRecorder()
	complete := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: result\ndata: {}\n\nevent: end\ndata: {\"http_code\":200}\n\n")
	}))
	defer complete.Close()
	r2 := newTestRouter(t, Options{Workers: []Worker{{ID: "w1", URL: complete.URL}}})
	r2.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/jobs/req-x/events", nil))
	if strings.Contains(rec2.Body.String(), "event: error") {
		t.Fatalf("complete stream flagged as truncated:\n%s", rec2.Body.String())
	}
	if got := r2.Metrics().TruncatedStreams(); got != 0 {
		t.Fatalf("complete stream bumped TruncatedStreams to %d", got)
	}
}

// TestGatewayStatusFailsOver: a candidate answering 503 is a failed
// attempt — the next candidate serves the request and the client never
// sees the 5xx. A 500, by contrast, is the engine's own verdict and
// relays untouched.
func TestGatewayStatusFailsOver(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer shedding.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x","cache":"hit"}`)
	}))
	defer healthy.Close()

	body := `{"kind":"experiment","experiment":"fig7-1"}`
	id, _ := contentID([]byte(body))
	shard := ShardOf(id, DefaultNumShards)
	rank := Rank([]string{"w1", "w2"}, shard)
	urls := map[string]string{rank[0]: shedding.URL, rank[1]: healthy.URL}
	r := newTestRouter(t, Options{Workers: []Worker{
		{ID: "w1", URL: urls["w1"]},
		{ID: "w2", URL: urls["w2"]},
	}})

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via gateway failover; body %s", rec.Code, rec.Body)
	}
	if r.Metrics().Failovers() == 0 {
		t.Fatal("gateway failover not counted")
	}

	// Engine 500s relay untouched: same topology, owner answers 500.
	engineFail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, `{"error":"engine exploded"}`, http.StatusInternalServerError)
	}))
	defer engineFail.Close()
	urls2 := map[string]string{rank[0]: engineFail.URL, rank[1]: healthy.URL}
	r2 := newTestRouter(t, Options{Workers: []Worker{
		{ID: "w1", URL: urls2["w1"]},
		{ID: "w2", URL: urls2["w2"]},
	}})
	rec2 := httptest.NewRecorder()
	r2.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec2.Code != http.StatusInternalServerError {
		t.Fatalf("engine 500 became %d; deterministic failures must not fail over", rec2.Code)
	}
}

// TestBreakerSkipsFailingWorker: after BreakerThreshold consecutive
// failures the dead owner's circuit opens and later submissions go
// straight to the survivor without re-dialing the corpse.
func TestBreakerSkipsFailingWorker(t *testing.T) {
	var shedHits atomic.Int64
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		shedHits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusServiceUnavailable)
	}))
	defer shedding.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x"}`)
	}))
	defer healthy.Close()

	body := `{"kind":"experiment","experiment":"fig7-1"}`
	id, _ := contentID([]byte(body))
	shard := ShardOf(id, DefaultNumShards)
	rank := Rank([]string{"w1", "w2"}, shard)
	urls := map[string]string{rank[0]: shedding.URL, rank[1]: healthy.URL}
	r := newTestRouter(t, Options{
		Workers: []Worker{
			{ID: "w1", URL: urls["w1"]},
			{ID: "w2", URL: urls["w2"]},
		},
		BreakerThreshold: 3,
	})

	for i := 0; i < 5; i++ {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("submission %d: status %d", i, rec.Code)
		}
	}
	if got := shedHits.Load(); got != 3 {
		t.Fatalf("shedding owner was dialed %d times, want exactly 3 (breaker opens after the third)", got)
	}
	if r.Metrics().BreakerOpens() == 0 {
		t.Fatal("breaker open transition not counted")
	}
}

// TestAttemptTimeoutFailsOverFromSilentWorker: a worker that accepts
// the connection and then says nothing (the paused-process profile) is
// abandoned after AttemptTimeout and the next candidate answers.
func TestAttemptTimeoutFailsOverFromSilentWorker(t *testing.T) {
	// The silent worker never writes headers. It also selects on a test
	// release channel: with an unread POST body the net/http server
	// cannot detect the router's cancel, so the handler must be let go
	// explicitly before the deferred Close.
	released := make(chan struct{})
	silent := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		select {
		case <-req.Context().Done():
		case <-released:
		}
	}))
	defer silent.Close()
	defer close(released)
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x"}`)
	}))
	defer healthy.Close()

	body := `{"kind":"experiment","experiment":"fig7-1"}`
	id, _ := contentID([]byte(body))
	shard := ShardOf(id, DefaultNumShards)
	rank := Rank([]string{"w1", "w2"}, shard)
	urls := map[string]string{rank[0]: silent.URL, rank[1]: healthy.URL}
	r := newTestRouter(t, Options{
		Workers: []Worker{
			{ID: "w1", URL: urls["w1"]},
			{ID: "w2", URL: urls["w2"]},
		},
		AttemptTimeout: 150 * time.Millisecond,
	})

	start := time.Now()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via attempt-timeout failover", rec.Code)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("failover took %v; the silent worker was not abandoned", wall)
	}
	if r.members.Alive(rank[0]) {
		t.Fatal("silent worker not passively marked down")
	}
}

// TestFailoverRacesMembershipBump: submissions hammer the router while
// a worker oscillates up->down->up (each transition bumps the
// membership version). The contract under the race: every response is
// 200 or 503-with-Retry-After, never anything else, and the run is
// data-race-free under -race.
func TestFailoverRacesMembershipBump(t *testing.T) {
	worker := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"id":"x"}`)
		}))
	}
	w1, w2 := worker(), worker()
	defer w1.Close()
	defer w2.Close()

	r := newTestRouter(t, Options{Workers: []Worker{
		{ID: "w1", URL: w1.URL},
		{ID: "w2", URL: w2.URL},
	}})

	stop := make(chan struct{})
	var flips sync.WaitGroup
	flips.Add(1)
	go func() {
		defer flips.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				r.Members().MarkDown("w1")
			} else {
				r.Members().MarkUp("w1")
			}
		}
	}()

	var reqs sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 4; g++ {
		reqs.Add(1)
		go func(g int) {
			defer reqs.Done()
			for i := 0; i < 50; i++ {
				body := fmt.Sprintf(`{"kind":"experiment","experiment":"fig7-1","g":%d,"i":%d}`, g, i)
				rec := httptest.NewRecorder()
				r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
				switch rec.Code {
				case http.StatusOK:
				case http.StatusServiceUnavailable:
					if rec.Header().Get("Retry-After") == "" {
						errs <- "503 without Retry-After"
					}
				default:
					errs <- fmt.Sprintf("unexpected status %d", rec.Code)
				}
			}
		}(g)
	}
	reqs.Wait()
	close(stop)
	flips.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestDrainWaitsForInflightStreams: Drain sheds new submissions with
// 503+Retry-After but holds the door for a live proxied stream until
// its terminal frame is relayed — the mimdrouter SIGINT path.
func TestDrainWaitsForInflightStreams(t *testing.T) {
	release := make(chan struct{})
	streaming := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.HasSuffix(req.URL.Path, "/events") {
			w.Header().Set("Content-Type", "text/event-stream")
			fmt.Fprint(w, "event: result\ndata: {\"slot\":0}\n\n")
			w.(http.Flusher).Flush()
			<-release
			fmt.Fprint(w, "event: end\ndata: {\"http_code\":200}\n\n")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x"}`)
	}))
	defer streaming.Close()

	r := newTestRouter(t, Options{Workers: []Worker{{ID: "w1", URL: streaming.URL}}})
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/v1/jobs/req-x/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "event: result") {
		t.Fatalf("first stream line = %q, %v", line, err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- r.Drain(ctx)
	}()

	// Drain must not complete while the stream is open.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a live in-flight stream", err)
	case <-time.After(100 * time.Millisecond):
	}

	// New submissions shed during the drain.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"kind":"experiment","experiment":"fig7-1"}`)))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("submission during drain: status %d, Retry-After %q; want 503 with hint",
			rec.Code, rec.Header().Get("Retry-After"))
	}

	close(release)
	rest := make([]byte, 4096)
	var streamed strings.Builder
	for {
		n, rerr := br.Read(rest[:])
		streamed.Write(rest[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(streamed.String(), "event: end") {
		t.Fatalf("drained stream missing terminal frame:\n%s", streamed.String())
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain = %v after the stream completed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned after the in-flight stream finished")
	}
}

// TestJournalSubmitAndResume: a journaled submission leaves no pending
// entries after success; a crash-orphaned begin record is re-proxied by
// ResumePending and compacted away.
func TestJournalSubmitAndResume(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		b := make([]byte, 1024)
		n, _ := req.Body.Read(b)
		mu.Lock()
		seen = append(seen, string(b[:n]))
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x","cache":"miss"}`)
	}))
	defer worker.Close()

	path := filepath.Join(t.TempDir(), "flights.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	r := newTestRouter(t, Options{
		Workers: []Worker{{ID: "w1", URL: worker.URL}},
		Journal: j,
	})

	// A served submission journals begin+done: nothing pending after.
	body := `{"kind":"experiment","experiment":"fig7-1"}`
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("journaled submission status %d", rec.Code)
	}
	pending, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("pending after a completed submission = %+v", pending)
	}

	// Orphan a begin record (the crash) and resume it.
	orphan := `{"kind":"experiment","experiment":"orphaned"}`
	oid, _ := contentID([]byte(orphan))
	if err := j.Begin(oid, ShardOf(oid, DefaultNumShards), []byte(orphan)); err != nil {
		t.Fatal(err)
	}
	resumed, err := r.ResumePending(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("ResumePending resumed %d flights, want 1", resumed)
	}
	mu.Lock()
	replayed := false
	for _, s := range seen {
		if strings.Contains(s, "orphaned") {
			replayed = true
		}
	}
	mu.Unlock()
	if !replayed {
		t.Fatal("orphaned flight never reached the worker")
	}
	pending, err = LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("pending after resume = %+v, want compacted empty", pending)
	}
	if r.Metrics().ResumedFlights() != 1 {
		t.Fatalf("ResumedFlights = %d, want 1", r.Metrics().ResumedFlights())
	}
}

// TestHedgedReadFiresOnSlowPrimary: once the primary's latency window
// is warm, a status read that outlives the primary's p99 fires a hedge
// to the next candidate, and the faster answer wins.
func TestHedgedReadFiresOnSlowPrimary(t *testing.T) {
	jobPath := "/v1/jobs/req-hedge"
	stall := make(chan struct{})
	var slowMu sync.Mutex
	slow := false
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		slowMu.Lock()
		s := slow
		slowMu.Unlock()
		if s {
			select {
			case <-stall:
			case <-req.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"req-hedge","status":"done"}`)
	}))
	defer primary.Close()
	secondary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"req-hedge","status":"done"}`)
	}))
	defer secondary.Close()

	id := "req-hedge"
	shard := ShardOf(id, DefaultNumShards)
	rank := Rank([]string{"w1", "w2"}, shard)
	urls := map[string]string{rank[0]: primary.URL, rank[1]: secondary.URL}
	r := newTestRouter(t, Options{
		Workers: []Worker{
			{ID: "w1", URL: urls["w1"]},
			{ID: "w2", URL: urls["w2"]},
		},
		Hedge:           true,
		HedgeMinSamples: 8,
	})

	// Warm the primary's latency window with fast reads.
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, jobPath, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("warmup read %d: status %d", i, rec.Code)
		}
	}

	// Now stall the primary; the hedge must rescue the read.
	slowMu.Lock()
	slow = true
	slowMu.Unlock()
	defer close(stall)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, jobPath, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged read status %d, want 200 from the secondary", rec.Code)
	}
	if r.Metrics().HedgesFired() == 0 {
		t.Fatal("no hedge fired against the stalled primary")
	}
	if r.Metrics().HedgesWon() == 0 {
		t.Fatal("secondary's answer not counted as a hedge win")
	}
}
