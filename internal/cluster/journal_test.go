package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

// TestJournalRoundTrip: begins without dones are pending after reload,
// in journal order; completed flights are not.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flights.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	if err := j.Begin("req-a", 3, []byte(`{"kind":"experiment","experiment":"a"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin("req-b", 7, []byte(`{"kind":"experiment","experiment":"b"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("req-a"); err != nil {
		t.Fatal(err)
	}

	pending, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %d flights, want 1 (req-b)", len(pending))
	}
	fl := pending[0]
	if fl.ID != "req-b" || fl.Shard != 7 {
		t.Fatalf("pending flight = %+v, want req-b on shard 7", fl)
	}
	if string(fl.Body) != `{"kind":"experiment","experiment":"b"}` {
		t.Fatalf("pending body = %s", fl.Body)
	}
}

// TestJournalMissingFileIsEmpty: a first boot has no journal yet.
func TestJournalMissingFileIsEmpty(t *testing.T) {
	pending, err := LoadJournal(filepath.Join(t.TempDir(), "never-created.jsonl"))
	if err != nil || pending != nil {
		t.Fatalf("LoadJournal(missing) = %v, %v; want nil, nil", pending, err)
	}
}

// TestJournalTornLineTolerated: a crash mid-append leaves a torn final
// line; everything before it still loads.
func TestJournalTornLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flights.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Begin("req-a", 1, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate the torn append: half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"begin","id":"req-torn","sha`)
	f.Close()

	pending, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "req-a" {
		t.Fatalf("pending = %+v, want just req-a (torn line dropped)", pending)
	}
}

// TestJournalCompact: compacting to the empty set shrinks the file, and
// the journal keeps accepting appends afterwards.
func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flights.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 10; i++ {
		if err := j.Begin("req-x", i, []byte(`{"x":1}`)); err != nil {
			t.Fatal(err)
		}
		if err := j.Done("req-x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(nil); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("compacted journal is %d bytes, want 0", info.Size())
	}
	if err := j.Begin("req-y", 2, []byte(`{"y":2}`)); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	pending, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "req-y" {
		t.Fatalf("pending after compact+append = %+v, want req-y", pending)
	}
}
