package cluster

import (
	"fmt"
	"testing"
	"time"
)

func TestShardOfIsStableAndBounded(t *testing.T) {
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("req-%024x", i)
		s := ShardOf(id, DefaultNumShards)
		if s < 0 || s >= DefaultNumShards {
			t.Fatalf("ShardOf(%s) = %d out of [0,%d)", id, s, DefaultNumShards)
		}
		if again := ShardOf(id, DefaultNumShards); again != s {
			t.Fatalf("ShardOf(%s) unstable: %d then %d", id, s, again)
		}
	}
}

func TestShardOfSpreadsAcrossShards(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[ShardOf(fmt.Sprintf("req-%d", i), DefaultNumShards)] = true
	}
	if len(seen) < DefaultNumShards/2 {
		t.Fatalf("2000 ids landed on only %d of %d shards", len(seen), DefaultNumShards)
	}
}

func TestRankIsDeterministicAndComplete(t *testing.T) {
	ids := []string{"w1", "w2", "w3"}
	for shard := 0; shard < DefaultNumShards; shard++ {
		r1 := Rank(ids, shard)
		r2 := Rank(ids, shard)
		if len(r1) != len(ids) {
			t.Fatalf("shard %d: rank has %d entries, want %d", shard, len(r1), len(ids))
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("shard %d: rank not deterministic: %v vs %v", shard, r1, r2)
			}
		}
		seen := map[string]bool{}
		for _, id := range r1 {
			seen[id] = true
		}
		if len(seen) != len(ids) {
			t.Fatalf("shard %d: rank %v is not a permutation of %v", shard, r1, ids)
		}
	}
}

// TestRankMinimalDisruption is the rendezvous property that makes the
// membership table safe to change mid-flight: removing one worker only
// moves the shards that worker owned — every other shard keeps its
// owner.
func TestRankMinimalDisruption(t *testing.T) {
	all := []string{"w1", "w2", "w3", "w4"}
	without := []string{"w1", "w2", "w4"}
	moved := 0
	for shard := 0; shard < 256; shard++ {
		before := Owner(all, shard)
		after := Owner(without, shard)
		if before != "w3" && before != after {
			t.Fatalf("shard %d: owner moved %s -> %s though w3 was not the owner", shard, before, after)
		}
		if before == "w3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("w3 owned no shards out of 256; rendezvous spread is broken")
	}
}

func TestOwnerAndSuccessorDiffer(t *testing.T) {
	ids := []string{"w1", "w2", "w3"}
	for shard := 0; shard < DefaultNumShards; shard++ {
		if Owner(ids, shard) == Successor(ids, shard) {
			t.Fatalf("shard %d: owner == successor", shard)
		}
	}
	if Successor([]string{"only"}, 0) != "" {
		t.Fatal("single-worker fleet should have no successor")
	}
}

func TestMembershipTransitions(t *testing.T) {
	m, err := NewMembership([]Worker{{ID: "w1", URL: "http://a"}, {ID: "w2", URL: "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AliveCount(); got != 2 {
		t.Fatalf("fresh membership: %d alive, want 2", got)
	}
	v0 := m.Version()

	m.MarkDown("w1")
	if m.Alive("w1") {
		t.Fatal("w1 still alive after MarkDown")
	}
	if m.Version() == v0 {
		t.Fatal("version did not bump on MarkDown")
	}
	if ids := m.AliveIDs(); len(ids) != 1 || ids[0] != "w2" {
		t.Fatalf("alive ids = %v, want [w2]", ids)
	}

	v1 := m.Version()
	m.MarkDown("w1") // idempotent: no bump for a no-op transition
	if m.Version() != v1 {
		t.Fatal("version bumped on a no-op MarkDown")
	}

	m.MarkUp("w1")
	if !m.Alive("w1") || m.Version() == v1 {
		t.Fatal("MarkUp did not revive w1 with a version bump")
	}

	if m.Fail("w2") != 1 || m.Fail("w2") != 2 {
		t.Fatal("Fail streak did not count 1, 2")
	}
	m.MarkUp("w2")
	if m.Fail("w2") != 1 {
		t.Fatal("MarkUp did not reset the fail streak")
	}

	if _, err := NewMembership(nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := NewMembership([]Worker{{ID: "x", URL: "u"}, {ID: "x", URL: "v"}}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}

func TestTrackerDigestPercentiles(t *testing.T) {
	tr := NewTracker(4)
	for i := 1; i <= 100; i++ {
		tr.Record(2, time.Duration(i)*time.Millisecond)
	}
	digests := tr.Snapshot()
	d := digests[2]
	if d.Count != 100 {
		t.Fatalf("count = %d, want 100", d.Count)
	}
	if d.P50MS < 45 || d.P50MS > 55 {
		t.Fatalf("p50 = %.1fms, want ~50ms", d.P50MS)
	}
	if d.P99MS < 95 || d.P99MS > 100 {
		t.Fatalf("p99 = %.1fms, want ~99ms", d.P99MS)
	}
	if d.MaxMS != 100 {
		t.Fatalf("max = %.1fms, want 100ms", d.MaxMS)
	}
	for i, other := range digests {
		if i != 2 && other.Count != 0 {
			t.Fatalf("shard %d counted %d samples without traffic", i, other.Count)
		}
	}

	// The next snapshot sees an idle interval: zero samples, but the
	// percentile shape persists so the rebalancer can distinguish
	// "cooled" from "no traffic".
	idle := tr.Snapshot()[2]
	if idle.Count != 0 {
		t.Fatalf("idle count = %d, want 0", idle.Count)
	}
	if idle.P99MS != d.P99MS {
		t.Fatalf("idle p99 = %.1f, want previous %.1f", idle.P99MS, d.P99MS)
	}
}

func TestTrackerWindowWraps(t *testing.T) {
	tr := NewTracker(1)
	for i := 0; i < windowCap*3; i++ {
		tr.Record(0, time.Millisecond)
	}
	d := tr.Snapshot()[0]
	if d.Count != int64(windowCap*3) {
		t.Fatalf("count = %d, want %d", d.Count, windowCap*3)
	}
	if d.P99MS != 1 {
		t.Fatalf("p99 = %.2fms, want 1ms", d.P99MS)
	}
}

// TestTrackerConcurrent exercises the lock-free record/snapshot paths
// under -race: many goroutines hammer Record while another rotates
// windows with Snapshot and reads Last.
func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				tr.Record(i%8, time.Duration(g+1)*time.Millisecond)
			}
		}(g)
	}
	total := int64(0)
	for i := 0; i < 200; i++ {
		tr.Record(i%8, time.Millisecond) // guarantee traffic even if the goroutines lag
		for _, d := range tr.Snapshot() {
			total += d.Count
		}
		tr.Last(i % 8)
	}
	close(done)
	if total == 0 {
		t.Fatal("no samples observed across 200 snapshots")
	}
}
