package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalRecord is one line of the flight journal: a begin when the
// router accepts a submission, a done when the worker's response has
// been fully relayed (or the submission was shed with a client-visible
// error — either way the router owes nothing further).
type journalRecord struct {
	Op    string          `json:"op"` // "begin" | "done"
	ID    string          `json:"id"`
	Shard int             `json:"shard,omitempty"`
	Body  json.RawMessage `json:"body,omitempty"`
}

// PendingFlight is a journaled submission with a begin but no done: the
// router (or the worker it was proxying to) died mid-flight. The body
// is the original spec, so the flight can simply be re-submitted — the
// content-hash id makes replay idempotent, and the result lands in the
// DirStore exactly as if the first attempt had finished.
type PendingFlight struct {
	ID    string
	Shard int
	Body  []byte
}

// Journal is the router's durable flight log: an append-only JSONL file
// recording begin/done per submission. On restart, LoadJournal returns
// the flights that never completed and the router resubmits them — a
// router crash or worker death degrades to "the work finishes slightly
// later" instead of "the work is lost".
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
}

// OpenJournal opens (creating if needed) the journal file for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Begin records an accepted submission. The record is flushed to the
// file before the proxy attempt starts, so a crash at any later point
// leaves a resumable entry.
func (j *Journal) Begin(id string, shard int, body []byte) error {
	return j.append(journalRecord{Op: "begin", ID: id, Shard: shard, Body: json.RawMessage(body)})
}

// Done records a completed (or definitively answered) submission.
func (j *Journal) Done(id string) error {
	return j.append(journalRecord{Op: "done", ID: id})
}

func (j *Journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("cluster: journal closed")
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	j.w.Flush()
	err := j.f.Close()
	j.f = nil
	return err
}

// LoadJournal replays the journal file and returns the pending flights
// (begin without done) in journal order. A missing file is an empty
// journal; a torn final line (the crash happened mid-append) is
// ignored, matching the write protocol where a record only counts once
// its newline is durable. Duplicate begins for one id (a resumed flight
// re-journaled) collapse to the latest.
func LoadJournal(path string) ([]PendingFlight, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: load journal: %w", err)
	}
	defer f.Close()

	pending := map[string]PendingFlight{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes+4096)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			// A torn or corrupt line: everything before it already
			// parsed, and nothing after a tear can be trusted more than
			// the tear itself — stop here with what we have.
			break
		}
		switch rec.Op {
		case "begin":
			if _, dup := pending[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			pending[rec.ID] = PendingFlight{ID: rec.ID, Shard: rec.Shard, Body: []byte(rec.Body)}
		case "done":
			delete(pending, rec.ID)
		}
	}
	if err := sc.Err(); err != nil && len(pending) == 0 {
		return nil, fmt.Errorf("cluster: scan journal: %w", err)
	}
	out := make([]PendingFlight, 0, len(pending))
	for _, id := range order {
		if fl, ok := pending[id]; ok {
			out = append(out, fl)
		}
	}
	return out, nil
}

// Compact rewrites the journal to contain only the given pending
// flights (normally called after a successful resume with an empty
// slice, shrinking the file back to nothing).
func (j *Journal) Compact(pending []PendingFlight) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("cluster: journal closed")
	}
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, fl := range pending {
		line, err := json.Marshal(journalRecord{Op: "begin", ID: fl.ID, Shard: fl.Shard, Body: json.RawMessage(fl.Body)})
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Re-open the live handle onto the compacted file.
	j.w.Flush()
	j.f.Close()
	nf, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		return err
	}
	j.f = nf
	j.w = bufio.NewWriter(nf)
	return nil
}
