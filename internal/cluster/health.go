package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"time"

	"repro/internal/retry"
)

// probeLoop runs the active health checker until ctx is cancelled:
// every ProbeInterval each declared worker is probed (with bounded
// retry + backoff inside the round, via the shared retry policy), and
// FailThreshold consecutive failed rounds mark it dead. A dead worker
// keeps being probed, so recovery is detected and the membership
// version bumps back. Routing additionally marks workers down passively
// on proxy errors — the prober is what brings them back.
func (r *Router) probeLoop(ctx context.Context) {
	//lint:ignore determinism health probing is wall-clock observability; no simulation result depends on it
	ticker := time.NewTicker(r.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce runs one probe round over the whole fleet (exported so tests
// and the smoke gate can drive failure detection deterministically). A
// probe round is also the circuit breakers' clock tick: open circuits
// cool down in rounds, not wall time, so breaker recovery is as
// deterministic as the probing that drives it.
func (r *Router) ProbeOnce(ctx context.Context) {
	for _, wk := range r.members.Workers() {
		if r.probeWorker(ctx, wk.URL) {
			r.members.MarkUp(wk.ID)
			continue
		}
		if r.members.Fail(wk.ID) >= r.opts.FailThreshold {
			r.members.MarkDown(wk.ID)
		}
	}
	r.breakers.Tick()
}

// probePolicy builds one worker's probe retry policy: bounded attempts
// with capped backoff, the jitter stream keyed by the worker's URL so
// a fleet of probers doesn't thunder in lockstep yet every round's
// schedule is reproducible.
func (r *Router) probePolicy(url string) retry.Policy {
	h := fnv.New64a()
	h.Write([]byte(url))
	return retry.Policy{
		Base:        r.opts.ProbeBackoff,
		Cap:         8 * r.opts.ProbeBackoff,
		MaxAttempts: r.opts.ProbeRetries + 1,
		Seed:        h.Sum64(),
	}
}

// probeWorker runs one probe round against the worker's /healthz under
// the shared retry policy. Only a 200 counts as healthy: a draining
// worker (503) must stop receiving submissions just like a dead one.
func (r *Router) probeWorker(ctx context.Context, url string) bool {
	err := retry.Do(ctx, r.probePolicy(url), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
		if err != nil {
			return retry.Permanent(err)
		}
		resp, err := r.probe.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		return nil
	})
	return err == nil
}
