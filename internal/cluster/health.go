package cluster

import (
	"context"
	"net/http"
	"time"
)

// probeLoop runs the active health checker until ctx is cancelled:
// every ProbeInterval each declared worker is probed (with bounded
// retry + exponential backoff inside the round), and FailThreshold
// consecutive failed rounds mark it dead. A dead worker keeps being
// probed, so recovery is detected and the membership version bumps back.
// Routing additionally marks workers down passively on proxy errors —
// the prober is what brings them back.
func (r *Router) probeLoop(ctx context.Context) {
	//lint:ignore determinism health probing is wall-clock observability; no simulation result depends on it
	ticker := time.NewTicker(r.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce runs one probe round over the whole fleet (exported so tests
// and the smoke gate can drive failure detection deterministically).
func (r *Router) ProbeOnce(ctx context.Context) {
	for _, wk := range r.members.Workers() {
		if r.probeWorker(ctx, wk.URL) {
			r.members.MarkUp(wk.ID)
			continue
		}
		if r.members.Fail(wk.ID) >= r.opts.FailThreshold {
			r.members.MarkDown(wk.ID)
		}
	}
}

// probeWorker makes up to 1+ProbeRetries attempts against the worker's
// /healthz, doubling the backoff between attempts. Only a 200 counts as
// healthy: a draining worker (503) must stop receiving submissions just
// like a dead one.
func (r *Router) probeWorker(ctx context.Context, url string) bool {
	backoff := r.opts.ProbeBackoff
	for attempt := 0; attempt <= r.opts.ProbeRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return false
			//lint:ignore determinism retry backoff is wall-clock plumbing, not simulation state
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
		if err != nil {
			return false
		}
		resp, err := r.probe.Do(req)
		if err != nil {
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return true
		}
	}
	return false
}
