package cluster

import (
	"fmt"
	"sync/atomic"
)

// Worker identifies one mimdserved worker in the fleet. The ID feeds the
// rendezvous hash (it must be stable across restarts for the shard map
// to be stable); the URL is where the router proxies to.
type Worker struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// memberState is one worker's dynamic liveness state. The worker set
// itself is fixed at construction (the fleet is declared up front);
// what changes at runtime is which members are alive.
type memberState struct {
	worker Worker
	alive  atomic.Bool
	fails  atomic.Int32
}

// Membership is the versioned membership table: the declared fleet plus
// per-worker liveness. Every liveness transition bumps the version, so
// any consumer holding a routing decision can tell whether the table
// changed under it. Request ids are content hashes and never depend on
// the table — a membership change mid-flight re-routes, it never
// re-identifies.
type Membership struct {
	version atomic.Uint64
	members []*memberState
	byID    map[string]*memberState
}

// NewMembership builds the table with every declared worker alive.
func NewMembership(workers []Worker) (*Membership, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: membership needs at least one worker")
	}
	m := &Membership{byID: make(map[string]*memberState, len(workers))}
	for _, w := range workers {
		if w.ID == "" || w.URL == "" {
			return nil, fmt.Errorf("cluster: worker needs both id and url, got %+v", w)
		}
		if _, dup := m.byID[w.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate worker id %q", w.ID)
		}
		ms := &memberState{worker: w}
		ms.alive.Store(true)
		m.members = append(m.members, ms)
		m.byID[w.ID] = ms
	}
	m.version.Store(1)
	return m, nil
}

// Version returns the table's current version.
func (m *Membership) Version() uint64 { return m.version.Load() }

// Workers returns the declared fleet in declaration order.
func (m *Membership) Workers() []Worker {
	out := make([]Worker, len(m.members))
	for i, ms := range m.members {
		out[i] = ms.worker
	}
	return out
}

// AliveIDs returns the ids of currently-alive workers in declaration
// order — the rendezvous candidate set.
func (m *Membership) AliveIDs() []string {
	var out []string
	for _, ms := range m.members {
		if ms.alive.Load() {
			out = append(out, ms.worker.ID)
		}
	}
	return out
}

// Alive reports whether the worker is currently alive (false for
// unknown ids).
func (m *Membership) Alive(id string) bool {
	ms := m.byID[id]
	return ms != nil && ms.alive.Load()
}

// URL resolves a worker id to its URL ("" for unknown ids).
func (m *Membership) URL(id string) string {
	ms := m.byID[id]
	if ms == nil {
		return ""
	}
	return ms.worker.URL
}

// MarkDown records a worker as dead. It returns true when this call
// changed the state (and bumped the version).
func (m *Membership) MarkDown(id string) bool {
	ms := m.byID[id]
	if ms == nil || !ms.alive.CompareAndSwap(true, false) {
		return false
	}
	m.version.Add(1)
	return true
}

// MarkUp records a worker as alive again, resetting its failure streak.
// It returns true when this call changed the state.
func (m *Membership) MarkUp(id string) bool {
	ms := m.byID[id]
	if ms == nil {
		return false
	}
	ms.fails.Store(0)
	if !ms.alive.CompareAndSwap(false, true) {
		return false
	}
	m.version.Add(1)
	return true
}

// Fail records one failed health probe and returns the streak length.
func (m *Membership) Fail(id string) int {
	ms := m.byID[id]
	if ms == nil {
		return 0
	}
	return int(ms.fails.Add(1))
}

// AliveCount returns how many workers are currently alive.
func (m *Membership) AliveCount() int {
	n := 0
	for _, ms := range m.members {
		if ms.alive.Load() {
			n++
		}
	}
	return n
}
