package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metrics aggregates the router's counters, rendered in Prometheus text
// exposition format on the router's /metrics. Everything is
// mutex-guarded; the routing hot path is proxy-bound, not counter-bound.
type Metrics struct {
	mu sync.Mutex

	requestsByCode  map[int]int64    // router HTTP responses, by status code
	proxiedByWorker map[string]int64 // submissions proxied, by worker id
	replicaReads    int64            // submissions routed to a shard's replica
	failovers       int64            // proxy attempts moved to the next candidate
	noWorker        int64            // submissions shed because no candidate was alive
	replicasAdded   int64            // rebalancer: replicas activated
	replicasRetired int64            // rebalancer: replicas retired
	fillObjects     int64            // store objects copied by replica fills
	rebalancePolls  int64            // completed rebalancer polls

	truncatedStreams int64 // relayed streams that ended without a terminal frame
	hedgesFired      int64 // hedged secondary attempts launched
	hedgesWon        int64 // hedged attempts whose secondary answered first
	breakerOpens     int64 // circuit transitions into open
	breakerSkips     int64 // candidates skipped because their circuit was open
	attemptTimeouts  int64 // proxy attempts cancelled waiting for headers
	resumedFlights   int64 // journaled flights resumed after restart
}

func newMetrics() *Metrics {
	return &Metrics{
		requestsByCode:  map[int]int64{},
		proxiedByWorker: map[string]int64{},
	}
}

func (m *Metrics) countRequest(code int) {
	m.mu.Lock()
	m.requestsByCode[code]++
	m.mu.Unlock()
}

func (m *Metrics) countProxied(worker string, replicaRead bool) {
	m.mu.Lock()
	m.proxiedByWorker[worker]++
	if replicaRead {
		m.replicaReads++
	}
	m.mu.Unlock()
}

func (m *Metrics) countFailover() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

func (m *Metrics) countNoWorker() {
	m.mu.Lock()
	m.noWorker++
	m.mu.Unlock()
}

func (m *Metrics) countReplicaAdded(filled int64) {
	m.mu.Lock()
	m.replicasAdded++
	m.fillObjects += filled
	m.mu.Unlock()
}

func (m *Metrics) countReplicaRetired() {
	m.mu.Lock()
	m.replicasRetired++
	m.mu.Unlock()
}

func (m *Metrics) countPoll() {
	m.mu.Lock()
	m.rebalancePolls++
	m.mu.Unlock()
}

func (m *Metrics) countTruncatedStream() {
	m.mu.Lock()
	m.truncatedStreams++
	m.mu.Unlock()
}

func (m *Metrics) countHedgeFired() {
	m.mu.Lock()
	m.hedgesFired++
	m.mu.Unlock()
}

func (m *Metrics) countHedgeWon() {
	m.mu.Lock()
	m.hedgesWon++
	m.mu.Unlock()
}

func (m *Metrics) countBreakerOpen() {
	m.mu.Lock()
	m.breakerOpens++
	m.mu.Unlock()
}

func (m *Metrics) countBreakerSkip() {
	m.mu.Lock()
	m.breakerSkips++
	m.mu.Unlock()
}

func (m *Metrics) countAttemptTimeout() {
	m.mu.Lock()
	m.attemptTimeouts++
	m.mu.Unlock()
}

func (m *Metrics) countResumedFlight() {
	m.mu.Lock()
	m.resumedFlights++
	m.mu.Unlock()
}

// ReplicasAdded returns how many replicas the rebalancer has activated
// (tests and the load generator read this through /metrics; this
// accessor serves in-process assertions).
func (m *Metrics) ReplicasAdded() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicasAdded
}

// ReplicasRetired returns how many replicas the rebalancer has retired.
func (m *Metrics) ReplicasRetired() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicasRetired
}

// ReplicaReads returns how many submissions were routed to a replica.
func (m *Metrics) ReplicaReads() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicaReads
}

// TruncatedStreams returns how many relayed streams ended without a
// terminal frame.
func (m *Metrics) TruncatedStreams() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.truncatedStreams
}

// HedgesFired returns how many hedged secondary attempts launched.
func (m *Metrics) HedgesFired() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hedgesFired
}

// HedgesWon returns how many hedges were answered by the secondary.
func (m *Metrics) HedgesWon() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hedgesWon
}

// BreakerOpens returns how many times a worker circuit opened.
func (m *Metrics) BreakerOpens() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.breakerOpens
}

// Failovers returns how many proxy attempts moved to the next
// candidate.
func (m *Metrics) Failovers() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failovers
}

// NoWorker returns how many submissions were shed with no candidate.
func (m *Metrics) NoWorker() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.noWorker
}

// AttemptTimeouts returns how many proxy attempts were cancelled
// waiting for response headers.
func (m *Metrics) AttemptTimeouts() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.attemptTimeouts
}

// BreakerSkips returns how many proxy candidates were skipped on an
// open circuit.
func (m *Metrics) BreakerSkips() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.breakerSkips
}

// ResumedFlights returns how many journaled flights were resumed.
func (m *Metrics) ResumedFlights() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resumedFlights
}

// Render writes the Prometheus text exposition. aliveWorkers,
// membershipVersion and activeReplicas are live gauges sampled by the
// caller.
func (m *Metrics) Render(aliveWorkers int, membershipVersion uint64, activeReplicas int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# HELP mimdrouter_requests_total Router HTTP responses by status code.\n")
	w("# TYPE mimdrouter_requests_total counter\n")
	codes := make([]int, 0, len(m.requestsByCode))
	for code := range m.requestsByCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		w("mimdrouter_requests_total{code=%q} %d\n", strconv.Itoa(code), m.requestsByCode[code])
	}

	w("# HELP mimdrouter_proxied_total Submissions proxied, by worker.\n")
	w("# TYPE mimdrouter_proxied_total counter\n")
	workers := make([]string, 0, len(m.proxiedByWorker))
	for id := range m.proxiedByWorker {
		workers = append(workers, id)
	}
	sort.Strings(workers)
	for _, id := range workers {
		w("mimdrouter_proxied_total{worker=%q} %d\n", id, m.proxiedByWorker[id])
	}

	w("# HELP mimdrouter_alive_workers Workers currently passing health checks.\n")
	w("# TYPE mimdrouter_alive_workers gauge\n")
	w("mimdrouter_alive_workers %d\n", aliveWorkers)
	w("# HELP mimdrouter_membership_version Version of the membership table.\n")
	w("# TYPE mimdrouter_membership_version gauge\n")
	w("mimdrouter_membership_version %d\n", membershipVersion)

	w("# HELP mimdrouter_replica_reads_total Submissions routed to a shard's replica.\n")
	w("# TYPE mimdrouter_replica_reads_total counter\n")
	w("mimdrouter_replica_reads_total %d\n", m.replicaReads)
	w("# HELP mimdrouter_failovers_total Proxy attempts moved to the next rendezvous candidate.\n")
	w("# TYPE mimdrouter_failovers_total counter\n")
	w("mimdrouter_failovers_total %d\n", m.failovers)
	w("# HELP mimdrouter_no_worker_total Submissions shed because no candidate worker was alive.\n")
	w("# TYPE mimdrouter_no_worker_total counter\n")
	w("mimdrouter_no_worker_total %d\n", m.noWorker)

	w("# HELP mimdrouter_shard_replicas Shards currently serving through a replica.\n")
	w("# TYPE mimdrouter_shard_replicas gauge\n")
	w("mimdrouter_shard_replicas %d\n", activeReplicas)
	w("# HELP mimdrouter_replicas_added_total Replicas activated by the p99 rebalancer.\n")
	w("# TYPE mimdrouter_replicas_added_total counter\n")
	w("mimdrouter_replicas_added_total %d\n", m.replicasAdded)
	w("# HELP mimdrouter_replicas_retired_total Replicas retired after sustained recovery.\n")
	w("# TYPE mimdrouter_replicas_retired_total counter\n")
	w("mimdrouter_replicas_retired_total %d\n", m.replicasRetired)
	w("# HELP mimdrouter_fill_objects_total Store objects copied by replica fills.\n")
	w("# TYPE mimdrouter_fill_objects_total counter\n")
	w("mimdrouter_fill_objects_total %d\n", m.fillObjects)
	w("# HELP mimdrouter_rebalance_polls_total Completed rebalancer polls over /shardstats.\n")
	w("# TYPE mimdrouter_rebalance_polls_total counter\n")
	w("mimdrouter_rebalance_polls_total %d\n", m.rebalancePolls)

	w("# HELP mimdrouter_truncated_streams_total Relayed streams that ended without a terminal frame.\n")
	w("# TYPE mimdrouter_truncated_streams_total counter\n")
	w("mimdrouter_truncated_streams_total %d\n", m.truncatedStreams)
	w("# HELP mimdrouter_hedges_fired_total Hedged secondary read attempts launched.\n")
	w("# TYPE mimdrouter_hedges_fired_total counter\n")
	w("mimdrouter_hedges_fired_total %d\n", m.hedgesFired)
	w("# HELP mimdrouter_hedges_won_total Hedged reads answered first by the secondary.\n")
	w("# TYPE mimdrouter_hedges_won_total counter\n")
	w("mimdrouter_hedges_won_total %d\n", m.hedgesWon)
	w("# HELP mimdrouter_breaker_opens_total Worker circuit-breaker transitions into open.\n")
	w("# TYPE mimdrouter_breaker_opens_total counter\n")
	w("mimdrouter_breaker_opens_total %d\n", m.breakerOpens)
	w("# HELP mimdrouter_breaker_skips_total Proxy candidates skipped on an open circuit.\n")
	w("# TYPE mimdrouter_breaker_skips_total counter\n")
	w("mimdrouter_breaker_skips_total %d\n", m.breakerSkips)
	w("# HELP mimdrouter_attempt_timeouts_total Proxy attempts cancelled waiting for response headers.\n")
	w("# TYPE mimdrouter_attempt_timeouts_total counter\n")
	w("mimdrouter_attempt_timeouts_total %d\n", m.attemptTimeouts)
	w("# HELP mimdrouter_resumed_flights_total Journaled flights resumed after a router restart.\n")
	w("# TYPE mimdrouter_resumed_flights_total counter\n")
	w("mimdrouter_resumed_flights_total %d\n", m.resumedFlights)
	return b.String()
}
