package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metrics aggregates the router's counters, rendered in Prometheus text
// exposition format on the router's /metrics. Everything is
// mutex-guarded; the routing hot path is proxy-bound, not counter-bound.
type Metrics struct {
	mu sync.Mutex

	requestsByCode  map[int]int64    // router HTTP responses, by status code
	proxiedByWorker map[string]int64 // submissions proxied, by worker id
	replicaReads    int64            // submissions routed to a shard's replica
	failovers       int64            // proxy attempts moved to the next candidate
	noWorker        int64            // submissions shed because no candidate was alive
	replicasAdded   int64            // rebalancer: replicas activated
	replicasRetired int64            // rebalancer: replicas retired
	fillObjects     int64            // store objects copied by replica fills
	rebalancePolls  int64            // completed rebalancer polls
}

func newMetrics() *Metrics {
	return &Metrics{
		requestsByCode:  map[int]int64{},
		proxiedByWorker: map[string]int64{},
	}
}

func (m *Metrics) countRequest(code int) {
	m.mu.Lock()
	m.requestsByCode[code]++
	m.mu.Unlock()
}

func (m *Metrics) countProxied(worker string, replicaRead bool) {
	m.mu.Lock()
	m.proxiedByWorker[worker]++
	if replicaRead {
		m.replicaReads++
	}
	m.mu.Unlock()
}

func (m *Metrics) countFailover() {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
}

func (m *Metrics) countNoWorker() {
	m.mu.Lock()
	m.noWorker++
	m.mu.Unlock()
}

func (m *Metrics) countReplicaAdded(filled int64) {
	m.mu.Lock()
	m.replicasAdded++
	m.fillObjects += filled
	m.mu.Unlock()
}

func (m *Metrics) countReplicaRetired() {
	m.mu.Lock()
	m.replicasRetired++
	m.mu.Unlock()
}

func (m *Metrics) countPoll() {
	m.mu.Lock()
	m.rebalancePolls++
	m.mu.Unlock()
}

// ReplicasAdded returns how many replicas the rebalancer has activated
// (tests and the load generator read this through /metrics; this
// accessor serves in-process assertions).
func (m *Metrics) ReplicasAdded() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicasAdded
}

// ReplicasRetired returns how many replicas the rebalancer has retired.
func (m *Metrics) ReplicasRetired() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicasRetired
}

// ReplicaReads returns how many submissions were routed to a replica.
func (m *Metrics) ReplicaReads() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicaReads
}

// Render writes the Prometheus text exposition. aliveWorkers,
// membershipVersion and activeReplicas are live gauges sampled by the
// caller.
func (m *Metrics) Render(aliveWorkers int, membershipVersion uint64, activeReplicas int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("# HELP mimdrouter_requests_total Router HTTP responses by status code.\n")
	w("# TYPE mimdrouter_requests_total counter\n")
	codes := make([]int, 0, len(m.requestsByCode))
	for code := range m.requestsByCode {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		w("mimdrouter_requests_total{code=%q} %d\n", strconv.Itoa(code), m.requestsByCode[code])
	}

	w("# HELP mimdrouter_proxied_total Submissions proxied, by worker.\n")
	w("# TYPE mimdrouter_proxied_total counter\n")
	workers := make([]string, 0, len(m.proxiedByWorker))
	for id := range m.proxiedByWorker {
		workers = append(workers, id)
	}
	sort.Strings(workers)
	for _, id := range workers {
		w("mimdrouter_proxied_total{worker=%q} %d\n", id, m.proxiedByWorker[id])
	}

	w("# HELP mimdrouter_alive_workers Workers currently passing health checks.\n")
	w("# TYPE mimdrouter_alive_workers gauge\n")
	w("mimdrouter_alive_workers %d\n", aliveWorkers)
	w("# HELP mimdrouter_membership_version Version of the membership table.\n")
	w("# TYPE mimdrouter_membership_version gauge\n")
	w("mimdrouter_membership_version %d\n", membershipVersion)

	w("# HELP mimdrouter_replica_reads_total Submissions routed to a shard's replica.\n")
	w("# TYPE mimdrouter_replica_reads_total counter\n")
	w("mimdrouter_replica_reads_total %d\n", m.replicaReads)
	w("# HELP mimdrouter_failovers_total Proxy attempts moved to the next rendezvous candidate.\n")
	w("# TYPE mimdrouter_failovers_total counter\n")
	w("mimdrouter_failovers_total %d\n", m.failovers)
	w("# HELP mimdrouter_no_worker_total Submissions shed because no candidate worker was alive.\n")
	w("# TYPE mimdrouter_no_worker_total counter\n")
	w("mimdrouter_no_worker_total %d\n", m.noWorker)

	w("# HELP mimdrouter_shard_replicas Shards currently serving through a replica.\n")
	w("# TYPE mimdrouter_shard_replicas gauge\n")
	w("mimdrouter_shard_replicas %d\n", activeReplicas)
	w("# HELP mimdrouter_replicas_added_total Replicas activated by the p99 rebalancer.\n")
	w("# TYPE mimdrouter_replicas_added_total counter\n")
	w("mimdrouter_replicas_added_total %d\n", m.replicasAdded)
	w("# HELP mimdrouter_replicas_retired_total Replicas retired after sustained recovery.\n")
	w("# TYPE mimdrouter_replicas_retired_total counter\n")
	w("mimdrouter_replicas_retired_total %d\n", m.replicasRetired)
	w("# HELP mimdrouter_fill_objects_total Store objects copied by replica fills.\n")
	w("# TYPE mimdrouter_fill_objects_total counter\n")
	w("mimdrouter_fill_objects_total %d\n", m.fillObjects)
	w("# HELP mimdrouter_rebalance_polls_total Completed rebalancer polls over /shardstats.\n")
	w("# TYPE mimdrouter_rebalance_polls_total counter\n")
	w("mimdrouter_rebalance_polls_total %d\n", m.rebalancePolls)
	return b.String()
}
