package cluster

// Wire types shared by the router and the worker-mode replication API in
// internal/serve (serve imports cluster, never the reverse).

// FillRequest is the POST /v1/replica/fill body: it asks the receiving
// worker to pull every completed result in the shard from the source
// worker's store into its own — the replica fill that makes a hot
// shard's results readable from its rendezvous successor.
type FillRequest struct {
	// Source is the base URL of the worker to pull from (the shard's
	// owner).
	Source string `json:"source"`
	// Shard selects which virtual shard to fill; -1 means every shard
	// (full mirror).
	Shard int `json:"shard"`
	// Shards is the shard-space size the requester routed with; the
	// worker refuses a fill whose shard space disagrees with its own.
	Shards int `json:"shards"`
}

// FillResponse reports what a replica fill copied.
type FillResponse struct {
	// Flights is how many completed request manifests were inspected.
	Flights int `json:"flights"`
	// Objects is how many store objects were actually copied (already-
	// present keys are skipped).
	Objects int `json:"objects"`
}

// ManifestFlight is one completed request in a replication manifest: the
// request id, its shard, and the job keys whose store objects reproduce
// its result.
type ManifestFlight struct {
	ID    string   `json:"id"`
	Shard int      `json:"shard"`
	Keys  []string `json:"keys"`
}

// ManifestDoc is the GET /v1/replica/manifest response body.
type ManifestDoc struct {
	Worker    string           `json:"worker"`
	NumShards int              `json:"num_shards"`
	Flights   []ManifestFlight `json:"flights"`
}
