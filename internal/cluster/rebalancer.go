package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/retry"
)

// rebalanceLoop runs the p99-driven rebalancer until ctx is cancelled.
// Each poll scrapes every alive worker's /shardstats, merges the
// windowed digests per shard, and advances each shard's state machine:
//
//	normal     --[p99 ≥ hot for HotPolls polls]-->   replicated
//	replicated --[p99 ≤ recover (or the shard went
//	              idle) for CoolPolls polls]-->      normal
//
// Activating a replica fills the rendezvous successor's store from the
// owner and then alternates the shard's submissions between the two;
// retiring it simply stops routing there — the replica's store keeps
// its (content-addressed, byte-identical) objects, which is free read
// availability if the shard heats up again.
func (r *Router) rebalanceLoop(ctx context.Context) {
	//lint:ignore determinism rebalance cadence is wall-clock observability; no simulation result depends on it
	ticker := time.NewTicker(r.opts.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.RebalanceOnce(ctx)
		}
	}
}

// RebalanceOnce runs one rebalancer poll (exported so tests and the
// smoke gate can drive the state machine deterministically).
func (r *Router) RebalanceOnce(ctx context.Context) {
	alive := r.members.AliveIDs()
	if len(alive) == 0 {
		return
	}
	stats := r.scrapeStats(ctx, alive)
	for shard := 0; shard < r.opts.NumShards; shard++ {
		merged := mergeDigests(shard, stats)
		r.stepShard(ctx, shard, merged, alive)
	}
	r.metrics.countPoll()
}

// scrapeStats fetches /shardstats from every alive worker; workers that
// fail to answer are simply absent this poll (the health prober owns
// liveness).
func (r *Router) scrapeStats(ctx context.Context, alive []string) map[string]StatsDoc {
	out := make(map[string]StatsDoc, len(alive))
	for _, id := range alive {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.members.URL(id)+"/shardstats", nil)
		if err != nil {
			continue
		}
		resp, err := r.probe.Do(req)
		if err != nil {
			continue
		}
		var doc StatsDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || doc.NumShards != r.opts.NumShards {
			continue
		}
		out[id] = doc
	}
	return out
}

// mergeDigests combines one shard's digests across workers: counts sum
// (a replicated shard's traffic splits across two stores) and the tail
// is the worst observed tail — a shard is only "recovered" when every
// worker serving it is fast.
func mergeDigests(shard int, stats map[string]StatsDoc) Digest {
	merged := Digest{Shard: shard}
	for _, doc := range stats {
		if shard >= len(doc.Shards) {
			continue
		}
		d := doc.Shards[shard]
		if d.Count == 0 {
			continue
		}
		merged.Count += d.Count
		if d.P99MS > merged.P99MS {
			merged.P99MS = d.P99MS
		}
		if d.P95MS > merged.P95MS {
			merged.P95MS = d.P95MS
		}
		if d.P50MS > merged.P50MS {
			merged.P50MS = d.P50MS
		}
		if d.MaxMS > merged.MaxMS {
			merged.MaxMS = d.MaxMS
		}
	}
	return merged
}

// stepShard advances one shard's replica state machine.
func (r *Router) stepShard(ctx context.Context, shard int, merged Digest, alive []string) {
	hot := merged.Count >= r.opts.MinSamples && merged.P99MS >= r.opts.HotP99MS
	cool := merged.Count == 0 || merged.P99MS <= r.opts.RecoverP99MS

	slot := &r.shards[shard]
	slot.mu.Lock()
	slot.lastP99MS = merged.P99MS
	rep := slot.replica
	if rep != "" && !r.members.Alive(rep) {
		// The replica itself died: stop routing there. Not a recovery —
		// the hot streak restarts from scratch so a still-hot shard
		// re-replicates onto the next successor.
		slot.replica = ""
		slot.hotStreak, slot.coolStreak = 0, 0
		rep = ""
	}
	var trip, retire bool
	if rep == "" {
		if hot {
			slot.hotStreak++
		} else {
			slot.hotStreak = 0
		}
		trip = slot.hotStreak >= r.opts.HotPolls
	} else {
		switch {
		case cool:
			slot.coolStreak++
		case hot:
			slot.coolStreak = 0
		}
		retire = slot.coolStreak >= r.opts.CoolPolls
		if retire {
			slot.replica = ""
			slot.hotStreak, slot.coolStreak = 0, 0
		}
	}
	slot.mu.Unlock()

	if retire {
		r.metrics.countReplicaRetired()
		return
	}
	if trip {
		r.addReplica(ctx, shard, alive)
	}
}

// addReplica activates the shard's rendezvous successor as a read
// replica: fill its store from the owner, then start alternating the
// shard's submissions. The fill runs under the shared retry policy
// (seeded by the shard index, so each shard's backoff schedule is
// reproducible); a fill that exhausts its attempts leaves the shard
// unreplicated, and the still-hot shard trips again next poll.
func (r *Router) addReplica(ctx context.Context, shard int, alive []string) {
	owner := Owner(alive, shard)
	succ := Successor(alive, shard)
	if owner == "" || succ == "" {
		return // a 1-worker fleet has nowhere to replicate
	}
	policy := retry.Policy{
		Base:        100 * time.Millisecond,
		Cap:         time.Second,
		MaxAttempts: 3,
		Seed:        uint64(shard),
	}
	var filled int64
	err := retry.Do(ctx, policy, func(ctx context.Context) error {
		n, ferr := r.fillReplica(ctx, r.members.URL(succ), r.members.URL(owner), shard)
		filled = n
		return ferr
	})
	if err != nil {
		return
	}
	slot := &r.shards[shard]
	slot.mu.Lock()
	slot.replica = succ
	slot.hotStreak, slot.coolStreak = 0, 0
	slot.mu.Unlock()
	r.metrics.countReplicaAdded(filled)
}

// fillReplica asks the successor to pull the shard's completed results
// from the owner.
func (r *Router) fillReplica(ctx context.Context, succURL, ownerURL string, shard int) (int64, error) {
	body, err := json.Marshal(FillRequest{Source: ownerURL, Shard: shard, Shards: r.opts.NumShards})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, succURL+"/v1/replica/fill", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("cluster: replica fill: status %d", resp.StatusCode)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// A 4xx is deterministic (bad shard, mismatched fleet
			// config); retrying the same fill cannot fix it.
			return 0, retry.Permanent(err)
		}
		return 0, err
	}
	var fr FillResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		return 0, err
	}
	return int64(fr.Objects), nil
}
