package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// fakeWorker is a controllable /shardstats + /v1/replica/fill backend
// for rebalancer tests.
type fakeWorker struct {
	id string
	ts *httptest.Server

	mu      sync.Mutex
	digests map[int]Digest // shard -> digest reported on the next scrape
	fills   []FillRequest
}

func newFakeWorker(t *testing.T, id string, numShards int) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{id: id, digests: map[int]Digest{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /shardstats", func(w http.ResponseWriter, _ *http.Request) {
		doc := StatsDoc{Worker: id, NumShards: numShards, Shards: make([]Digest, numShards)}
		fw.mu.Lock()
		for i := range doc.Shards {
			doc.Shards[i] = Digest{Shard: i}
			if d, ok := fw.digests[i]; ok {
				doc.Shards[i] = d
			}
		}
		fw.mu.Unlock()
		json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("POST /v1/replica/fill", func(w http.ResponseWriter, r *http.Request) {
		var req FillRequest
		json.NewDecoder(r.Body).Decode(&req)
		fw.mu.Lock()
		fw.fills = append(fw.fills, req)
		fw.mu.Unlock()
		json.NewEncoder(w).Encode(FillResponse{Flights: 1, Objects: 3})
	})
	fw.ts = httptest.NewServer(mux)
	t.Cleanup(fw.ts.Close)
	return fw
}

func (fw *fakeWorker) setDigest(shard int, d Digest) {
	fw.mu.Lock()
	fw.digests[shard] = d
	fw.mu.Unlock()
}

func (fw *fakeWorker) fillCount() int {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return len(fw.fills)
}

// TestRebalancerStateMachine drives the full replica lifecycle against
// fake workers: hot polls trip a replica on the successor (with a fill
// from the owner), cool polls retire it only after the hysteresis
// streak, and intermediate non-cool polls reset that streak.
func TestRebalancerStateMachine(t *testing.T) {
	const shards = 8
	w1 := newFakeWorker(t, "w1", shards)
	w2 := newFakeWorker(t, "w2", shards)
	workers := map[string]*fakeWorker{"w1": w1, "w2": w2}

	r, err := New(Options{
		Workers: []Worker{
			{ID: "w1", URL: w1.ts.URL},
			{ID: "w2", URL: w2.ts.URL},
		},
		NumShards:    shards,
		RequestID:    contentID,
		HotP99MS:     100,
		RecoverP99MS: 25,
		MinSamples:   4,
		HotPolls:     2,
		CoolPolls:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const shard = 3
	ownerID := Owner([]string{"w1", "w2"}, shard)
	succID := Successor([]string{"w1", "w2"}, shard)
	owner, succ := workers[ownerID], workers[succID]

	hot := Digest{Shard: shard, Count: 10, P99MS: 400}
	cool := Digest{Shard: shard, Count: 10, P99MS: 10}
	warmish := Digest{Shard: shard, Count: 10, P99MS: 60} // neither hot nor cool

	// Poll 1: hot, but HotPolls=2 — no replica yet.
	owner.setDigest(shard, hot)
	r.RebalanceOnce(ctx)
	if rep := r.ReplicaFor(shard); rep != "" {
		t.Fatalf("replica %q after one hot poll, want none until HotPolls=2", rep)
	}

	// Poll 2: still hot — replica trips, successor pulls from owner.
	r.RebalanceOnce(ctx)
	if rep := r.ReplicaFor(shard); rep != succID {
		t.Fatalf("replica = %q, want successor %q", rep, succID)
	}
	if succ.fillCount() != 1 {
		t.Fatalf("successor saw %d fills, want 1", succ.fillCount())
	}
	succ.mu.Lock()
	fill := succ.fills[0]
	succ.mu.Unlock()
	if fill.Source != owner.ts.URL || fill.Shard != shard || fill.Shards != shards {
		t.Fatalf("fill request = %+v, want source=%s shard=%d shards=%d", fill, owner.ts.URL, shard, shards)
	}
	if r.Metrics().ReplicasAdded() != 1 {
		t.Fatalf("replicas added = %d, want 1", r.Metrics().ReplicasAdded())
	}

	// Poll 3: cool — streak 1 of 2, replica survives.
	owner.setDigest(shard, cool)
	r.RebalanceOnce(ctx)
	if r.ReplicaFor(shard) != succID {
		t.Fatal("replica retired after one cool poll, want CoolPolls=2 hysteresis")
	}

	// Poll 4: back to hot — the cool streak resets.
	owner.setDigest(shard, hot)
	r.RebalanceOnce(ctx)
	// Polls 5–6: cool twice in a row — now it retires.
	owner.setDigest(shard, cool)
	r.RebalanceOnce(ctx)
	if r.ReplicaFor(shard) != succID {
		t.Fatal("cool streak did not reset on the hot poll")
	}
	r.RebalanceOnce(ctx)
	if rep := r.ReplicaFor(shard); rep != "" {
		t.Fatalf("replica %q still active after sustained recovery", rep)
	}
	if r.Metrics().ReplicasRetired() != 1 {
		t.Fatalf("replicas retired = %d, want 1", r.Metrics().ReplicasRetired())
	}

	// A merely warm shard must trip nothing.
	owner.setDigest(shard, warmish)
	r.RebalanceOnce(ctx)
	r.RebalanceOnce(ctx)
	if rep := r.ReplicaFor(shard); rep != "" {
		t.Fatalf("warm (non-hot) shard gained replica %q", rep)
	}
}

// TestRebalancerMinSamples: a tail spike over a handful of requests must
// not trip a replica.
func TestRebalancerMinSamples(t *testing.T) {
	const shards = 4
	w1 := newFakeWorker(t, "w1", shards)
	w2 := newFakeWorker(t, "w2", shards)
	r, err := New(Options{
		Workers: []Worker{
			{ID: "w1", URL: w1.ts.URL},
			{ID: "w2", URL: w2.ts.URL},
		},
		NumShards:  shards,
		RequestID:  contentID,
		HotP99MS:   100,
		MinSamples: 16,
		HotPolls:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w1.setDigest(1, Digest{Shard: 1, Count: 3, P99MS: 5000})
	w2.setDigest(1, Digest{Shard: 1, Count: 3, P99MS: 5000})
	r.RebalanceOnce(context.Background())
	if rep := r.ReplicaFor(1); rep != "" {
		t.Fatalf("6 samples tripped replica %q, want MinSamples=16 to gate it", rep)
	}
}

// TestRebalancerReplicaDeath: when the replica worker itself dies the
// slot is cleared without counting a retirement, and the still-hot shard
// re-replicates once a successor is available again.
func TestRebalancerReplicaDeath(t *testing.T) {
	const shards = 4
	w1 := newFakeWorker(t, "w1", shards)
	w2 := newFakeWorker(t, "w2", shards)
	workers := map[string]*fakeWorker{"w1": w1, "w2": w2}
	r, err := New(Options{
		Workers: []Worker{
			{ID: "w1", URL: w1.ts.URL},
			{ID: "w2", URL: w2.ts.URL},
		},
		NumShards:  shards,
		RequestID:  contentID,
		HotP99MS:   100,
		MinSamples: 4,
		HotPolls:   1,
		CoolPolls:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const shard = 2
	ownerID := Owner([]string{"w1", "w2"}, shard)
	succID := Successor([]string{"w1", "w2"}, shard)
	workers[ownerID].setDigest(shard, Digest{Shard: shard, Count: 10, P99MS: 500})

	r.RebalanceOnce(ctx)
	if r.ReplicaFor(shard) != succID {
		t.Fatalf("replica = %q, want %q", r.ReplicaFor(shard), succID)
	}

	r.Members().MarkDown(succID)
	r.RebalanceOnce(ctx)
	if rep := r.ReplicaFor(shard); rep != "" {
		t.Fatalf("dead replica %q still routed to", rep)
	}
	if r.Metrics().ReplicasRetired() != 0 {
		t.Fatal("replica death counted as a retirement")
	}

	// Successor recovers: the still-hot shard re-replicates on the next
	// poll cycle.
	r.Members().MarkUp(succID)
	r.RebalanceOnce(ctx)
	if r.ReplicaFor(shard) != succID {
		t.Fatal("recovered successor not re-activated for the still-hot shard")
	}
}
