package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// clusterUnderTest is a router over N real serve workers, each with its
// own DirStore.
type clusterUnderTest struct {
	base   string
	stores []*sweep.DirStore
}

func startTestCluster(t *testing.T, n int) *clusterUnderTest {
	t.Helper()
	c := &clusterUnderTest{}
	var fleet []cluster.Worker
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i+1)
		ds, err := sweep.OpenDirStore(filepath.Join(t.TempDir(), id))
		if err != nil {
			t.Fatal(err)
		}
		c.stores = append(c.stores, ds)
		srv := serve.New(serve.Options{Store: ds, Worker: true, WorkerID: id})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		fleet = append(fleet, cluster.Worker{ID: id, URL: ts.URL})
	}
	idOpts := serve.Options{}
	r, err := cluster.New(cluster.Options{
		Workers:   fleet,
		RequestID: func(body []byte) (string, error) { return serve.ComputeRequestID(body, idOpts) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	c.base = ts.URL
	return c
}

func postJSON(t *testing.T, base, spec string) serve.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for %s: %s", resp.StatusCode, spec, out.Error)
	}
	return out
}

// TestClusterByteIdenticalToSingleNode is the tentpole acceptance test:
// the same submissions against a single mimdserved and against a
// 3-worker cluster must produce identical request ids, identical
// client-visible tables and reports, and byte-identical stored
// envelopes — the cluster tier adds capacity, never drift.
func TestClusterByteIdenticalToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}

	singleStore, err := sweep.OpenDirStore(filepath.Join(t.TempDir(), "single"))
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(serve.New(serve.Options{Store: singleStore}).Handler())
	defer single.Close()

	clus := startTestCluster(t, 3)

	specs := []string{
		`{"kind":"experiment","experiment":"fig7-1","seeds":[1,2]}`,
		`{"kind":"experiment","experiment":"fig6-1","seeds":[1]}`,
		`{"kind":"sweep","experiments":["fig6-1","fig6-2"],"seeds":[1]}`,
		`{"kind":"fault","fault":{"protocols":["rb","rwb"],"trials":1,"refs":200}}`,
	}
	for _, spec := range specs {
		want := postJSON(t, single.URL, spec)
		got := postJSON(t, clus.base, spec)
		if got.ID != want.ID {
			t.Fatalf("%s: id %s via cluster, %s single-node", spec, got.ID, want.ID)
		}
		if len(got.Tables) != len(want.Tables) {
			t.Fatalf("%s: %d tables via cluster, %d single-node", spec, len(got.Tables), len(want.Tables))
		}
		for i := range want.Tables {
			if got.Tables[i] != want.Tables[i] {
				t.Fatalf("%s: table %d differs between cluster and single node:\n%s\n--- vs ---\n%s",
					spec, i, got.Tables[i], want.Tables[i])
			}
		}
		if got.Report != want.Report {
			t.Fatalf("%s: fault report differs between cluster and single node", spec)
		}
	}

	// Stored envelopes: every job key the experiment/sweep specs expand
	// to must exist somewhere in the cluster with exactly the bytes the
	// single node stored.
	var jobs []sweep.Job
	for _, sp := range []struct {
		ids   []string
		seeds []uint64
	}{
		{[]string{"fig7-1"}, []uint64{1, 2}},
		{[]string{"fig6-1"}, []uint64{1}},
		{[]string{"fig6-1", "fig6-2"}, []uint64{1}},
	} {
		var ss []sweep.Spec
		for _, id := range sp.ids {
			s, err := sweep.SpecFor(id, sp.seeds, 1)
			if err != nil {
				t.Fatal(err)
			}
			ss = append(ss, s)
		}
		jobs = append(jobs, sweep.Expand(ss)...)
	}
	checked := 0
	for _, j := range jobs {
		want, err := os.ReadFile(objectPath(singleStore.Dir(), j.Key))
		if err != nil {
			t.Fatalf("single store missing %s: %v", j.Key, err)
		}
		found := false
		for _, ds := range clus.stores {
			got, err := os.ReadFile(objectPath(ds.Dir(), j.Key))
			if err != nil {
				continue
			}
			found = true
			if !bytes.Equal(got, want) {
				t.Fatalf("stored envelope for %s differs between cluster and single node", j.Key)
			}
		}
		if !found {
			t.Fatalf("no cluster worker stores key %s", j.Key)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no job keys checked")
	}
}

func objectPath(dir, key string) string {
	return filepath.Join(dir, "objects", key+".json")
}

// TestReplicaFillCopiesExactBytes: the replication pull API must land
// the owner's envelopes on the successor byte-for-byte.
func TestReplicaFillCopiesExactBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}

	ownerStore, err := sweep.OpenDirStore(filepath.Join(t.TempDir(), "owner"))
	if err != nil {
		t.Fatal(err)
	}
	owner := httptest.NewServer(serve.New(serve.Options{Store: ownerStore, Worker: true, WorkerID: "w1"}).Handler())
	defer owner.Close()
	succStore, err := sweep.OpenDirStore(filepath.Join(t.TempDir(), "succ"))
	if err != nil {
		t.Fatal(err)
	}
	succ := httptest.NewServer(serve.New(serve.Options{Store: succStore, Worker: true, WorkerID: "w2"}).Handler())
	defer succ.Close()

	// Run something on the owner so it has flights to replicate.
	resp := postJSON(t, owner.URL, `{"kind":"experiment","experiment":"fig7-1","seeds":[1]}`)
	shard := cluster.ShardOf(resp.ID, cluster.DefaultNumShards)

	fill, err := json.Marshal(cluster.FillRequest{Source: owner.URL, Shard: shard, Shards: cluster.DefaultNumShards})
	if err != nil {
		t.Fatal(err)
	}
	fresp, err := http.Post(succ.URL+"/v1/replica/fill", "application/json", bytes.NewReader(fill))
	if err != nil {
		t.Fatal(err)
	}
	var fr cluster.FillResponse
	if err := json.NewDecoder(fresp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("fill: status %d", fresp.StatusCode)
	}
	if fr.Objects == 0 {
		t.Fatal("fill copied no objects")
	}

	sp, err := sweep.SpecFor("fig7-1", []uint64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range sweep.Expand([]sweep.Spec{sp}) {
		want, err := os.ReadFile(objectPath(ownerStore.Dir(), j.Key))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(objectPath(succStore.Dir(), j.Key))
		if err != nil {
			t.Fatalf("successor missing replicated key %s: %v", j.Key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("replicated envelope for %s is not byte-identical", j.Key)
		}
	}

	// The replica can now serve the same submission as a pure cache hit.
	warm := postJSON(t, succ.URL, `{"kind":"experiment","experiment":"fig7-1","seeds":[1]}`)
	if warm.Cache != "hit" || warm.Executed != 0 {
		t.Fatalf("replica re-run: cache=%s executed=%d, want a pure hit", warm.Cache, warm.Executed)
	}
	if warm.Tables[0] != resp.Tables[0] {
		t.Fatal("replica-served table differs from owner's")
	}
}
