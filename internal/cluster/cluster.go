// Package cluster is the S25 distributed sweep fabric: a shard-routed
// router tier in front of N mimdserved workers. The content-hash
// request-id space is partitioned into a fixed number of virtual shards;
// each shard is assigned to a worker by rendezvous (highest-random-
// weight) hashing over a versioned membership table, so adding or losing
// a worker remaps only that worker's shards and every result store stays
// shard-local. Workers publish windowed per-shard latency digests
// (tracked lock-free with an atomic-pointer snapshot swap) on
// /shardstats; the router's rebalancer polls them and replicates hot
// shards to their rendezvous successor when p99 crosses a threshold,
// retiring the replica on sustained recovery — the paper's dynamic,
// decentralized adaptation transplanted to the serving tier. Results
// are content-addressed, so a cluster run is byte-identical to a
// single-node run whatever the routing. See DESIGN.md §13.
package cluster

import "hash/fnv"

// DefaultNumShards is the default size of the virtual shard space. It is
// deliberately much larger than any realistic worker count so rendezvous
// assignment stays balanced, while small enough that per-shard latency
// windows fill quickly under load.
const DefaultNumShards = 32

// ShardOf maps a content-hash request id onto a virtual shard. The
// mapping is a pure function of the id bytes — no wall clock, no
// randomness — so every router and worker computes the same shard for
// the same request forever.
func ShardOf(id string, numShards int) int {
	if numShards <= 0 {
		numShards = DefaultNumShards
	}
	h := fnv.New64a()
	h.Write([]byte(id))
	return int(h.Sum64() % uint64(numShards))
}
