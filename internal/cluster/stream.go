package cluster

import "strings"

// IsStreamContentType reports whether the content type is one of the
// worker's streaming formats (SSE or ndjson). Streaming responses relay
// byte-for-byte as they arrive; everything else is buffered so the
// router can still fail over on a mid-body failure.
func IsStreamContentType(ct string) bool {
	return strings.Contains(ct, "text/event-stream") || strings.Contains(ct, "application/x-ndjson")
}

// TerminalScanner watches a relayed stream for the worker's terminal
// frame. Every complete worker stream ends with an explicit end frame
// (SSE "event: end", ndjson {"event":"end",...}); a stream that hits
// EOF without one was cut by the transport, however clean the EOF
// looked. Before this scanner existed a truncated stream parsed as a
// short-but-clean result — the seeded bug the chaos Truncate class
// exists to catch.
type TerminalScanner struct {
	sse     bool
	seen    bool
	started bool
	tail    []byte
}

// NewTerminalScanner builds a scanner for the stream's content type.
func NewTerminalScanner(ct string) *TerminalScanner {
	return &TerminalScanner{sse: strings.Contains(ct, "text/event-stream")}
}

// sseMarkers / ndjsonMarkers open the terminal frames a stream can end
// with. "error" counts as terminal too: an explicitly signalled failure
// is detected, not silent truncation.
var (
	sseMarkers    = []string{"event: end", "event: error"}
	ndjsonMarkers = []string{`{"event":"end"`, `{"event":"error"`}
)

// maxMarkerLen bounds the carry-over tail so a marker split across two
// Observe calls is still found (every marker plus its preceding newline
// fits well inside it).
const maxMarkerLen = 24

// Observe feeds the scanner the next relayed chunk. A terminal frame
// only counts at the start of a line (or of the stream): SSE data
// payloads may quote the marker text.
func (s *TerminalScanner) Observe(p []byte) {
	if s.seen || len(p) == 0 {
		return
	}
	buf := string(append(s.tail, p...))
	markers := ndjsonMarkers
	if s.sse {
		markers = sseMarkers
	}
	for _, m := range markers {
		for from := 0; ; {
			idx := strings.Index(buf[from:], m)
			if idx < 0 {
				break
			}
			idx += from
			if (idx == 0 && !s.started) || (idx > 0 && buf[idx-1] == '\n') {
				s.seen = true
				return
			}
			from = idx + 1
		}
	}
	s.started = true
	if len(buf) > maxMarkerLen {
		buf = buf[len(buf)-maxMarkerLen:]
	}
	s.tail = append(s.tail[:0], buf...)
}

// Terminated reports whether a terminal frame has been observed.
func (s *TerminalScanner) Terminated() bool { return s.seen }
