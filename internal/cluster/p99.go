package cluster

import (
	"sort"
	"sync/atomic"
	"time"
)

// windowCap bounds the samples one latency window retains per shard.
// Past it the window wraps: under sustained load the digest describes
// the most recent windowCap observations, which is exactly what a tail-
// latency rebalancer wants.
const windowCap = 512

// window is one collection interval's raw samples for one shard.
// Recording is lock-free: writers claim a slot with an atomic counter
// and store the sample with an atomic write, so the serving hot path
// never takes a lock to observe a latency.
type window struct {
	count   atomic.Int64
	samples [windowCap]atomic.Int64 // latency in nanoseconds
}

func (w *window) record(d time.Duration) {
	i := w.count.Add(1) - 1
	w.samples[i%windowCap].Store(int64(d))
}

// Digest is the published summary of one shard's closed window — the
// JSON document workers expose on /shardstats and the rebalancer feeds
// its state machine with.
type Digest struct {
	Shard int   `json:"shard"`
	Count int64 `json:"count"`
	// P50MS/P95MS/P99MS/MaxMS summarize the window's latency
	// distribution in milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// shardState pairs the live window with the last published digest. Both
// are swapped wholesale through atomic pointers — the DynamicCache
// state-swap idiom: readers load a consistent snapshot without blocking
// writers, writers publish a new state without blocking readers.
type shardState struct {
	cur  atomic.Pointer[window]
	last atomic.Pointer[Digest]
}

// Tracker is the per-worker latency state: one lock-free window per
// virtual shard. Record is called from request goroutines; Snapshot is
// called by the /shardstats handler (and thus, transitively, by the
// router's rebalancer poll).
type Tracker struct {
	numShards int
	shards    []shardState
}

// NewTracker builds a tracker over numShards virtual shards (0 means
// DefaultNumShards).
func NewTracker(numShards int) *Tracker {
	if numShards <= 0 {
		numShards = DefaultNumShards
	}
	t := &Tracker{numShards: numShards, shards: make([]shardState, numShards)}
	for i := range t.shards {
		t.shards[i].cur.Store(&window{})
		t.shards[i].last.Store(&Digest{Shard: i})
	}
	return t
}

// NumShards returns the tracker's shard-space size.
func (t *Tracker) NumShards() int { return t.numShards }

// Record folds one observed latency into the shard's live window.
// Lock-free: an atomic slot claim plus an atomic store.
func (t *Tracker) Record(shard int, d time.Duration) {
	if shard < 0 || shard >= t.numShards {
		return
	}
	t.shards[shard].cur.Load().record(d)
}

// Snapshot rotates every shard's window and publishes the digests: each
// live window is atomically swapped for a fresh one, summarized, and the
// summary installed as the shard's last digest. A recorder that loaded
// the old window just before the swap may land its sample there after
// the digest was computed; that sample is simply dropped — the tracker
// is an observability surface, never an input to simulation results.
func (t *Tracker) Snapshot() []Digest {
	out := make([]Digest, t.numShards)
	for i := range t.shards {
		old := t.shards[i].cur.Swap(&window{})
		d := digest(i, old)
		if d.Count == 0 {
			// An idle interval keeps the previous digest's shape but
			// reports zero samples, so the rebalancer can tell "cooled
			// down" from "no traffic".
			prev := t.shards[i].last.Load()
			d.P50MS, d.P95MS, d.P99MS, d.MaxMS = prev.P50MS, prev.P95MS, prev.P99MS, prev.MaxMS
		}
		t.shards[i].last.Store(&d)
		out[i] = d
	}
	return out
}

// Last returns the shard's most recently published digest without
// rotating anything — a lock-free read of the snapshot pointer.
func (t *Tracker) Last(shard int) Digest {
	if shard < 0 || shard >= t.numShards {
		return Digest{Shard: shard}
	}
	return *t.shards[shard].last.Load()
}

// digest summarizes a closed window.
func digest(shard int, w *window) Digest {
	d := Digest{Shard: shard}
	n := w.count.Load()
	d.Count = n
	if n == 0 {
		return d
	}
	kept := n
	if kept > windowCap {
		kept = windowCap
	}
	ns := make([]int64, kept)
	for i := range ns {
		ns[i] = w.samples[i].Load()
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	ms := func(v int64) float64 { return float64(v) / float64(time.Millisecond) }
	pct := func(q float64) float64 {
		i := int(q * float64(len(ns)))
		if i >= len(ns) {
			i = len(ns) - 1
		}
		return ms(ns[i])
	}
	d.P50MS = pct(0.50)
	d.P95MS = pct(0.95)
	d.P99MS = pct(0.99)
	d.MaxMS = ms(ns[len(ns)-1])
	return d
}

// StatsDoc is the GET /shardstats response body.
type StatsDoc struct {
	Worker    string   `json:"worker"`
	NumShards int      `json:"num_shards"`
	Shards    []Digest `json:"shards"`
}
