package cluster

import (
	"hash/fnv"
	"sort"
)

// hrwScore is the rendezvous weight of (worker, shard): a pure hash of
// the worker id salted with the shard number. The worker with the
// highest score owns the shard; the runner-up is its replication
// successor. Because each worker's score is independent of every other
// worker's, removing a worker from the candidate set remaps only the
// shards that worker owned — the property that keeps caches shard-local
// across membership changes.
func hrwScore(workerID string, shard int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(workerID))
	h.Write([]byte{'|', byte(shard), byte(shard >> 8), byte(shard >> 16), byte(shard >> 24)})
	return h.Sum64()
}

// Rank orders worker ids by descending rendezvous score for the shard,
// breaking score ties by id so the order is total and deterministic.
// Rank(...)[0] is the shard's owner, Rank(...)[1] its successor.
func Rank(workerIDs []string, shard int) []string {
	out := make([]string, len(workerIDs))
	copy(out, workerIDs)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := hrwScore(out[i], shard), hrwScore(out[j], shard)
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Owner returns the rendezvous owner of the shard among the candidate
// workers, or "" when there are no candidates.
func Owner(workerIDs []string, shard int) string {
	if len(workerIDs) == 0 {
		return ""
	}
	best, bestScore := "", uint64(0)
	for _, id := range workerIDs {
		s := hrwScore(id, shard)
		if best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// Successor returns the second-ranked worker for the shard — the replica
// target — or "" when fewer than two candidates exist.
func Successor(workerIDs []string, shard int) string {
	if len(workerIDs) < 2 {
		return ""
	}
	return Rank(workerIDs, shard)[1]
}
