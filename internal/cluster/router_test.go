package cluster

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// contentID is the RequestID stub used by router tests: a pure content
// hash of the body, like the real serve.ComputeRequestID but without
// spec validation.
func contentID(body []byte) (string, error) {
	sum := sha256.Sum256(body)
	return "req-" + hex.EncodeToString(sum[:12]), nil
}

func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	if opts.RequestID == nil {
		opts.RequestID = contentID
	}
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSubmitAllWorkersDown: with the whole fleet unreachable, a
// submission is shed with 503 + Retry-After instead of hanging or
// erroring opaquely.
func TestSubmitAllWorkersDown(t *testing.T) {
	r := newTestRouter(t, Options{
		Workers: []Worker{{ID: "w1", URL: "http://127.0.0.1:1"}}, // reserved port: connection refused
	})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(`{"kind":"experiment"}`))
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	if r.members.Alive("w1") {
		t.Fatal("unreachable worker not passively marked down")
	}
}

// TestSubmitFailsOverToNextCandidate: the shard owner is dead at submit
// time; the router marks it down and the next rendezvous candidate
// serves the request.
func TestSubmitFailsOverToNextCandidate(t *testing.T) {
	var served atomic.Int64
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"id":"x","cache":"hit"}`)
	}))
	defer live.Close()

	body := `{"kind":"experiment","experiment":"fig7-1"}`
	id, _ := contentID([]byte(body))
	shard := ShardOf(id, DefaultNumShards)
	// Assign URLs so the shard's rendezvous owner is the dead worker.
	rank := Rank([]string{"w1", "w2"}, shard)
	urls := map[string]string{rank[0]: "http://127.0.0.1:1", rank[1]: live.URL}

	r := newTestRouter(t, Options{Workers: []Worker{
		{ID: "w1", URL: urls["w1"]},
		{ID: "w2", URL: urls["w2"]},
	}})
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 via failover; body %s", rec.Code, rec.Body)
	}
	if served.Load() != 1 {
		t.Fatalf("live worker served %d requests, want 1", served.Load())
	}
	if r.members.Alive(rank[0]) {
		t.Fatal("dead owner not marked down by the failed proxy attempt")
	}
	if r.metrics.failovers == 0 {
		t.Fatal("failover not counted")
	}
}

// TestMidStreamDeathEmitsTerminalErrorFrame: a worker that dies in the
// middle of an SSE stream must yield a terminal error frame (distinct
// from the worker's own "end" event), and a resubmission must be served
// by the surviving worker with the same request id.
func TestMidStreamDeathEmitsTerminalErrorFrame(t *testing.T) {
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "event: job\ndata: {\"index\":0}\n\n")
		w.(http.Flusher).Flush()
		// Kill the connection mid-stream without a terminal frame.
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer dying.Close()
	var survivorMu sync.Mutex
	var survivorIDs []string
	survivor := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		survivorMu.Lock()
		survivorIDs = append(survivorIDs, req.URL.Path)
		survivorMu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: end\ndata: {}\n\n")
	}))
	defer survivor.Close()

	jobID := "req-0123456789abcdef01234567"
	shard := ShardOf(jobID, DefaultNumShards)
	rank := Rank([]string{"w1", "w2"}, shard)
	urls := map[string]string{rank[0]: dying.URL, rank[1]: survivor.URL}
	r := newTestRouter(t, Options{Workers: []Worker{
		{ID: "w1", URL: urls["w1"]},
		{ID: "w2", URL: urls["w2"]},
	}})

	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSEEvents(t, resp.Body)
	resp.Body.Close()
	if len(events) == 0 || events[len(events)-1] != "error" {
		t.Fatalf("stream events = %v, want terminal \"error\" frame after worker death", events)
	}

	// The owner is now known-bad only after a connect error; kill it for
	// real so the resubmission fails over.
	dying.Close()
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events2 := readSSEEvents(t, resp2.Body)
	resp2.Body.Close()
	if len(events2) == 0 || events2[len(events2)-1] != "end" {
		t.Fatalf("resubmitted stream events = %v, want clean \"end\" from the survivor", events2)
	}
	survivorMu.Lock()
	defer survivorMu.Unlock()
	if len(survivorIDs) != 1 || !strings.Contains(survivorIDs[0], jobID) {
		t.Fatalf("survivor saw paths %v, want the original id %s — the id must survive failover", survivorIDs, jobID)
	}
}

// readSSEEvents collects the "event:" names from an SSE body until EOF.
func readSSEEvents(t *testing.T, body io.Reader) []string {
	t.Helper()
	var events []string
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events = append(events, name)
		}
	}
	return events
}

// TestMembershipChangeKeepsIDsStable: the same body must map to the
// same request id and shard before and after a membership change — the
// table re-routes, it never re-identifies.
func TestMembershipChangeKeepsIDsStable(t *testing.T) {
	var mu sync.Mutex
	seen := map[string][]string{} // worker id -> body hashes served
	mkWorker := func(id string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			b, _ := io.ReadAll(req.Body)
			h, _ := contentID(b)
			mu.Lock()
			seen[id] = append(seen[id], h)
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"ok":true}`)
		}))
	}
	w1, w2 := mkWorker("w1"), mkWorker("w2")
	defer w1.Close()
	defer w2.Close()

	r := newTestRouter(t, Options{Workers: []Worker{
		{ID: "w1", URL: w1.URL},
		{ID: "w2", URL: w2.URL},
	}})
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	body := `{"kind":"experiment","experiment":"fig6-1","seeds":[1]}`
	wantID, _ := contentID([]byte(body))
	shard := ShardOf(wantID, DefaultNumShards)
	owner := Owner([]string{"w1", "w2"}, shard)

	post := func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	post()
	v0 := r.members.Version()
	r.members.MarkDown(owner) // membership change mid-flight
	post()
	if r.members.Version() == v0 {
		t.Fatal("membership version did not bump")
	}

	mu.Lock()
	defer mu.Unlock()
	var all []string
	for _, ids := range seen {
		all = append(all, ids...)
	}
	if len(all) != 2 {
		t.Fatalf("workers served %d submissions, want 2", len(all))
	}
	for _, id := range all {
		if id != wantID {
			t.Fatalf("request id changed across membership change: %s vs %s", id, wantID)
		}
	}
	// And the survivor took over exactly the dead owner's traffic.
	other := "w1"
	if owner == "w1" {
		other = "w2"
	}
	if len(seen[other]) != 1 {
		t.Fatalf("survivor %s served %d, want 1 (post-change submission)", other, len(seen[other]))
	}
}

// TestProbeRecoversWorker: failure detection needs FailThreshold
// consecutive failed rounds, and a recovered worker is marked back up
// with a version bump.
func TestProbeRecoversWorker(t *testing.T) {
	healthy := atomic.Bool{}
	healthy.Store(true)
	ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ws.Close()

	r := newTestRouter(t, Options{
		Workers:      []Worker{{ID: "w1", URL: ws.URL}},
		ProbeRetries: 1,
		ProbeBackoff: 1, // nanosecond backoff keeps the test fast
	})
	ctx := context.Background()

	r.ProbeOnce(ctx)
	if !r.members.Alive("w1") {
		t.Fatal("healthy worker marked down")
	}

	healthy.Store(false)
	r.ProbeOnce(ctx)
	if !r.members.Alive("w1") {
		t.Fatal("one failed round already marked the worker down (FailThreshold=2)")
	}
	r.ProbeOnce(ctx)
	if r.members.Alive("w1") {
		t.Fatal("two failed rounds did not mark the worker down")
	}

	healthy.Store(true)
	r.ProbeOnce(ctx)
	if !r.members.Alive("w1") {
		t.Fatal("recovered worker not marked back up")
	}
}
