package cluster

import "testing"

// TestBreakerOpensAfterThreshold: consecutive failures open the
// circuit, Tick-driven cooldown moves it to half-open, and a
// successful trial snaps it closed.
func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := newBreakerSet(3, 2)
	for i := 0; i < 2; i++ {
		if opened := b.OnFailure("w1"); opened {
			t.Fatalf("circuit opened after %d failures, threshold is 3", i+1)
		}
		if !b.Allow("w1") {
			t.Fatalf("closed circuit refused traffic after %d failures", i+1)
		}
	}
	if !b.OnFailure("w1") {
		t.Fatal("third consecutive failure did not open the circuit")
	}
	if b.State("w1") != breakerOpen {
		t.Fatalf("state = %v, want open", b.State("w1"))
	}
	if b.Allow("w1") {
		t.Fatal("open circuit admitted a request")
	}

	b.Tick()
	if b.Allow("w1") {
		t.Fatal("circuit admitted a request one tick into a two-tick cooldown")
	}
	b.Tick()
	if b.State("w1") != breakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State("w1"))
	}
	if !b.Allow("w1") {
		t.Fatal("half-open circuit refused the trial request")
	}
	if b.Allow("w1") {
		t.Fatal("half-open circuit admitted a second concurrent trial")
	}
	b.OnSuccess("w1")
	if b.State("w1") != breakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", b.State("w1"))
	}
	if !b.Allow("w1") {
		t.Fatal("closed circuit refused traffic")
	}
}

// TestBreakerHalfOpenFailureReopens: a failed trial sends the circuit
// straight back to open for a full cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreakerSet(1, 1)
	b.OnFailure("w1") // opens (threshold 1)
	b.Tick()          // half-open
	if !b.Allow("w1") {
		t.Fatal("half-open circuit refused the trial")
	}
	if !b.OnFailure("w1") {
		t.Fatal("failed trial did not re-open the circuit")
	}
	if b.Allow("w1") {
		t.Fatal("re-opened circuit admitted a request")
	}
}

// TestBreakerSuccessResetsFailureStreak: an intervening success wipes
// the consecutive-failure count — the breaker trips on streaks, not
// lifetime totals.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := newBreakerSet(3, 2)
	b.OnFailure("w1")
	b.OnFailure("w1")
	b.OnSuccess("w1")
	b.OnFailure("w1")
	b.OnFailure("w1")
	if b.State("w1") != breakerClosed {
		t.Fatalf("state = %v after 2-failure streak, want closed (threshold 3)", b.State("w1"))
	}
	if b.OnFailure("w1") != true {
		t.Fatal("third consecutive failure did not open the circuit")
	}
}

// TestBreakerIsolatesWorkers: one worker's failures never move another
// worker's circuit.
func TestBreakerIsolatesWorkers(t *testing.T) {
	b := newBreakerSet(1, 1)
	b.OnFailure("w1")
	if b.State("w1") != breakerOpen {
		t.Fatal("w1 circuit did not open")
	}
	if b.State("w2") != breakerClosed || !b.Allow("w2") {
		t.Fatal("w2 circuit moved on w1's failure")
	}
}
