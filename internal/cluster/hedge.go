package cluster

import (
	"sort"
	"sync"
	"time"
)

// hedgeWindowCap bounds the per-worker latency ring the hedger reads
// its p99 from.
const hedgeWindowCap = 256

// hedger drives p99 request hedging for idempotent reads. It keeps a
// windowed latency ring per worker; once a worker has enough samples,
// a status read routed to it arms a timer at that worker's own p99 —
// if the worker hasn't answered by then, the same request is fired at
// the next failover candidate and whichever response lands first wins.
// Only content-hash GETs are ever hedged (both workers serving the
// same id return byte-identical documents), and never event streams
// (duplicating a stream is not idempotent from the client's seat).
//
// The ring is deliberately separate from the shard Tracker: Snapshot
// there rotates the window (it is the rebalancer's collection
// interval), while the hedger needs a non-destructive read on every
// request.
type hedger struct {
	mu         sync.Mutex
	minSamples int
	byWorker   map[string]*hedgeWindow
}

type hedgeWindow struct {
	n       int
	samples [hedgeWindowCap]time.Duration
}

func newHedger(minSamples int) *hedger {
	return &hedger{minSamples: minSamples, byWorker: map[string]*hedgeWindow{}}
}

// Record feeds one completed request's latency into the worker's ring.
func (h *hedger) Record(id string, d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.byWorker[id]
	if w == nil {
		w = &hedgeWindow{}
		h.byWorker[id] = w
	}
	w.samples[w.n%hedgeWindowCap] = d
	w.n++
}

// Delay returns the hedge trigger for a read routed to the worker: the
// p99 of its retained window. ok is false until the worker has
// minSamples — hedging on a cold window would fire on noise.
func (h *hedger) Delay(id string) (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w := h.byWorker[id]
	if w == nil || w.n < h.minSamples {
		return 0, false
	}
	kept := w.n
	if kept > hedgeWindowCap {
		kept = hedgeWindowCap
	}
	ds := make([]time.Duration, kept)
	copy(ds, w.samples[:kept])
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(0.99 * float64(kept))
	if i >= kept {
		i = kept - 1
	}
	d := ds[i]
	if d <= 0 {
		return 0, false
	}
	return d, true
}
