package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Router.
type Options struct {
	// Workers declares the fleet. At least one worker is required; ids
	// must be unique and stable (they feed the rendezvous hash).
	Workers []Worker
	// NumShards sizes the virtual shard space; 0 means DefaultNumShards.
	// Every worker must be started with the same value.
	NumShards int
	// RequestID computes the content-hash request id for a submission
	// body — injected (cmd/mimdrouter wires serve.ComputeRequestID) so
	// this package never imports the serving layer.
	RequestID func(body []byte) (string, error)
	// Client proxies requests; nil means a client with no overall
	// timeout (SSE streams are long-lived).
	Client *http.Client
	// RetryAfter is the hint returned with 503 when no worker is
	// available; 0 means 1s.
	RetryAfter time.Duration

	// HotP99MS trips a shard's replica when its windowed p99 crosses it;
	// 0 means 250ms.
	HotP99MS float64
	// RecoverP99MS retires the replica once p99 stays at or under it;
	// 0 means HotP99MS/4.
	RecoverP99MS float64
	// MinSamples is the smallest window that can trip a replica; 0
	// means 16.
	MinSamples int64
	// HotPolls is how many consecutive hot polls trip a replica; 0
	// means 1.
	HotPolls int
	// CoolPolls is how many consecutive cool polls retire one; 0 means 3
	// (the "sustained recovery" hysteresis).
	CoolPolls int
	// PollInterval paces the rebalancer loop; 0 means 2s.
	PollInterval time.Duration
	// ProbeInterval paces the health prober; 0 means 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health or stats request; 0 means 500ms.
	ProbeTimeout time.Duration
	// ProbeRetries is how many extra immediate attempts (with backoff)
	// one probe round makes before counting a failure; 0 means 2.
	ProbeRetries int
	// ProbeBackoff is the base delay between those attempts, doubled
	// each retry; 0 means 50ms.
	ProbeBackoff time.Duration
	// FailThreshold is how many consecutive failed probe rounds mark a
	// worker dead; 0 means 2.
	FailThreshold int

	// AttemptTimeout bounds how long one proxy attempt may wait for
	// response *headers* before the router cancels it and fails over —
	// the defense against a paused (accepted-but-silent) worker. It
	// never cuts a stream that has started answering. 0 disables.
	AttemptTimeout time.Duration
	// BreakerThreshold is how many consecutive failed requests open a
	// worker's circuit; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how many prober rounds an open circuit waits
	// before admitting a half-open trial; 0 means 2.
	BreakerCooldown int
	// Hedge enables p99-driven request hedging for idempotent job
	// status reads. Off by default — and it must stay off under the
	// chaos campaign, where a hedged attempt would consume fault-plan
	// sequence numbers nondeterministically.
	Hedge bool
	// HedgeMinSamples is how many latencies a worker's window needs
	// before its reads can hedge; 0 means 32.
	HedgeMinSamples int
	// Journal, when set, records begin/done per submission so a router
	// restart resumes in-flight work (see ResumePending).
	Journal *Journal
}

func (o Options) withDefaults() Options {
	if o.NumShards <= 0 {
		o.NumShards = DefaultNumShards
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.HotP99MS <= 0 {
		o.HotP99MS = 250
	}
	if o.RecoverP99MS <= 0 {
		o.RecoverP99MS = o.HotP99MS / 4
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 16
	}
	if o.HotPolls <= 0 {
		o.HotPolls = 1
	}
	if o.CoolPolls <= 0 {
		o.CoolPolls = 3
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.ProbeRetries <= 0 {
		o.ProbeRetries = 2
	}
	if o.ProbeBackoff <= 0 {
		o.ProbeBackoff = 50 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 32
	}
	return o
}

// shardSlot is one virtual shard's routing state: the active replica (if
// any), the rebalancer's hysteresis streaks, and a pick counter that
// alternates reads between owner and replica.
type shardSlot struct {
	mu         sync.Mutex
	replica    string
	hotStreak  int
	coolStreak int
	lastP99MS  float64
	picks      uint64
}

// Router is the shard-manager tier: it owns the membership table,
// proxies submissions to the rendezvous owner of each request's shard,
// and runs the health prober and the p99 rebalancer.
type Router struct {
	opts     Options
	members  *Membership
	metrics  *Metrics
	shards   []shardSlot
	probe    *http.Client
	mux      *http.ServeMux
	breakers *breakerSet
	hedge    *hedger
	draining atomic.Bool
	inflight sync.WaitGroup
}

// New builds a router over the declared fleet.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if opts.RequestID == nil {
		return nil, fmt.Errorf("cluster: Options.RequestID is required")
	}
	members, err := NewMembership(opts.Workers)
	if err != nil {
		return nil, err
	}
	r := &Router{
		opts:     opts,
		members:  members,
		metrics:  newMetrics(),
		shards:   make([]shardSlot, opts.NumShards),
		probe:    &http.Client{Timeout: opts.ProbeTimeout},
		breakers: newBreakerSet(opts.BreakerThreshold, opts.BreakerCooldown),
		hedge:    newHedger(opts.HedgeMinSamples),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /v1/cluster", r.handleCluster)
	mux.HandleFunc("GET /v1/experiments", r.handleExperiments)
	mux.HandleFunc("POST /v1/run", r.handleSubmit)
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleByID)
	mux.HandleFunc("GET /v1/jobs/{id}/events", r.handleByID)
	// Profile docs shard by the same content-hash id as the submission
	// that built them, so the read lands on the worker holding the doc;
	// byte-identical from any holder, hence hedgeable like status reads.
	mux.HandleFunc("GET /v1/profile/{id}", r.handleByID)
	r.mux = mux
	return r, nil
}

// Members exposes the membership table (tests and cmd/mimdrouter).
func (r *Router) Members() *Membership { return r.members }

// Metrics exposes the router's counters.
func (r *Router) Metrics() *Metrics { return r.metrics }

// NumShards returns the router's shard-space size.
func (r *Router) NumShards() int { return r.opts.NumShards }

// Handler returns the router's HTTP handler with response-code
// accounting attached.
func (r *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		cw := &countingWriter{ResponseWriter: w}
		r.mux.ServeHTTP(cw, req)
		r.metrics.countRequest(cw.Code())
	})
}

// Start launches the health prober and the rebalancer; both stop when
// ctx is cancelled.
func (r *Router) Start(ctx context.Context) {
	go r.probeLoop(ctx)
	go r.rebalanceLoop(ctx)
}

// maxBodyBytes bounds a submission body (a spec is a few hundred bytes).
const maxBodyBytes = 1 << 20

// handleSubmit routes POST /v1/run and POST /v1/jobs: compute the
// content-hash id, map it to a shard, and proxy to the shard's owner
// (or, for a replicated hot shard, alternate between owner and replica).
func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	if r.draining.Load() {
		r.writeError(w, http.StatusServiceUnavailable, "router draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	id, err := r.opts.RequestID(body)
	if err != nil {
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid spec: %v", err))
		return
	}
	shard := ShardOf(id, r.opts.NumShards)
	if j := r.opts.Journal; j != nil {
		// Journal before the first proxy byte moves: a crash anywhere
		// past this point leaves a resumable begin record. Done is
		// written once the client has a definitive answer — including a
		// shed or an explicit error frame, after which the client owns
		// the retry.
		j.Begin(id, shard, body)
		defer j.Done(id)
	}
	r.proxyToShard(w, req, shard, body)
}

// handleByID routes GET /v1/jobs/{id} and GET /v1/jobs/{id}/events by
// the id already embedded in the path — the same shard mapping the
// submission used, so polls and event streams land on the worker that
// ran the flight. Plain status reads are the one hedgeable request
// shape: content-hash idempotent, no stream, byte-identical from any
// worker holding the result.
func (r *Router) handleByID(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	shard := ShardOf(id, r.opts.NumShards)
	if r.opts.Hedge && !strings.HasSuffix(req.URL.Path, "/events") && r.hedgedGet(w, req, shard) {
		return
	}
	r.proxyToShard(w, req, shard, nil)
}

// handleExperiments proxies the registry listing to any alive worker.
func (r *Router) handleExperiments(w http.ResponseWriter, req *http.Request) {
	r.proxyToShard(w, req, 0, nil)
}

// candidates returns the failover-ordered worker ids for a shard. The
// first entry is the preferred target: normally the rendezvous owner,
// but when the shard has an alive replica every other pick is served by
// it — the read-spreading that relieves a hot shard. replicaRead
// reports whether the front candidate is the replica rather than the
// owner.
func (r *Router) candidates(shard int) (ids []string, replicaRead bool) {
	alive := r.members.AliveIDs()
	if len(alive) == 0 {
		return nil, false
	}
	rank := Rank(alive, shard)
	slot := &r.shards[shard]
	slot.mu.Lock()
	rep := slot.replica
	pick := slot.picks
	slot.picks++
	slot.mu.Unlock()
	if rep == "" || !r.members.Alive(rep) || rep == rank[0] || pick%2 == 0 {
		return rank, false
	}
	// Move the replica to the front, keeping the rest as failovers.
	out := make([]string, 0, len(rank))
	out = append(out, rep)
	for _, id := range rank {
		if id != rep {
			out = append(out, id)
		}
	}
	return out, true
}

// gatewayStatus reports whether a worker response should be treated as
// a failed attempt rather than relayed: 502/503/504 are "the machinery
// in front of the answer broke (or shed)", and another candidate may
// hold the answer. A 500 is the engine's own verdict and relays
// untouched — retrying a deterministic failure elsewhere just burns a
// second worker on it.
func gatewayStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// proxyToShard forwards the request to the shard's candidates in order,
// failing over (and passively marking workers down) on connection
// errors, attempt timeouts, and gateway-class 5xx responses — each of
// which also feeds the worker's circuit breaker, and open circuits are
// skipped up front. Non-streaming responses are fully buffered before
// the first byte reaches the client, so even a mid-body failure can
// still fail over; a stream that has started relaying cannot, and gets
// an explicit terminal error frame instead.
func (r *Router) proxyToShard(w http.ResponseWriter, req *http.Request, shard int, body []byte) {
	r.inflight.Add(1)
	defer r.inflight.Done()
	cands, replicaRead := r.candidates(shard)
	for i, id := range cands {
		if !r.breakers.Allow(id) {
			r.metrics.countBreakerSkip()
			continue
		}
		fail := func() {
			if r.breakers.OnFailure(id) {
				r.metrics.countBreakerOpen()
			}
			if i+1 < len(cands) {
				r.metrics.countFailover()
			}
			replicaRead = false
		}
		target := r.members.URL(id)
		out, err := http.NewRequestWithContext(req.Context(), req.Method,
			target+req.URL.Path, bodyReader(body))
		if err != nil {
			r.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		out.URL.RawQuery = req.URL.RawQuery
		copyHeader(out.Header, req.Header, "Content-Type", "Accept")
		start := wallNow()
		resp, err := r.doAttempt(out)
		if err != nil {
			if req.Context().Err() != nil {
				// The client went away; nothing to answer.
				return
			}
			// The worker is unreachable (or silent past the attempt
			// timeout): passive failure detection. The prober notices
			// recovery.
			r.members.MarkDown(id)
			fail()
			continue
		}
		if gatewayStatus(resp.StatusCode) {
			// Never relay a gateway-class 5xx: when every candidate is
			// exhausted the loop falls through to the router's own 503
			// with a Retry-After hint, so clients see one uniform shed
			// signal instead of whatever a dying hop emitted (a bare
			// 502 carries no retry contract at all).
			resp.Body.Close()
			fail()
			continue
		}
		ct := resp.Header.Get("Content-Type")
		if !IsStreamContentType(ct) {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			// A short body is as fatal as a read error: a connection cut
			// mid-transfer can surface as a clean EOF before Content-Length
			// bytes arrived, and relaying the stump would hand the client a
			// corrupt document.
			short := resp.ContentLength > int64(len(data))
			if (rerr != nil || short) && req.Context().Err() == nil {
				// The body died under us before anything was relayed —
				// this candidate's answer is gone, but the next one's
				// isn't.
				fail()
				continue
			}
			r.breakers.OnSuccess(id)
			r.hedge.Record(id, wallNow().Sub(start))
			r.metrics.countProxied(id, replicaRead && i == 0)
			copyHeader(w.Header(), resp.Header, "Content-Type", "Retry-After", "Cache-Control")
			w.WriteHeader(resp.StatusCode)
			w.Write(data)
			return
		}
		r.breakers.OnSuccess(id)
		r.metrics.countProxied(id, replicaRead && i == 0)
		r.relay(w, resp)
		return
	}
	r.metrics.countNoWorker()
	r.writeError(w, http.StatusServiceUnavailable, "no worker available for shard "+strconv.Itoa(shard))
}

// doAttempt performs one proxy attempt, bounding the wait for response
// headers by AttemptTimeout when configured. The timeout only covers
// the header wait: once a worker has started answering, its stream
// lives as long as it keeps sending (the body carries the attempt's
// cancel, released on Close).
func (r *Router) doAttempt(out *http.Request) (*http.Response, error) {
	if r.opts.AttemptTimeout <= 0 {
		return r.opts.Client.Do(out)
	}
	ctx, cancel := context.WithCancel(out.Context())
	out = out.WithContext(ctx)
	type result struct {
		resp *http.Response
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := r.opts.Client.Do(out)
		ch <- result{resp, err}
	}()
	//lint:ignore determinism the attempt timeout is wall-clock failure detection; no simulation result depends on it
	timer := time.NewTimer(r.opts.AttemptTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			cancel()
			return nil, res.err
		}
		res.resp.Body = &cancelBody{ReadCloser: res.resp.Body, cancel: cancel}
		return res.resp, nil
	case <-timer.C:
		cancel()
		if res := <-ch; res.resp != nil {
			res.resp.Body.Close()
		}
		r.metrics.countAttemptTimeout()
		return nil, fmt.Errorf("cluster: no response headers within %v", r.opts.AttemptTimeout)
	}
}

// cancelBody ties an attempt's context cancel to the response body's
// lifetime.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// hedgedGet serves an idempotent status read with p99 hedging: fire the
// primary candidate, and if it hasn't answered within its own windowed
// p99, fire the next candidate too — first good answer wins. Returns
// false when hedging doesn't apply (cold window, lone candidate); the
// caller falls back to the plain proxy path.
func (r *Router) hedgedGet(w http.ResponseWriter, req *http.Request, shard int) bool {
	cands, _ := r.candidates(shard)
	if len(cands) < 2 {
		return false
	}
	delay, ok := r.hedge.Delay(cands[0])
	if !ok {
		return false
	}
	r.inflight.Add(1)
	defer r.inflight.Done()

	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	type result struct {
		id   string
		data []byte
		resp *http.Response
		err  error
		dur  time.Duration
	}
	ch := make(chan result, 2)
	fire := func(id string) {
		start := wallNow()
		out, err := http.NewRequestWithContext(ctx, http.MethodGet,
			r.members.URL(id)+req.URL.Path, nil)
		if err != nil {
			ch <- result{id: id, err: err}
			return
		}
		out.URL.RawQuery = req.URL.RawQuery
		copyHeader(out.Header, req.Header, "Accept")
		resp, err := r.opts.Client.Do(out)
		if err != nil {
			ch <- result{id: id, err: err}
			return
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			ch <- result{id: id, err: err}
			return
		}
		ch <- result{id: id, data: data, resp: resp, dur: wallNow().Sub(start)}
	}
	go fire(cands[0])
	//lint:ignore determinism the hedge trigger is wall-clock tail-latency defense; campaigns run with hedging disabled
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, failed := 1, 0
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				launched = 2
				r.metrics.countHedgeFired()
				go fire(cands[1])
			}
		case res := <-ch:
			good := res.err == nil && !gatewayStatus(res.resp.StatusCode)
			if good {
				r.breakers.OnSuccess(res.id)
				r.hedge.Record(res.id, res.dur)
				if res.id == cands[1] {
					r.metrics.countHedgeWon()
				}
				r.metrics.countProxied(res.id, false)
				copyHeader(w.Header(), res.resp.Header, "Content-Type", "Retry-After", "Cache-Control")
				w.WriteHeader(res.resp.StatusCode)
				w.Write(res.data)
				return true
			}
			failed++
			if failed >= launched && launched == 2 {
				r.metrics.countNoWorker()
				r.writeError(w, http.StatusServiceUnavailable, "no worker available for shard "+strconv.Itoa(shard))
				return true
			}
			if launched == 1 {
				// The primary failed before the hedge trigger: fire the
				// secondary immediately rather than waiting out the timer.
				launched = 2
				r.metrics.countHedgeFired()
				go fire(cands[1])
			}
		case <-req.Context().Done():
			return true
		}
	}
}

// Drain stops accepting new submissions (they shed with 503 and a
// Retry-After hint) and waits for every in-flight relay — including
// live event streams — to finish, or for ctx to give up.
func (r *Router) Drain(ctx context.Context) error {
	r.draining.Store(true)
	done := make(chan struct{})
	go func() {
		r.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has been called.
func (r *Router) Draining() bool { return r.draining.Load() }

// ResumePending replays the journal's unfinished flights against the
// fleet: each pending submission is re-proxied to its shard (the
// content-hash id makes replay idempotent — a flight that actually
// finished before the crash is answered straight from the worker's
// store). Successfully resumed flights are compacted out of the
// journal; flights that still cannot complete stay pending for the
// next restart. Returns how many flights were resumed.
func (r *Router) ResumePending(ctx context.Context) (int, error) {
	j := r.opts.Journal
	if j == nil {
		return 0, nil
	}
	pending, err := LoadJournal(j.Path())
	if err != nil {
		return 0, err
	}
	if len(pending) == 0 {
		return 0, nil
	}
	var remaining []PendingFlight
	resumed := 0
	for _, fl := range pending {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, "/v1/jobs", nil)
		if err != nil {
			remaining = append(remaining, fl)
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		rec := &resumeRecorder{header: make(http.Header)}
		r.proxyToShard(rec, req, fl.Shard, fl.Body)
		if rec.code >= 200 && rec.code < 300 {
			resumed++
			r.metrics.countResumedFlight()
		} else {
			remaining = append(remaining, fl)
		}
	}
	if err := j.Compact(remaining); err != nil {
		return resumed, err
	}
	return resumed, nil
}

// resumeRecorder is the throwaway ResponseWriter a journal resume
// proxies into — nobody is waiting on the original connection anymore;
// only the outcome code matters.
type resumeRecorder struct {
	header http.Header
	code   int
}

func (r *resumeRecorder) Header() http.Header { return r.header }
func (r *resumeRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}
func (r *resumeRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return len(b), nil
}

// bodyReader wraps a buffered body for one proxy attempt (nil for GETs).
func bodyReader(body []byte) io.Reader {
	if body == nil {
		return nil
	}
	return bytes.NewReader(body)
}

// relay streams the worker's response through, flushing as bytes arrive
// so SSE frames are delivered live, while a TerminalScanner watches for
// the worker's end frame. Two upstream failures get an explicit
// terminal error frame appended: a mid-stream read error ("worker
// connection lost") and — the subtler one — a clean EOF with no end
// frame observed, which is a transport truncation however healthy it
// looked byte-by-byte.
func (r *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	copyHeader(w.Header(), resp.Header, "Content-Type", "Retry-After", "Cache-Control")
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	scan := NewTerminalScanner(ct)
	errorFrame := func(msg string) {
		// Clients distinguish this frame from the worker's own terminal
		// "end" frame and resubmit; the resubmission routes to the next
		// candidate (or the shard's replica).
		switch {
		case strings.Contains(ct, "text/event-stream"):
			fmt.Fprintf(w, "event: error\ndata: {\"error\":%q}\n\n", msg)
		case strings.Contains(ct, "application/x-ndjson"):
			fmt.Fprintf(w, "{\"event\":\"error\",\"error\":%q}\n", msg)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			scan.Observe(buf[:n])
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			if !scan.Terminated() {
				r.metrics.countTruncatedStream()
				errorFrame("stream truncated before terminal frame")
			}
			return
		}
		if err != nil {
			errorFrame("worker connection lost")
			return
		}
	}
}

// wallNow samples the wall clock for latency observability (hedge
// windows). No simulation result ever depends on it.
func wallNow() time.Time {
	//lint:ignore determinism latency observability needs the wall clock; results never depend on it
	return time.Now()
}

// copyHeader copies the named headers that are present in src.
func copyHeader(dst, src map[string][]string, names ...string) {
	for _, name := range names {
		if vs, ok := src[name]; ok {
			dst[name] = vs
		}
	}
}

func (r *Router) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		secs := int((r.opts.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// ActiveReplicas counts shards currently routing through a replica.
func (r *Router) ActiveReplicas() int {
	n := 0
	for i := range r.shards {
		r.shards[i].mu.Lock()
		if r.shards[i].replica != "" {
			n++
		}
		r.shards[i].mu.Unlock()
	}
	return n
}

// ReplicaFor returns the shard's active replica id ("" when none) —
// observability for /v1/cluster and tests.
func (r *Router) ReplicaFor(shard int) string {
	if shard < 0 || shard >= len(r.shards) {
		return ""
	}
	r.shards[shard].mu.Lock()
	defer r.shards[shard].mu.Unlock()
	return r.shards[shard].replica
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	alive := r.members.AliveCount()
	total := len(r.members.Workers())
	status, code := "ok", http.StatusOK
	switch {
	case alive == 0:
		status, code = "down", http.StatusServiceUnavailable
	case alive < total:
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"alive\":%d,\"workers\":%d,\"membership_version\":%d}\n",
		status, alive, total, r.members.Version())
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, r.metrics.Render(r.members.AliveCount(), r.members.Version(), r.ActiveReplicas()))
}

// clusterWorker is one row of the /v1/cluster worker listing.
type clusterWorker struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
}

// clusterReplica is one row of the /v1/cluster replica listing.
type clusterReplica struct {
	Shard   int     `json:"shard"`
	Replica string  `json:"replica"`
	P99MS   float64 `json:"p99_ms"`
}

func (r *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	workers := make([]clusterWorker, 0, len(r.members.Workers()))
	for _, wk := range r.members.Workers() {
		workers = append(workers, clusterWorker{ID: wk.ID, URL: wk.URL, Alive: r.members.Alive(wk.ID)})
	}
	var replicas []clusterReplica
	for i := range r.shards {
		r.shards[i].mu.Lock()
		if r.shards[i].replica != "" {
			replicas = append(replicas, clusterReplica{
				Shard: i, Replica: r.shards[i].replica, P99MS: r.shards[i].lastP99MS,
			})
		}
		r.shards[i].mu.Unlock()
	}
	doc := struct {
		MembershipVersion uint64           `json:"membership_version"`
		NumShards         int              `json:"num_shards"`
		Workers           []clusterWorker  `json:"workers"`
		Replicas          []clusterReplica `json:"replicas,omitempty"`
	}{r.members.Version(), r.opts.NumShards, workers, replicas}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// countingWriter records the status code for the request counter.
type countingWriter struct {
	http.ResponseWriter
	code int
}

func (c *countingWriter) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(b []byte) (int, error) {
	if c.code == 0 {
		c.code = http.StatusOK
	}
	return c.ResponseWriter.Write(b)
}

// Flush lets streaming handlers flush through the counter.
func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (c *countingWriter) Code() int {
	if c.code == 0 {
		return http.StatusOK
	}
	return c.code
}
