package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Options configures a Router.
type Options struct {
	// Workers declares the fleet. At least one worker is required; ids
	// must be unique and stable (they feed the rendezvous hash).
	Workers []Worker
	// NumShards sizes the virtual shard space; 0 means DefaultNumShards.
	// Every worker must be started with the same value.
	NumShards int
	// RequestID computes the content-hash request id for a submission
	// body — injected (cmd/mimdrouter wires serve.ComputeRequestID) so
	// this package never imports the serving layer.
	RequestID func(body []byte) (string, error)
	// Client proxies requests; nil means a client with no overall
	// timeout (SSE streams are long-lived).
	Client *http.Client
	// RetryAfter is the hint returned with 503 when no worker is
	// available; 0 means 1s.
	RetryAfter time.Duration

	// HotP99MS trips a shard's replica when its windowed p99 crosses it;
	// 0 means 250ms.
	HotP99MS float64
	// RecoverP99MS retires the replica once p99 stays at or under it;
	// 0 means HotP99MS/4.
	RecoverP99MS float64
	// MinSamples is the smallest window that can trip a replica; 0
	// means 16.
	MinSamples int64
	// HotPolls is how many consecutive hot polls trip a replica; 0
	// means 1.
	HotPolls int
	// CoolPolls is how many consecutive cool polls retire one; 0 means 3
	// (the "sustained recovery" hysteresis).
	CoolPolls int
	// PollInterval paces the rebalancer loop; 0 means 2s.
	PollInterval time.Duration
	// ProbeInterval paces the health prober; 0 means 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health or stats request; 0 means 500ms.
	ProbeTimeout time.Duration
	// ProbeRetries is how many extra immediate attempts (with backoff)
	// one probe round makes before counting a failure; 0 means 2.
	ProbeRetries int
	// ProbeBackoff is the base delay between those attempts, doubled
	// each retry; 0 means 50ms.
	ProbeBackoff time.Duration
	// FailThreshold is how many consecutive failed probe rounds mark a
	// worker dead; 0 means 2.
	FailThreshold int
}

func (o Options) withDefaults() Options {
	if o.NumShards <= 0 {
		o.NumShards = DefaultNumShards
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.HotP99MS <= 0 {
		o.HotP99MS = 250
	}
	if o.RecoverP99MS <= 0 {
		o.RecoverP99MS = o.HotP99MS / 4
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 16
	}
	if o.HotPolls <= 0 {
		o.HotPolls = 1
	}
	if o.CoolPolls <= 0 {
		o.CoolPolls = 3
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 2 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.ProbeRetries <= 0 {
		o.ProbeRetries = 2
	}
	if o.ProbeBackoff <= 0 {
		o.ProbeBackoff = 50 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	return o
}

// shardSlot is one virtual shard's routing state: the active replica (if
// any), the rebalancer's hysteresis streaks, and a pick counter that
// alternates reads between owner and replica.
type shardSlot struct {
	mu         sync.Mutex
	replica    string
	hotStreak  int
	coolStreak int
	lastP99MS  float64
	picks      uint64
}

// Router is the shard-manager tier: it owns the membership table,
// proxies submissions to the rendezvous owner of each request's shard,
// and runs the health prober and the p99 rebalancer.
type Router struct {
	opts    Options
	members *Membership
	metrics *Metrics
	shards  []shardSlot
	probe   *http.Client
	mux     *http.ServeMux
}

// New builds a router over the declared fleet.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if opts.RequestID == nil {
		return nil, fmt.Errorf("cluster: Options.RequestID is required")
	}
	members, err := NewMembership(opts.Workers)
	if err != nil {
		return nil, err
	}
	r := &Router{
		opts:    opts,
		members: members,
		metrics: newMetrics(),
		shards:  make([]shardSlot, opts.NumShards),
		probe:   &http.Client{Timeout: opts.ProbeTimeout},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /v1/cluster", r.handleCluster)
	mux.HandleFunc("GET /v1/experiments", r.handleExperiments)
	mux.HandleFunc("POST /v1/run", r.handleSubmit)
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleByID)
	mux.HandleFunc("GET /v1/jobs/{id}/events", r.handleByID)
	r.mux = mux
	return r, nil
}

// Members exposes the membership table (tests and cmd/mimdrouter).
func (r *Router) Members() *Membership { return r.members }

// Metrics exposes the router's counters.
func (r *Router) Metrics() *Metrics { return r.metrics }

// NumShards returns the router's shard-space size.
func (r *Router) NumShards() int { return r.opts.NumShards }

// Handler returns the router's HTTP handler with response-code
// accounting attached.
func (r *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		cw := &countingWriter{ResponseWriter: w}
		r.mux.ServeHTTP(cw, req)
		r.metrics.countRequest(cw.Code())
	})
}

// Start launches the health prober and the rebalancer; both stop when
// ctx is cancelled.
func (r *Router) Start(ctx context.Context) {
	go r.probeLoop(ctx)
	go r.rebalanceLoop(ctx)
}

// maxBodyBytes bounds a submission body (a spec is a few hundred bytes).
const maxBodyBytes = 1 << 20

// handleSubmit routes POST /v1/run and POST /v1/jobs: compute the
// content-hash id, map it to a shard, and proxy to the shard's owner
// (or, for a replicated hot shard, alternate between owner and replica).
func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	if err != nil {
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	id, err := r.opts.RequestID(body)
	if err != nil {
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid spec: %v", err))
		return
	}
	shard := ShardOf(id, r.opts.NumShards)
	r.proxyToShard(w, req, shard, body)
}

// handleByID routes GET /v1/jobs/{id} and GET /v1/jobs/{id}/events by
// the id already embedded in the path — the same shard mapping the
// submission used, so polls and event streams land on the worker that
// ran the flight.
func (r *Router) handleByID(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	shard := ShardOf(id, r.opts.NumShards)
	r.proxyToShard(w, req, shard, nil)
}

// handleExperiments proxies the registry listing to any alive worker.
func (r *Router) handleExperiments(w http.ResponseWriter, req *http.Request) {
	r.proxyToShard(w, req, 0, nil)
}

// candidates returns the failover-ordered worker ids for a shard. The
// first entry is the preferred target: normally the rendezvous owner,
// but when the shard has an alive replica every other pick is served by
// it — the read-spreading that relieves a hot shard. replicaRead
// reports whether the front candidate is the replica rather than the
// owner.
func (r *Router) candidates(shard int) (ids []string, replicaRead bool) {
	alive := r.members.AliveIDs()
	if len(alive) == 0 {
		return nil, false
	}
	rank := Rank(alive, shard)
	slot := &r.shards[shard]
	slot.mu.Lock()
	rep := slot.replica
	pick := slot.picks
	slot.picks++
	slot.mu.Unlock()
	if rep == "" || !r.members.Alive(rep) || rep == rank[0] || pick%2 == 0 {
		return rank, false
	}
	// Move the replica to the front, keeping the rest as failovers.
	out := make([]string, 0, len(rank))
	out = append(out, rep)
	for _, id := range rank {
		if id != rep {
			out = append(out, id)
		}
	}
	return out, true
}

// proxyToShard forwards the request to the shard's candidates in order,
// failing over (and passively marking workers down) on connection
// errors. Once a worker has started answering, the response streams
// through; if the worker dies mid-stream the router appends a terminal
// error frame so the client can tell "worker lost" from "complete".
func (r *Router) proxyToShard(w http.ResponseWriter, req *http.Request, shard int, body []byte) {
	cands, replicaRead := r.candidates(shard)
	for i, id := range cands {
		target := r.members.URL(id)
		out, err := http.NewRequestWithContext(req.Context(), req.Method,
			target+req.URL.Path, bodyReader(body))
		if err != nil {
			r.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		out.URL.RawQuery = req.URL.RawQuery
		copyHeader(out.Header, req.Header, "Content-Type", "Accept")
		resp, err := r.opts.Client.Do(out)
		if err != nil {
			if req.Context().Err() != nil {
				// The client went away; nothing to answer.
				return
			}
			// The worker is unreachable: passive failure detection. The
			// prober will notice recovery.
			r.members.MarkDown(id)
			if i+1 < len(cands) {
				r.metrics.countFailover()
			}
			replicaRead = false
			continue
		}
		r.metrics.countProxied(id, replicaRead && i == 0)
		r.relay(w, resp)
		return
	}
	r.metrics.countNoWorker()
	r.writeError(w, http.StatusServiceUnavailable, "no worker available for shard "+strconv.Itoa(shard))
}

// bodyReader wraps a buffered body for one proxy attempt (nil for GETs).
func bodyReader(body []byte) io.Reader {
	if body == nil {
		return nil
	}
	return bytes.NewReader(body)
}

// relay streams the worker's response through, flushing as bytes arrive
// so SSE frames are delivered live. A mid-stream upstream failure
// appends a terminal error frame matched to the stream's content type.
func (r *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	copyHeader(w.Header(), resp.Header, "Content-Type", "Retry-After", "Cache-Control")
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			// The worker died mid-stream. Clients distinguish this frame
			// from the worker's own terminal "end" frame and resubmit;
			// the resubmission routes to the next candidate (or the
			// shard's replica).
			switch {
			case strings.Contains(ct, "text/event-stream"):
				fmt.Fprint(w, "event: error\ndata: {\"error\":\"worker connection lost\"}\n\n")
			case strings.Contains(ct, "application/x-ndjson"):
				fmt.Fprint(w, "{\"event\":\"error\",\"error\":\"worker connection lost\"}\n")
			}
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}

// copyHeader copies the named headers that are present in src.
func copyHeader(dst, src map[string][]string, names ...string) {
	for _, name := range names {
		if vs, ok := src[name]; ok {
			dst[name] = vs
		}
	}
}

func (r *Router) writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		secs := int((r.opts.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// ActiveReplicas counts shards currently routing through a replica.
func (r *Router) ActiveReplicas() int {
	n := 0
	for i := range r.shards {
		r.shards[i].mu.Lock()
		if r.shards[i].replica != "" {
			n++
		}
		r.shards[i].mu.Unlock()
	}
	return n
}

// ReplicaFor returns the shard's active replica id ("" when none) —
// observability for /v1/cluster and tests.
func (r *Router) ReplicaFor(shard int) string {
	if shard < 0 || shard >= len(r.shards) {
		return ""
	}
	r.shards[shard].mu.Lock()
	defer r.shards[shard].mu.Unlock()
	return r.shards[shard].replica
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	alive := r.members.AliveCount()
	total := len(r.members.Workers())
	status, code := "ok", http.StatusOK
	switch {
	case alive == 0:
		status, code = "down", http.StatusServiceUnavailable
	case alive < total:
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"alive\":%d,\"workers\":%d,\"membership_version\":%d}\n",
		status, alive, total, r.members.Version())
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, r.metrics.Render(r.members.AliveCount(), r.members.Version(), r.ActiveReplicas()))
}

// clusterWorker is one row of the /v1/cluster worker listing.
type clusterWorker struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
}

// clusterReplica is one row of the /v1/cluster replica listing.
type clusterReplica struct {
	Shard   int     `json:"shard"`
	Replica string  `json:"replica"`
	P99MS   float64 `json:"p99_ms"`
}

func (r *Router) handleCluster(w http.ResponseWriter, _ *http.Request) {
	workers := make([]clusterWorker, 0, len(r.members.Workers()))
	for _, wk := range r.members.Workers() {
		workers = append(workers, clusterWorker{ID: wk.ID, URL: wk.URL, Alive: r.members.Alive(wk.ID)})
	}
	var replicas []clusterReplica
	for i := range r.shards {
		r.shards[i].mu.Lock()
		if r.shards[i].replica != "" {
			replicas = append(replicas, clusterReplica{
				Shard: i, Replica: r.shards[i].replica, P99MS: r.shards[i].lastP99MS,
			})
		}
		r.shards[i].mu.Unlock()
	}
	doc := struct {
		MembershipVersion uint64           `json:"membership_version"`
		NumShards         int              `json:"num_shards"`
		Workers           []clusterWorker  `json:"workers"`
		Replicas          []clusterReplica `json:"replicas,omitempty"`
	}{r.members.Version(), r.opts.NumShards, workers, replicas}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// countingWriter records the status code for the request counter.
type countingWriter struct {
	http.ResponseWriter
	code int
}

func (c *countingWriter) WriteHeader(code int) {
	if c.code == 0 {
		c.code = code
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(b []byte) (int, error) {
	if c.code == 0 {
		c.code = http.StatusOK
	}
	return c.ResponseWriter.Write(b)
}

// Flush lets streaming handlers flush through the counter.
func (c *countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (c *countingWriter) Code() int {
	if c.code == 0 {
		return http.StatusOK
	}
	return c.code
}
