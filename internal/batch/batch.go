// Package batch amortizes machine construction across trials that share
// a configuration *shape* and differ only in seed — the dominant cost of
// multi-seed statistics: every Section 7 curve is a mean over seeds of
// the same machine, yet building that machine (page directories, cache
// line arenas, bus registries, and above all the workload models' LRU
// backing arrays) dwarfs the cost of simulating the smaller shapes.
//
// An Arena owns one recyclable machine per shape. The first trial of a
// shape constructs the machine; every later trial rolls it back with
// Machine.Reset (generation-counter arenas, agents re-seeded in place)
// or, for agents that cannot re-seed, Machine.ResetWith (fresh agents on
// the recycled machine). Machine.Reset's byte-identity contract — a
// reset machine's traces, stats, and images equal a fresh one's, pinned
// by TestResetEqualsFresh — is what lets callers fuse trials without
// re-verifying outputs.
//
// Arenas are single-goroutine by design: the sweep engine gives each
// fused job group (one worker) its own Arena, keeping the parallel
// engine's scheduling freedom without locking.
package batch

import (
	"repro/internal/machine"
	"repro/internal/workload"
)

// Arena recycles machines by configuration shape. The zero value is not
// usable; call New.
type Arena struct {
	machines map[string]*machine.Machine
	// trials and reuses count arena traffic, for instrumentation and the
	// package's own reuse tests.
	trials, reuses int
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{machines: make(map[string]*machine.Machine)}
}

// Machine returns a machine for the given shape, seed and config:
// freshly constructed on the shape's first trial, recycled afterwards.
//
// shape must uniquely name the configuration within the arena's scope
// (one experiment run, in the sweep engine's usage) — two calls with the
// same shape string must pass equivalent cfg and agents constructors.
// agents() must build the agents for exactly this trial's seed; it is
// consulted on first construction and, per trial, when the shape's
// agents do not all implement workload.Reseeder (then the agents are
// rebuilt but every machine arena is still reused). When they do, the
// recycled machine re-seeds them in place and the trial allocates
// nothing at all.
func (a *Arena) Machine(shape string, cfg machine.Config, seed uint64, agents func() []workload.Agent) (*machine.Machine, error) {
	a.trials++
	m, ok := a.machines[shape]
	if !ok {
		m, err := machine.New(cfg, agents())
		if err != nil {
			return nil, err
		}
		a.machines[shape] = m
		return m, nil
	}
	a.reuses++
	if err := m.Reset(seed); err != nil {
		// Non-Reseeder agents: rebuild them for this seed, recycle the
		// rest of the machine.
		if err := m.ResetWith(agents()); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Reuses reports how many trials were served by recycling a machine
// rather than constructing one.
func (a *Arena) Reuses() int { return a.reuses }

// Trials reports how many machines the arena has handed out in total.
func (a *Arena) Trials() int { return a.trials }

// Run streams a set of seed-only trials through one shape: the machine
// is constructed (or recycled) for the first seed, then reset and reused
// for each subsequent one, with run invoked per trial. Every agent must
// implement workload.Reseeder — this is the zero-allocation streaming
// path; mixed-agent shapes go through Machine per trial instead.
func (a *Arena) Run(shape string, cfg machine.Config, seeds []uint64, agents func() []workload.Agent, run func(seed uint64, m *machine.Machine) error) error {
	if len(seeds) == 0 {
		return nil
	}
	m, err := a.Machine(shape, cfg, seeds[0], agents)
	if err != nil {
		return err
	}
	if err := run(seeds[0], m); err != nil {
		return err
	}
	a.trials += len(seeds) - 1
	a.reuses += len(seeds) - 1
	return stream(m, seeds[1:], run)
}

// stream is the steady-state batch trial loop: generation-reset, run,
// repeat. Nothing here may allocate — the whole point of the arena is
// that a trial's marginal cost is simulation alone, so the loop carries
// the same allocation-freedom contract as the machine's cycle loop.
//
//hotpath:allocfree
func stream(m *machine.Machine, seeds []uint64, run func(seed uint64, m *machine.Machine) error) error {
	for _, seed := range seeds {
		if err := m.Reset(seed); err != nil {
			return err
		}
		if err := run(seed, m); err != nil {
			return err
		}
	}
	return nil
}
