package batch

import (
	"fmt"
	"testing"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

func appAgents(seed uint64) []workload.Agent {
	layout := workload.DefaultLayout()
	agents := make([]workload.Agent, 4)
	for i := range agents {
		agents[i] = workload.MustApp(workload.QuicksortProfile(), layout, i, seed, 300)
	}
	return agents
}

var cfg = machine.Config{Protocol: coherence.RB{}, CacheLines: 64, CheckConsistency: true}

// metricsOf drives a machine to completion and fingerprints the run.
func metricsOf(t *testing.T, m *machine.Machine) string {
	t.Helper()
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("machine not done")
	}
	return fmt.Sprintf("%+v", m.Metrics())
}

// TestArenaRecyclesPerShape checks the arena's bookkeeping and that a
// recycled machine's results match a fresh one's per seed.
func TestArenaRecyclesPerShape(t *testing.T) {
	a := New()
	seeds := []uint64{5, 6, 7}
	for _, seed := range seeds {
		seed := seed
		m, err := a.Machine("shape-a", cfg, seed, func() []workload.Agent { return appAgents(seed) })
		if err != nil {
			t.Fatal(err)
		}
		got := metricsOf(t, m)
		want := metricsOf(t, machine.MustNew(cfg, appAgents(seed)))
		if got != want {
			t.Errorf("seed %d: recycled metrics differ from fresh", seed)
		}
	}
	if a.Trials() != len(seeds) || a.Reuses() != len(seeds)-1 {
		t.Errorf("trials=%d reuses=%d, want %d/%d", a.Trials(), a.Reuses(), len(seeds), len(seeds)-1)
	}
	// A different shape gets its own machine, not a reset of shape-a's.
	if _, err := a.Machine("shape-b", cfg, 5, func() []workload.Agent { return appAgents(5) }); err != nil {
		t.Fatal(err)
	}
	if a.Reuses() != len(seeds)-1 {
		t.Errorf("new shape counted as a reuse")
	}
}

// TestArenaRunStreams drives the streaming entry point across seeds and
// compares each trial against a fresh machine.
func TestArenaRunStreams(t *testing.T) {
	a := New()
	seeds := []uint64{1, 2, 3, 4}
	got := make(map[uint64]string)
	err := a.Run("s", cfg, seeds, func() []workload.Agent { return appAgents(seeds[0]) },
		func(seed uint64, m *machine.Machine) error {
			got[seed] = metricsOf(t, m)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seeds {
		want := metricsOf(t, machine.MustNew(cfg, appAgents(seed)))
		if got[seed] != want {
			t.Errorf("seed %d: streamed metrics differ from fresh", seed)
		}
	}
	if a.Trials() != len(seeds) || a.Reuses() != len(seeds)-1 {
		t.Errorf("trials=%d reuses=%d, want %d/%d", a.Trials(), a.Reuses(), len(seeds), len(seeds)-1)
	}
}

// TestSteadyStateTrialAllocFree pins the batch runner's headline number:
// once a shape's machine exists, a whole trial — generation reset plus
// the full simulation — allocates (near) nothing. This is the trial-level
// analogue of the cycle loop's 0 allocs/cycle gate.
func TestSteadyStateTrialAllocFree(t *testing.T) {
	m := machine.MustNew(cfg, appAgents(1))
	metricsOf(t, m) // warm up: populate pages, presence masks, plan memos
	var seed uint64
	allocs := testing.AllocsPerRun(5, func() {
		seed++
		if err := m.Reset(seed); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(2_000_000); err != nil {
			t.Fatal(err)
		}
		if !m.Done() {
			t.Fatal("machine not done")
		}
	})
	// Tolerate a stray allocation or two (lazy page revival growth on a
	// previously unseen address); the construction path this replaces
	// costs hundreds of thousands.
	if allocs > 2 {
		t.Errorf("steady-state trial allocates %.0f times, want ~0", allocs)
	}
}
