package fault

import (
	"testing"

	"repro/internal/sweep"
)

func TestCampaignSpecConfig(t *testing.T) {
	spec := CampaignSpec{
		Protocols: []string{"rb", "rwb"},
		Classes:   []string{"bus-drop", "mem-bit-flip"},
		Seeds:     []uint64{1, 2},
		Trials:    3,
		Refs:      200,
		PEs:       2,
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Classes) != 2 || cfg.Classes[0] != BusDrop {
		t.Fatalf("classes = %v", cfg.Classes)
	}
	if cfg.Trials != 3 || cfg.Trial.Refs != 200 || cfg.Trial.PEs != 2 {
		t.Fatalf("trial shape not carried: %+v", cfg)
	}

	if _, err := (CampaignSpec{Classes: []string{"no-such-class"}}).Config(); err == nil {
		t.Fatal("unknown class accepted")
	}
	if _, err := (CampaignSpec{Protocols: []string{"no-such-protocol"}}).Config(); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := (CampaignSpec{PEs: 64}).Config(); err == nil {
		t.Fatal("PEs >= AddrRange accepted")
	}
}

// TestConfigVersionSaltsTrialShape is the cache-soundness property: two
// campaigns whose cells would produce different tallies must never share
// job keys, even though the cell id and seed are identical.
func TestConfigVersionSaltsTrialShape(t *testing.T) {
	base := CampaignConfig{}
	same := CampaignConfig{Trials: 4} // 4 is the default: same shape
	if ConfigVersion(base) != ConfigVersion(same) {
		t.Fatal("explicit default changed the epoch")
	}
	variants := []CampaignConfig{
		{Trials: 8},
		func() CampaignConfig { c := CampaignConfig{}; c.Trial.Refs = 500; return c }(),
		func() CampaignConfig { c := CampaignConfig{}; c.Trial.PEs = 8; c.Trial.AddrRange = 128; return c }(),
	}
	seen := map[int]bool{ConfigVersion(base): true}
	for i, v := range variants {
		ver := ConfigVersion(v)
		if seen[ver] {
			t.Fatalf("variant %d collides with an earlier epoch (%d)", i, ver)
		}
		seen[ver] = true
	}
	// And the salt flows into the expanded specs' cache keys.
	a := jobKeys(base)
	b := jobKeys(CampaignConfig{Trials: 8})
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no jobs expanded")
	}
	for k := range a {
		if b[k] {
			t.Fatalf("trial-shape change left job key %s shared", k)
		}
	}
}

// jobKeys expands a campaign and collects its content-hash cache keys.
func jobKeys(c CampaignConfig) map[string]bool {
	keys := map[string]bool{}
	for _, j := range sweep.Expand(c.Specs()) {
		keys[j.Key] = true
	}
	return keys
}
