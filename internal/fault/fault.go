// Package fault is the deterministic fault-injection and resilience layer
// (DESIGN.md S23). It builds seeded fault plans — one precisely located
// perturbation per trial — and injects them through the explicit hooks the
// simulator's layers expose: the bus's Injector port (dropped, duplicated
// and snoop-suppressed transactions, frozen arbitration), the memory's
// write interceptor and Corrupt (lost writes, single-bit flips), and the
// cache's Inject* methods (spurious invalidation, stale data).
//
// Every trial runs against the machine's always-on divergence oracles —
// the read-latest consistency oracle, the watchdog, the final-memory
// verification and the final-state coherence audit — and is classified:
//
//   - masked: the run completed, every oracle passed, and the final memory
//     image is byte-identical to the fault-free reference. The fault had
//     no observable effect (it hit a dead copy, was overwritten, or was
//     absorbed by redundancy — e.g. a dirty cache line re-supplying a lost
//     memory write).
//   - detected: an oracle tripped — the consistency oracle at a read, the
//     watchdog on a wedged transaction, the final-memory check, or the
//     coherence audit — naming the divergence.
//   - silent-divergence: the run completed, every oracle passed, and the
//     final image still differs from the reference. The fault corrupted
//     state the oracles cannot see.
//
// The campaign workload is single-writer-per-address (each PE reads the
// whole shared range but writes only addresses it owns), which makes the
// fault-free final image independent of transaction interleaving — a
// purely timing-shifting fault (a delay, a retried transaction) converges
// back to the reference image and is correctly classified as masked
// rather than spuriously "divergent".
//
// Everything is seeded: same seed + same campaign spec → byte-identical
// report, across worker counts, because the fault plan, the workload, and
// the simulator are all driven by workload.RNG and the sweep engine merges
// in canonical order.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/bus"
)

// Class enumerates the injectable fault classes, one per hook point.
type Class uint8

const (
	// BusDrop suppresses one granted bus transaction: the cycle is
	// consumed but neither memory nor any snooper (nor the issuer) sees
	// the transaction.
	BusDrop Class = iota
	// BusDup executes one granted transaction twice back to back.
	BusDup
	// BusSnoopSuppress executes one granted transaction with snooping
	// muted: no shared-line sample, no owner interrupt, no broadcast —
	// the classic "missed snoop".
	BusSnoopSuppress
	// BusArbFreeze wedges the arbiter for a bounded run of cycles: no
	// grants, request lines stay asserted.
	BusArbFreeze
	// MemBitFlip XORs one bit into one stored memory word.
	MemBitFlip
	// MemLostWrite silently swallows one bus write inside the memory.
	MemLostWrite
	// CacheSpuriousInv drops one valid cache line with no write-back.
	CacheSpuriousInv
	// CacheStale XORs one bit into one valid cache line's data.
	CacheStale
	numClasses
)

// String returns the class's kebab-case name (the campaign cell-id and
// CLI vocabulary).
func (c Class) String() string {
	switch c {
	case BusDrop:
		return "bus-drop"
	case BusDup:
		return "bus-dup"
	case BusSnoopSuppress:
		return "bus-snoop-suppress"
	case BusArbFreeze:
		return "bus-arb-freeze"
	case MemBitFlip:
		return "mem-bit-flip"
	case MemLostWrite:
		return "mem-lost-write"
	case CacheSpuriousInv:
		return "cache-spurious-inv"
	case CacheStale:
		return "cache-stale"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classes returns every fault class in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ParseClass resolves a kebab-case class name.
func ParseClass(name string) (Class, error) {
	for _, c := range Classes() {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown class %q (have %v)", name, Classes())
}

// Detectable reports whether the oracles guarantee the class can never be
// silent: every injected fault of the class is either masked or detected.
// The one exception is MemBitFlip — a flip on an address no bus write ever
// touched passes the consistency oracle (its pristine-value fallback reads
// the corrupted word itself) and lands outside the final-memory check's
// domain, so it can corrupt the image silently. That blind spot is
// structural (the oracles only know values the program produced) and is
// exactly what the campaign's silent-divergence column measures.
func (c Class) Detectable() bool { return c != MemBitFlip }

// DetectableClasses returns the classes for which a silent divergence is
// an oracle bug by construction — the set check.sh's smoke gate asserts
// zero silents over.
func DetectableClasses() []Class {
	var out []Class
	for _, c := range Classes() {
		if c.Detectable() {
			out = append(out, c)
		}
	}
	return out
}

// Outcome is a trial's classification.
type Outcome uint8

const (
	// Masked: every oracle passed and the final image matches the
	// fault-free reference.
	Masked Outcome = iota
	// Detected: an oracle tripped (consistency, watchdog, final-memory,
	// or coherence audit).
	Detected
	// Silent: every oracle passed but the final image diverged.
	Silent
)

// String names the outcome as the report column header does.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Detected:
		return "detected"
	case Silent:
		return "silent"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// imagesDiff returns the lowest address at which the two final images
// disagree. Map iteration order never reaches the result: the keys of
// both images are collected and sorted first.
func imagesDiff(got, want map[bus.Addr]bus.Word) (addr bus.Addr, differs bool) {
	addrs := make([]bus.Addr, 0, len(got)+len(want))
	for a := range got {
		addrs = append(addrs, a)
	}
	for a := range want {
		if _, ok := got[a]; !ok {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		gv, gok := got[a]
		wv, wok := want[a]
		if gok != wok || gv != wv {
			return a, true
		}
	}
	return 0, false
}
