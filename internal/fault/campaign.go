package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/batch"
	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Version is the campaign cells' cache epoch: it salts every cell's
// content-hash key, so bumping it after any behavioral change to the fault
// layer orphans stale memoized results instead of resuming from them.
const Version = 1

// CampaignConfig spans a fault campaign: protocols × classes × seeds, each
// cell running Trials independently planned faults.
type CampaignConfig struct {
	// Protocols are coherence scheme names (coherence.ByName); default
	// {rb, rwb, goodman, illinois}.
	Protocols []string
	// Classes defaults to every fault class.
	Classes []Class
	// Seeds are the campaign's workload seeds; each seed is its own
	// reference run and trial set. Default {1}.
	Seeds []uint64
	// Trials per (protocol, class, seed) cell; default 4.
	Trials int
	// Trial sizes each cell's machine; Trial.Protocol is overridden per
	// cell.
	Trial TrialConfig
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if len(c.Protocols) == 0 {
		c.Protocols = []string{"rb", "rwb", "goodman", "illinois"}
	}
	if len(c.Classes) == 0 {
		c.Classes = Classes()
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1}
	}
	if c.Trials == 0 {
		c.Trials = 4
	}
	c.Trial = c.Trial.withDefaults()
	return c
}

// Validate resolves every protocol and class name before any job runs.
func (c CampaignConfig) Validate() error {
	cfg := c.withDefaults()
	for _, name := range cfg.Protocols {
		if _, err := coherence.ByName(name); err != nil {
			return err
		}
	}
	if cfg.Trial.AddrRange <= cfg.Trial.PEs {
		return fmt.Errorf("fault: AddrRange %d must exceed PEs %d", cfg.Trial.AddrRange, cfg.Trial.PEs)
	}
	return nil
}

// CellID names one (protocol, class) campaign cell, e.g.
// "fault-rb-bus-drop". Protocol and class names both contain dashes, but
// the class vocabulary is closed, so ParseCellID splits unambiguously on
// the class suffix.
func CellID(protocol string, class Class) string {
	return "fault-" + protocol + "-" + class.String()
}

// ParseCellID inverts CellID.
func ParseCellID(id string) (protocol string, class Class, err error) {
	rest, ok := strings.CutPrefix(id, "fault-")
	if !ok {
		return "", 0, fmt.Errorf("fault: cell id %q does not start with \"fault-\"", id)
	}
	for _, c := range Classes() {
		if p, found := strings.CutSuffix(rest, "-"+c.String()); found {
			return p, c, nil
		}
	}
	return "", 0, fmt.Errorf("fault: cell id %q names no known fault class", id)
}

// Specs expands the campaign into sweep specs, one per (protocol, class,
// seed) cell in protocol-major order. Each spec carries exactly one seed,
// so the engine's per-spec aggregation is a pass-through and every cell
// table survives verbatim into the outcome — the matrix is built from
// those, not from mean±stddev blends. The spec version is
// ConfigVersion(c): the cache epoch is salted by the trial shape, so
// campaigns of different shapes never share memoized cells.
func (c CampaignConfig) Specs() []sweep.Spec {
	cfg := c.withDefaults()
	version := ConfigVersion(cfg)
	var specs []sweep.Spec
	for _, proto := range cfg.Protocols {
		for _, class := range cfg.Classes {
			for _, seed := range cfg.Seeds {
				specs = append(specs, sweep.Spec{
					Experiment: CellID(proto, class),
					Version:    version,
					Axes:       experiments.Axes{Seed: true},
					Seeds:      []uint64{seed},
				})
			}
		}
	}
	return specs
}

// cellColumns is the schema of every cell table; Matrix parses counts back
// out of it by these names.
var cellColumns = []string{"cell", "protocol", "class", "seed", "trials", "masked", "detected", "silent", "details"}

// runCell executes one campaign cell: a fault-free reference run for the
// cell's seed, then Trials planned faults of the cell's class, classified
// and tallied into a one-row table. With a non-nil arena the reference
// and every trial recycle one machine per trial shape (protocol-major,
// since that is all that varies within a campaign); the tallies are
// byte-identical either way.
func runCell(cfg CampaignConfig, arena *batch.Arena, spec sweep.JobSpec) (*report.Table, error) {
	protoName, class, err := ParseCellID(spec.Experiment)
	if err != nil {
		return nil, err
	}
	proto, err := coherence.ByName(protoName)
	if err != nil {
		return nil, err
	}
	tcfg := cfg.Trial
	tcfg.Protocol = proto
	ref, err := tcfg.ReferenceIn(arena, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s seed %d: %w", spec.Experiment, spec.Seed, err)
	}
	var counts [3]int
	var details []string
	// Per-trial plan seeds come from one seeded stream, so trial t of
	// cell (proto, class, seed) is the same fault everywhere, forever.
	trialRNG := workload.NewRNG(spec.Seed ^ 0xfa17fa17fa17fa17)
	for t := 0; t < cfg.Trials; t++ {
		res, err := RunTrialIn(arena, tcfg, ref, class, spec.Seed, trialRNG.Uint64())
		if err != nil {
			return nil, fmt.Errorf("%s seed %d trial %d: %w", spec.Experiment, spec.Seed, t, err)
		}
		counts[res.Outcome]++
		details = append(details, fmt.Sprintf("t%d %v: %s", t, res.Outcome, res.Detail))
	}
	table := &report.Table{
		ID:      spec.Experiment,
		Title:   fmt.Sprintf("Fault cell %s vs %s", protoName, class),
		Columns: cellColumns,
	}
	table.AddRow(spec.Experiment, protoName, class.String(),
		strconv.FormatUint(spec.Seed, 10), strconv.Itoa(cfg.Trials),
		strconv.Itoa(counts[Masked]), strconv.Itoa(counts[Detected]), strconv.Itoa(counts[Silent]),
		strings.Join(details, " | "))
	return table, nil
}

// NewCellRunner returns the sweep.Runner that executes one campaign cell
// with a fresh machine per reference and trial.
func NewCellRunner(c CampaignConfig) sweep.Runner {
	cfg := c.withDefaults()
	return func(spec sweep.JobSpec) (*report.Table, error) {
		return runCell(cfg, nil, spec)
	}
}

// NewBatchCellRunner is NewCellRunner vectorized through the sweep
// engine's fused job groups: every cell in a group shares one batch
// arena, so the (Trials+1) machines a cell used to construct collapse to
// one generation-reset machine per protocol shape.
func NewBatchCellRunner(c CampaignConfig) sweep.BatchRunner {
	cfg := c.withDefaults()
	return func(spec sweep.JobSpec, arena *batch.Arena) (*report.Table, error) {
		return runCell(cfg, arena, spec)
	}
}

// cellCounts is one cell table's parsed tally.
type cellCounts struct {
	Protocol string
	Class    Class
	Seed     uint64
	Trials   int
	Masked   int
	Detected int
	Silent   int
	Details  string
}

// parseCell reads the tally back out of a cell table (which may have come
// from the on-disk store, not this process).
func parseCell(t *report.Table) (cellCounts, error) {
	if t == nil || len(t.Rows) != 1 {
		return cellCounts{}, fmt.Errorf("fault: cell table %q is not one row", tableID(t))
	}
	col := make(map[string]int, len(t.Columns))
	for i, name := range t.Columns {
		col[name] = i
	}
	row := t.Rows[0]
	get := func(name string) (string, error) {
		i, ok := col[name]
		if !ok || i >= len(row) {
			return "", fmt.Errorf("fault: cell table %q has no %q column", t.ID, name)
		}
		return row[i], nil
	}
	var cc cellCounts
	var err error
	if cc.Protocol, err = get("protocol"); err != nil {
		return cc, err
	}
	className, err := get("class")
	if err != nil {
		return cc, err
	}
	if cc.Class, err = ParseClass(className); err != nil {
		return cc, err
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{{"trials", &cc.Trials}, {"masked", &cc.Masked}, {"detected", &cc.Detected}, {"silent", &cc.Silent}} {
		s, err := get(f.name)
		if err != nil {
			return cc, err
		}
		if *f.dst, err = strconv.Atoi(s); err != nil {
			return cc, fmt.Errorf("fault: cell table %q: bad %s count %q", t.ID, f.name, s)
		}
	}
	if s, err := get("seed"); err == nil {
		cc.Seed, _ = strconv.ParseUint(s, 10, 64)
	}
	cc.Details, _ = get("details")
	return cc, nil
}

func tableID(t *report.Table) string {
	if t == nil {
		return "<nil>"
	}
	return t.ID
}

// Matrix folds a completed campaign into the per-protocol resilience
// matrix: one row per protocol, one column per fault class, each cell
// "masked/detected/silent" summed over seeds and trials. Rows and columns
// follow the campaign config's declared order, so the rendering is
// byte-stable across runs and worker counts.
func Matrix(c CampaignConfig, out *sweep.Outcome) (*report.Table, error) {
	cfg := c.withDefaults()
	type key struct {
		proto string
		class Class
	}
	sums := make(map[key]*cellCounts)
	for _, jr := range out.Jobs {
		cc, err := parseCell(jr.Table)
		if err != nil {
			return nil, err
		}
		k := key{cc.Protocol, cc.Class}
		if agg, ok := sums[k]; ok {
			agg.Trials += cc.Trials
			agg.Masked += cc.Masked
			agg.Detected += cc.Detected
			agg.Silent += cc.Silent
		} else {
			copied := cc
			sums[k] = &copied
		}
	}
	columns := []string{"protocol"}
	for _, class := range cfg.Classes {
		columns = append(columns, class.String())
	}
	columns = append(columns, "silent-total")
	matrix := &report.Table{
		ID:      "fault-matrix",
		Title:   "Per-protocol resilience matrix (masked/detected/silent per class)",
		Note:    fmt.Sprintf("%d trial(s) × %d seed(s) per cell; silent divergences are expected only for mem-bit-flip (oracle blind spot on never-written addresses)", cfg.Trials, len(cfg.Seeds)),
		Columns: columns,
	}
	for _, proto := range cfg.Protocols {
		row := []string{proto}
		silentTotal := 0
		for _, class := range cfg.Classes {
			cc := sums[key{proto, class}]
			if cc == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%d/%d/%d", cc.Masked, cc.Detected, cc.Silent))
			silentTotal += cc.Silent
		}
		row = append(row, strconv.Itoa(silentTotal))
		matrix.AddRow(row...)
	}
	return matrix, nil
}

// SilentViolations scans a completed campaign for silent divergences in
// detectable classes — each one is an oracle hole, and the check.sh smoke
// gate fails on any. The returned strings name the offending cells in
// canonical job order.
func SilentViolations(out *sweep.Outcome) ([]string, error) {
	var bad []string
	for _, jr := range out.Jobs {
		cc, err := parseCell(jr.Table)
		if err != nil {
			return nil, err
		}
		if cc.Silent > 0 && cc.Class.Detectable() {
			bad = append(bad, fmt.Sprintf("%s seed=%d: %d silent divergence(s): %s",
				CellID(cc.Protocol, cc.Class), cc.Seed, cc.Silent, cc.Details))
		}
	}
	return bad, nil
}

// RenderReport renders the full campaign artifact: the resilience matrix
// followed by every cell table in canonical order. Byte-identical for the
// same config and seeds regardless of worker count or cache state.
func RenderReport(c CampaignConfig, out *sweep.Outcome, format string) (string, error) {
	matrix, err := Matrix(c, out)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(matrix.Render(format))
	sb.WriteString("\n")
	for _, jr := range out.Jobs {
		sb.WriteString(jr.Table.Render(format))
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
