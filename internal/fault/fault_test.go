package fault

import (
	"context"
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/sweep"
)

// testCampaign is the small campaign the determinism and soundness tests
// share: 2 protocols × all classes × 1 seed × 2 trials = 16 cells.
func testCampaign() CampaignConfig {
	return CampaignConfig{
		Protocols: []string{"rb", "rwb"},
		Seeds:     []uint64{1},
		Trials:    2,
		Trial: TrialConfig{
			PEs:       4,
			Refs:      200,
			AddrRange: 64,
		},
	}
}

func runCampaign(t *testing.T, cfg CampaignConfig, workers int) *sweep.Outcome {
	t.Helper()
	eng := sweep.New(sweep.Options{
		Workers: workers,
		Runner:  NewCellRunner(cfg),
	})
	out, err := eng.Run(context.Background(), cfg.Specs())
	if err != nil {
		t.Fatalf("campaign (workers=%d): %v", workers, err)
	}
	return out
}

// TestCampaignDeterministicAcrossWorkers is the acceptance criterion in the
// flesh: same seed + same spec → byte-identical report, whether the cells
// run on one worker or race across four.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := testCampaign()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	serial := runCampaign(t, cfg, 1)
	parallel := runCampaign(t, cfg, 4)
	for _, format := range []string{"plain", "csv"} {
		a, err := RenderReport(cfg, serial, format)
		if err != nil {
			t.Fatalf("RenderReport(serial, %s): %v", format, err)
		}
		b, err := RenderReport(cfg, parallel, format)
		if err != nil {
			t.Fatalf("RenderReport(parallel, %s): %v", format, err)
		}
		if a != b {
			t.Errorf("%s report differs between -j1 and -j4:\n--- j1 ---\n%s\n--- j4 ---\n%s", format, a, b)
		}
		if a == "" {
			t.Errorf("%s report is empty", format)
		}
	}
}

// TestCampaignNoSilentDivergence asserts the oracle-soundness half of the
// tentpole: on the smoke campaign, every injected fault of a detectable
// class is masked or detected, never silent.
func TestCampaignNoSilentDivergence(t *testing.T) {
	cfg := testCampaign()
	out := runCampaign(t, cfg, 4)
	bad, err := SilentViolations(out)
	if err != nil {
		t.Fatalf("SilentViolations: %v", err)
	}
	if len(bad) > 0 {
		t.Errorf("silent divergences in detectable classes:\n%s", strings.Join(bad, "\n"))
	}
	matrix, err := Matrix(cfg, out)
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if len(matrix.Rows) != len(cfg.Protocols) {
		t.Errorf("matrix has %d rows, want %d", len(matrix.Rows), len(cfg.Protocols))
	}
	// Every cell must account for every trial: masked+detected+silent ==
	// trials × seeds.
	total := 0
	for _, jr := range out.Jobs {
		cc, err := parseCell(jr.Table)
		if err != nil {
			t.Fatalf("parseCell(%s): %v", jr.Table.ID, err)
		}
		if got := cc.Masked + cc.Detected + cc.Silent; got != cc.Trials {
			t.Errorf("cell %s: %d outcomes for %d trials", jr.Table.ID, got, cc.Trials)
		}
		total += cc.Trials
	}
	want := len(cfg.Protocols) * len(Classes()) * len(cfg.Seeds) * cfg.Trials
	if total != want {
		t.Errorf("campaign ran %d trials, want %d", total, want)
	}
}

// TestCellIDRoundTrip exercises ParseCellID across the full protocol ×
// class vocabulary, including "rb-dirty" whose name embeds a dash that a
// naive split would hand to the class.
func TestCellIDRoundTrip(t *testing.T) {
	for _, kind := range coherence.Kinds() {
		proto := kind.String()
		for _, class := range Classes() {
			id := CellID(proto, class)
			gotProto, gotClass, err := ParseCellID(id)
			if err != nil {
				t.Fatalf("ParseCellID(%q): %v", id, err)
			}
			if gotProto != proto || gotClass != class {
				t.Errorf("ParseCellID(%q) = (%q, %v), want (%q, %v)", id, gotProto, gotClass, proto, class)
			}
		}
	}
	for _, bad := range []string{"", "rb-bus-drop", "fault-rb", "fault-rb-no-such-class"} {
		if _, _, err := ParseCellID(bad); err == nil {
			t.Errorf("ParseCellID(%q) unexpectedly succeeded", bad)
		}
	}
}

// TestClassRoundTrip pins the kebab-case vocabulary and ParseClass.
func TestClassRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		name := c.String()
		if seen[name] {
			t.Errorf("duplicate class name %q", name)
		}
		seen[name] = true
		if strings.Contains(name, "Class(") {
			t.Errorf("class %d has no name", c)
		}
		got, err := ParseClass(name)
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", name, err)
		}
		if got != c {
			t.Errorf("ParseClass(%q) = %v, want %v", name, got, c)
		}
	}
	if _, err := ParseClass("bus-typo"); err == nil {
		t.Error("ParseClass(bus-typo) unexpectedly succeeded")
	}
	det := DetectableClasses()
	if len(det) != len(Classes())-1 {
		t.Errorf("DetectableClasses has %d entries, want %d", len(det), len(Classes())-1)
	}
	for _, c := range det {
		if c == MemBitFlip {
			t.Error("MemBitFlip must not be in DetectableClasses")
		}
	}
}

// TestPlanEventDeterministic pins the plan generator: identical inputs
// yield identical events, and different trial seeds genuinely move the
// fault around.
func TestPlanEventDeterministic(t *testing.T) {
	cfg := TrialConfig{}.withDefaults()
	ref := &Reference{Cycles: 10_000, Writes: 500}
	for _, class := range Classes() {
		a := PlanEvent(class, 42, ref, cfg)
		b := PlanEvent(class, 42, ref, cfg)
		if a != b {
			t.Errorf("%v: PlanEvent not deterministic: %+v vs %+v", class, a, b)
		}
		if a.Trigger == 0 || a.Trigger >= ref.Cycles {
			t.Errorf("%v: trigger %d outside (0, %d)", class, a.Trigger, ref.Cycles)
		}
	}
	diff := 0
	for _, class := range Classes() {
		if PlanEvent(class, 1, ref, cfg) != PlanEvent(class, 2, ref, cfg) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("changing the trial seed never changed any planned event")
	}
}

// TestReferenceDeterministic pins the fault-free reference run: same
// workload seed → same image and cycle count, and the trial machinery's
// oracles all pass with no fault installed.
func TestReferenceDeterministic(t *testing.T) {
	cfg := TrialConfig{PEs: 4, Refs: 200, AddrRange: 64}
	a, err := cfg.Reference(7)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	b, err := cfg.Reference(7)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	if a.Cycles != b.Cycles || a.Writes != b.Writes {
		t.Errorf("reference not deterministic: cycles %d vs %d, writes %d vs %d", a.Cycles, b.Cycles, a.Writes, b.Writes)
	}
	if addr, differs := imagesDiff(a.Image, b.Image); differs {
		t.Errorf("reference images differ at addr %d", addr)
	}
	if len(a.Image) == 0 {
		t.Error("reference image is empty; workload wrote nothing")
	}
}

// TestRunTrialKnownDetections drives one hand-picked fault per layer and
// asserts the classifier lands on a sane outcome with a named detector —
// the taxonomy is only useful if detections say what caught them.
func TestRunTrialKnownDetections(t *testing.T) {
	cfg := TrialConfig{PEs: 4, Refs: 300, AddrRange: 64}
	cfg = cfg.withDefaults()
	ref, err := cfg.Reference(3)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	for _, class := range Classes() {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			sawDetected := false
			for trialSeed := uint64(0); trialSeed < 8; trialSeed++ {
				res, err := RunTrial(cfg, ref, class, 3, trialSeed)
				if err != nil {
					t.Fatalf("RunTrial(seed %d): %v", trialSeed, err)
				}
				if res.Detail == "" {
					t.Errorf("seed %d: empty detail", trialSeed)
				}
				switch res.Outcome {
				case Detected:
					sawDetected = true
				case Silent:
					if class.Detectable() {
						t.Errorf("seed %d: silent divergence in detectable class: %s", trialSeed, res.Detail)
					}
				}
			}
			// Every class except the bus timing-perturbations reliably
			// produces at least one detection in 8 trials at this size;
			// drop/dup/suppress are legitimately maskable everywhere, so
			// only assert where detection is structurally forced.
			if class == BusArbFreeze && !sawDetected {
				t.Error("8 arb-freeze trials never tripped the watchdog")
			}
		})
	}
}

// TestRunTrialFiredAndClassified asserts the bus one-shot injectors
// actually fire (Fired=true with a populated detail), not just plan.
func TestRunTrialFiredAndClassified(t *testing.T) {
	cfg := TrialConfig{PEs: 4, Refs: 300, AddrRange: 64}
	cfg = cfg.withDefaults()
	ref, err := cfg.Reference(5)
	if err != nil {
		t.Fatalf("Reference: %v", err)
	}
	for _, class := range []Class{BusDrop, BusDup, BusSnoopSuppress, MemLostWrite} {
		res, err := RunTrial(cfg, ref, class, 5, 11)
		if err != nil {
			t.Fatalf("RunTrial(%v): %v", class, err)
		}
		if !res.Fired {
			t.Errorf("%v: planned fault never fired: %s", class, res.Detail)
		}
	}
}
