package fault

import (
	"fmt"
	"hash/fnv"
)

// CampaignSpec is the JSON-friendly form of CampaignConfig: the shape a
// fault campaign takes when it arrives over the wire (the S24 service
// layer) or from CLI flags. Zero values mean "use the campaign
// defaults"; Config resolves and validates everything before any job is
// expanded.
type CampaignSpec struct {
	// Protocols are coherence scheme names; empty means the default set.
	Protocols []string `json:"protocols,omitempty"`
	// Classes are fault class names (see Classes); empty means all.
	Classes []string `json:"classes,omitempty"`
	// Seeds are campaign workload seeds; empty means {1}.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Trials per (protocol, class, seed) cell; 0 means 4.
	Trials int `json:"trials,omitempty"`
	// Refs is memory references per PE per trial; 0 means 300.
	Refs int `json:"refs,omitempty"`
	// PEs is processing elements per trial machine; 0 means 4.
	PEs int `json:"pes,omitempty"`
}

// Config resolves the spec into a validated CampaignConfig: class names
// are parsed, protocol names resolved against the coherence registry,
// and the trial shape checked, so a bad request fails before any cell
// runs.
func (s CampaignSpec) Config() (CampaignConfig, error) {
	cfg := CampaignConfig{
		Protocols: append([]string(nil), s.Protocols...),
		Seeds:     append([]uint64(nil), s.Seeds...),
		Trials:    s.Trials,
	}
	cfg.Trial.Refs = s.Refs
	cfg.Trial.PEs = s.PEs
	for _, name := range s.Classes {
		c, err := ParseClass(name)
		if err != nil {
			return cfg, err
		}
		cfg.Classes = append(cfg.Classes, c)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// WithDefaults returns the config with every unset field resolved to
// its default — the exact shape Specs and NewCellRunner execute, which
// is what request canonicalization must hash.
func (c CampaignConfig) WithDefaults() CampaignConfig {
	return c.withDefaults()
}

// ConfigVersion derives the campaign's cache epoch from the fault
// layer's Version plus every trial parameter that changes cell results
// (trials, refs, PEs, address range, cache lines, watchdog). Cell job
// keys hash only (experiment id, version, seed), so without this salt
// two campaigns with different trial shapes sharing one store would
// serve each other's memoized cells.
func ConfigVersion(c CampaignConfig) int {
	cfg := c.withDefaults()
	h := fnv.New32a()
	fmt.Fprintf(h, "fault-v%d|trials=%d|refs=%d|pes=%d|addr=%d|lines=%d|stall=%d",
		Version, cfg.Trials, cfg.Trial.Refs, cfg.Trial.PEs,
		cfg.Trial.AddrRange, cfg.Trial.CacheLines, cfg.Trial.StallCycles)
	// Keep it positive and clear of the hand-assigned low epochs.
	return int(h.Sum32()&0x3fffffff) + 1000
}
