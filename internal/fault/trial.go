package fault

import (
	"errors"
	"fmt"

	"repro/internal/batch"
	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// TrialConfig sizes one fault trial's machine and workload.
type TrialConfig struct {
	// Protocol is the coherence scheme under test (default RB).
	Protocol coherence.Protocol
	// PEs is the processor count (default 4).
	PEs int
	// Refs is the number of memory references each PE issues (default 300).
	Refs int
	// AddrRange is the shared address space size; must exceed PEs so every
	// PE owns at least one writable address (default 64).
	AddrRange int
	// CacheLines per private cache (default 32 — small enough that the
	// workload evicts, so write-backs and victim traffic exist to fault).
	CacheLines int
	// StallCycles is the watchdog threshold (default 2000). Trials need a
	// tight watchdog: a wedged transaction should be *detected*, not spun
	// on until the cycle cap.
	StallCycles uint64
}

func (c TrialConfig) withDefaults() TrialConfig {
	if c.Protocol == nil {
		c.Protocol = coherence.RB{}
	}
	if c.PEs == 0 {
		c.PEs = 4
	}
	if c.Refs == 0 {
		c.Refs = 300
	}
	if c.AddrRange == 0 {
		c.AddrRange = 64
	}
	if c.CacheLines == 0 {
		c.CacheLines = 32
	}
	if c.StallCycles == 0 {
		c.StallCycles = 2000
	}
	return c
}

// agent is the campaign workload: PE i reads anywhere in the shared range
// but writes only addresses it owns (addr ≡ i mod PEs), with write values
// unique per PE. Single-writer-per-address keeps the fault-free final
// image independent of transaction interleaving: the last write to each
// address in serialization order is always its owner's last program write,
// so a purely timing-shifting fault converges back to the reference image.
type agent struct {
	pe, pes   int
	addrRange int
	refs      int // program length; Reseed restores remaining to this
	remaining int
	rng       *workload.RNG
	written   uint32 // per-PE write counter, embedded in every value
}

// Reseed restores the agent to its freshly constructed state for the
// given workload seed, deriving the per-PE stream exactly as build does.
// It makes the campaign agent a workload.Reseeder, so trial machines can
// be recycled through a batch arena by generation reset.
func (a *agent) Reseed(seed uint64) {
	a.remaining = a.refs
	a.written = 0
	a.rng.Reseed(seed + uint64(a.pe)*0x9e3779b97f4a7c15)
}

func (a *agent) Next(workload.Result) workload.Op {
	if a.remaining <= 0 {
		return workload.Halt()
	}
	a.remaining--
	if a.rng.Float64() < 0.4 {
		owned := (a.addrRange - a.pe + a.pes - 1) / a.pes
		addr := bus.Addr(a.pe + a.rng.Intn(owned)*a.pes)
		a.written++
		v := bus.Word(uint32(a.pe+1)<<20 | a.written)
		return workload.Write(addr, v, coherence.ClassShared)
	}
	return workload.Read(bus.Addr(a.rng.Intn(a.addrRange)), coherence.ClassShared)
}

// agents constructs the per-PE campaign workload for one seed.
func (c TrialConfig) agents(wlSeed uint64) []workload.Agent {
	agents := make([]workload.Agent, c.PEs)
	for i := range agents {
		agents[i] = &agent{
			pe: i, pes: c.PEs,
			addrRange: c.AddrRange,
			refs:      c.Refs,
			remaining: c.Refs,
			rng:       workload.NewRNG(wlSeed + uint64(i)*0x9e3779b97f4a7c15),
		}
	}
	return agents
}

// shape is the batch-arena key: every trial dimension that changes the
// machine's construction. Seeds are deliberately absent — same shape,
// different seed is exactly what generation reset recycles.
func (c TrialConfig) shape() string {
	return fmt.Sprintf("fault/%s/pes=%d/refs=%d/range=%d/lines=%d/stall=%d",
		c.Protocol.Name(), c.PEs, c.Refs, c.AddrRange, c.CacheLines, c.StallCycles)
}

// build assembles the trial machine for one workload seed — recycled from
// the arena when one is supplied, freshly constructed otherwise. The same
// seed always yields the same program, so the reference run and every
// fault trial execute identical per-PE instruction streams. Machine.Reset
// clears every injection hook (bus injector, write interceptor) and every
// perturbed word along with the rest of the machine, so a recycled
// machine carries no fault residue from the previous trial.
func (c TrialConfig) build(arena *batch.Arena, wlSeed uint64) (*machine.Machine, error) {
	if c.AddrRange <= c.PEs {
		return nil, fmt.Errorf("fault: AddrRange %d must exceed PEs %d", c.AddrRange, c.PEs)
	}
	mcfg := machine.Config{
		Protocol:         c.Protocol,
		CacheLines:       c.CacheLines,
		CheckConsistency: true,
		StallCycles:      c.StallCycles,
	}
	if arena != nil {
		return arena.Machine(c.shape(), mcfg, wlSeed, func() []workload.Agent { return c.agents(wlSeed) })
	}
	return machine.New(mcfg, c.agents(wlSeed))
}

// maxCycles caps a trial run well beyond any healthy completion so only a
// watchdog-less hang (impossible with StallCycles set) could reach it.
func (c TrialConfig) maxCycles(ref *Reference) uint64 {
	return ref.Cycles*4 + c.StallCycles*4 + 10_000
}

// Reference is the fault-free baseline of one (config, seed) point: what
// the trial classifier compares against, and what the fault planner draws
// its trigger windows from.
type Reference struct {
	Cycles uint64                // cycles to drain fault-free
	Writes uint64                // memory-port writes (lost-write ordinal window)
	Image  map[bus.Addr]bus.Word // final memory image, dirty lines drained
}

// Reference runs the workload fault-free and records the baseline. It
// errors if the fault-free run trips any oracle — that would be a
// simulator bug, and no classification built on it would mean anything.
func (c TrialConfig) Reference(wlSeed uint64) (*Reference, error) {
	return c.ReferenceIn(nil, wlSeed)
}

// ReferenceIn is Reference drawing its machine from a batch arena (nil
// falls back to fresh construction).
func (c TrialConfig) ReferenceIn(arena *batch.Arena, wlSeed uint64) (*Reference, error) {
	c = c.withDefaults()
	m, err := c.build(arena, wlSeed)
	if err != nil {
		return nil, err
	}
	cycles, err := m.Run(1 << 26)
	if err != nil {
		return nil, fmt.Errorf("fault: reference run not fault-free: %w", err)
	}
	if !m.Done() {
		return nil, fmt.Errorf("fault: reference run did not drain in %d cycles", cycles)
	}
	if err := m.VerifyFinalMemory(); err != nil {
		return nil, fmt.Errorf("fault: reference run not fault-free: %w", err)
	}
	if err := m.AuditFinalCoherence(); err != nil {
		return nil, fmt.Errorf("fault: reference run not fault-free: %w", err)
	}
	img, err := m.FinalImage()
	if err != nil {
		return nil, err
	}
	return &Reference{Cycles: cycles, Writes: m.Memory().Stats().Writes, Image: img}, nil
}

// Event is one planned fault: a class plus the fully resolved injection
// point, every field drawn from the trial seed and the reference
// measurements — no wall clock, no global state.
type Event struct {
	Class   Class
	Trigger uint64   // machine cycle the fault arms at
	Dur     uint64   // BusArbFreeze: frozen cycles
	Ordinal uint64   // MemLostWrite: 1-based memory write to swallow
	PE      int      // cache classes: victim cache
	Pick    uint64   // cache classes: entry selector at trigger time
	Addr    bus.Addr // MemBitFlip: target word
	Mask    bus.Word // bit-flip mask (MemBitFlip, CacheStale)
}

// String renders the plan for trial details and debugging.
func (e Event) String() string {
	switch e.Class {
	case BusArbFreeze:
		return fmt.Sprintf("%v trigger=%d dur=%d", e.Class, e.Trigger, e.Dur)
	case MemBitFlip:
		return fmt.Sprintf("%v trigger=%d addr=%d mask=%#x", e.Class, e.Trigger, e.Addr, e.Mask)
	case MemLostWrite:
		return fmt.Sprintf("%v ordinal=%d", e.Class, e.Ordinal)
	case CacheSpuriousInv:
		return fmt.Sprintf("%v trigger=%d pe=%d", e.Class, e.Trigger, e.PE)
	case CacheStale:
		return fmt.Sprintf("%v trigger=%d pe=%d mask=%#x", e.Class, e.Trigger, e.PE, e.Mask)
	default:
		// The one-shot bus classes carry only a trigger.
		return fmt.Sprintf("%v trigger=%d", e.Class, e.Trigger)
	}
}

// PlanEvent draws one fault of the given class from the trial seed. The
// trigger lands in the middle of the reference run — after warmup (cycles
// /10) and before the drain tail (3/4 through) — so the fault meets live
// traffic; the lost-write ordinal window is placed the same way over the
// reference write count.
func PlanEvent(class Class, trialSeed uint64, ref *Reference, cfg TrialConfig) Event {
	cfg = cfg.withDefaults()
	rng := workload.NewRNG(trialSeed*0x9e3779b97f4a7c15 + uint64(class) + 1)
	window := func(total uint64) uint64 {
		lo := total/10 + 1
		hi := total*3/4 + 2
		return lo + rng.Uint64()%(hi-lo)
	}
	ev := Event{Class: class, Trigger: window(ref.Cycles)}
	switch class {
	case BusArbFreeze:
		ev.Dur = 1 + rng.Uint64()%(2*cfg.StallCycles)
	case MemBitFlip:
		ev.Addr = bus.Addr(rng.Intn(cfg.AddrRange))
		ev.Mask = 1 << rng.Intn(32)
	case MemLostWrite:
		ev.Ordinal = window(ref.Writes)
	case CacheSpuriousInv:
		ev.PE = rng.Intn(cfg.PEs)
		ev.Pick = rng.Uint64()
	case CacheStale:
		ev.PE = rng.Intn(cfg.PEs)
		ev.Pick = rng.Uint64()
		ev.Mask = 1 << rng.Intn(32)
	default:
		// BusDrop/BusDup/BusSnoopSuppress need only the trigger cycle.
	}
	return ev
}

// busInjector implements bus.Injector for the three one-shot bus classes
// and the bounded arbitration freeze.
type busInjector struct {
	ev    Event
	fired bool
	at    uint64
	desc  string
}

func (bi *busInjector) WedgeArbitration(cycle uint64) bool {
	if bi.ev.Class != BusArbFreeze || cycle < bi.ev.Trigger || cycle >= bi.ev.Trigger+bi.ev.Dur {
		return false
	}
	if !bi.fired {
		bi.fired = true
		bi.at = cycle
		bi.desc = fmt.Sprintf("froze arbitration for %d cycles at cycle %d", bi.ev.Dur, cycle)
	}
	return true
}

func (bi *busInjector) OnGrant(cycle uint64, r bus.Request) bus.Verdict {
	if bi.fired || cycle < bi.ev.Trigger {
		return bus.VerdictPass
	}
	var v bus.Verdict
	var what string
	switch bi.ev.Class {
	case BusDrop:
		v, what = bus.VerdictDrop, "dropped"
	case BusDup:
		v, what = bus.VerdictDup, "duplicated"
	case BusSnoopSuppress:
		v, what = bus.VerdictMute, "snoop-suppressed"
	default:
		return bus.VerdictPass
	}
	bi.fired = true
	bi.at = cycle
	bi.desc = fmt.Sprintf("%s %v addr=%d from PE%d at cycle %d", what, r.Op, r.Addr, r.Source, cycle)
	return v
}

// lostWrite swallows the Nth bus write inside the memory port.
type lostWrite struct {
	ordinal uint64
	count   uint64
	fired   bool
	desc    string
}

func (lw *lostWrite) intercept(a bus.Addr, w bus.Word) bool {
	lw.count++
	if lw.count != lw.ordinal {
		return false
	}
	lw.fired = true
	lw.desc = fmt.Sprintf("lost write #%d addr=%d data=%d", lw.ordinal, a, w)
	return true
}

// TrialResult is one classified trial.
type TrialResult struct {
	Class   Class
	Event   Event
	Fired   bool // the fault found a target and actually perturbed state
	Outcome Outcome
	// Detail names what happened: the injection description plus, for
	// detected trials, the oracle that tripped, and for silent ones the
	// first diverged address.
	Detail string
}

// RunTrial executes one fault trial: the workload of wlSeed (the same
// program the Reference measured) with one fault of the given class,
// planned from trialSeed, injected mid-run. The result is the trial's
// masked/detected/silent classification.
func RunTrial(cfg TrialConfig, ref *Reference, class Class, wlSeed, trialSeed uint64) (TrialResult, error) {
	return RunTrialIn(nil, cfg, ref, class, wlSeed, trialSeed)
}

// RunTrialIn is RunTrial drawing its machine from a batch arena (nil
// falls back to fresh construction). Recycling is safe here precisely
// because generation reset erases all injection state: the bus injector,
// the memory write interceptor, corrupted memory words, and perturbed
// cache lines all die with the old generation.
func RunTrialIn(arena *batch.Arena, cfg TrialConfig, ref *Reference, class Class, wlSeed, trialSeed uint64) (TrialResult, error) {
	cfg = cfg.withDefaults()
	ev := PlanEvent(class, trialSeed, ref, cfg)
	m, err := cfg.build(arena, wlSeed)
	if err != nil {
		return TrialResult{}, err
	}
	res := TrialResult{Class: class, Event: ev}

	// Install the class's hook. Bus and memory faults arm a callback; the
	// direct-perturbation classes (memory flip, cache faults) fire inline
	// in the step loop at the trigger cycle.
	var bi *busInjector
	var lw *lostWrite
	switch class {
	case BusDrop, BusDup, BusSnoopSuppress, BusArbFreeze:
		bi = &busInjector{ev: ev}
		m.Buses().SetInjector(bi)
	case MemLostWrite:
		lw = &lostWrite{ordinal: ev.Ordinal}
		m.Memory().SetWriteInterceptor(lw.intercept)
	default:
		// MemBitFlip and the cache classes fire inline via inject().
	}

	inject := func() {
		switch class {
		case MemBitFlip:
			got := m.Memory().Corrupt(ev.Addr, ev.Mask)
			res.Fired = true
			res.Detail = fmt.Sprintf("flipped mask=%#x at addr=%d (now %d) at cycle %d", ev.Mask, ev.Addr, got, m.Cycle())
		case CacheSpuriousInv, CacheStale:
			c := m.Cache(ev.PE)
			entries := c.Entries()
			if len(entries) == 0 {
				res.Detail = fmt.Sprintf("no valid line in cache %d at cycle %d", ev.PE, m.Cycle())
				return
			}
			// Prefer a dirty victim: losing the only up-to-date copy is the
			// perturbation this class exists for. Clean lines are the
			// deterministic fallback when the cache holds nothing dirty.
			pool := entries[:0:0]
			for _, e := range entries {
				if e.Dirty {
					pool = append(pool, e)
				}
			}
			if len(pool) == 0 {
				pool = entries
			}
			e := pool[int(ev.Pick%uint64(len(pool)))]
			if class == CacheSpuriousInv {
				res.Fired = c.InjectInvalidate(e.Addr)
				res.Detail = fmt.Sprintf("invalidated addr=%d (%v dirty=%v data=%d) in cache %d at cycle %d",
					e.Addr, e.State, e.Dirty, e.Data, ev.PE, m.Cycle())
			} else {
				res.Fired = c.InjectStale(e.Addr, ev.Mask)
				res.Detail = fmt.Sprintf("flipped mask=%#x into addr=%d (%v dirty=%v) in cache %d at cycle %d",
					ev.Mask, e.Addr, e.State, e.Dirty, ev.PE, m.Cycle())
			}
		default:
			// Bus and lost-write classes fire via their installed hooks,
			// never through inject().
		}
	}

	direct := class == MemBitFlip || class == CacheSpuriousInv || class == CacheStale
	injected := false
	var runErr error
	cycleCap := cfg.maxCycles(ref)
	for !m.Done() && m.Cycle() < cycleCap {
		if direct && !injected && m.Cycle() >= ev.Trigger {
			injected = true
			inject()
		}
		if err := m.Step(); err != nil {
			runErr = err
			break
		}
	}
	if direct && !injected {
		// The faulty run drained before the trigger (can only happen if
		// injection shortened the run — it cannot, but stay safe).
		injected = true
		inject()
	}
	if bi != nil {
		res.Fired = bi.fired
		if bi.desc != "" {
			res.Detail = bi.desc
		}
	}
	if lw != nil {
		res.Fired = lw.fired
		if lw.desc != "" {
			res.Detail = lw.desc
		}
	}

	classify := func(oracle string, err error) {
		res.Outcome = Detected
		res.Detail = fmt.Sprintf("%s; %s: %v", res.Detail, oracle, err)
	}
	switch {
	case runErr != nil:
		var stall *machine.StallError
		var incons *machine.ConsistencyError
		switch {
		case errors.As(runErr, &stall):
			classify("watchdog", runErr)
		case errors.As(runErr, &incons):
			classify("consistency oracle", runErr)
		default:
			classify("run error", runErr)
		}
	case !m.Done():
		classify("cycle cap", fmt.Errorf("run exceeded %d cycles without draining", cycleCap))
	default:
		if err := m.VerifyFinalMemory(); err != nil {
			classify("final-memory oracle", err)
			break
		}
		if err := m.AuditFinalCoherence(); err != nil {
			classify("coherence audit", err)
			break
		}
		img, err := m.FinalImage()
		if err != nil {
			classify("final image", err)
			break
		}
		if addr, differs := imagesDiff(img, ref.Image); differs {
			res.Outcome = Silent
			res.Detail = fmt.Sprintf("%s; image diverged first at addr %d (got %d, reference %d)",
				res.Detail, addr, img[addr], ref.Image[addr])
		} else {
			res.Outcome = Masked
			if !res.Fired {
				if res.Detail == "" {
					res.Detail = "no target"
				}
				res.Detail += " (never fired)"
			}
		}
	}
	return res, nil
}
