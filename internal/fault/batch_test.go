package fault

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// TestInjectorStateDoesNotLeakAcrossReset is the recycling safety
// contract: after a fault trial perturbs a machine — bus injector armed,
// write interceptor installed, memory words corrupted, cache lines
// invalidated or staled — a generation reset must hand back a machine
// whose fault-free reference run is indistinguishable from a fresh one.
func TestInjectorStateDoesNotLeakAcrossReset(t *testing.T) {
	cfg := TrialConfig{}.withDefaults()
	const seed = 7
	fresh, err := cfg.Reference(seed)
	if err != nil {
		t.Fatal(err)
	}
	arena := batch.New()
	for _, class := range Classes() {
		// Dirty the arena's machine with a fault trial of this class...
		trialRNG := workload.NewRNG(seed ^ 0xfa17fa17fa17fa17)
		res, err := RunTrialIn(arena, cfg, fresh, class, seed, trialRNG.Uint64())
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		// ...then demand a clean reference from the same recycled machine.
		// ReferenceIn itself fails if any oracle trips, so a leaked
		// injector or interceptor surfaces as an error, and leaked data
		// corruption as a cycle/write/image mismatch.
		after, err := cfg.ReferenceIn(arena, seed)
		if err != nil {
			t.Fatalf("%v (trial outcome %v, %s): reference after reset: %v",
				class, res.Outcome, res.Detail, err)
		}
		if after.Cycles != fresh.Cycles || after.Writes != fresh.Writes {
			t.Errorf("%v: reference after reset ran %d cycles/%d writes, fresh %d/%d",
				class, after.Cycles, after.Writes, fresh.Cycles, fresh.Writes)
		}
		if addr, differs := imagesDiff(after.Image, fresh.Image); differs {
			t.Errorf("%v: reference image after reset diverges at addr %d (got %d, fresh %d)",
				class, addr, after.Image[addr], fresh.Image[addr])
		}
	}
	if arena.Reuses() == 0 {
		t.Fatal("arena never recycled a machine — the test exercised nothing")
	}
}

// TestBatchCellMatchesUnbatched pins the campaign-level identity: a cell
// run through the batch arena tallies and renders byte-identically to the
// fresh-machine path, across protocols, classes, and seeds sharing one
// arena (a stronger mix than any single fused group sees).
func TestBatchCellMatchesUnbatched(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full campaign cells")
	}
	cfg := CampaignConfig{
		Protocols: []string{"rb", "rwb"},
		Classes:   []Class{BusDrop, MemBitFlip, CacheStale, MemLostWrite},
		Seeds:     []uint64{1, 2},
		Trials:    2,
		Trial:     TrialConfig{Refs: 200},
	}
	plain := NewCellRunner(cfg)
	batched := NewBatchCellRunner(cfg)
	arena := batch.New()
	var specs []sweep.JobSpec
	for _, s := range cfg.Specs() {
		for _, j := range sweep.Expand([]sweep.Spec{s}) {
			specs = append(specs, j.Spec)
		}
	}
	for _, spec := range specs {
		want, err := plain(spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batched(spec, arena)
		if err != nil {
			t.Fatal(err)
		}
		if got.Render("plain") != want.Render("plain") {
			t.Errorf("%s seed %d: batched cell differs from unbatched:\nbatched:\n%s\nunbatched:\n%s",
				spec.Experiment, spec.Seed, got.Render("plain"), want.Render("plain"))
		}
	}
	if arena.Reuses() == 0 {
		t.Fatal("arena never recycled a machine")
	}
}
