package stackdist_test

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/stackdist"
)

// ExampleProfiler computes the exact miss curve of a tiny looped trace in
// one pass: references cycle through 4 addresses, so any cache of 4 or
// more lines only takes the 4 cold misses.
func ExampleProfiler() {
	p := stackdist.New()
	for i := 0; i < 40; i++ {
		p.Touch(bus.Addr(i % 4))
	}
	for _, pt := range p.Curve([]int{2, 4}) {
		fmt.Printf("%d lines: %d misses\n", pt.Lines, pt.Misses)
	}
	// Output:
	// 2 lines: 40 misses
	// 4 lines: 4 misses
}
