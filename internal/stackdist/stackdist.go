// Package stackdist implements Mattson's stack algorithm: a single pass
// over a reference trace yields the exact miss ratio of every
// fully-associative LRU cache size simultaneously. It is the classic tool
// behind miss-ratio curves like Table 1-1's — the paper's own
// justification for choosing cache sizes — and this repository uses it to
// analyze the synthetic workloads' locality (cmd/tracestat -misscurve)
// and to cross-validate the cache simulator (a fully-associative cache of
// size S must miss exactly when the stack distance is >= S).
package stackdist

import (
	"fmt"
	"sort"

	"repro/internal/bus"
)

// Cold is the reuse distance reported for a first-ever reference.
const Cold = int(^uint(0) >> 1)

// Profiler maintains the LRU stack and the reuse-distance histogram.
type Profiler struct {
	stack  []bus.Addr // most recently used first
	index  map[bus.Addr]int
	counts map[int]uint64 // reuse distance -> occurrences
	colds  uint64
	refs   uint64
}

// New creates an empty profiler.
func New() *Profiler {
	return &Profiler{
		index:  make(map[bus.Addr]int),
		counts: make(map[int]uint64),
	}
}

// Touch records a reference and returns its reuse (stack) distance:
// the number of distinct addresses referenced since the previous touch of
// a, or Cold for a first reference. A fully-associative LRU cache of S
// lines hits exactly the references with distance < S.
func (p *Profiler) Touch(a bus.Addr) int {
	p.refs++
	pos, seen := p.index[a]
	if !seen {
		p.colds++
		p.push(a)
		return Cold
	}
	// Move to front; everything above shifts down.
	copy(p.stack[1:pos+1], p.stack[:pos])
	p.stack[0] = a
	for i := 0; i <= pos; i++ {
		p.index[p.stack[i]] = i
	}
	p.counts[pos]++
	return pos
}

func (p *Profiler) push(a bus.Addr) {
	p.stack = append(p.stack, a)
	copy(p.stack[1:], p.stack[:len(p.stack)-1])
	p.stack[0] = a
	for i := range p.stack {
		p.index[p.stack[i]] = i
	}
}

// Refs returns the number of references recorded.
func (p *Profiler) Refs() uint64 { return p.refs }

// Colds returns the number of first-ever references (compulsory misses).
func (p *Profiler) Colds() uint64 { return p.colds }

// Footprint returns the number of distinct addresses seen.
func (p *Profiler) Footprint() int { return len(p.stack) }

// Misses returns the exact miss count of a fully-associative LRU cache
// with the given number of lines: cold misses plus every reuse at
// distance >= lines.
func (p *Profiler) Misses(lines int) uint64 {
	if lines <= 0 {
		return p.refs
	}
	misses := p.colds
	for d, c := range p.counts {
		if d >= lines {
			misses += c
		}
	}
	return misses
}

// MissRatio returns Misses(lines)/Refs.
func (p *Profiler) MissRatio(lines int) float64 {
	if p.refs == 0 {
		return 0
	}
	return float64(p.Misses(lines)) / float64(p.refs)
}

// CurvePoint is one (size, miss ratio) sample.
type CurvePoint struct {
	Lines     int     `json:"lines"`
	Misses    uint64  `json:"misses"`
	MissRatio float64 `json:"miss_ratio"`
}

// Curve evaluates the miss curve at the given sizes (sorted ascending in
// the result).
func (p *Profiler) Curve(sizes []int) []CurvePoint {
	out := make([]CurvePoint, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, CurvePoint{Lines: s, Misses: p.Misses(s), MissRatio: p.MissRatio(s)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lines < out[j].Lines })
	return out
}

// PowersOfTwo returns 2^lo .. 2^hi inclusive, the conventional sweep.
func PowersOfTwo(lo, hi int) []int {
	if lo < 0 || hi < lo || hi > 30 {
		panic(fmt.Sprintf("stackdist: bad power range [%d, %d]", lo, hi))
	}
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, 1<<uint(i))
	}
	return out
}

// Distances returns the raw reuse-distance histogram (excluding colds),
// sorted by distance.
func (p *Profiler) Distances() []CurvePoint {
	out := make([]CurvePoint, 0, len(p.counts))
	for d, c := range p.counts {
		out = append(out, CurvePoint{Lines: d, Misses: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lines < out[j].Lines })
	return out
}
