package stackdist

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/workload"
)

func TestColdAndReuse(t *testing.T) {
	p := New()
	if d := p.Touch(1); d != Cold {
		t.Fatalf("first touch distance = %d, want Cold", d)
	}
	if d := p.Touch(1); d != 0 {
		t.Fatalf("immediate reuse distance = %d, want 0", d)
	}
	p.Touch(2)
	p.Touch(3)
	if d := p.Touch(1); d != 2 {
		t.Fatalf("reuse after 2 distinct = %d, want 2", d)
	}
	if p.Refs() != 5 || p.Colds() != 3 || p.Footprint() != 3 {
		t.Fatalf("refs/colds/footprint = %d/%d/%d", p.Refs(), p.Colds(), p.Footprint())
	}
}

func TestMissesInclusionProperty(t *testing.T) {
	// Misses are monotone nonincreasing in cache size (the stack
	// algorithm's inclusion property).
	p := New()
	rng := workload.NewRNG(1)
	for i := 0; i < 5000; i++ {
		p.Touch(bus.Addr(rng.Intn(200)))
	}
	prev := p.Misses(1)
	for s := 2; s <= 512; s *= 2 {
		cur := p.Misses(s)
		if cur > prev {
			t.Fatalf("misses grew from %d to %d at size %d", prev, cur, s)
		}
		prev = cur
	}
	// At a size covering the whole footprint, only colds miss.
	if got := p.Misses(1024); got != p.Colds() {
		t.Fatalf("full-footprint misses = %d, want colds %d", got, p.Colds())
	}
	// Size zero misses everything.
	if p.Misses(0) != p.Refs() {
		t.Fatal("size-0 cache did not miss everything")
	}
}

func TestCurveAndPowersOfTwo(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.Touch(bus.Addr(i % 4))
	}
	curve := p.Curve(PowersOfTwo(0, 3))
	if len(curve) != 4 || curve[0].Lines != 1 || curve[3].Lines != 8 {
		t.Fatalf("curve = %+v", curve)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].MissRatio > curve[i-1].MissRatio {
			t.Fatal("curve not monotone")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad power range accepted")
			}
		}()
		PowersOfTwo(5, 2)
	}()
}

func TestDistancesHistogram(t *testing.T) {
	p := New()
	p.Touch(1)
	p.Touch(2)
	p.Touch(1) // distance 1
	p.Touch(1) // distance 0
	ds := p.Distances()
	if len(ds) != 2 || ds[0].Lines != 0 || ds[0].Misses != 1 || ds[1].Lines != 1 || ds[1].Misses != 1 {
		t.Fatalf("distances = %+v", ds)
	}
}

func TestEmptyProfiler(t *testing.T) {
	p := New()
	if p.MissRatio(4) != 0 || p.Misses(4) != 0 || p.Footprint() != 0 {
		t.Fatal("empty profiler not all-zero")
	}
}

// TestCrossValidateAgainstCacheSimulator: for a single-PE read-only
// stream, the profiler's miss count at size S must equal the misses of a
// fully-associative LRU cache (Lines = Ways = S) in the real simulator.
func TestCrossValidateAgainstCacheSimulator(t *testing.T) {
	rng := workload.NewRNG(7)
	var refs []bus.Addr
	for i := 0; i < 3000; i++ {
		// A mix of hot and wide addresses.
		if rng.Float64() < 0.6 {
			refs = append(refs, bus.Addr(rng.Intn(8)))
		} else {
			refs = append(refs, bus.Addr(rng.Intn(300)))
		}
	}

	p := New()
	for _, a := range refs {
		p.Touch(a)
	}

	for _, size := range []int{4, 16, 64} {
		mem := memory.New()
		b := bus.New(mem)
		c := cache.MustNew(0, coherence.RB{}, cache.Config{Lines: size, Ways: size})
		b.Attach(0, c)
		b.AttachRequester(0, c)
		for _, a := range refs {
			done, _ := c.Access(coherence.EvRead, a, 0, coherence.ClassShared)
			for !done {
				if !b.Slotted(0) {
					b.RequestSlot(0)
				}
				if req, res, ok := b.Tick(); ok {
					c.BusCompleted(req, res)
				}
				if _, ok := c.TakeResolved(); ok {
					done = true
				}
			}
		}
		st := c.Stats()
		simMisses := st.Reads - st.ReadHits
		if simMisses != p.Misses(size) {
			t.Fatalf("size %d: simulator missed %d, stack algorithm says %d",
				size, simMisses, p.Misses(size))
		}
	}
}

// Property: for any trace, refs = colds + sum of all reuse counts.
func TestQuickAccounting(t *testing.T) {
	f := func(addrs []uint8) bool {
		p := New()
		for _, a := range addrs {
			p.Touch(bus.Addr(a))
		}
		var reuses uint64
		for _, d := range p.Distances() {
			reuses += d.Misses
		}
		return p.Refs() == p.Colds()+reuses && int(p.Colds()) == p.Footprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
