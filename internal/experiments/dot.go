package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coherence"
)

// TransitionDOT renders a protocol's state diagram in Graphviz DOT format
// — the closest faithful reconstruction of Figures 3-1 and 5-1 themselves
// (feed it to `dot -Tsvg` to get the picture). Processor-request arcs are
// solid, bus-request arcs dashed, matching the figures' visual language;
// arc labels carry the request and the modifier.
func TransitionDOT(p coherence.Protocol) string {
	type arc struct {
		from, to, label string
		bus             bool
	}
	var arcs []arc
	for _, s := range p.States() {
		for _, e := range []coherence.ProcEvent{coherence.EvRead, coherence.EvWrite} {
			out := p.OnProc(s, 1, e)
			label := e.String()
			if m := modifier(out.Action, false); m != "-" {
				label += " / " + strings.SplitN(m, " ", 2)[0]
			}
			arcs = append(arcs, arc{from: s.Letter(), to: out.Next.Letter(), label: label})
		}
		for _, ev := range []coherence.SnoopEvent{coherence.SnBusRead, coherence.SnBusWrite, coherence.SnBusInv} {
			if ev == coherence.SnBusInv && !usesInvalidate(p) {
				continue
			}
			out := p.OnSnoop(s, 1, true, ev)
			label := ev.String()
			if out.Inhibit {
				label += " / 2"
			}
			if out.TakeData {
				label += " / take"
			}
			// Self-loops with no effect clutter the diagram; the figures
			// omit them too.
			if out.Next == s && !out.Inhibit && !out.TakeData {
				continue
			}
			arcs = append(arcs, arc{from: s.Letter(), to: out.Next.Letter(), label: label, bus: true})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", strings.ToUpper(p.Name()))
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	names := make([]string, 0, len(p.States()))
	for _, s := range p.States() {
		names = append(names, s.Letter())
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, a := range arcs {
		style := ""
		if a.bus {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n", a.from, a.to, a.label, style)
	}
	b.WriteString("}\n")
	return b.String()
}
