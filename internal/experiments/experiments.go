// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment is a
// named constructor returning a report.Table whose rows mirror the paper's
// artifact; cmd/paperrepro prints them all, the test suite asserts their
// paper-shape properties, and bench_test.go wraps each in a benchmark.
package experiments

import (
	"fmt"
	"sort"
)

// Params tunes an experiment run.
type Params struct {
	// Seed drives every deterministic generator (default 1).
	Seed uint64
	// Scale multiplies workload sizes; 1 is the quick configuration used
	// by the tests, 10 the publication-quality one used by cmd/paperrepro
	// -full.
	Scale int
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Scale == 0 {
		p.Scale = 1
	}
	return p
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID matches the DESIGN.md experiment index ("table1-1", "fig6-2",
	// "ablation-arrayinit", ...).
	ID string
	// Title is the human caption.
	Title string
	// Run executes the experiment.
	Run func(Params) (*Table, error)
}

// Table re-exports report.Table so experiment callers need one import.
type Table = tableAlias

// registry is populated by the per-experiment files' init functions in
// declaration order.
var registry []Experiment

func register(e Experiment) {
	for _, existing := range registry {
		if existing.ID == e.ID {
			panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
		}
	}
	registry = append(registry, e)
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (valid: %v)", id, IDs())
}
