// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each experiment is a
// named constructor returning a report.Table whose rows mirror the paper's
// artifact; cmd/paperrepro prints them all, the test suite asserts their
// paper-shape properties, and bench_test.go wraps each in a benchmark.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/batch"
	"repro/internal/machine"
	"repro/internal/mrc"
	"repro/internal/workload"
)

// Params tunes an experiment run.
type Params struct {
	// Seed drives every deterministic generator (default 1).
	Seed uint64
	// Scale multiplies workload sizes; 1 is the quick configuration used
	// by the tests, 10 the publication-quality one used by cmd/paperrepro
	// -full.
	Scale int
	// Arena, when non-nil, recycles machines across same-shape trials
	// (seed-only deltas) via generation reset instead of reconstruction.
	// The sweep engine attaches one arena per fused job group; it is not
	// an axis and never participates in cache keys. Experiments reach it
	// through Params.Machine.
	Arena *batch.Arena
	// Profile, when non-nil, collects online miss-ratio curves: every
	// machine Params.Machine constructs gets a fresh mrc profiler set
	// attached (per PE plus machine-wide) under its shape name. Like
	// Arena it is instrumentation, not an axis, and never participates
	// in cache keys — the tables an experiment returns are identical
	// with and without it.
	Profile *mrc.Collector
}

// Machine builds (or, with an arena attached, recycles) a machine for
// one trial. shape must uniquely name the configuration within the
// experiment — protocol, PE count, cache geometry, anything that changes
// cfg or the agents beyond the seed. agents() must construct the agents
// for this trial's Params.Seed; with an arena, Reseeder agents are
// re-seeded in place and others rebuilt on the recycled machine (see
// batch.Arena.Machine).
func (p Params) Machine(shape string, cfg machine.Config, agents func() []workload.Agent) (*machine.Machine, error) {
	m, err := func() (*machine.Machine, error) {
		if p.Arena != nil {
			return p.Arena.Machine(shape, cfg, p.Seed, agents)
		}
		return machine.New(cfg, agents())
	}()
	if err == nil && p.Profile != nil {
		p.Profile.Attach(shape, p.Seed, m)
	}
	return m, err
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Scale == 0 {
		p.Scale = 1
	}
	return p
}

// Axes declares which Params fields an experiment's output actually
// depends on. The sweep engine (internal/sweep) normalizes undeclared
// axes out of the cache key and collapses replicas along them, so a
// parameter-free artifact (a transition table, a scripted Figure 6
// walkthrough) is simulated once no matter how many seeds a sweep asks
// for.
type Axes struct {
	// Seed: the output depends on Params.Seed.
	Seed bool
	// Scale: the output depends on Params.Scale.
	Scale bool
}

// ChartSpec describes how cmd/paperrepro renders an experiment's table as
// an ASCII bar chart: which columns label each bar and which column holds
// the plotted value.
type ChartSpec struct {
	Labels []int
	Value  int
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID matches the DESIGN.md experiment index ("table1-1", "fig6-2",
	// "ablation-arrayinit", ...). It must be stable kebab-case
	// ([a-z0-9] segments joined by "-"): it keys the sweep cache.
	ID string
	// Title is the human caption.
	Title string
	// Axes declares the parameter/seed axes the output depends on.
	Axes Axes
	// Version is the experiment's cache epoch: bump it whenever the
	// implementation changes results, so memoized sweep artifacts are
	// invalidated instead of silently served stale.
	Version int
	// Salt distinguishes same-ID experiments whose results depend on
	// content registered at runtime rather than on code — a trace-driven
	// experiment salts with the content hash of its trace bytes, so two
	// deployments registering different traces under the same name can
	// never alias in the sweep/serve cache. Empty for code-defined
	// experiments.
	Salt string
	// Chart, when non-nil, selects the columns worth bar-charting.
	Chart *ChartSpec
	// Run executes the experiment.
	Run func(Params) (*Table, error)
}

// Table re-exports report.Table so experiment callers need one import.
type Table = tableAlias

// registry is populated by the per-experiment files' init functions in
// declaration order.
var registry []Experiment

func register(e Experiment) {
	if !validID(e.ID) {
		panic(fmt.Sprintf("experiments: id %q is not stable kebab-case", e.ID))
	}
	if e.Version < 1 {
		panic(fmt.Sprintf("experiments: %s must declare Version >= 1 (the sweep cache epoch)", e.ID))
	}
	if e.Run == nil {
		panic(fmt.Sprintf("experiments: %s has no Run", e.ID))
	}
	for _, existing := range registry {
		if existing.ID == e.ID {
			panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
		}
	}
	registry = append(registry, e)
}

// validID enforces the kebab-case contract: lowercase [a-z0-9] segments
// joined by single dashes, e.g. "table1-1" or "ablation-arrayinit".
func validID(id string) bool {
	if id == "" || id[0] == '-' || id[len(id)-1] == '-' {
		return false
	}
	prevDash := false
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			prevDash = false
		case c == '-':
			if prevDash {
				return false
			}
			prevDash = true
		default:
			return false
		}
	}
	return true
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (valid: %v)", id, IDs())
}
