package experiments

import (
	"repro/internal/coherence"
	"repro/internal/report"
)

// Figures 3-1 and 5-1 are state transition diagrams. A diagram is a
// relation, so the faithful textual reproduction is the full transition
// table: every (state, request) pair with its successor state and the
// modifier action the figure annotates on the arc (1 = generate BW,
// 2 = interrupt BR and supply the data, 3 = generate BR, 4 = generate BI).

func init() {
	register(Experiment{
		ID:      "fig3-1",
		Title:   "State Transition Diagram for each Cache Entry for the RB Scheme",
		Version: 1, // parameter-free: the transition relation has no axes
		Run: func(Params) (*Table, error) {
			return TransitionTable(coherence.RB{}, "fig3-1",
				"State Transition Diagram for each Cache Entry for the RB Scheme"), nil
		},
	})
	register(Experiment{
		ID:      "fig5-1",
		Title:   "State Transition Diagram for each Cache Entry for the RWB Scheme",
		Version: 1,
		Run: func(Params) (*Table, error) {
			return TransitionTable(coherence.NewRWB(2), "fig5-1",
				"State Transition Diagram for each Cache Entry for the RWB Scheme"), nil
		},
	})
}

// modifier maps a transition to the figure's arc annotation.
func modifier(action coherence.Action, inhibit bool) string {
	switch {
	case inhibit:
		return "2 (interrupt BR, supply data)"
	case action == coherence.ActWrite:
		return "1 (generate BW)"
	case action == coherence.ActRead:
		return "3 (generate BR)"
	case action == coherence.ActInv:
		return "4 (generate BI)"
	case action == coherence.ActReadThenWrite:
		return "3+1 (generate BR then BW)"
	}
	return "-"
}

// TransitionTable renders a protocol's complete transition relation.
func TransitionTable(p coherence.Protocol, id, title string) *report.Table {
	t := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"State", "Request", "Next State", "Modifier"},
		Note:    "CW/CR: CPU write/read request; BW/BR/BI: bus write/read/invalidate request (the figures' legend)",
	}
	for _, s := range p.States() {
		for _, e := range []coherence.ProcEvent{coherence.EvRead, coherence.EvWrite} {
			out := p.OnProc(s, 1, e)
			t.AddRow(s.Letter(), e.String(), out.Next.Letter(), modifier(out.Action, false))
		}
		for _, ev := range []coherence.SnoopEvent{coherence.SnBusRead, coherence.SnBusWrite, coherence.SnBusInv} {
			if ev == coherence.SnBusInv && !usesInvalidate(p) {
				continue
			}
			out := p.OnSnoop(s, 1, true, ev)
			mod := modifier(coherence.ActNone, out.Inhibit)
			if out.TakeData {
				if mod == "-" {
					mod = "take broadcast data"
				} else {
					mod += ", take broadcast data"
				}
			}
			t.AddRow(s.Letter(), ev.String(), out.Next.Letter(), mod)
		}
	}
	return t
}

// usesInvalidate reports whether any processor transition of p emits BI.
func usesInvalidate(p coherence.Protocol) bool {
	for _, s := range p.States() {
		for _, e := range []coherence.ProcEvent{coherence.EvRead, coherence.EvWrite} {
			for aux := uint8(0); aux < 4; aux++ {
				if p.OnProc(s, aux, e).Action == coherence.ActInv {
					return true
				}
			}
		}
	}
	return false
}

// CountTransitions returns (states, arcs) for a protocol — the figures'
// size, used by documentation and sanity tests.
func CountTransitions(p coherence.Protocol) (states, arcs int) {
	t := TransitionTable(p, "tmp", "tmp")
	set := map[string]bool{}
	for _, row := range t.Rows {
		set[row[0]] = true
	}
	return len(set), len(t.Rows)
}
