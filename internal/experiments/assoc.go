package experiments

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// Associativity ablation: the paper fixes a direct-mapped, one-word-block
// organization (assumption 7) and argues block size and set size matter
// less as caches grow. This experiment quantifies the direct-mapped
// conflict-miss penalty on the Table 1-1 workload by sweeping
// associativity at fixed capacity.

func init() {
	register(Experiment{
		ID:      "ablation-assoc",
		Title:   "Set associativity at fixed capacity (assumption 7)",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Run: func(p Params) (*Table, error) {
			return AssocAblation(p)
		},
	})
}

// AssocRow is one (cache size, ways) measurement.
type AssocRow struct {
	CacheSize   int
	Ways        int
	ReadMissPct float64
}

// AssocRows sweeps ways in {1, 2, 4} at the Table 1-1 cache sizes under
// the Cm*-style emulation.
func AssocRows(p Params) ([]AssocRow, error) {
	p = p.withDefaults()
	const pes = 2
	refs := 40000 * p.Scale
	var rows []AssocRow
	for _, size := range []int{512, 2048} {
		for _, ways := range []int{1, 2, 4} {
			layout := workload.DefaultLayout()
			m, err := p.Machine(fmt.Sprintf("assoc/size=%d/ways=%d", size, ways), machine.Config{
				Protocol:   coherence.CmStar{},
				CacheLines: size,
				CacheWays:  ways,
			}, func() []workload.Agent {
				agents := make([]workload.Agent, pes)
				for i := range agents {
					agents[i] = workload.MustApp(workload.PDEProfile(), layout, i, p.Seed, refs)
				}
				return agents
			})
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(uint64(refs) * 40); err != nil {
				return nil, err
			}
			if !m.Done() {
				return nil, fmt.Errorf("assoc: %d/%d did not drain", size, ways)
			}
			var total, miss uint64
			for pe := 0; pe < pes; pe++ {
				st := m.Cache(pe).Stats()
				total += st.Reads + st.Writes
				miss += st.ByClass[coherence.ClassCode].ReadMisses +
					st.ByClass[coherence.ClassLocal].ReadMisses
			}
			rows = append(rows, AssocRow{
				CacheSize:   size,
				Ways:        ways,
				ReadMissPct: 100 * float64(miss) / float64(total),
			})
		}
	}
	return rows, nil
}

// AssocAblation renders the sweep.
func AssocAblation(p Params) (*report.Table, error) {
	rows, err := AssocRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-assoc",
		Title:   "Read-miss % vs. set associativity (Cm* emulation, pde workload)",
		Columns: []string{"Cache size", "Ways", "Read miss %"},
		Note:    "associativity shaves the direct-mapped conflict misses; the gap narrows as capacity grows, the paper's assumption-7 argument",
	}
	for _, r := range rows {
		t.AddRowf(r.CacheSize, r.Ways, r.ReadMissPct)
	}
	return t, nil
}
