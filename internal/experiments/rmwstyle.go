package experiments

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// RMW-style ablation: the paper describes Test-and-Set twice — Section 6's
// figures treat it as one fused bus read-modify-write transaction, while
// the prose describes the period hardware's two-phase realization ("a
// special bus read operation is generated that locks the appropriate
// shared memory location, ... the modified value is stored back into the
// shared memory cell and the lock removed"). Both are implemented; this
// experiment quantifies the difference and shows TTS rescuing both.

func init() {
	register(Experiment{
		ID:      "ablation-rmwstyle",
		Title:   "Fused vs. two-phase (locked-bus) Test-and-Set (Section 6 prose)",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Run: func(p Params) (*Table, error) {
			return RMWStyleAblation(p)
		},
	})
}

// RMWStyleRow is one (style, strategy) measurement.
type RMWStyleRow struct {
	Style      string
	Strategy   string
	TxnsPerAcq float64
	Cycles     uint64
}

// RMWStyleRows measures RB lock contention under both realizations.
func RMWStyleRows(p Params) ([]RMWStyleRow, error) {
	p = p.withDefaults()
	const pes = 8
	iters := 20 * p.Scale
	var rows []RMWStyleRow
	for _, twoPhase := range []bool{false, true} {
		for _, strat := range []workload.Strategy{workload.StrategyTS, workload.StrategyTTS} {
			var locks []*workload.Spinlock
			var buildErr error
			m, err := p.Machine(fmt.Sprintf("rmwstyle/twoPhase=%v/%s", twoPhase, strat), machine.Config{
				Protocol:         coherence.RB{},
				CacheLines:       64,
				TwoPhaseRMW:      twoPhase,
				CheckConsistency: true,
				WatchdogCycles:   1_000_000,
			}, func() []workload.Agent {
				locks = locks[:0]
				agents := make([]workload.Agent, pes)
				for i := range agents {
					s, err := workload.NewSpinlock(workload.SpinlockConfig{
						Lock: 100, Strategy: strat, Iterations: iters,
						CriticalReads: 3, CriticalWrites: 3,
						GuardedBase: 200, GuardedWords: 8,
						Seed: p.Seed + uint64(i),
					})
					if err != nil {
						buildErr = err
						return nil
					}
					locks = append(locks, s)
					agents[i] = s
				}
				return agents
			})
			if buildErr != nil {
				return nil, buildErr
			}
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(uint64(iters) * uint64(pes) * 50000); err != nil {
				return nil, err
			}
			if !m.Done() {
				return nil, fmt.Errorf("rmwstyle: twoPhase=%v %s did not finish", twoPhase, strat)
			}
			total := 0
			for _, s := range locks {
				total += s.Acquisitions()
			}
			style := "fused"
			if twoPhase {
				style = "two-phase"
			}
			mt := m.Metrics()
			rows = append(rows, RMWStyleRow{
				Style:      style,
				Strategy:   strat.String(),
				TxnsPerAcq: float64(mt.Bus.Transactions()) / float64(total),
				Cycles:     mt.Cycles,
			})
		}
	}
	return rows, nil
}

// RMWStyleAblation renders the comparison.
func RMWStyleAblation(p Params) (*report.Table, error) {
	rows, err := RMWStyleRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-rmwstyle",
		Title:   "8 PEs, RB scheme: Test-and-Set realization vs. bus cost",
		Columns: []string{"RMW style", "Strategy", "Txns/acquisition", "Cycles"},
		Note: "each two-phase attempt costs two transactions, but the memory lock stalls the other " +
			"spinners while an attempt is in flight — a built-in backoff that throttles the hot spot; " +
			"under the fused RMW only TTS prevents the spinning storm",
	}
	for _, r := range rows {
		t.AddRowf(r.Style, r.Strategy, r.TxnsPerAcq, r.Cycles)
	}
	return t, nil
}
