package experiments

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// Table 1-1: the Cm* emulated cache results that motivate the paper.
// Raskin's experiment cached only code and local data, wrote local data
// through (counting every local write as a miss), and counted every
// shared reference as a miss; we rerun that emulation over synthetic
// reference streams with the paper's reference mix and sweep the same
// four cache sizes.

func init() {
	register(Experiment{
		ID:      "table1-1",
		Title:   "Cm* Emulated Cache Results",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Chart:   &ChartSpec{Labels: []int{0, 1}, Value: 2}, // read miss %
		Run: func(p Params) (*Table, error) {
			return Table11(p)
		},
	})
}

// Table11Sizes are the cache sizes of the paper's table, in words.
var Table11Sizes = []int{256, 512, 1024, 2048}

// Table11Row is one measured row, exported so tests can assert the
// paper-shape properties numerically.
type Table11Row struct {
	CacheSize     int
	App           string
	ReadMissPct   float64
	LocalWritePct float64
	SharedPct     float64
	TotalMissPct  float64
}

// Table11Rows runs the emulation and returns the raw measurements.
func Table11Rows(p Params) ([]Table11Row, error) {
	p = p.withDefaults()
	const pes = 4
	refsPerPE := 60000 * p.Scale
	profiles := []workload.AppProfile{workload.PDEProfile(), workload.QuicksortProfile()}
	var rows []Table11Row
	for _, size := range Table11Sizes {
		for _, prof := range profiles {
			prof := prof
			layout := workload.DefaultLayout()
			m, err := p.Machine(fmt.Sprintf("table11/size=%d/%s", size, prof.Name), machine.Config{
				Protocol:   coherence.CmStar{},
				CacheLines: size,
			}, func() []workload.Agent {
				agents := make([]workload.Agent, pes)
				for i := range agents {
					agents[i] = workload.MustApp(prof, layout, i, p.Seed, refsPerPE)
				}
				return agents
			})
			if err != nil {
				return nil, err
			}
			maxCycles := uint64(refsPerPE) * 40
			if _, err := m.Run(maxCycles); err != nil {
				return nil, err
			}
			if !m.Done() {
				return nil, fmt.Errorf("table1-1: machine did not drain in %d cycles", maxCycles)
			}
			rows = append(rows, summarizeTable11(size, prof.Name, m))
		}
	}
	return rows, nil
}

func summarizeTable11(size int, app string, m *machine.Machine) Table11Row {
	var total, readMiss, localWrite, shared uint64
	for pe := 0; pe < m.Processors(); pe++ {
		st := m.Cache(pe).Stats()
		total += st.Reads + st.Writes
		code := st.ByClass[coherence.ClassCode]
		local := st.ByClass[coherence.ClassLocal]
		sh := st.ByClass[coherence.ClassShared]
		// Read misses of cachable data (code + local reads).
		readMiss += code.ReadMisses + local.ReadMisses
		// Every local write is external communication under write-through.
		localWrite += local.WriteMisses
		// Every shared reference bypasses the cache.
		shared += sh.Reads + sh.Writes
	}
	pct := func(n uint64) float64 { return 100 * float64(n) / float64(total) }
	return Table11Row{
		CacheSize:     size,
		App:           app,
		ReadMissPct:   pct(readMiss),
		LocalWritePct: pct(localWrite),
		SharedPct:     pct(shared),
		TotalMissPct:  pct(readMiss + localWrite + shared),
	}
}

// Table11 renders the measurements in the paper's layout.
func Table11(p Params) (*report.Table, error) {
	rows, err := Table11Rows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "table1-1",
		Title:   "Cm* Emulated Cache Results (set size 1 word)",
		Columns: []string{"Cache Size", "App", "Read Miss %", "Local Writes %", "Shared R/W %", "Total Miss %"},
		Note: "synthetic reference streams calibrated to the paper's mix (shared 5%/10%, " +
			"local writes 8%/6.7%); absolute read-miss numbers depend on the locality " +
			"calibration, the shape (halving with cache size) is the reproduced property",
	}
	for _, r := range rows {
		t.AddRowf(r.CacheSize, r.App, r.ReadMissPct, r.LocalWritePct, r.SharedPct, r.TotalMissPct)
	}
	return t, nil
}
