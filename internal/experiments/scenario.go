package experiments

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/report"
)

// tableAlias keeps the Table re-export in experiments.go tidy.
type tableAlias = report.Table

// scenario drives a small machine one *operation* at a time, the way the
// paper's Figure 6 walkthroughs do: issue an access, run the bus to
// quiescence, snapshot the cache states. It bypasses the processor layer
// so the rows land exactly on the figures' observation points.
type scenario struct {
	mem    *memory.Memory
	bus    *bus.Bus
	caches []*cache.Cache
}

func newScenario(proto coherence.Protocol, pes, lines int) *scenario {
	s := &scenario{mem: memory.New()}
	s.bus = bus.New(s.mem)
	for i := 0; i < pes; i++ {
		c := cache.MustNew(i, proto, cache.Config{Lines: lines})
		s.bus.Attach(i, c)
		s.bus.AttachRequester(i, c)
		s.caches = append(s.caches, c)
	}
	return s
}

// settle runs bus cycles until the cache's pending operation resolves.
func (s *scenario) settle(id int) bus.Word {
	for cycle := 0; cycle < 10000; cycle++ {
		if v, ok := s.caches[id].TakeResolved(); ok {
			return v
		}
		for _, c := range s.caches {
			if c.NeedsPriority() {
				s.bus.PrioritySlot(c.ID())
			} else if _, want := c.WantsBus(); want && !s.bus.Slotted(c.ID()) {
				s.bus.RequestSlot(c.ID())
			}
		}
		if req, res, ok := s.bus.Tick(); ok {
			s.caches[req.Source].BusCompleted(req, res)
		}
	}
	panic("scenario: operation did not settle")
}

func (s *scenario) read(id int, a bus.Addr) bus.Word {
	if done, v := s.caches[id].Access(coherence.EvRead, a, 0, coherence.ClassShared); done {
		return v
	}
	return s.settle(id)
}

func (s *scenario) write(id int, a bus.Addr, v bus.Word) {
	if done, _ := s.caches[id].Access(coherence.EvWrite, a, v, coherence.ClassShared); done {
		return
	}
	s.settle(id)
}

// testSet performs one Test-and-Set, returning the old value.
func (s *scenario) testSet(id int, a bus.Addr, v bus.Word) bus.Word {
	if done, old := s.caches[id].AccessRMW(a, v); done {
		return old
	}
	return s.settle(id)
}

// testTestSet performs one Test-and-Test-and-Set attempt: a cached test,
// escalating to the atomic operation only if the test saw 0. It returns
// the observed/old value.
func (s *scenario) testTestSet(id int, a bus.Addr, v bus.Word) bus.Word {
	if got := s.read(id, a); got != 0 {
		return got
	}
	return s.testSet(id, a, v)
}

// stateCell renders a cache's view of addr the way the figures do:
// "R(0)", "L(1)", "I(-)"; NP(-) marks an address the cache never held.
func (s *scenario) stateCell(id int, a bus.Addr) string {
	st, v, ok := s.caches[id].Lookup(a)
	if !ok {
		return "NP(-)"
	}
	if st == coherence.Invalid {
		return "I(-)"
	}
	return fmt.Sprintf("%s(%d)", st.Letter(), v)
}

// row appends a figure row: per-cache state cells, the memory word, the
// bus transactions the step cost, and the observation label.
func (s *scenario) row(t *report.Table, a bus.Addr, busBefore uint64, observation string) {
	cells := make([]string, 0, len(s.caches)+3)
	for id := range s.caches {
		cells = append(cells, s.stateCell(id, a))
	}
	cells = append(cells, fmt.Sprint(s.mem.Peek(a)))
	cells = append(cells, fmt.Sprint(s.busTxns()-busBefore))
	cells = append(cells, observation)
	t.AddRow(cells...)
}

func (s *scenario) busTxns() uint64 {
	st := s.bus.Stats()
	return st.Transactions()
}

// figureColumns builds the header used by all Figure 6 reproductions.
func figureColumns(pes int) []string {
	cols := make([]string, 0, pes+3)
	for i := 1; i <= pes; i++ {
		cols = append(cols, fmt.Sprintf("P%d Cache", i))
	}
	return append(cols, "S (mem)", "Bus txns", "Observation")
}
