package experiments

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// Barrier ablation: the sense-reversing centralized barrier is the other
// classic hot spot (after the spin lock): every waiter spins on one sense
// word. Under the paper's schemes the spin is cache-resident and the
// barrier release is one bus write (RB invalidates the spinners, who then
// refetch via one broadcast read; RWB updates them in place).

func init() {
	register(Experiment{
		ID:      "ablation-barrier",
		Title:   "Centralized barrier: bus transactions per round (Section 6 hot spots)",
		Axes:    Axes{Scale: true}, // staggered arrivals are fixed, not seeded
		Version: 1,
		Chart:   &ChartSpec{Labels: []int{0}, Value: 3}, // txns/round
		Run: func(p Params) (*Table, error) {
			return BarrierAblation(p)
		},
	})
}

// BarrierRow is one protocol's barrier cost.
type BarrierRow struct {
	Protocol     string
	Rounds       int
	BusTxns      uint64
	TxnsPerRound float64
	Cycles       uint64
}

// BarrierRows measures bus transactions per completed barrier round with
// staggered arrivals (so real spinning happens).
func BarrierRows(p Params) ([]BarrierRow, error) {
	p = p.withDefaults()
	const pes = 8
	rounds := 10 * p.Scale
	var rows []BarrierRow
	for _, proto := range []coherence.Protocol{coherence.RB{}, coherence.NewRWB(2), coherence.Goodman{}, coherence.WriteThrough{}, coherence.NoCache{}} {
		var barriers []*workload.Barrier
		var buildErr error
		m, err := p.Machine("barrier/"+proto.Name(), machine.Config{
			Protocol:         proto,
			CacheLines:       64,
			CheckConsistency: true,
		}, func() []workload.Agent {
			barriers = barriers[:0]
			agents := make([]workload.Agent, 0, pes)
			for i := 0; i < pes; i++ {
				b, err := workload.NewBarrier(workload.BarrierConfig{
					Lock: 0, Counter: 1, Sense: 2, Progress: 16,
					Participants: pes, Rounds: rounds,
					WorkCycles: 1 + 15*i,
					ID:         i,
				})
				if err != nil {
					buildErr = err
					return nil
				}
				barriers = append(barriers, b)
				agents = append(agents, b)
			}
			return agents
		})
		if buildErr != nil {
			return nil, buildErr
		}
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(uint64(rounds) * 2_000_000); err != nil {
			return nil, err
		}
		if !m.Done() {
			return nil, fmt.Errorf("barrier: %s deadlocked", proto.Name())
		}
		for i, b := range barriers {
			if b.Rounds() != rounds {
				return nil, fmt.Errorf("barrier: %s PE%d finished %d rounds", proto.Name(), i, b.Rounds())
			}
			if err := b.Err(); err != nil {
				return nil, err
			}
		}
		mt := m.Metrics()
		rows = append(rows, BarrierRow{
			Protocol:     proto.Name(),
			Rounds:       rounds,
			BusTxns:      mt.Bus.Transactions(),
			TxnsPerRound: float64(mt.Bus.Transactions()) / float64(rounds),
			Cycles:       mt.Cycles,
		})
	}
	return rows, nil
}

// BarrierAblation renders the measurement.
func BarrierAblation(p Params) (*report.Table, error) {
	rows, err := BarrierRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-barrier",
		Title:   "8 PEs meeting at a sense-reversing barrier (staggered arrivals)",
		Columns: []string{"Protocol", "Rounds", "Bus txns", "Txns/round", "Cycles"},
		Note:    "the sense-word spin is cache-resident under the paper's schemes; without caches every spin iteration is a bus transaction",
	}
	for _, r := range rows {
		t.AddRowf(r.Protocol, r.Rounds, r.BusTxns, r.TxnsPerRound, r.Cycles)
	}
	return t, nil
}
