package experiments

import (
	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/report"
)

// The Figure 6 scenarios: three PEs synchronize on a lock S. P2 acquires,
// the others spin, P2 releases, P1 acquires. The rows reproduce the
// (state, value) matrices of Figures 6-1, 6-2 and 6-3.

const lockS = bus.Addr(64)

func init() {
	register(Experiment{
		ID:      "fig6-1",
		Title:   "Synchronization with Test-and-Set for RB Scheme",
		Version: 1, // scripted walkthrough: no parameter axes
		Run: func(Params) (*Table, error) {
			return figure61(), nil
		},
	})
	register(Experiment{
		ID:      "fig6-2",
		Title:   "Synchronization with Test-and-Test-and-Set for RB Scheme",
		Version: 1,
		Run: func(Params) (*Table, error) {
			return figure62(), nil
		},
	})
	register(Experiment{
		ID:      "fig6-3",
		Title:   "Synchronization with Test-and-Test-and-Set for RWB Scheme",
		Version: 1,
		Run: func(Params) (*Table, error) {
			return figure63(), nil
		},
	})
}

// prepare puts lock S in the all-Readable initial configuration of the
// figures ("Initial State": R(0) R(0) R(0), S=0) by having each PE read it.
func prepareLock(s *scenario) {
	for id := range s.caches {
		s.read(id, lockS)
	}
}

// Figure61 reproduces Figure 6-1: plain Test-and-Set spinning under RB.
// Every unsuccessful attempt is a bus read-modify-write — the hot spot.
func Figure61() *report.Table {
	return figure61()
}

func figure61() *report.Table {
	s := newScenario(coherence.RB{}, 3, 16)
	t := &report.Table{
		ID:      "fig6-1",
		Title:   "Synchronization with Test-and-Set for RB Scheme",
		Columns: figureColumns(3),
		Note: "spinning Test-and-Sets keep hitting the bus; the release is a local write " +
			"to the Local line, flushed to memory by the next locked read " +
			"(the paper's S column anticipates that flush)",
	}
	prepareLock(s)
	s.row(t, lockS, s.busTxns(), "Initial State")

	before := s.busTxns()
	s.testSet(1, lockS, 1) // P2 locks S
	s.row(t, lockS, before, "P2 Locks S")

	before = s.busTxns()
	for i := 0; i < 3; i++ { // others spin with TS
		s.testSet(0, lockS, 1)
		s.testSet(2, lockS, 1)
	}
	s.row(t, lockS, before, "Others try to get S (Bus Traffic)")

	before = s.busTxns()
	s.write(1, lockS, 0) // P2 releases S (local write: L is dirty now)
	s.row(t, lockS, before, "P2 releases S")

	before = s.busTxns()
	s.testSet(0, lockS, 1) // P1 gets S (locked read flushes the 0 first)
	s.row(t, lockS, before, "P1 get the S")

	before = s.busTxns()
	for i := 0; i < 3; i++ {
		s.testSet(2, lockS, 1)
		s.testSet(1, lockS, 1)
	}
	s.row(t, lockS, before, "Others try to get S")
	return t
}

// Figure62 reproduces Figure 6-2: Test-and-Test-and-Set under RB. While
// the lock is held the spinners loop in their caches with zero bus
// traffic.
func Figure62() *report.Table {
	return figure62()
}

func figure62() *report.Table {
	s := newScenario(coherence.RB{}, 3, 16)
	t := &report.Table{
		ID:      "fig6-2",
		Title:   "Synchronization with Test-and-Test-and-Set for RB Scheme",
		Columns: figureColumns(3),
		Note:    "the spinning rows generate no bus traffic: the test part is satisfied by the cache",
	}
	prepareLock(s)
	s.row(t, lockS, s.busTxns(), "Initial State")

	before := s.busTxns()
	s.testTestSet(1, lockS, 1) // P2 locks S
	s.row(t, lockS, before, "P2 locks S")

	// Others' first test misses (their copies were invalidated); the
	// interrupted read refreshes everyone to R(1).
	before = s.busTxns()
	s.testTestSet(0, lockS, 1)
	s.testTestSet(2, lockS, 1)
	s.row(t, lockS, before, "Others test S (fetch refreshes all caches)")

	before = s.busTxns()
	for i := 0; i < 5; i++ { // now they spin entirely in cache
		s.testTestSet(0, lockS, 1)
		s.testTestSet(2, lockS, 1)
	}
	s.row(t, lockS, before, "Others try to get S (No Bus Traffic) (Load from Caches)")

	before = s.busTxns()
	s.write(1, lockS, 0) // P2 releases S: R->L write-through
	s.row(t, lockS, before, "P2 releases S")

	before = s.busTxns()
	s.read(0, lockS) // the spinners' next test: a bus read to S
	s.row(t, lockS, before, "A Bus Read to S")

	before = s.busTxns()
	s.testSet(0, lockS, 1) // P1's test saw 0; the TS succeeds
	s.row(t, lockS, before, "P1 get the S")

	before = s.busTxns()
	s.testTestSet(1, lockS, 1)
	s.testTestSet(2, lockS, 1)
	s.row(t, lockS, before, "Others try to get S")
	return t
}

// Figure63 reproduces Figure 6-3: TTS under RWB. The acquisition leaves
// the caches in the intermediate F/R configuration (every copy holds the
// new value), and the release needs only a bus invalidate.
func Figure63() *report.Table {
	return figure63()
}

func figure63() *report.Table {
	s := newScenario(coherence.NewRWB(2), 3, 16)
	t := &report.Table{
		ID:      "fig6-3",
		Title:   "Synchronization with Test-and-Test-and-Set for RWB Scheme",
		Columns: figureColumns(3),
		Note: "compared with Figure 6-2: acquisitions broadcast the value (no invalidation), " +
			"so the spinners keep readable copies throughout",
	}
	prepareLock(s)
	s.row(t, lockS, s.busTxns(), "Initial State")

	before := s.busTxns()
	s.testTestSet(1, lockS, 1) // P2 locks S: R -> F, others snarf
	s.row(t, lockS, before, "P2 locks S")

	before = s.busTxns()
	for i := 0; i < 5; i++ { // spinners already hold R(1): zero traffic
		s.testTestSet(0, lockS, 1)
		s.testTestSet(2, lockS, 1)
	}
	s.row(t, lockS, before, "Others try to get S (No Bus Traffic) (Load from Caches)")

	before = s.busTxns()
	s.write(1, lockS, 0) // release: second uninterrupted write -> BI -> L
	s.row(t, lockS, before, "P2 releases S")

	before = s.busTxns()
	s.read(0, lockS) // next test: a bus read to S (flush + broadcast)
	s.row(t, lockS, before, "A Bus Read to S")

	before = s.busTxns()
	s.testSet(0, lockS, 1) // P1 gets S: R -> F, others snarf the 1
	s.row(t, lockS, before, "P1 get the S")

	before = s.busTxns()
	s.testTestSet(1, lockS, 1)
	s.testTestSet(2, lockS, 1)
	s.row(t, lockS, before, "Others try to get S")
	return t
}
