package experiments

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// Ablations: the quantitative claims embedded in the paper's prose.

func init() {
	register(Experiment{
		ID:      "ablation-arrayinit",
		Title:   "Array initialization: bus writes per element (Section 5 claim)",
		Axes:    Axes{Scale: true}, // the init stream is seed-free
		Version: 1,
		Run: func(p Params) (*Table, error) {
			return ArrayInitAblation(p)
		},
	})
	register(Experiment{
		ID:      "ablation-lock",
		Title:   "Lock contention: bus transactions per acquisition (Section 6)",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Chart:   &ChartSpec{Labels: []int{0, 1}, Value: 4}, // txns/acquisition
		Run: func(p Params) (*Table, error) {
			return LockAblation(p)
		},
	})
	register(Experiment{
		ID:      "ablation-mix",
		Title:   "Read/write mix sweep: bus traffic per reference by protocol",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Chart:   &ChartSpec{Labels: []int{1, 0}, Value: 2}, // bus txns/ref
		Run: func(p Params) (*Table, error) {
			return MixSweep(p)
		},
	})
	register(Experiment{
		ID:      "ablation-threshold",
		Title:   "RWB write-streak threshold k (Section 5, footnote 6)",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Run: func(p Params) (*Table, error) {
			return ThresholdAblation(p)
		},
	})
	register(Experiment{
		ID:      "ablation-fault",
		Title:   "Memory fault recovery from replicated cache copies (Section 8)",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Run: func(p Params) (*Table, error) {
			return FaultRecovery(p)
		},
	})
}

// ArrayInitRow is one protocol's array-initialization cost.
type ArrayInitRow struct {
	Protocol            string
	Elements            int
	BusWrites           uint64
	BusWritesPerElement float64
}

// ArrayInitRows measures the Section 5 claim: "Under the RB scheme, there
// would be two bus writes for each item; ... In RWB, there will be only
// one bus write per item." The array is 4x the cache, so every line is
// eventually evicted.
func ArrayInitRows(p Params) ([]ArrayInitRow, error) {
	p = p.withDefaults()
	const cacheLines = 64
	elements := cacheLines * 4 * p.Scale
	var rows []ArrayInitRow
	for _, proto := range []coherence.Protocol{coherence.RB{}, coherence.RBDirtyEvict{}, coherence.NewRWB(2), coherence.Goodman{}, coherence.WriteThrough{}} {
		m, err := p.Machine("arrayinit/"+proto.Name(), machine.Config{
			Protocol:         proto,
			CacheLines:       cacheLines,
			CheckConsistency: true,
		}, func() []workload.Agent {
			return []workload.Agent{workload.NewArrayInit(0, elements)}
		})
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(uint64(elements) * 100); err != nil {
			return nil, err
		}
		if !m.Done() {
			return nil, fmt.Errorf("arrayinit: %s did not finish", proto.Name())
		}
		// Drain: evict everything by flushing remaining dirty lines via a
		// second pass... instead count the write-backs still owed.
		writes := m.Metrics().Bus.Writes()
		owed := uint64(0)
		for _, e := range m.Cache(0).Entries() {
			if proto.WritebackOnEvict(e.State, e.Dirty) {
				owed++
			}
		}
		total := writes + owed
		rows = append(rows, ArrayInitRow{
			Protocol:            proto.Name(),
			Elements:            elements,
			BusWrites:           total,
			BusWritesPerElement: float64(total) / float64(elements),
		})
	}
	return rows, nil
}

// ArrayInitAblation renders the bus writes per initialized element.
func ArrayInitAblation(p Params) (*report.Table, error) {
	rows, err := ArrayInitRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-arrayinit",
		Title:   "Initializing an array much larger than the cache",
		Columns: []string{"Protocol", "Elements", "Bus writes (incl. owed write-backs)", "Per element"},
		Note:    "the paper's claim: RB pays ~2 bus writes per element (write-through + write-back), RWB ~1",
	}
	for _, r := range rows {
		t.AddRowf(r.Protocol, r.Elements, r.BusWrites, r.BusWritesPerElement)
	}
	return t, nil
}

// LockRow is one (protocol, strategy) contention measurement.
type LockRow struct {
	Protocol     string
	Strategy     string
	Acquisitions int
	BusTxns      uint64
	TxnsPerAcq   float64
	Cycles       uint64
}

// LockRows measures bus transactions per completed lock acquisition for
// TS vs TTS across the protocols: Section 6's hot-spot elimination,
// quantified.
func LockRows(p Params) ([]LockRow, error) {
	p = p.withDefaults()
	const pes = 8
	iters := 20 * p.Scale
	var rows []LockRow
	for _, proto := range []coherence.Protocol{coherence.RB{}, coherence.NewRWB(2), coherence.Goodman{}, coherence.Illinois{}, coherence.WriteThrough{}} {
		for _, strat := range []workload.Strategy{workload.StrategyTS, workload.StrategyTTS} {
			// The agents are (re)built inside the closure so the locks
			// slice always tracks the machine's live agents, fresh or
			// recycled alike.
			var locks []*workload.Spinlock
			var buildErr error
			m, err := p.Machine(fmt.Sprintf("lock/%s/%s", proto.Name(), strat), machine.Config{
				Protocol:         proto,
				CacheLines:       64,
				CheckConsistency: true,
			}, func() []workload.Agent {
				locks = locks[:0]
				agents := make([]workload.Agent, pes)
				for i := range agents {
					s, err := workload.NewSpinlock(workload.SpinlockConfig{
						Lock: 100, Strategy: strat, Iterations: iters,
						CriticalReads: 3, CriticalWrites: 3,
						GuardedBase: 200, GuardedWords: 8,
						Seed: p.Seed + uint64(i),
					})
					if err != nil {
						buildErr = err
						return nil
					}
					locks = append(locks, s)
					agents[i] = s
				}
				return agents
			})
			if buildErr != nil {
				return nil, buildErr
			}
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(uint64(iters) * uint64(pes) * 20000); err != nil {
				return nil, err
			}
			if !m.Done() {
				return nil, fmt.Errorf("lock: %s/%s did not finish", proto.Name(), strat)
			}
			total := 0
			for _, s := range locks {
				total += s.Acquisitions()
			}
			mt := m.Metrics()
			rows = append(rows, LockRow{
				Protocol:     proto.Name(),
				Strategy:     strat.String(),
				Acquisitions: total,
				BusTxns:      mt.Bus.Transactions(),
				TxnsPerAcq:   float64(mt.Bus.Transactions()) / float64(total),
				Cycles:       mt.Cycles,
			})
		}
	}
	return rows, nil
}

// LockAblation renders the contention measurements.
func LockAblation(p Params) (*report.Table, error) {
	rows, err := LockRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-lock",
		Title:   "8 PEs contending for one lock (critical section of 6 shared accesses)",
		Columns: []string{"Protocol", "Strategy", "Acquisitions", "Bus txns", "Txns/acquisition", "Cycles"},
		Note:    "TTS spins in the cache, so its per-acquisition bus cost is far below TS's",
	}
	for _, r := range rows {
		t.AddRowf(r.Protocol, r.Strategy, r.Acquisitions, r.BusTxns, r.TxnsPerAcq, r.Cycles)
	}
	return t, nil
}

// MixRow is one point of the read/write mix sweep.
type MixRow struct {
	WriteFrac float64
	Protocol  string
	BusPerRef float64
}

// MixRows sweeps the write fraction of a shared-data workload, measuring
// bus transactions per reference under each protocol — the assumption-1
// sensitivity study ("Each data item is referenced more often with a read
// operation than with a write operation").
func MixRows(p Params) ([]MixRow, error) {
	p = p.withDefaults()
	const pes = 4
	refs := 3000 * p.Scale
	var rows []MixRow
	for _, wf := range []float64{0.05, 0.1, 0.2, 0.35, 0.5} {
		for _, k := range []coherence.Kind{coherence.KindRB, coherence.KindRWB, coherence.KindGoodman, coherence.KindIllinois, coherence.KindWriteThrough} {
			m, err := p.Machine(fmt.Sprintf("mix/%s/wf=%v", k, wf), machine.Config{
				Protocol:         coherence.New(k),
				CacheLines:       128,
				CheckConsistency: true,
			}, func() []workload.Agent {
				agents := make([]workload.Agent, pes)
				for i := range agents {
					agents[i] = workload.NewRandom(0, 64, refs, wf, 0, p.Seed+uint64(i))
				}
				return agents
			})
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(uint64(refs) * uint64(pes) * 100); err != nil {
				return nil, err
			}
			if !m.Done() {
				return nil, fmt.Errorf("mix: %v at wf=%v did not finish", k, wf)
			}
			rows = append(rows, MixRow{WriteFrac: wf, Protocol: k.String(), BusPerRef: m.Metrics().BusPerRef()})
		}
	}
	return rows, nil
}

// MixSweep renders the sweep.
func MixSweep(p Params) (*report.Table, error) {
	rows, err := MixRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-mix",
		Title:   "Bus transactions per reference vs. write fraction (4 PEs, shared data)",
		Columns: []string{"Write frac", "Protocol", "Bus txns/ref"},
		Note:    "read-dominated mixes favor the broadcasting schemes; write-heavy mixes erode their edge",
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].WriteFrac != rows[j].WriteFrac {
			return rows[i].WriteFrac < rows[j].WriteFrac
		}
		return rows[i].Protocol < rows[j].Protocol
	})
	for _, r := range rows {
		t.AddRowf(r.WriteFrac, r.Protocol, r.BusPerRef)
	}
	return t, nil
}

// ThresholdRow is one RWB-k measurement.
type ThresholdRow struct {
	K         uint8
	Workload  string
	BusPerRef float64
}

// ThresholdRows sweeps the RWB write-streak threshold over two contrasting
// workloads: a single repeated writer (favors small k: claim Local early)
// and a write-then-read-by-others ping-pong (favors large k: stay in the
// broadcasting states).
func ThresholdRows(p Params) ([]ThresholdRow, error) {
	p = p.withDefaults()
	refs := 4000 * p.Scale
	var rows []ThresholdRow
	for _, k := range []uint8{2, 3, 4} {
		for _, kind := range []string{"private-writer", "ping-pong"} {
			m, err := p.Machine(fmt.Sprintf("threshold/k=%d/%s", k, kind), machine.Config{
				Protocol:         coherence.NewRWB(k),
				CacheLines:       32,
				CheckConsistency: true,
			}, func() []workload.Agent {
				switch kind {
				case "private-writer":
					// One PE hammers its own words; another idles on other data.
					return []workload.Agent{
						workload.NewRandom(0, 8, refs, 0.9, 0, p.Seed),
						workload.NewRandom(1000, 8, refs, 0.9, 0, p.Seed+1),
					}
				default: // ping-pong: both PEs read and write the same small set.
					return []workload.Agent{
						workload.NewRandom(0, 8, refs, 0.5, 0, p.Seed),
						workload.NewRandom(0, 8, refs, 0.5, 0, p.Seed+1),
					}
				}
			})
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(uint64(refs) * 100); err != nil {
				return nil, err
			}
			if !m.Done() {
				return nil, fmt.Errorf("threshold: k=%d %s did not finish", k, kind)
			}
			rows = append(rows, ThresholdRow{K: k, Workload: kind, BusPerRef: m.Metrics().BusPerRef()})
		}
	}
	return rows, nil
}

// ThresholdAblation renders the k sweep.
func ThresholdAblation(p Params) (*report.Table, error) {
	rows, err := ThresholdRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-threshold",
		Title:   "RWB with k uninterrupted writes required to claim Local",
		Columns: []string{"k", "Workload", "Bus txns/ref"},
		Note:    "footnote 6's design knob: private writers want small k, shared ping-pong wants the broadcast states",
	}
	for _, r := range rows {
		t.AddRowf(r.K, r.Workload, r.BusPerRef)
	}
	return t, nil
}

// FaultRow is one protocol's recovery measurement.
type FaultRow struct {
	Protocol    string
	Corrupted   int
	Recoverable int
	Fraction    float64
}

// FaultRows measures Section 8's reliability remark ("the exploitation of
// replicated values in the various caches to improve the reliability of
// the memory"; Section 5: under RWB "there is a higher probability that
// some cache contains a correct copy"): after a shared read-mostly
// workload quiesces, every memory word in the shared segment is corrupted
// and we count how many can be restored from a clean cached copy.
func FaultRows(p Params) ([]FaultRow, error) {
	p = p.withDefaults()
	const pes, words = 4, 256
	refs := 3000 * p.Scale
	var rows []FaultRow
	for _, proto := range []coherence.Protocol{coherence.RB{}, coherence.NewRWB(2), coherence.Goodman{}} {
		m, err := p.Machine("faultrecovery/"+proto.Name(), machine.Config{
			Protocol:         proto,
			CacheLines:       64,
			CheckConsistency: true,
		}, func() []workload.Agent {
			agents := make([]workload.Agent, pes)
			for i := range agents {
				// Write-heavy shared traffic: invalidation-based schemes
				// leave fewer surviving replicas.
				agents[i] = workload.NewRandom(0, words, refs, 0.5, 0, p.Seed+uint64(i))
			}
			return agents
		})
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(uint64(refs) * uint64(pes) * 100); err != nil {
			return nil, err
		}
		if !m.Done() {
			return nil, fmt.Errorf("fault: %s did not finish", proto.Name())
		}
		corrupted, recovered := 0, 0
		for a := bus.Addr(0); a < words; a++ {
			before := m.Memory().Peek(a)
			m.Memory().Corrupt(a, 0xdeadbeef)
			corrupted++
			if v, clean, ok := ScavengeCopy(m, a); ok {
				recovered++
				if clean && v != before {
					return nil, fmt.Errorf("fault: %s: clean copy of %d disagrees with memory", proto.Name(), a)
				}
				m.Memory().Poke(a, v)
			} else {
				m.Memory().Poke(a, before) // undo; nothing to recover from
			}
		}
		rows = append(rows, FaultRow{
			Protocol:    proto.Name(),
			Corrupted:   corrupted,
			Recoverable: recovered,
			Fraction:    float64(recovered) / float64(corrupted),
		})
	}
	return rows, nil
}

// ScavengeCopy searches every cache for a usable replica of addr: a dirty
// copy is the (unique) latest value and is preferred; otherwise any valid
// clean copy is byte-identical to the uncorrupted memory word. clean
// reports which kind was found.
func ScavengeCopy(m *machine.Machine, a bus.Addr) (v bus.Word, clean, ok bool) {
	var cleanVal bus.Word
	var haveClean bool
	for pe := 0; pe < m.Processors(); pe++ {
		st, val, present := m.Cache(pe).Lookup(a)
		if !present || st == coherence.Invalid {
			continue
		}
		for _, e := range m.Cache(pe).Entries() {
			if e.Addr != a {
				continue
			}
			if e.Dirty {
				return val, false, true // the latest value, by the lemma
			}
			cleanVal, haveClean = val, true
		}
	}
	return cleanVal, true, haveClean
}

// FaultRecovery renders the recovery fractions.
func FaultRecovery(p Params) (*report.Table, error) {
	rows, err := FaultRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-fault",
		Title:   "Recovering corrupted memory words from replicated cache copies",
		Columns: []string{"Protocol", "Words corrupted", "Recovered", "Fraction"},
		Note:    "RWB keeps more live replicas (updates instead of invalidates), so more words are recoverable",
	}
	for _, r := range rows {
		t.AddRowf(r.Protocol, r.Corrupted, r.Recoverable, r.Fraction)
	}
	return t, nil
}

func init() {
	register(Experiment{
		ID:      "ablation-private",
		Title:   "Private-data writes: bus traffic per reference (Section 2, assumption 2)",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Run: func(p Params) (*Table, error) {
			return PrivateAblation(p)
		},
	})
}

// PrivateRow is one protocol's private-data cost.
type PrivateRow struct {
	Protocol  string
	BusPerRef float64
}

// PrivateRows measures bus transactions per reference when every PE reads
// and writes only its own data — the "local variables" regime the paper's
// assumption 2 says dominates. The dynamic-classification schemes (RB's
// Local state, Illinois's silent E->M upgrade) should approach zero
// steady-state traffic; write-through pays for every store forever.
func PrivateRows(p Params) ([]PrivateRow, error) {
	p = p.withDefaults()
	const pes = 4
	refs := 4000 * p.Scale
	var rows []PrivateRow
	for _, k := range []coherence.Kind{coherence.KindRB, coherence.KindRWB, coherence.KindGoodman, coherence.KindIllinois, coherence.KindWriteThrough} {
		m, err := p.Machine(fmt.Sprintf("private/%s", k), machine.Config{
			Protocol:         coherence.New(k),
			CacheLines:       64,
			CheckConsistency: true,
		}, func() []workload.Agent {
			agents := make([]workload.Agent, pes)
			for i := range agents {
				// Disjoint 16-word working sets, half writes: pure private use.
				agents[i] = workload.NewRandom(bus.Addr(1000*i), 16, refs, 0.5, 0, p.Seed+uint64(i))
			}
			return agents
		})
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(uint64(refs) * uint64(pes) * 100); err != nil {
			return nil, err
		}
		if !m.Done() {
			return nil, fmt.Errorf("private: %v did not finish", k)
		}
		rows = append(rows, PrivateRow{Protocol: k.String(), BusPerRef: m.Metrics().BusPerRef()})
	}
	return rows, nil
}

// PrivateAblation renders the private-data comparison.
func PrivateAblation(p Params) (*report.Table, error) {
	rows, err := PrivateRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "ablation-private",
		Title:   "4 PEs referencing disjoint private data (50% writes)",
		Columns: []string{"Protocol", "Bus txns/ref"},
		Note: "dynamic classification at work: RB/RWB reach the Local state and Illinois the " +
			"Modified state after warmup, so private writes stop using the bus entirely",
	}
	for _, r := range rows {
		t.AddRowf(r.Protocol, r.BusPerRef)
	}
	return t, nil
}
