// Trace-driven workloads: a captured reference trace (internal/trace)
// registered as a first-class experiment. The registered experiment runs
// the replay under every coherence protocol through the same
// Params.Machine chokepoint as the synthetic experiments, so trace
// workloads flow through sweeps, fault campaigns, batched arenas and
// cluster routing unchanged — and a trace captured from a non-reactive
// synthetic run reproduces that run's table byte for byte.

package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// WorkloadMatrix runs one agent set under every coherence protocol and
// tabulates the paper's figures of merit per protocol. It is the shared
// table shape behind every trace-driven experiment; running it twice
// with agent sets that emit the same reference streams yields
// byte-identical tables, which is how trace replays are validated
// against the synthetic runs they were captured from.
//
// agents is called once per protocol and must build a fresh set each
// time. maxCycles bounds each run; the machine must drain within it.
func WorkloadMatrix(p Params, id, title, note string, cacheLines int, maxCycles uint64, agents func() []workload.Agent) (*Table, error) {
	p = p.withDefaults()
	t := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Protocol", "Refs", "Cycles", "Miss %", "Inval/1k Refs", "Bus/Ref"},
		Note:    note,
	}
	for _, k := range coherence.Kinds() {
		m, err := p.Machine(fmt.Sprintf("%s/lines=%d/%s", id, cacheLines, k), machine.Config{
			Protocol:   coherence.New(k),
			CacheLines: cacheLines,
		}, agents)
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(maxCycles); err != nil {
			return nil, err
		}
		if !m.Done() {
			return nil, fmt.Errorf("%s: machine did not drain under %s in %d cycles", id, k, maxCycles)
		}
		mt := m.Metrics()
		var refs, hits, invals uint64
		for _, cs := range mt.Caches {
			refs += cs.Reads + cs.Writes
			hits += cs.ReadHits + cs.WriteHits
			invals += cs.InvalidatedBy
		}
		missPct, invalPerK := 0.0, 0.0
		if refs > 0 {
			missPct = 100 * (1 - float64(hits)/float64(refs))
			invalPerK = 1000 * float64(invals) / float64(refs)
		}
		t.AddRowf(k, mt.TotalRefs(), mt.Cycles, missPct, invalPerK, mt.BusPerRef())
	}
	return t, nil
}

// TraceSalt is the content salt for a trace experiment: the truncated
// SHA-256 of the raw trace bytes. Folding it into the experiment (and
// thus every sweep/serve cache key) means two deployments registering
// different traces under the same name can never alias a memoized
// artifact.
func TraceSalt(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8])
}

// traceCacheLines is the cache geometry trace experiments replay under:
// the paper's mid-sized configuration.
const traceCacheLines = 256

// traceMaxCycles bounds a replay run generously: every record may cost a
// full bus transaction with retries under contention.
func traceMaxCycles(records int) uint64 {
	return uint64(records)*400 + 100_000
}

// RegisterTrace registers the trace in raw (MCT1 binary or text; see
// internal/trace) as experiment "trace-<name>". The experiment replays
// the trace under every coherence protocol via WorkloadMatrix. Replay is
// deterministic, so the experiment declares no seed/scale axes; the
// content hash of raw becomes the experiment Salt. Unlike the compiled-in
// registrations this is driven by operator input (a -trace flag), so
// invalid names, undecodable traces and duplicates are errors, not
// panics.
func RegisterTrace(name string, raw []byte) error {
	id := "trace-" + name
	if !validID(id) {
		return fmt.Errorf("experiments: trace name %q is not stable kebab-case", name)
	}
	for _, e := range registry {
		if e.ID == id {
			return fmt.Errorf("experiments: %s already registered", id)
		}
	}
	recs, err := trace.Decode(raw)
	if err != nil {
		return fmt.Errorf("experiments: trace %q: %w", name, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("experiments: trace %q is empty", name)
	}
	opsByPE, pes := traceOps(recs)
	salt := TraceSalt(raw)
	note := fmt.Sprintf("replay of trace %q: %d records, %d PEs, content %s", name, len(recs), pes, salt)
	register(Experiment{
		ID:      id,
		Title:   fmt.Sprintf("Trace Replay: %s", name),
		Axes:    Axes{}, // replay is seed- and scale-independent
		Version: 1,
		Salt:    salt,
		Chart:   &ChartSpec{Labels: []int{0}, Value: 5}, // bus/ref per protocol
		Run: func(p Params) (*Table, error) {
			return WorkloadMatrix(p, id, fmt.Sprintf("Trace Replay: %s", name), note,
				traceCacheLines, traceMaxCycles(len(recs)), func() []workload.Agent {
					return TraceAgents(opsByPE)
				})
		},
	})
	return nil
}

// RegisterTraceFile registers a trace workload from a "name=path"
// command-line argument: the file's bytes become experiment
// "trace-<name>". It is the shared implementation of the repeatable
// -trace flag the sweep/serve/router CLIs accept at boot.
func RegisterTraceFile(arg string) error {
	name, path, ok := strings.Cut(arg, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("experiments: -trace %q: want name=path", arg)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("experiments: trace %q: %w", name, err)
	}
	return RegisterTrace(name, raw)
}

// traceOps splits records into per-PE operation slices, dense over
// 0..maxPE. The slices are shared read-only by every trial's agents.
func traceOps(recs []trace.Record) ([][]workload.Op, int) {
	split := trace.Split(recs)
	maxPE := 0
	for pe := range split {
		if pe > maxPE {
			maxPE = pe
		}
	}
	ops := make([][]workload.Op, maxPE+1)
	for pe, tr := range split {
		ops[pe] = tr.Ops
	}
	return ops, maxPE + 1
}

// TraceAgents builds one fresh replay agent per PE over the shared
// per-PE operation slices; PEs with no records idle. Trace agents
// implement Reseeder, so the set works in batched arenas and
// Machine.Reset like any synthetic workload.
func TraceAgents(opsByPE [][]workload.Op) []workload.Agent {
	agents := make([]workload.Agent, len(opsByPE))
	for i, ops := range opsByPE {
		agents[i] = &workload.Trace{Ops: ops}
	}
	return agents
}
