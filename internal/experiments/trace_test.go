package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/trace"
	"repro/internal/workload"
)

// syntheticSet builds the non-reactive synthetic workload the identity
// checks capture and replay: App agents ignore operation results, so a
// standalone capture emits exactly the stream a live run consumes.
func syntheticSet(pes, refs int, seed uint64) func() []workload.Agent {
	layout := workload.DefaultLayout()
	prof := workload.PDEProfile()
	return func() []workload.Agent {
		as := make([]workload.Agent, pes)
		for i := range as {
			as[i] = workload.MustApp(prof, layout, i, seed, refs)
		}
		return as
	}
}

func captureSet(t testing.TB, agents func() []workload.Agent, refs int) []trace.Record {
	t.Helper()
	var recs []trace.Record
	for pe, a := range agents() {
		recs = append(recs, trace.Capture(pe, a, refs+1)...)
	}
	return recs
}

// TestTraceReplayMatchesSynthetic is the acceptance identity: a trace
// captured from a synthetic workload, replayed through WorkloadMatrix,
// renders byte-identically to the live synthetic run.
func TestTraceReplayMatchesSynthetic(t *testing.T) {
	const pes, refs = 3, 600
	agents := syntheticSet(pes, refs, 5)
	recs := captureSet(t, agents, refs)
	opsByPE, n := traceOps(recs)
	if n != pes {
		t.Fatalf("capture covered %d PEs, want %d", n, pes)
	}
	max := traceMaxCycles(len(recs))
	syn, err := WorkloadMatrix(Params{}, "trace-identity", "Identity", "note", 64, max, agents)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := WorkloadMatrix(Params{}, "trace-identity", "Identity", "note", 64, max, func() []workload.Agent {
		return TraceAgents(opsByPE)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"plain", "csv", "markdown"} {
		if a, b := syn.Render(format), rep.Render(format); a != b {
			t.Fatalf("replay table differs from synthetic run (%s):\n%s\n---\n%s", format, a, b)
		}
	}
}

// TestRegisterTrace exercises the operator-facing registration path:
// decode, salt, registry entry, replay run, and the error (not panic)
// contract for bad input.
func TestRegisterTrace(t *testing.T) {
	agents := syntheticSet(2, 200, 9)
	recs := captureSet(t, agents, 200)
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if err := RegisterTrace("goldrun", raw); err != nil {
		t.Fatal(err)
	}
	e, err := ByID("trace-goldrun")
	if err != nil {
		t.Fatal(err)
	}
	if e.Salt != TraceSalt(raw) || e.Salt == "" {
		t.Fatalf("Salt = %q, want %q", e.Salt, TraceSalt(raw))
	}
	if e.Axes.Seed || e.Axes.Scale {
		t.Fatalf("trace replay declared axes %+v; it is deterministic", e.Axes)
	}
	tb, err := e.Run(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tb.Rows), len(coherence.Kinds()); got != want {
		t.Fatalf("replay table has %d rows, want one per protocol (%d)", got, want)
	}
	if !strings.Contains(tb.Note, e.Salt) {
		t.Fatalf("table note %q does not cite the content salt", tb.Note)
	}

	for name, in := range map[string][]byte{
		"goldrun":  raw,                      // duplicate
		"Bad Name": raw,                      // not kebab-case
		"garbage":  []byte("not a trace\n"),  // undecodable
		"empty":    []byte("# comments\n\n"), // decodes to zero records
	} {
		if err := RegisterTrace(name, in); err == nil {
			t.Errorf("RegisterTrace(%q) accepted", name)
		}
	}
	// Same bytes, different name: fine, and the salt matches.
	if err := RegisterTrace("goldrun-b", raw); err != nil {
		t.Fatal(err)
	}
	b, err := ByID("trace-goldrun-b")
	if err != nil {
		t.Fatal(err)
	}
	if b.Salt != e.Salt {
		t.Fatalf("same bytes produced different salts: %q vs %q", b.Salt, e.Salt)
	}
}
