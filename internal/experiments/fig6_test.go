package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell extracts (PE column) of a row by observation label.
func findRow(t *testing.T, tb *Table, observation string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if strings.Contains(row[len(row)-1], observation) {
			return row
		}
	}
	t.Fatalf("no row with observation %q in %s", observation, tb.ID)
	return nil
}

func busTxnsOf(t *testing.T, row []string) int {
	t.Helper()
	n, err := strconv.Atoi(row[len(row)-2])
	if err != nil {
		t.Fatalf("bad bus txn cell %q", row[len(row)-2])
	}
	return n
}

// TestFigure61MatchesPaper asserts the state matrix of Figure 6-1.
func TestFigure61MatchesPaper(t *testing.T) {
	tb := figure61()

	r := findRow(t, tb, "Initial State")
	if r[0] != "R(0)" || r[1] != "R(0)" || r[2] != "R(0)" || r[3] != "0" {
		t.Fatalf("initial row = %v", r)
	}

	r = findRow(t, tb, "P2 Locks S")
	if r[0] != "I(-)" || r[1] != "L(1)" || r[2] != "I(-)" || r[3] != "1" {
		t.Fatalf("lock row = %v, want I(-) L(1) I(-) 1", r)
	}

	// Spinning with TS generates bus traffic and changes nothing.
	r = findRow(t, tb, "Others try to get S (Bus Traffic)")
	if r[0] != "I(-)" || r[1] != "L(1)" || r[2] != "I(-)" {
		t.Fatalf("spin row = %v", r)
	}
	if busTxnsOf(t, r) == 0 {
		t.Fatal("TS spinning generated no bus traffic")
	}

	// Release is local: L(0) with the others Invalid.
	r = findRow(t, tb, "P2 releases S")
	if r[0] != "I(-)" || r[1] != "L(0)" || r[2] != "I(-)" {
		t.Fatalf("release row = %v", r)
	}

	r = findRow(t, tb, "P1 get the S")
	if r[0] != "L(1)" || r[1] != "I(-)" || r[2] != "I(-)" || r[3] != "1" {
		t.Fatalf("reacquire row = %v, want L(1) I(-) I(-) 1", r)
	}
}

// TestFigure62MatchesPaper asserts the state matrix of Figure 6-2 —
// including the zero-bus-traffic spinning row, the paper's headline.
func TestFigure62MatchesPaper(t *testing.T) {
	tb := figure62()

	r := findRow(t, tb, "Initial State")
	if r[0] != "R(0)" || r[1] != "R(0)" || r[2] != "R(0)" {
		t.Fatalf("initial row = %v", r)
	}

	r = findRow(t, tb, "P2 locks S")
	if r[0] != "I(-)" || r[1] != "L(1)" || r[2] != "I(-)" || r[3] != "1" {
		t.Fatalf("lock row = %v", r)
	}

	// After the first (fetching) test, everyone holds R(1).
	r = findRow(t, tb, "Others test S")
	if r[0] != "R(1)" || r[1] != "R(1)" || r[2] != "R(1)" {
		t.Fatalf("fetch row = %v, want all R(1)", r)
	}

	// The spinning row is the claim: No Bus Traffic.
	r = findRow(t, tb, "No Bus Traffic")
	if r[0] != "R(1)" || r[1] != "R(1)" || r[2] != "R(1)" {
		t.Fatalf("spin row = %v", r)
	}
	if got := busTxnsOf(t, r); got != 0 {
		t.Fatalf("TTS spinning generated %d bus transactions, want 0", got)
	}

	r = findRow(t, tb, "P2 releases S")
	if r[0] != "I(-)" || r[1] != "L(0)" || r[2] != "I(-)" || r[3] != "0" {
		t.Fatalf("release row = %v, want I(-) L(0) I(-) 0", r)
	}

	r = findRow(t, tb, "A Bus Read to S")
	if r[0] != "R(0)" || r[1] != "R(0)" || r[2] != "R(0)" || r[3] != "0" {
		t.Fatalf("bus-read row = %v, want all R(0)", r)
	}

	r = findRow(t, tb, "P1 get the S")
	if r[0] != "L(1)" || r[1] != "I(-)" || r[2] != "I(-)" || r[3] != "1" {
		t.Fatalf("reacquire row = %v", r)
	}

	r = findRow(t, tb, "Others try to get S")
	if r[0] != "R(1)" || r[1] != "R(1)" || r[2] != "R(1)" {
		t.Fatalf("final row = %v, want all R(1)", r)
	}
}

// TestFigure63MatchesPaper asserts the state matrix of Figure 6-3: the RWB
// acquisition leaves the F/R intermediate configuration.
func TestFigure63MatchesPaper(t *testing.T) {
	tb := figure63()

	r := findRow(t, tb, "Initial State")
	if r[0] != "R(0)" || r[1] != "R(0)" || r[2] != "R(0)" {
		t.Fatalf("initial row = %v", r)
	}

	r = findRow(t, tb, "P2 locks S")
	if r[0] != "R(1)" || r[1] != "F(1)" || r[2] != "R(1)" || r[3] != "1" {
		t.Fatalf("lock row = %v, want R(1) F(1) R(1) 1", r)
	}

	// No invalidation happened, so the spinners read their caches at once.
	r = findRow(t, tb, "No Bus Traffic")
	if got := busTxnsOf(t, r); got != 0 {
		t.Fatalf("TTS spinning generated %d bus transactions, want 0", got)
	}
	if r[0] != "R(1)" || r[2] != "R(1)" {
		t.Fatalf("spin row = %v", r)
	}

	r = findRow(t, tb, "P2 releases S")
	if r[0] != "I(-)" || r[1] != "L(0)" || r[2] != "I(-)" {
		t.Fatalf("release row = %v, want I(-) L(0) I(-)", r)
	}

	r = findRow(t, tb, "A Bus Read to S")
	if r[0] != "R(0)" || r[1] != "R(0)" || r[2] != "R(0)" || r[3] != "0" {
		t.Fatalf("bus-read row = %v", r)
	}

	r = findRow(t, tb, "P1 get the S")
	if r[0] != "F(1)" || r[1] != "R(1)" || r[2] != "R(1)" || r[3] != "1" {
		t.Fatalf("reacquire row = %v, want F(1) R(1) R(1) 1", r)
	}
}

// TestFigure63LessInvalidationThanFigure62: the RWB run must invalidate
// fewer copies ("note the substantial minimization of cache invalidation").
func TestFigure63LessInvalidationThanFigure62(t *testing.T) {
	countI := func(tb *Table) int {
		n := 0
		for _, row := range tb.Rows {
			for _, cell := range row[:3] {
				if cell == "I(-)" {
					n++
				}
			}
		}
		return n
	}
	rb := countI(figure62())
	rwb := countI(figure63())
	if rwb >= rb {
		t.Fatalf("RWB shows %d Invalid cells, RB %d; want fewer under RWB", rwb, rb)
	}
}
