package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1-1", "fig3-1", "fig5-1", "fig6-1", "fig6-2", "fig6-3",
		"section7-sbb", "fig7-1", "section7-saturation",
		"ablation-arrayinit", "ablation-lock", "ablation-mix",
		"ablation-threshold", "ablation-fault", "ablation-barrier",
		"extension-hier", "ablation-private", "ablation-assoc", "ablation-rmwstyle",
	}
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if !validID(e.ID) {
			t.Errorf("experiment ID %q is not kebab-case", e.ID)
		}
		if e.Version < 1 {
			t.Errorf("experiment %q has version %d; the sweep cache key needs >= 1", e.ID, e.Version)
		}
		if e.Chart != nil && len(e.Chart.Labels) == 0 {
			t.Errorf("experiment %q declares a chart with no label columns", e.ID)
		}
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if _, err := ByID("table1-1"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id resolved")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs/All length mismatch")
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"fig3-1":       true,
		"ablation-mix": true,
		"a":            true,
		"":             false,
		"Fig3-1":       false,
		"fig3--1":      false,
		"-fig3":        false,
		"fig3-":        false,
		"fig 3":        false,
		"fig_3":        false,
	} {
		if got := validID(id); got != want {
			t.Errorf("validID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestAllExperimentsRun executes every registered experiment at scale 1
// and sanity-checks the output tables.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tb, err := e.Run(Params{})
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tb.ID, e.ID)
			}
			if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
				t.Fatal("empty table")
			}
			if out := tb.Plain(); !strings.Contains(out, tb.Columns[0]) {
				t.Error("plain rendering broken")
			}
		})
	}
}
