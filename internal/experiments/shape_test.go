package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/coherence"
)

// These tests pin the paper-shape properties of every quantitative
// experiment: not the absolute numbers (our substrate is a simulator, not
// the authors' testbed) but who wins, by roughly what factor, and in which
// direction the curves bend. EXPERIMENTS.md documents the measured values.

func TestTable11Shape(t *testing.T) {
	rows, err := Table11Rows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 sizes x 2 apps
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string][]Table11Row{}
	for _, r := range rows {
		byApp[r.App] = append(byApp[r.App], r)
	}
	for app, rs := range byApp {
		// Read misses fall monotonically with cache size, from the
		// mid-20s to single digits (paper: 26.1 -> 6.1, 25 -> 5.8).
		for i := 1; i < len(rs); i++ {
			if rs[i].ReadMissPct >= rs[i-1].ReadMissPct {
				t.Errorf("%s: read miss did not fall at %d words (%v -> %v)",
					app, rs[i].CacheSize, rs[i-1].ReadMissPct, rs[i].ReadMissPct)
			}
		}
		if first := rs[0].ReadMissPct; first < 18 || first > 35 {
			t.Errorf("%s: read miss at 256 = %.1f, want mid-20s", app, first)
		}
		if last := rs[len(rs)-1].ReadMissPct; last > 10 {
			t.Errorf("%s: read miss at 2048 = %.1f, want single digits", app, last)
		}
		// The factor between the extremes is at least ~3x (paper: ~4.3x).
		if ratio := rs[0].ReadMissPct / rs[len(rs)-1].ReadMissPct; ratio < 3 {
			t.Errorf("%s: miss ratio only improved %.1fx across sizes", app, ratio)
		}
	}
	// The fixed columns: local writes and shared fractions are cache-size
	// independent, matching the paper's constant columns.
	for _, r := range rows {
		wantLW, wantSh := 8.0, 5.0
		if r.App == "qsort" {
			wantLW, wantSh = 6.7, 10.0
		}
		if math.Abs(r.LocalWritePct-wantLW) > 1.0 {
			t.Errorf("%s@%d: local writes %.1f%%, want ~%.1f%%", r.App, r.CacheSize, r.LocalWritePct, wantLW)
		}
		if math.Abs(r.SharedPct-wantSh) > 1.0 {
			t.Errorf("%s@%d: shared %.1f%%, want ~%.1f%%", r.App, r.CacheSize, r.SharedPct, wantSh)
		}
		if math.Abs(r.TotalMissPct-(r.ReadMissPct+r.LocalWritePct+r.SharedPct)) > 0.01 {
			t.Errorf("%s@%d: total %.2f is not the sum of its parts", r.App, r.CacheSize, r.TotalMissPct)
		}
	}
}

func TestTransitionTableSizes(t *testing.T) {
	// Figure 3-1: three states; Figure 5-1: four states.
	if states, _ := CountTransitions(coherence.RB{}); states != 3 {
		t.Errorf("RB diagram has %d states, want 3", states)
	}
	if states, _ := CountTransitions(coherence.NewRWB(2)); states != 4 {
		t.Errorf("RWB diagram has %d states, want 4", states)
	}
	// The RB table must never mention BI; the RWB table must.
	rb := TransitionTable(coherence.RB{}, "x", "x")
	for _, row := range rb.Rows {
		if row[1] == "BI" || row[3] == "4 (generate BI)" {
			t.Errorf("RB diagram contains BI: %v", row)
		}
	}
	rwb := TransitionTable(coherence.NewRWB(2), "x", "x")
	sawBI := false
	for _, row := range rwb.Rows {
		if row[3] == "4 (generate BI)" {
			sawBI = true
		}
	}
	if !sawBI {
		t.Error("RWB diagram has no BI arc")
	}
}

func TestArrayInitShape(t *testing.T) {
	rows, err := ArrayInitRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	per := map[string]float64{}
	for _, r := range rows {
		per[r.Protocol] = r.BusWritesPerElement
	}
	// The Section 5 claim, exactly: RB pays 2 bus writes per element, RWB 1.
	if math.Abs(per["rb"]-2) > 0.01 {
		t.Errorf("rb = %.3f bus writes/element, want 2", per["rb"])
	}
	if math.Abs(per["rwb"]-1) > 0.01 {
		t.Errorf("rwb = %.3f bus writes/element, want 1", per["rwb"])
	}
	// And the counterfactual: one dirty bit at eviction removes RB's
	// entire penalty.
	if math.Abs(per["rb-dirty"]-1) > 0.01 {
		t.Errorf("rb-dirty = %.3f bus writes/element, want 1", per["rb-dirty"])
	}
}

func TestLockAblationShape(t *testing.T) {
	rows, err := LockRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ proto, strat string }
	per := map[key]float64{}
	for _, r := range rows {
		per[key{r.Protocol, r.Strategy}] = r.TxnsPerAcq
	}
	// TTS beats TS by a wide margin on every protocol that can cache the
	// lock (Section 6's point).
	for _, proto := range []string{"rb", "rwb", "goodman"} {
		ts, tts := per[key{proto, "ts"}], per[key{proto, "tts"}]
		if tts*1.5 > ts {
			t.Errorf("%s: tts %.1f txns/acq not well below ts %.1f", proto, tts, ts)
		}
	}
	// RWB's TTS cost is no worse than RB's (Figure 6-3 vs 6-2: fewer
	// invalidation misses).
	if per[key{"rwb", "tts"}] > per[key{"rb", "tts"}]*1.1 {
		t.Errorf("rwb/tts %.2f worse than rb/tts %.2f", per[key{"rwb", "tts"}], per[key{"rb", "tts"}])
	}
}

func TestMixSweepShape(t *testing.T) {
	rows, err := MixRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		wf    float64
		proto string
	}
	per := map[key]float64{}
	for _, r := range rows {
		per[key{r.WriteFrac, r.Protocol}] = r.BusPerRef
	}
	// At the read-heavy end the paper's schemes beat write-through.
	if per[key{0.05, "rb"}] >= per[key{0.05, "writethrough"}] {
		t.Errorf("rb (%.3f) not below writethrough (%.3f) at 5%% writes",
			per[key{0.05, "rb"}], per[key{0.05, "writethrough"}])
	}
	// Traffic grows with write fraction for the paper's schemes.
	if per[key{0.5, "rb"}] <= per[key{0.05, "rb"}] {
		t.Error("rb traffic did not grow with write fraction")
	}
	// RWB is at least as good as Goodman across shared-data mixes (the
	// broadcast advantage).
	for _, wf := range []float64{0.05, 0.1, 0.2, 0.35, 0.5} {
		if per[key{wf, "rwb"}] > per[key{wf, "goodman"}]*1.15 {
			t.Errorf("wf=%.2f: rwb %.3f much worse than goodman %.3f",
				wf, per[key{wf, "rwb"}], per[key{wf, "goodman"}])
		}
	}
}

func TestThresholdShape(t *testing.T) {
	rows, err := ThresholdRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	per := map[string]map[uint8]float64{}
	for _, r := range rows {
		if per[r.Workload] == nil {
			per[r.Workload] = map[uint8]float64{}
		}
		per[r.Workload][r.K] = r.BusPerRef
	}
	// A private writer prefers the smallest k (claims Local soonest).
	pw := per["private-writer"]
	if pw[2] > pw[4] {
		t.Errorf("private writer: k=2 (%.3f) should not exceed k=4 (%.3f)", pw[2], pw[4])
	}
}

func TestFaultRecoveryShape(t *testing.T) {
	rows, err := FaultRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	per := map[string]float64{}
	for _, r := range rows {
		per[r.Protocol] = r.Fraction
		if r.Corrupted == 0 {
			t.Fatalf("%s corrupted nothing", r.Protocol)
		}
	}
	// RWB keeps at least as many live replicas as RB (Section 5: "a
	// higher probability that some cache contains a correct copy").
	if per["rwb"] < per["rb"] {
		t.Errorf("rwb recovery %.2f below rb %.2f", per["rwb"], per["rb"])
	}
	if per["rwb"] == 0 {
		t.Error("rwb recovered nothing")
	}
}

func TestSaturationShape(t *testing.T) {
	rows, err := SaturationRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		proto string
		pes   int
	}
	util := map[key]float64{}
	bpr := map[key]float64{}
	for _, r := range rows {
		util[key{r.Protocol, r.Processors}] = r.Utilization
		bpr[key{r.Protocol, r.Processors}] = r.BusPerRef
	}
	// Without caches the bus saturates almost immediately.
	if util[key{"nocache", 4}] < 0.95 {
		t.Errorf("nocache at 4 PEs: utilization %.2f, want saturated", util[key{"nocache", 4}])
	}
	// With RB caches, small machines leave headroom...
	if util[key{"rb", 2}] > 0.9 {
		t.Errorf("rb at 2 PEs: utilization %.2f, want headroom", util[key{"rb", 2}])
	}
	// ...and utilization grows monotonically toward saturation.
	if util[key{"rb", 32}] < util[key{"rb", 2}] {
		t.Error("rb utilization did not grow with processors")
	}
	// The cache cuts per-reference bus traffic by at least 3x vs no cache.
	if bpr[key{"rb", 4}]*3 > bpr[key{"nocache", 4}] {
		t.Errorf("rb bus/ref %.3f not well below nocache %.3f",
			bpr[key{"rb", 4}], bpr[key{"nocache", 4}])
	}
}

func TestFigure71Shape(t *testing.T) {
	rows, err := Figure71Rows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	var one, two Figure71Row
	for _, r := range rows {
		switch r.Buses {
		case 1:
			one = r
		case 2:
			two = r
		}
	}
	// Two buses split the traffic roughly evenly...
	total := two.Txns[0] + two.Txns[1]
	frac := float64(two.Txns[0]) / float64(total)
	if frac < 0.40 || frac > 0.60 {
		t.Errorf("dual-bus split = %v (%.2f)", two.Txns, frac)
	}
	// ...so each carries roughly half the single-bus load.
	if float64(two.Txns[0]) > 0.65*float64(one.Txns[0]) {
		t.Errorf("per-bus traffic %d not ~half of single-bus %d", two.Txns[0], one.Txns[0])
	}
}

func TestBarrierShape(t *testing.T) {
	rows, err := BarrierRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	per := map[string]float64{}
	for _, r := range rows {
		per[r.Protocol] = r.TxnsPerRound
	}
	// Cache-resident spinning: the paper's schemes beat no-cache by a
	// wide margin.
	if per["rb"]*3 > per["nocache"] {
		t.Errorf("rb %.1f txns/round not well below nocache %.1f", per["rb"], per["nocache"])
	}
	// RWB's update-based release is no worse than RB's invalidate.
	if per["rwb"] > per["rb"]*1.1 {
		t.Errorf("rwb %.1f much worse than rb %.1f", per["rwb"], per["rb"])
	}
}

func TestHierShape(t *testing.T) {
	rows, err := HierRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The cluster caches absorb most of the mostly-read local traffic.
		if r.FilterRatio < 0.5 {
			t.Errorf("%d clusters: filter ratio %.2f, want > 0.5", r.Clusters, r.FilterRatio)
		}
	}
	// Scaling: 4 clusters run 4x the PEs; the global bus must see far
	// less than 4x one cluster's local traffic.
	var one, four HierRow
	for _, r := range rows {
		if r.Clusters == 1 {
			one = r
		}
		if r.Clusters == 4 {
			four = r
		}
	}
	if four.GlobalTxns >= one.LocalTxns*4 {
		t.Errorf("global traffic %d not filtered vs 4x local %d", four.GlobalTxns, one.LocalTxns*4)
	}
}

func TestPrivateAblationShape(t *testing.T) {
	rows, err := PrivateRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	per := map[string]float64{}
	for _, r := range rows {
		per[r.Protocol] = r.BusPerRef
	}
	// Dynamic classification: RB, RWB and Illinois approach zero
	// steady-state traffic on private data.
	for _, proto := range []string{"rb", "rwb", "illinois"} {
		if per[proto] > 0.05 {
			t.Errorf("%s private traffic %.3f, want near zero", proto, per[proto])
		}
	}
	// Write-through pays for every store: ~0.5 txns/ref here.
	if per["writethrough"] < 0.4 {
		t.Errorf("writethrough %.3f, want ~0.5", per["writethrough"])
	}
	// Goodman's write-once settles silent too (Reserved -> Dirty), far
	// below write-through.
	if per["goodman"] > 0.05 || per["goodman"] >= per["writethrough"] {
		t.Errorf("goodman %.3f not near zero / below writethrough %.3f",
			per["goodman"], per["writethrough"])
	}
}

func TestAssocShape(t *testing.T) {
	rows, err := AssocRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	per := map[[2]int]float64{}
	for _, r := range rows {
		per[[2]int{r.CacheSize, r.Ways}] = r.ReadMissPct
	}
	// More ways never hurt at fixed capacity (modulo replacement noise).
	for _, size := range []int{512, 2048} {
		if per[[2]int{size, 4}] > per[[2]int{size, 1}]*1.05 {
			t.Errorf("size %d: 4-way (%.1f) worse than direct-mapped (%.1f)",
				size, per[[2]int{size, 4}], per[[2]int{size, 1}])
		}
	}
}

func TestTransitionDOT(t *testing.T) {
	dot := TransitionDOT(coherence.RB{})
	for _, want := range []string{"digraph RB", `"I" -> "R"`, "CR / 3", "style=dashed", "BR / 2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("RB dot missing %q:\n%s", want, dot)
		}
	}
	rwb := TransitionDOT(coherence.NewRWB(2))
	if !strings.Contains(rwb, "BI") || !strings.Contains(rwb, "take") {
		t.Error("RWB dot missing BI or take arcs")
	}
}

func TestRMWStyleShape(t *testing.T) {
	rows, err := RMWStyleRows(Params{})
	if err != nil {
		t.Fatal(err)
	}
	per := map[[2]string]float64{}
	for _, r := range rows {
		per[[2]string{r.Style, r.Strategy}] = r.TxnsPerAcq
	}
	// Each two-phase attempt costs two transactions (checked in
	// internal/machine's TestTwoPhaseCostsTwoTransactionsPerAttempt), yet
	// per *acquisition* the locked bus is cheaper under plain TS: the
	// lock register stalls the other spinners, throttling the hot spot —
	// a hardware backoff.
	if per[[2]string{"two-phase", "ts"}] >= per[[2]string{"fused", "ts"}] {
		t.Errorf("two-phase ts %.1f not below fused ts %.1f (lock-register throttling)",
			per[[2]string{"two-phase", "ts"}], per[[2]string{"fused", "ts"}])
	}
	// TTS rescues the fused style dramatically...
	if per[[2]string{"fused", "tts"}]*1.5 > per[[2]string{"fused", "ts"}] {
		t.Errorf("fused: tts %.1f not well below ts %.1f",
			per[[2]string{"fused", "tts"}], per[[2]string{"fused", "ts"}])
	}
	// ...and under two-phase both strategies land in the same throttled
	// regime (TTS within 2x of TS either way).
	ratio := per[[2]string{"two-phase", "tts"}] / per[[2]string{"two-phase", "ts"}]
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("two-phase tts/ts ratio %.2f outside the throttled band", ratio)
	}
}
