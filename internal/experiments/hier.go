package experiments

import (
	"fmt"

	"repro/internal/hier"
	"repro/internal/report"
	"repro/internal/workload"
)

// Hierarchy extension (Section 8, future work): clusters of PEs behind
// inclusive cluster caches, joined by one global bus. The experiment
// measures how much of the local traffic the cluster level filters away —
// the property that would let the architecture grow past a single bus's
// processor budget.

func init() {
	register(Experiment{
		ID:      "extension-hier",
		Title:   "Hierarchical clusters: global-bus traffic filtering (Section 8)",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Chart:   &ChartSpec{Labels: []int{1}, Value: 3}, // global txns
		Run: func(p Params) (*Table, error) {
			return HierSweep(p)
		},
	})
}

// HierRow is one configuration's measurements.
type HierRow struct {
	Clusters      int
	PEsPerCluster int
	TotalPEs      int
	LocalTxns     uint64
	GlobalTxns    uint64
	FilterRatio   float64
	GlobalUtil    float64
	Cycles        uint64
}

// HierRows sweeps cluster counts at a fixed per-PE workload: mostly-read
// shared traffic with small L1s, so the cluster caches do real work.
func HierRows(p Params) ([]HierRow, error) {
	p = p.withDefaults()
	refs := 1500 * p.Scale
	var rows []HierRow
	for _, clusters := range []int{1, 2, 4} {
		const pes = 4
		agents := make([][]workload.Agent, clusters)
		for c := range agents {
			agents[c] = make([]workload.Agent, pes)
			for i := range agents[c] {
				agents[c][i] = workload.NewRandom(0, 256, refs, 0.08, 0.01, p.Seed+uint64(c*10+i))
			}
		}
		m, err := hier.New(hier.Config{
			Clusters: clusters, PEsPerCluster: pes,
			L1Lines: 16, ClusterLines: 512,
			CheckConsistency: true,
		}, agents)
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(uint64(refs) * uint64(clusters*pes) * 200); err != nil {
			return nil, err
		}
		if !m.Done() {
			return nil, fmt.Errorf("hier: %d clusters did not drain", clusters)
		}
		mt := m.Metrics()
		rows = append(rows, HierRow{
			Clusters:      clusters,
			PEsPerCluster: pes,
			TotalPEs:      clusters * pes,
			LocalTxns:     mt.LocalTransactions(),
			GlobalTxns:    mt.Global.Transactions(),
			FilterRatio:   mt.FilterRatio(),
			GlobalUtil:    mt.Global.Utilization(),
			Cycles:        mt.Cycles,
		})
	}
	return rows, nil
}

// HierSweep renders the sweep.
func HierSweep(p Params) (*report.Table, error) {
	rows, err := HierRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "extension-hier",
		Title:   "Two-level hierarchy: cluster caches filtering the global bus",
		Columns: []string{"Clusters", "PEs", "Local txns", "Global txns", "Filter ratio", "Global util", "Cycles"},
		Note: "write-through L1s under inclusive cluster caches (the Section 8 hierarchical " +
			"direction); the filter ratio is the fraction of local transactions the cluster level absorbed",
	}
	for _, r := range rows {
		t.AddRowf(r.Clusters, r.TotalPEs, r.LocalTxns, r.GlobalTxns, r.FilterRatio, r.GlobalUtil, r.Cycles)
	}
	return t, nil
}
