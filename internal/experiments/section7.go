package experiments

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/workload"
)

// Section 7 and Figure 7-1: shared-bus bandwidth. Two artifacts: the
// analytic SBB arithmetic with the paper's worked example, and the
// multiple-shared-bus configuration whose interleaving splits the traffic
// evenly so each bus needs about 1/n of the bandwidth.

func init() {
	register(Experiment{
		ID:      "section7-sbb",
		Title:   "Shared Bus Bandwidth: SBB >= m*x*(1/h)",
		Version: 1, // analytic model: no parameter axes
		Run: func(p Params) (*Table, error) {
			return Section7Bandwidth(p)
		},
	})
	register(Experiment{
		ID:      "fig7-1",
		Title:   "Multiple Shared Bus Cached Based Parallel Processor",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Run: func(p Params) (*Table, error) {
			return Figure71(p)
		},
	})
	register(Experiment{
		ID:      "section7-saturation",
		Title:   "Simulated bus utilization vs. processor count",
		Axes:    Axes{Seed: true, Scale: true},
		Version: 1,
		Chart:   &ChartSpec{Labels: []int{0, 1}, Value: 3}, // utilization
		Run: func(p Params) (*Table, error) {
			return SaturationSweep(p)
		},
	})
}

// Section7Bandwidth renders the analytic model: the paper's example plus
// the surrounding design space (the conclusion's "32 to 256 processors").
func Section7Bandwidth(Params) (*report.Table, error) {
	t := &report.Table{
		ID:      "section7-sbb",
		Title:   "Shared Bus Bandwidth requirement (Section 7)",
		Columns: []string{"Processors (m)", "x (MACS)", "Miss ratio (1/h)", "Required SBB (MACS)", "Per bus, 2 buses"},
		Note:    "the 128-processor row is the paper's worked example (12.8 MACS)",
	}
	for _, m := range []int{32, 64, 128, 256} {
		model := bandwidth.Model{Processors: m, AccessRate: 1, MissRatio: 0.10}
		if err := model.Validate(); err != nil {
			return nil, err
		}
		t.AddRowf(m, 1, 0.10, float64(model.RequiredSBB()), float64(model.PerBus(2)))
	}
	return t, nil
}

// Figure71Row is one measured dual-bus data point.
type Figure71Row struct {
	Buses       int
	Txns        []uint64 // per bus
	Utilization float64  // max per-bus utilization
	Cycles      uint64
}

// Figure71Rows runs the same workload on 1, 2 and 4 interleaved buses.
func Figure71Rows(p Params) ([]Figure71Row, error) {
	p = p.withDefaults()
	const pes = 8
	refs := 4000 * p.Scale
	var rows []Figure71Row
	for _, buses := range []int{1, 2, 4} {
		m, err := p.Machine(fmt.Sprintf("fig7-1/buses=%d", buses), machine.Config{
			Protocol:         coherence.RB{},
			CacheLines:       64,
			Buses:            buses,
			CheckConsistency: true,
		}, func() []workload.Agent {
			agents := make([]workload.Agent, pes)
			for i := range agents {
				agents[i] = workload.NewRandom(0, 512, refs, 0.3, 0.02, p.Seed+uint64(i))
			}
			return agents
		})
		if err != nil {
			return nil, err
		}
		if _, err := m.Run(uint64(refs) * 200); err != nil {
			return nil, err
		}
		if !m.Done() {
			return nil, fmt.Errorf("fig7-1: machine did not drain with %d buses", buses)
		}
		mt := m.Metrics()
		maxUtil := 0.0
		for i := 0; i < buses; i++ {
			st := m.Buses().Bus(i).Stats()
			if u := st.Utilization(); u > maxUtil {
				maxUtil = u
			}
		}
		rows = append(rows, Figure71Row{
			Buses:       buses,
			Txns:        mt.PerBusTransactions,
			Utilization: maxUtil,
			Cycles:      mt.Cycles,
		})
	}
	return rows, nil
}

// Figure71 renders the dual-bus (and quad-bus) traffic split.
func Figure71(p Params) (*report.Table, error) {
	rows, err := Figure71Rows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "fig7-1",
		Title:   "Multiple shared buses interleaved on low address bits (Figure 7-1)",
		Columns: []string{"Buses", "Txns per bus", "Max bus utilization", "Cycles to finish"},
		Note:    "per-bus transactions split evenly, so each bus needs ~1/n of the single-bus bandwidth",
	}
	for _, r := range rows {
		t.AddRowf(r.Buses, fmt.Sprint(r.Txns), r.Utilization, r.Cycles)
	}
	return t, nil
}

// SaturationRow is one point of the utilization-vs-processors sweep.
type SaturationRow struct {
	Processors  int
	Protocol    string
	BusPerRef   float64
	Utilization float64
	Cycles      uint64
}

// SaturationRows sweeps the processor count under a fixed per-PE workload
// for the paper's scheme and the no-cache baseline, showing where each
// saturates the single shared bus.
func SaturationRows(p Params) ([]SaturationRow, error) {
	p = p.withDefaults()
	refs := 2500 * p.Scale
	var rows []SaturationRow
	for _, proto := range []coherence.Protocol{coherence.RB{}, coherence.NoCache{}} {
		for _, pes := range []int{2, 4, 8, 16, 32} {
			layout := workload.DefaultLayout()
			// Paper-scale caches (the largest Table 1-1 size). The shape
			// key carries everything but the seed, so a batched sweep
			// recycles one machine per (protocol, pes) point.
			m, err := p.Machine(fmt.Sprintf("section7/%s/pes=%d", proto.Name(), pes),
				machine.Config{Protocol: proto, CacheLines: 2048},
				func() []workload.Agent {
					agents := make([]workload.Agent, pes)
					for i := range agents {
						agents[i] = workload.MustApp(workload.PDEProfile(), layout, i, p.Seed, refs)
					}
					return agents
				})
			if err != nil {
				return nil, err
			}
			if _, err := m.Run(uint64(refs) * uint64(pes) * 50); err != nil {
				return nil, err
			}
			if !m.Done() {
				return nil, fmt.Errorf("saturation: %s with %d PEs did not drain", proto.Name(), pes)
			}
			mt := m.Metrics()
			rows = append(rows, SaturationRow{
				Processors:  pes,
				Protocol:    proto.Name(),
				BusPerRef:   mt.BusPerRef(),
				Utilization: mt.Bus.Utilization(),
				Cycles:      mt.Cycles,
			})
		}
	}
	return rows, nil
}

// SaturationSweep renders the sweep.
func SaturationSweep(p Params) (*report.Table, error) {
	rows, err := SaturationRows(p)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "section7-saturation",
		Title:   "Bus utilization vs. processor count (single shared bus)",
		Columns: []string{"Protocol", "Processors", "Bus txns/ref", "Bus utilization", "Cycles"},
		Note: "with caches (rb) the bus saturates an order of magnitude later than without; " +
			"utilization 1.0 means every added PE only adds waiting",
	}
	for _, r := range rows {
		t.AddRowf(r.Protocol, r.Processors, r.BusPerRef, r.Utilization, r.Cycles)
	}
	return t, nil
}
