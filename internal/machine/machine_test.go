package machine

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/workload"
)

func protoOrDie(t *testing.T, name string) coherence.Protocol {
	t.Helper()
	p, err := coherence.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("no agents accepted")
	}
	if _, err := New(Config{CacheLines: 3}, []workload.Agent{workload.Idle()}); err == nil {
		t.Error("bad cache size accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew did not panic")
			}
		}()
		MustNew(Config{}, nil)
	}()
}

func TestSinglePERunsToHalt(t *testing.T) {
	agent := workload.NewTrace(
		workload.Write(1, 11, coherence.ClassShared),
		workload.Read(1, coherence.ClassShared),
		workload.Write(2, 22, coherence.ClassShared),
	)
	m := MustNew(Config{CheckConsistency: true}, []workload.Agent{agent})
	cycles, err := m.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("machine not done")
	}
	if cycles == 0 || cycles >= 1000 {
		t.Fatalf("cycles = %d", cycles)
	}
	st := m.Proc(0).Stats()
	if st.Reads != 1 || st.Writes != 2 || st.Retired != 3 {
		t.Fatalf("proc stats = %+v", st)
	}
	if err := m.VerifyFinalMemory(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeOpsConsumeCycles(t *testing.T) {
	agent := workload.NewTrace(workload.Compute(10), workload.Write(1, 1, coherence.ClassShared))
	m := MustNew(Config{}, []workload.Agent{agent})
	cycles, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if cycles < 11 {
		t.Fatalf("cycles = %d, want >= 11 (10 compute + memory op)", cycles)
	}
	if m.Proc(0).Stats().ComputeCycles != 10 {
		t.Fatalf("compute cycles = %d", m.Proc(0).Stats().ComputeCycles)
	}
}

// TestAllProtocolsPassOracle runs randomized multiprogrammed workloads on
// every protocol with the consistency oracle enabled.
func TestAllProtocolsPassOracle(t *testing.T) {
	for _, k := range coherence.Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			agents := []workload.Agent{
				workload.NewRandom(0, 24, 400, 0.4, 0.1, 1),
				workload.NewRandom(0, 24, 400, 0.4, 0.1, 2),
				workload.NewRandom(0, 24, 400, 0.3, 0.2, 3),
				workload.NewRandom(0, 24, 400, 0.5, 0.0, 4),
			}
			m := MustNew(Config{
				Protocol:         coherence.New(k),
				CacheLines:       16, // small: force evictions and conflicts
				CheckConsistency: true,
			}, agents)
			if _, err := m.Run(200000); err != nil {
				t.Fatal(err)
			}
			if !m.Done() {
				t.Fatal("did not finish")
			}
			if err := m.VerifyFinalMemory(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOracleWithMultipleBuses repeats the randomized check on 2 and 4
// interleaved buses (Figure 7-1 configuration).
func TestOracleWithMultipleBuses(t *testing.T) {
	for _, buses := range []int{2, 4} {
		for _, proto := range []string{"rb", "rwb"} {
			agents := []workload.Agent{
				workload.NewRandom(0, 32, 300, 0.4, 0.1, 10),
				workload.NewRandom(0, 32, 300, 0.4, 0.1, 11),
				workload.NewRandom(0, 32, 300, 0.4, 0.1, 12),
			}
			m := MustNew(Config{
				Protocol:         protoOrDie(t, proto),
				CacheLines:       16,
				Buses:            buses,
				CheckConsistency: true,
			}, agents)
			if _, err := m.Run(200000); err != nil {
				t.Fatalf("%s/%d buses: %v", proto, buses, err)
			}
			if err := m.VerifyFinalMemory(); err != nil {
				t.Fatalf("%s/%d buses: %v", proto, buses, err)
			}
		}
	}
}

// brokenRB deliberately omits the invalidate-on-bus-write rule so that the
// oracle's ability to catch incoherence is itself tested.
type brokenRB struct{ coherence.RB }

func (brokenRB) OnSnoop(s coherence.State, aux uint8, dirty bool, ev coherence.SnoopEvent) coherence.SnoopOutcome {
	if s == coherence.Readable && ev == coherence.SnBusWrite {
		return coherence.SnoopOutcome{Next: coherence.Readable} // BUG: keeps stale copy
	}
	return coherence.RB{}.OnSnoop(s, aux, dirty, ev)
}

func TestOracleCatchesBrokenProtocol(t *testing.T) {
	// PE0 reads X, PE1 overwrites X, PE0 re-reads X and must see the new
	// value; brokenRB leaves PE0's stale copy Readable.
	pe0 := workload.NewTrace(
		workload.Read(5, coherence.ClassShared),
		workload.Compute(20), // let PE1's write land
		workload.Read(5, coherence.ClassShared),
	)
	pe1 := workload.NewTrace(
		workload.Compute(5),
		workload.Write(5, 77, coherence.ClassShared),
	)
	m := MustNew(Config{Protocol: brokenRB{}, CheckConsistency: true},
		[]workload.Agent{pe0, pe1})
	_, err := m.Run(1000)
	if err == nil {
		t.Fatal("oracle did not catch the stale read")
	}
	ce, ok := err.(*ConsistencyError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if ce.PE != 0 || ce.Op.Addr != 5 || ce.Expected != 77 {
		t.Fatalf("violation = %+v", ce)
	}
	if !strings.Contains(ce.Error(), "consistency violation") {
		t.Fatalf("message = %q", ce.Error())
	}
	// The machine remembers the failure.
	if m.Step() == nil || m.Err() == nil {
		t.Fatal("machine forgot the violation")
	}
}

// TestSpinlockMutualExclusion: contended Test-and-Set locks must serialize
// acquisitions; with each PE performing k acquisitions, the total is n*k
// and the guarded counter pattern stays consistent (oracle-checked).
func TestSpinlockMutualExclusion(t *testing.T) {
	for _, proto := range []string{"rb", "rwb", "goodman", "writethrough"} {
		for _, strat := range []workload.Strategy{workload.StrategyTS, workload.StrategyTTS} {
			const n, iters = 4, 25
			var agents []workload.Agent
			var locks []*workload.Spinlock
			for i := 0; i < n; i++ {
				s := workload.MustSpinlock(workload.SpinlockConfig{
					Lock: 100, Strategy: strat, Iterations: iters,
					CriticalReads: 2, CriticalWrites: 2,
					GuardedBase: 200, GuardedWords: 4,
					Seed: uint64(i),
				})
				locks = append(locks, s)
				agents = append(agents, s)
			}
			m := MustNew(Config{Protocol: protoOrDie(t, proto), CheckConsistency: true}, agents)
			if _, err := m.Run(4_000_000); err != nil {
				t.Fatalf("%s/%v: %v", proto, strat, err)
			}
			if !m.Done() {
				t.Fatalf("%s/%v: starvation — machine not done", proto, strat)
			}
			total := 0
			for _, s := range locks {
				total += s.Acquisitions()
			}
			if total != n*iters {
				t.Fatalf("%s/%v: %d acquisitions, want %d", proto, strat, total, n*iters)
			}
		}
	}
}

// TestTTSGeneratesLessBusTrafficThanTS is the quantitative Section 6
// claim: while a lock is held, TTS spins in the caches, TS spins on the
// bus.
func TestTTSGeneratesLessBusTrafficThanTS(t *testing.T) {
	run := func(strat workload.Strategy) uint64 {
		const n = 8
		var agents []workload.Agent
		for i := 0; i < n; i++ {
			agents = append(agents, workload.MustSpinlock(workload.SpinlockConfig{
				Lock: 100, Strategy: strat, Iterations: 10,
				CriticalReads: 4, CriticalWrites: 4,
				GuardedBase: 200, GuardedWords: 8,
				Seed: uint64(i),
			}))
		}
		m := MustNew(Config{Protocol: coherence.RB{}, CheckConsistency: true}, agents)
		if _, err := m.Run(4_000_000); err != nil {
			t.Fatal(err)
		}
		if !m.Done() {
			t.Fatal("not done")
		}
		return m.Metrics().Bus.Transactions()
	}
	ts := run(workload.StrategyTS)
	tts := run(workload.StrategyTTS)
	if tts*2 > ts {
		t.Fatalf("TTS traffic %d not substantially below TS traffic %d", tts, ts)
	}
}

// TestProducerConsumerDelivery: every published item is consumed with the
// right value under each coherent scheme.
func TestProducerConsumerDelivery(t *testing.T) {
	for _, proto := range []string{"rb", "rwb", "goodman", "writethrough", "nocache"} {
		const items = 20
		cons := workload.NewConsumer(10, 11, items)
		prod := workload.NewProducer(10, 11, items, 30)
		m := MustNew(Config{Protocol: protoOrDie(t, proto), CheckConsistency: true},
			[]workload.Agent{prod, cons})
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if cons.Received() != items {
			t.Fatalf("%s: consumed %d of %d", proto, cons.Received(), items)
		}
		for i, v := range cons.Values {
			if v < 1000 || v >= 1000+items {
				t.Fatalf("%s: item %d value %d out of range", proto, i, v)
			}
		}
	}
}

// TestMultiBusSplitsTraffic: with 2 banks, a uniform workload lands about
// half its transactions on each bus (Figure 7-1's premise).
func TestMultiBusSplitsTraffic(t *testing.T) {
	agents := []workload.Agent{
		workload.NewRandom(0, 64, 2000, 0.5, 0, 1),
		workload.NewRandom(0, 64, 2000, 0.5, 0, 2),
	}
	m := MustNew(Config{Protocol: coherence.RB{}, Buses: 2, CacheLines: 16, CheckConsistency: true}, agents)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	per := m.Metrics().PerBusTransactions
	total := per[0] + per[1]
	if total == 0 {
		t.Fatal("no traffic")
	}
	ratio := float64(per[0]) / float64(total)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("bank split = %v (%.2f), want ~even", per, ratio)
	}
}

func TestMetricsAggregation(t *testing.T) {
	agent := workload.NewTrace(
		workload.Write(1, 1, coherence.ClassShared),
		workload.Read(1, coherence.ClassShared),
	)
	m := MustNew(Config{}, []workload.Agent{agent})
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	mt := m.Metrics()
	if mt.TotalRefs() != 2 {
		t.Fatalf("TotalRefs = %d", mt.TotalRefs())
	}
	if mt.BusPerRef() <= 0 {
		t.Fatalf("BusPerRef = %g", mt.BusPerRef())
	}
	if len(mt.Caches) != 1 || len(mt.Procs) != 1 || len(mt.PerBusTransactions) != 1 {
		t.Fatalf("metrics shape: %+v", mt)
	}
	var empty Metrics
	if empty.BusPerRef() != 0 {
		t.Fatal("empty BusPerRef != 0")
	}
}

func TestVerifyFinalMemoryRejectsRunningMachine(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.NewHotspot(1, 0)})
	m.Step()
	if err := m.VerifyFinalMemory(); err == nil {
		t.Fatal("VerifyFinalMemory before Done did not error")
	}
}

func TestRunForExactCycles(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.NewHotspot(1, 0)})
	if err := m.RunFor(50); err != nil {
		t.Fatal(err)
	}
	if m.Cycle() != 50 {
		t.Fatalf("Cycle = %d, want 50", m.Cycle())
	}
}

// TestCrossProtocolFinalValuesAgree: the same deterministic workload must
// leave identical logical memory contents under every coherent protocol.
func TestCrossProtocolFinalValuesAgree(t *testing.T) {
	finals := map[string]map[bus.Addr]bus.Word{}
	for _, proto := range []string{"rb", "rwb", "goodman", "writethrough", "nocache"} {
		agents := []workload.Agent{
			workload.NewArrayInit(0, 40),
			workload.NewTrace(
				workload.Compute(200),
				workload.Write(100, 1, coherence.ClassShared),
				workload.Write(100, 2, coherence.ClassShared),
				workload.Write(100, 3, coherence.ClassShared),
			),
		}
		m := MustNew(Config{Protocol: protoOrDie(t, proto), CacheLines: 16, CheckConsistency: true}, agents)
		if _, err := m.Run(1_000_000); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if err := m.VerifyFinalMemory(); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		// Logical view: memory plus dirty lines.
		final := m.Memory().Snapshot()
		for pe := 0; pe < m.Processors(); pe++ {
			for _, e := range m.Cache(pe).Entries() {
				if e.Dirty {
					final[e.Addr] = e.Data
				}
			}
		}
		finals[proto] = final
	}
	ref := finals["rb"]
	for proto, got := range finals {
		for a, v := range ref {
			if got[a] != v {
				t.Fatalf("%s: addr %d = %d, rb says %d", proto, a, got[a], v)
			}
		}
	}
}

func TestMissLatencyHistogram(t *testing.T) {
	// A pure-miss workload (nocache) records one latency sample per ref.
	agents := []workload.Agent{workload.NewRandom(0, 32, 100, 0.5, 0, 1)}
	m := MustNew(Config{Protocol: protoOrDie(t, "nocache"), CheckConsistency: true}, agents)
	if _, err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	h := m.Metrics().MissLatency
	if h.Count() != 100 {
		t.Fatalf("latency samples = %d, want 100", h.Count())
	}
	// A single uncontended PE completes each miss in a couple of cycles.
	if h.Mean() < 1 || h.Mean() > 4 {
		t.Fatalf("mean miss latency = %v", h.Mean())
	}
	// Contention raises the tail: 8 PEs on one bus.
	var crowd []workload.Agent
	for i := 0; i < 8; i++ {
		crowd = append(crowd, workload.NewRandom(0, 32, 100, 0.5, 0, uint64(i)))
	}
	mc := MustNew(Config{Protocol: protoOrDie(t, "nocache"), CheckConsistency: true}, crowd)
	if _, err := mc.Run(1000000); err != nil {
		t.Fatal(err)
	}
	hc := mc.Metrics().MissLatency
	if hc.Mean() <= h.Mean() {
		t.Fatalf("contended mean %v not above uncontended %v", hc.Mean(), h.Mean())
	}
	if hc.Quantile(0.95) < uint64(hc.Mean()) {
		t.Fatal("p95 below mean")
	}
}

func TestWatchdog(t *testing.T) {
	// A generous watchdog never fires on a healthy contended machine.
	agents := []workload.Agent{
		workload.NewRandom(0, 16, 200, 0.5, 0.1, 1),
		workload.NewRandom(0, 16, 200, 0.5, 0.1, 2),
	}
	m := MustNew(Config{WatchdogCycles: 100000, CheckConsistency: true}, agents)
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("healthy machine tripped the watchdog: %v", err)
	}

	// An absurdly tight threshold fires on ordinary memory latency — the
	// mechanism works end to end.
	slow := MustNew(Config{
		Protocol:       protoOrDie(t, "nocache"),
		MemLatency:     5,
		WatchdogCycles: 2,
	}, []workload.Agent{
		workload.NewRandom(0, 8, 50, 0.5, 0, 1),
		workload.NewRandom(0, 8, 50, 0.5, 0, 2),
	})
	_, err := slow.Run(100000)
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("err = %v, want StallError", err)
	}
	if se.Error() == "" || se.Cycle <= se.Since {
		t.Fatalf("stall error malformed: %+v", se)
	}
}

// lockWedge is a raw bus requester that takes the word lock register via
// a locked read and then goes silent — the unlock write never comes, so
// every later write to the word stalls at arbitration forever. It is the
// deliberate wedge the watchdog exists to diagnose.
type lockWedge struct {
	addr bus.Addr
	done bool
}

func (w *lockWedge) BusGrant(bank, banks int) (bus.Request, bool) {
	if w.done {
		return bus.Request{}, false
	}
	w.done = true
	return bus.Request{Op: bus.OpRead, Addr: w.addr, Lock: true}, true
}

// spinWriter writes one shared word forever.
type spinWriter struct{ addr bus.Addr }

func (s *spinWriter) Next(workload.Result) workload.Op {
	return workload.Write(s.addr, 1, coherence.ClassShared)
}

// TestWatchdogNamesWedgedTransaction wedges the bus on purpose — a rogue
// requester takes the lock register and never releases it — and checks
// the resulting StallError's Pending string names the transaction that
// could not complete, which is what makes the watchdog actionable.
func TestWatchdogNamesWedgedTransaction(t *testing.T) {
	const lockAddr = bus.Addr(7)
	agents := []workload.Agent{&spinWriter{addr: lockAddr}}
	m := MustNew(Config{WatchdogCycles: 50}, agents)
	wedge := &lockWedge{addr: lockAddr}
	m.buses.AttachRequester(len(agents), wedge)
	m.buses.RequestSlot(lockAddr, len(agents))

	_, err := m.Run(100_000)
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("err = %v, want StallError", err)
	}
	if !wedge.done {
		t.Fatal("wedge never granted; the run stalled for another reason")
	}
	if se.PE != 0 {
		t.Fatalf("stalled PE = %d, want 0", se.PE)
	}
	want := "write addr=7"
	if !strings.Contains(se.Pending, want) {
		t.Fatalf("Pending = %q, does not name the blocked transaction %q", se.Pending, want)
	}
	if !strings.Contains(se.Error(), want) {
		t.Fatalf("Error() = %q, does not surface the blocked transaction", se.Error())
	}
}

// TestStallErrorBusStateDump wedges the bus via the lock register and
// checks the StallError carries the wedging cycle number and a bus-state
// dump naming the stuck lock holder — the diagnostics that turn a watchdog
// trip from "it hung" into "PE1 still holds the lock on addr 7". Also
// exercises Config.StallCycles, the canonical name for the threshold.
func TestStallErrorBusStateDump(t *testing.T) {
	const lockAddr = bus.Addr(7)
	agents := []workload.Agent{&spinWriter{addr: lockAddr}}
	m := MustNew(Config{StallCycles: 50}, agents)
	wedge := &lockWedge{addr: lockAddr}
	m.buses.AttachRequester(len(agents), wedge)
	m.buses.RequestSlot(lockAddr, len(agents))

	_, err := m.Run(100_000)
	se, ok := err.(*StallError)
	if !ok {
		t.Fatalf("err = %v, want StallError (StallCycles threshold did not arm the watchdog)", err)
	}
	if se.Cycle == 0 || se.Since == 0 || se.Cycle <= se.Since {
		t.Fatalf("wedging cycle numbers malformed: Cycle=%d Since=%d", se.Cycle, se.Since)
	}
	if se.BusState == "" {
		t.Fatal("StallError.BusState is empty")
	}
	// The dump names the wedged lock: held by the rogue requester (source
	// 1) on addr 7, with the spinning PE's request line still pending.
	if want := "lock=PE1@addr7"; !strings.Contains(se.BusState, want) {
		t.Fatalf("BusState = %q, does not name the lock holder %q", se.BusState, want)
	}
	if !strings.Contains(se.BusState, "pending=") {
		t.Fatalf("BusState = %q, has no pending-request count", se.BusState)
	}
	msg := se.Error()
	for _, want := range []string{"wedged at cycle", "bus state:", "lock=PE1@addr7"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

// TestAuditFinalCoherenceFaultFree pins the audit's invariant on every
// protocol: fault-free, no valid cache line ever outlives the latest value
// of its address, so the final-state coherence audit must pass. This is
// what licenses the fault layer to treat an audit failure as a detection.
func TestAuditFinalCoherenceFaultFree(t *testing.T) {
	for _, k := range coherence.Kinds() {
		proto := coherence.New(k)
		t.Run(proto.Name(), func(t *testing.T) {
			agents := []workload.Agent{
				workload.NewRandom(0, 32, 400, 0.5, 0.3, 1),
				workload.NewRandom(0, 32, 400, 0.5, 0.3, 2),
				workload.NewRandom(0, 32, 400, 0.5, 0.3, 3),
			}
			m := MustNew(Config{Protocol: proto, CacheLines: 16, CheckConsistency: true, StallCycles: 200000}, agents)
			if _, err := m.Run(2_000_000); err != nil {
				t.Fatal(err)
			}
			if !m.Done() {
				t.Fatal("machine did not drain")
			}
			if err := m.VerifyFinalMemory(); err != nil {
				t.Fatal(err)
			}
			if err := m.AuditFinalCoherence(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPristineMemRMWSameCycle pins the oracle's pre-first-write record
// under the hard case it exists for: an RMW's lock write lands in memory
// within the same bus cycle that sampled the old value, so by the time
// the retirement is checked, plain memory already shows the new word.
func TestPristineMemRMWSameCycle(t *testing.T) {
	p := &pristineMem{Memory: memory.New(), init: memory.New()}
	const a = bus.Addr(5)
	p.Memory.Poke(a, 42) // initial image, as a loader would leave it

	// The RMW's locked read samples 42; its lock write follows in the
	// same cycle. The oracle must still see 42 as the pristine content.
	if got := p.ReadWord(a); got != 42 {
		t.Fatalf("locked read sampled %d, want 42", got)
	}
	p.WriteWord(a, 1)
	if got := p.Peek(a); got != 1 {
		t.Fatalf("memory shows %d after the lock write, want 1", got)
	}
	if got := p.pristine(a); got != 42 {
		t.Fatalf("pristine(%d) = %d after the lock write, want 42", a, got)
	}

	// Later writes must not disturb the first-write record.
	p.WriteWord(a, 9)
	if got := p.pristine(a); got != 42 {
		t.Fatalf("pristine(%d) = %d after a second write, want 42", a, got)
	}

	// A never-bus-written address reports its current (loader) content.
	const b = bus.Addr(6)
	p.Memory.Poke(b, 7)
	if got := p.pristine(b); got != 7 {
		t.Fatalf("pristine(%d) = %d for an unwritten word, want 7", b, got)
	}
}

// TestQuickCrossProtocolEquivalence: for random seeds, a *race-free*
// multiprogram (writers own disjoint windows; a fourth PE only reads)
// leaves identical logical memory (memory plus dirty lines) under every
// protocol, and every run passes the oracle. Racy programs are excluded
// by construction: different protocols legitimately serialize races
// differently.
func TestQuickCrossProtocolEquivalence(t *testing.T) {
	run := func(seed uint64) bool {
		var reference map[bus.Addr]bus.Word
		for _, k := range coherence.Kinds() {
			agents := []workload.Agent{
				workload.NewRandom(0, 24, 150, 0.5, 0.05, seed),
				workload.NewRandom(24, 24, 150, 0.4, 0.05, seed+100),
				workload.NewRandom(48, 24, 150, 0.3, 0.10, seed+200),
				workload.NewRandom(0, 72, 150, 0, 0, seed+300), // reader over everyone
			}
			m := MustNew(Config{
				Protocol:         coherence.New(k),
				CacheLines:       16,
				CheckConsistency: true,
				WatchdogCycles:   100000,
			}, agents)
			if _, err := m.Run(1_000_000); err != nil {
				t.Logf("seed %d %v: %v", seed, k, err)
				return false
			}
			if !m.Done() {
				t.Logf("seed %d %v: not done", seed, k)
				return false
			}
			final := m.Memory().Snapshot()
			for pe := 0; pe < m.Processors(); pe++ {
				for _, e := range m.Cache(pe).Entries() {
					if e.Dirty {
						final[e.Addr] = e.Data
					}
				}
			}
			if reference == nil {
				reference = final
				continue
			}
			for a, v := range reference {
				if final[a] != v {
					t.Logf("seed %d %v: addr %d = %d, reference %d", seed, k, a, final[a], v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
