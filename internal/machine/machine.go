// Package machine assembles the paper's multiprocessor: N processing
// elements, each with a private snooping cache, connected to shared memory
// by one or more shared buses (Sections 2 and 7). It drives the whole
// system at bus-cycle granularity and embeds a sequential-consistency
// oracle that mechanically checks the Section 4 theorem — "Each PE always
// reads the latest value written" — against the serialization order the
// proof constructs (bus order, with in-cache operations interleaved at
// their completion cycles).
package machine

import (
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/memory"
	"repro/internal/processor"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config describes a machine.
type Config struct {
	// Protocol is the coherence scheme all caches run. Defaults to RB.
	Protocol coherence.Protocol
	// CacheLines per private cache (power of two). Defaults to 1024.
	CacheLines int
	// CacheWays is the associativity (default 1, the paper's
	// direct-mapped organization).
	CacheWays int
	// Buses is the number of interleaved shared buses (power of two,
	// default 1; Figure 7-1 uses 2).
	Buses int
	// MemLatency is extra bus-hold cycles per memory-served transaction.
	MemLatency int
	// CheckConsistency enables the read-latest oracle on every retirement.
	CheckConsistency bool
	// TwoPhaseRMW selects the paper's textual Test-and-Set realization —
	// a locked bus read, a processor test, and an unlocking write-back —
	// instead of the fused single-transaction RMW the Figure 6 matrices
	// assume. It costs two bus transactions per attempt (failed attempts
	// included), making the TTS optimization even more valuable.
	TwoPhaseRMW bool
	// StallCycles, when nonzero, aborts the run with a StallError if any
	// PE stays blocked on one memory operation for more than this many
	// cycles — the symptom of a protocol or arbitration deadlock. In a
	// correct machine a blocked PE always progresses within a few cycles
	// times the contention, so generous values (say 100000) never fire
	// spuriously; fault-injection runs use tighter values so a wedged
	// transaction is *detected* rather than spun on forever.
	StallCycles uint64
	// WatchdogCycles is the older name for StallCycles, honored when
	// StallCycles is zero.
	WatchdogCycles uint64
}

func (c Config) withDefaults() Config {
	if c.Protocol == nil {
		c.Protocol = coherence.RB{}
	}
	if c.CacheLines == 0 {
		c.CacheLines = 1024
	}
	if c.CacheWays == 0 {
		c.CacheWays = 1
	}
	if c.Buses == 0 {
		c.Buses = 1
	}
	if c.StallCycles == 0 {
		c.StallCycles = c.WatchdogCycles
	}
	return c
}

// ConsistencyError reports an oracle violation: a processor read a value
// other than the latest one written in serialization order.
type ConsistencyError struct {
	Cycle    uint64
	PE       int
	Op       workload.Op
	Got      bus.Word
	Expected bus.Word
}

func (e *ConsistencyError) Error() string {
	return fmt.Sprintf("machine: consistency violation at cycle %d: PE%d %v addr %d read %d, latest written is %d",
		e.Cycle, e.PE, e.Op.Kind, e.Op.Addr, e.Got, e.Expected)
}

// StallError reports a watchdog trip: a processor made no progress on one
// blocked memory operation for the configured number of cycles.
type StallError struct {
	Cycle    uint64 // cycle the watchdog tripped (the wedging was noticed)
	PE       int
	Since    uint64 // cycle the operation was issued
	Pending  string // the cache's pending-transaction view, for diagnosis
	BusState string // per-bank arbiter and lock-register snapshot at trip time
}

func (e *StallError) Error() string {
	s := fmt.Sprintf("machine: watchdog: PE%d blocked since cycle %d, wedged at cycle %d; cache state: %s",
		e.PE, e.Since, e.Cycle, e.Pending)
	if e.BusState != "" {
		s += "; bus state: " + e.BusState
	}
	return s
}

// pristineMem interposes on the bus's memory port to record each word's
// value before its first modification. The oracle needs it: a read of a
// never-(retired-)written address must match the address's pristine
// content, but by the time the retirement is checked the very transaction
// being retired may already have modified memory (an RMW writes its lock
// within the same bus cycle). The record is itself a dense memory.Memory
// — its written bitmap is the "seen" set — so the interposed write path
// stays map-free and allocation-free in steady state.
type pristineMem struct {
	*memory.Memory
	init *memory.Memory // value of each address before its first bus write
}

// WriteWord implements bus.Memory, recording the pristine value first.
//
//phase:bus
//hotpath:allocfree
func (p *pristineMem) WriteWord(a bus.Addr, w bus.Word) {
	if !p.init.Written(a) {
		p.init.Poke(a, p.Peek(a))
	}
	p.Memory.WriteWord(a, w)
}

// pristine returns the address's value from before any bus write touched
// it.
func (p *pristineMem) pristine(a bus.Addr) bus.Word {
	if p.init.Written(a) {
		return p.init.Peek(a)
	}
	return p.Peek(a)
}

// Machine is the assembled multiprocessor.
type Machine struct {
	cfg    Config
	mem    *pristineMem
	buses  *bus.Set
	pres   *bus.Presence // nil above MaxPresenceIDs (broadcast fallback)
	caches []*cache.Cache
	procs  []*processor.Processor
	agents []workload.Agent

	// oracle is the read-latest oracle's view of memory: the written
	// bitmap marks addresses some retired write has touched, the stored
	// word is the latest such value in serialization order. A dense store
	// rather than a map so oracle-on runs stay allocation-free too.
	oracle *memory.Memory
	// slotBank tracks, per PE, which bank its request slot is asserted on
	// (-1 none); only the request-line phase moves slots.
	//phase:snoop
	slotBank []int
	cycle    uint64
	// err latches the first violation; the oracle binds values in every
	// phase, so any phase may set it.
	//phase:any
	err error

	// issueCycle stamps are set at issue (CPU phase) and cleared at
	// delivery (bus or snoop phase).
	//phase:any
	issueCycle []uint64 // per PE: cycle its in-flight op was issued (0 = none)
	//phase:snoop
	lastGen []uint64 // per PE: cache generation at its last phase-3 pass
	missLat stats.Histogram

	dirtyOwners map[bus.Addr]int // VerifyFinalMemory scratch, reused across calls
}

// New builds a machine running one agent per processing element.
func New(cfg Config, agents []workload.Agent) (*Machine, error) {
	cfg = cfg.withDefaults()
	if len(agents) == 0 {
		return nil, fmt.Errorf("machine: no agents")
	}
	m := &Machine{
		cfg:    cfg,
		mem:    &pristineMem{Memory: memory.New(), init: memory.New()},
		agents: agents,
		oracle: memory.New(),
	}
	m.buses = bus.NewSet(m.mem, cfg.Buses)
	m.buses.SetMemLatency(cfg.MemLatency)
	// The holder table lets the buses snoop only actual frame holders — a
	// pure optimization (skipped snoops are no-ops), available while PE
	// ids fit one mask word; bigger machines fall back to full broadcast.
	var pres *bus.Presence
	if len(agents) <= bus.MaxPresenceIDs {
		pres = bus.NewPresence()
		m.buses.SetPresence(pres)
		m.pres = pres
	}
	for i, agent := range agents {
		c, err := cache.New(i, cfg.Protocol, cache.Config{Lines: cfg.CacheLines, Ways: cfg.CacheWays})
		if err != nil {
			return nil, err
		}
		if cfg.CheckConsistency {
			pe := i
			c.OnResolve = func(info cache.ResolveInfo) { m.checkResolve(pe, info) }
		}
		c.SetPresence(pres)
		m.buses.Attach(i, c)
		m.buses.AttachRequester(i, c)
		m.caches = append(m.caches, c)
		proc := processor.New(i, agent, c)
		proc.SetTwoPhaseRMW(cfg.TwoPhaseRMW)
		m.procs = append(m.procs, proc)
		m.slotBank = append(m.slotBank, -1)
		m.issueCycle = append(m.issueCycle, 0)
		m.lastGen = append(m.lastGen, ^uint64(0)) // force the first pass
	}
	return m, nil
}

// Reset returns the machine to the state New would have produced with the
// same config and the agents re-seeded from seed, without reallocating
// any arena: the dense page stores (shared memory, pristine record,
// oracle) and the Presence table roll their generation counters, the
// cache line arenas and bus registries clear in place, and every agent
// re-derives its stream via workload.Reseeder. A reset machine's traces,
// stats, and final images are byte-identical to a fresh one's — the
// batch runner's correctness contract, pinned by TestResetEqualsFresh.
//
// Every agent must implement workload.Reseeder; agents that are cheaper
// to rebuild than to reseed go through ResetWith instead.
func (m *Machine) Reset(seed uint64) error {
	for i, a := range m.agents {
		if _, ok := a.(workload.Reseeder); !ok {
			return fmt.Errorf("machine: agent %d (%T) does not implement workload.Reseeder; use ResetWith", i, a)
		}
	}
	for _, a := range m.agents {
		a.(workload.Reseeder).Reseed(seed)
	}
	m.resetCore()
	return nil
}

// ResetWith is Reset for agents that are rebuilt rather than re-seeded:
// the freshly constructed agents replace the old ones PE-for-PE (the
// count must match the machine's shape) and all machine state resets as
// in Reset.
func (m *Machine) ResetWith(agents []workload.Agent) error {
	if len(agents) != len(m.procs) {
		return fmt.Errorf("machine: ResetWith got %d agents for a %d-PE machine", len(agents), len(m.procs))
	}
	m.agents = agents
	m.resetCore()
	return nil
}

// resetCore clears every piece of run state while keeping the machine's
// shape: wiring, arenas, and config survive; traffic, counters, and
// errors do not.
func (m *Machine) resetCore() {
	m.mem.Memory.Reset()
	m.mem.init.Reset()
	m.oracle.Reset()
	m.buses.Reset()
	m.buses.SetMemLatency(m.cfg.MemLatency)
	if m.pres != nil {
		m.pres.Reset()
	}
	for i, c := range m.caches {
		c.Reset()
		m.procs[i].Reset(m.agents[i])
		m.procs[i].SetTwoPhaseRMW(m.cfg.TwoPhaseRMW)
		m.slotBank[i] = -1
		m.issueCycle[i] = 0
		m.lastGen[i] = ^uint64(0)
	}
	m.cycle = 0
	m.err = nil
	m.missLat.Reset()
}

// MustNew is New panicking on error.
func MustNew(cfg Config, agents []workload.Agent) *Machine {
	m, err := New(cfg, agents)
	if err != nil {
		panic(err)
	}
	return m
}

// Memory returns the shared main memory.
func (m *Machine) Memory() *memory.Memory { return m.mem.Memory }

// Buses returns the shared bus set.
func (m *Machine) Buses() *bus.Set { return m.buses }

// Cache returns PE i's private cache.
func (m *Machine) Cache(i int) *cache.Cache { return m.caches[i] }

// Proc returns PE i.
func (m *Machine) Proc(i int) *processor.Processor { return m.procs[i] }

// Processors returns the PE count.
func (m *Machine) Processors() int { return len(m.procs) }

// Cycle returns the number of cycles executed.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Err returns the first consistency violation, if any.
func (m *Machine) Err() error { return m.err }

// Done reports whether every PE has halted and no cache work is in flight.
func (m *Machine) Done() bool {
	for i, p := range m.procs {
		if !p.Halted() || m.caches[i].Busy() {
			return false
		}
	}
	return true
}

// Step executes one bus cycle: bus phase, completion deliveries, CPU
// phase, and request-line management. It returns the first consistency
// violation encountered (and remembers it; subsequent Steps keep failing).
//
// Each phase is its own method carrying a //phase: annotation, so
// phaseaudit can prove that state owned by one phase is never mutated
// from another — the static precondition for running the phases of
// different bus banks concurrently. The watchdog stays here: it runs
// between cycles, outside any phase.
func (m *Machine) Step() error {
	if m.err != nil {
		return m.err
	}
	m.cycle++
	m.busPhase()
	m.cpuPhase()
	m.snoopPhase()

	// Watchdog: a PE stuck on one operation signals a machine bug (or, in
	// a fault-injection run, a detected fault).
	if m.cfg.StallCycles > 0 && m.err == nil {
		for i, since := range m.issueCycle {
			if since > 0 && m.cycle-since > m.cfg.StallCycles {
				addr, wants := m.caches[i].WantsBus()
				m.err = &StallError{
					Cycle: m.cycle, PE: i, Since: since,
					Pending: fmt.Sprintf("%s (wantsBus=%v addr=%d priority=%v)",
						m.caches[i].PendingString(), wants, addr, m.caches[i].NeedsPriority()),
					BusState: m.busStateDump(),
				}
				break
			}
		}
	}
	return m.err
}

// busPhase is phase 1 of the cycle: each bank executes at most one
// transaction. The oracle check happens inside the cache's OnResolve hook
// at the moment the value binds (possibly *within* the Tick, when a grant
// is withdrawn because a snooped write already satisfied the operation);
// here we only deliver bound values back to their processors.
//
//phase:bus
//hotpath:allocfree
func (m *Machine) busPhase() {
	for _, g := range m.buses.Tick() {
		if g.Req.Source >= len(m.caches) {
			// The requester registry is open: a directly attached device
			// (a test harness wedge, say) can win bus grants too, and its
			// completions are not cache completions.
			continue
		}
		c := m.caches[g.Req.Source]
		switch c.BusCompleted(g.Req, g.Res) {
		case cache.ProgressRetry, cache.ProgressMoreUrgent:
			m.buses.PrioritySlot(g.Req.Addr, g.Req.Source)
		case cache.ProgressDone, cache.ProgressMore:
			// Done delivers below; More re-arbitrates normally.
		}
		if v, ok := c.TakeResolved(); ok {
			m.deliver(g.Req.Source, v)
		}
	}
}

// cpuPhase is phase 2 of the cycle: every ready PE issues one operation;
// in-cache hits bind (and are oracle-checked via OnResolve) here, after
// this cycle's bus transactions.
//
//phase:cpu
//hotpath:allocfree
func (m *Machine) cpuPhase() {
	for i, p := range m.procs {
		p.CPUPhase()
		if p.Status() == processor.StatusBlocked && m.issueCycle[i] == 0 {
			m.issueCycle[i] = m.cycle
		}
	}
}

// snoopPhase is phase 3 of the cycle — request-line management: assert or
// deassert each cache's bus-request lines to match its needs. Planning can
// resolve an operation without the bus (a snooped write satisfied it);
// such resolutions bind their value now and are delivered at the end of
// the cycle.
//
// Caches whose generation is unchanged since the last pass are skipped
// outright: nothing happened to them, so their bus needs are as last
// asserted (a stalled slot is kept alive by the bus itself, and any grant,
// withdrawal or snoop hit advances the generation), they cannot have
// resolved anything, and an unchanged priority claim needs no action — the
// skip is exactly the no-op the full pass would have performed. With many
// PEs most caches are idle or blocked most cycles, and the cycle loop
// touches only the ones with news.
//
//phase:snoop
//hotpath:allocfree
func (m *Machine) snoopPhase() {
	for i, c := range m.caches {
		gen := c.Gen()
		if gen == m.lastGen[i] {
			continue
		}
		if c.NeedsPriority() {
			// Priority slot already asserted at interrupt time.
			m.lastGen[i] = gen
			continue
		}
		// WantsBus may resolve the operation locally (advancing the
		// generation), so re-read the counter after it.
		if addr, want := c.WantsBus(); want {
			bank := m.buses.BankOf(addr)
			if m.slotBank[i] != bank && m.slotBank[i] >= 0 {
				m.buses.CancelSlot(i)
			}
			m.buses.RequestSlot(addr, i)
			m.slotBank[i] = bank
		} else if m.slotBank[i] >= 0 {
			m.buses.CancelSlot(i)
			m.slotBank[i] = -1
		}
		m.lastGen[i] = c.Gen()
		// A delivery can start the next leg of a two-phase Test-and-Set
		// (a new pending op), advancing the generation again; the next
		// cycle's pass picks that up, as the separate delivery loop did.
		if v, ok := c.TakeResolved(); ok {
			m.deliver(i, v)
		}
	}
}

// busStateDump renders each bank's arbiter and lock-register state for the
// watchdog's StallError: which sources are still waiting and who, if
// anyone, wedged the lock.
func (m *Machine) busStateDump() string {
	var sb strings.Builder
	for i := 0; i < m.buses.Len(); i++ {
		b := m.buses.Bus(i)
		if i > 0 {
			sb.WriteString(" | ")
		}
		fmt.Fprintf(&sb, "bus%d: cycle=%d pending=%d lock=", i, b.Cycle(), b.PendingLen())
		if holder, addr := b.Locked(); holder == -1 {
			sb.WriteString("free")
		} else {
			fmt.Fprintf(&sb, "PE%d@addr%d", holder, addr)
		}
	}
	return sb.String()
}

// deliver completes PE i's blocked operation, recording its miss latency
// (cycles from issue to delivery inclusive). Deliveries happen from the
// bus phase (a grant completed) and the snoop phase (planning resolved the
// operation without the bus), never from the CPU phase.
//
//phase:bus,snoop
//hotpath:allocfree
func (m *Machine) deliver(i int, v bus.Word) {
	if start := m.issueCycle[i]; start > 0 {
		m.missLat.Observe(m.cycle - start + 1)
		m.issueCycle[i] = 0
	}
	m.procs[i].Deliver(v)
}

// checkResolve folds one bound operation into the oracle, at its binding
// (serialization) point. It is invoked through the cache's OnResolve hook,
// which can fire from any phase (bus grants, snoop-planning resolutions,
// CPU-phase cache hits).
//
//phase:any
//hotpath:allocfree
func (m *Machine) checkResolve(pe int, info cache.ResolveInfo) {
	a := info.Addr
	switch {
	case info.RMW:
		op := workload.TestSet(a, info.Data)
		if exp := m.latest(a); info.Value != exp && m.err == nil {
			//lint:ignore allocaudit a violation ends the run; the error allocation is off the steady-state path
			m.err = &ConsistencyError{Cycle: m.cycle, PE: pe, Op: op, Got: info.Value, Expected: exp}
		}
		if info.Value == 0 {
			m.oracle.Poke(a, info.Data)
		}
	case info.Ev == coherence.EvWrite:
		m.oracle.Poke(a, info.Data)
	default:
		op := workload.Read(a, coherence.ClassUnknown)
		if exp := m.latest(a); info.Value != exp && m.err == nil {
			//lint:ignore allocaudit a violation ends the run; the error allocation is off the steady-state path
			m.err = &ConsistencyError{Cycle: m.cycle, PE: pe, Op: op, Got: info.Value, Expected: exp}
		}
	}
}

// latest returns the newest written value for an address; before any write
// retires, that is the pristine memory content (a writeback or flush never
// touches an address without a prior retired write, so the oracle entry
// always exists when memory has been modified by program writes).
func (m *Machine) latest(a bus.Addr) bus.Word {
	if m.oracle.Written(a) {
		return m.oracle.Peek(a)
	}
	return m.mem.pristine(a)
}

// Run executes cycles until every PE halts (and caches drain) or maxCycles
// elapse. It returns the number of cycles executed and the first
// consistency violation, if any.
func (m *Machine) Run(maxCycles uint64) (uint64, error) {
	start := m.cycle
	for m.cycle-start < maxCycles && !m.Done() {
		if err := m.Step(); err != nil {
			return m.cycle - start, err
		}
	}
	return m.cycle - start, m.err
}

// RunFor executes exactly n cycles (unless a violation aborts the run).
func (m *Machine) RunFor(n uint64) error {
	for i := uint64(0); i < n; i++ {
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// FinalImage returns the machine's final memory image after it is Done:
// the shared memory contents with every dirty cache line drained on top —
// what a clean shutdown (write back everything, power off) would leave in
// memory. It errors if two caches both hold the same address dirty, a
// state no fault-free protocol can reach (the Section 4 lemma guarantees
// at most one Local owner). It does not modify the simulated memory.
func (m *Machine) FinalImage() (map[bus.Addr]bus.Word, error) {
	if !m.Done() {
		return nil, fmt.Errorf("machine: FinalImage before Done")
	}
	final := m.mem.Snapshot()
	if m.dirtyOwners == nil {
		m.dirtyOwners = make(map[bus.Addr]int)
	}
	clear(m.dirtyOwners)
	for i, c := range m.caches {
		for _, e := range c.Entries() {
			if e.Dirty {
				if prev, dup := m.dirtyOwners[e.Addr]; dup {
					return nil, fmt.Errorf("machine: caches %d and %d both hold addr %d dirty", prev, i, e.Addr)
				}
				m.dirtyOwners[e.Addr] = i
				final[e.Addr] = e.Data
			}
		}
	}
	return final, nil
}

// VerifyFinalMemory checks, after the machine is Done, that draining every
// dirty cache line into memory yields exactly the oracle's view — the
// whole-run analogue of the Section 4 lemma's "latest value" clause. It
// does not modify the simulated memory.
func (m *Machine) VerifyFinalMemory() error {
	final, err := m.FinalImage()
	if err != nil {
		return err
	}
	// Compare against the oracle on every address it knows; Range walks in
	// ascending address order, so the first mismatch reported is
	// deterministic.
	var verr error
	m.oracle.Range(func(a bus.Addr, want bus.Word) bool {
		if final[a] != want {
			verr = fmt.Errorf("machine: final value of addr %d is %d, oracle says %d", a, final[a], want)
			return false
		}
		return true
	})
	return verr
}

// AuditFinalCoherence checks, after the machine is Done, that every valid
// cache line still holds the latest value in serialization order — the
// final-state coherence audit of the fault-injection layer. Every protocol
// in this repo maintains the invariant fault-free (invalidation-based
// schemes remove stale copies; RWB updates them in place), so any surviving
// stale copy is the footprint of an injected (or real) fault. Requires
// Config.CheckConsistency, which populates the oracle the audit reads.
func (m *Machine) AuditFinalCoherence() error {
	if !m.Done() {
		return fmt.Errorf("machine: AuditFinalCoherence before Done")
	}
	if !m.cfg.CheckConsistency {
		return fmt.Errorf("machine: AuditFinalCoherence without CheckConsistency")
	}
	for i, c := range m.caches {
		for _, e := range c.Entries() {
			if e.State == coherence.Invalid {
				// The frame is occupied but the copy is dead (a snooped
				// invalidation leaves the tag in place); its data can never
				// be served, so it is exempt from the audit.
				continue
			}
			if want := m.latest(e.Addr); e.Data != want {
				return fmt.Errorf("machine: coherence audit: cache %d holds addr %d = %d (%v, dirty=%v), latest written is %d",
					i, e.Addr, e.Data, e.State, e.Dirty, want)
			}
		}
	}
	return nil
}

// Metrics is an aggregate snapshot of the whole machine.
type Metrics struct {
	Cycles             uint64
	Bus                bus.Stats
	PerBusTransactions []uint64
	Caches             []cache.Stats
	Procs              []processor.Stats
	// MissLatency is the distribution of cycles each bus-serviced
	// operation kept its processor blocked (issue to delivery).
	MissLatency stats.Histogram
}

// Metrics returns the current counters.
func (m *Machine) Metrics() Metrics {
	mt := Metrics{
		Cycles:             m.cycle,
		Bus:                m.buses.Stats(),
		PerBusTransactions: m.buses.PerBusTransactions(),
		MissLatency:        m.missLat,
	}
	for _, c := range m.caches {
		mt.Caches = append(mt.Caches, c.Stats())
	}
	for _, p := range m.procs {
		mt.Procs = append(mt.Procs, p.Stats())
	}
	return mt
}

// TotalRefs sums retired memory operations across PEs.
func (mt Metrics) TotalRefs() uint64 {
	var t uint64
	for _, p := range mt.Procs {
		t += p.Retired
	}
	return t
}

// BusPerRef returns bus transactions per retired memory operation, the
// paper's figure of merit for every scheme comparison.
func (mt Metrics) BusPerRef() float64 {
	refs := mt.TotalRefs()
	if refs == 0 {
		return 0
	}
	return float64(mt.Bus.Transactions()) / float64(refs)
}
