package machine

import (
	"testing"

	"repro/internal/workload"
)

// TestTwoPhaseMutualExclusion: the locked-bus Test-and-Set realization
// serializes acquisitions machine-wide under every protocol, with the
// oracle silent.
func TestTwoPhaseMutualExclusion(t *testing.T) {
	for _, proto := range []string{"rb", "rwb", "goodman", "illinois", "writethrough", "nocache"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			const pes, iters = 4, 15
			var agents []workload.Agent
			var locks []*workload.Spinlock
			for i := 0; i < pes; i++ {
				s := workload.MustSpinlock(workload.SpinlockConfig{
					Lock: 100, Strategy: workload.StrategyTS, Iterations: iters,
					CriticalReads: 2, CriticalWrites: 2,
					GuardedBase: 200, GuardedWords: 4,
					Seed: uint64(i),
				})
				locks = append(locks, s)
				agents = append(agents, s)
			}
			m := MustNew(Config{
				Protocol:         protoOrDie(t, proto),
				TwoPhaseRMW:      true,
				CheckConsistency: true,
				WatchdogCycles:   200000,
			}, agents)
			if _, err := m.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			if !m.Done() {
				t.Fatal("deadlocked")
			}
			total := 0
			for _, s := range locks {
				total += s.Acquisitions()
			}
			if total != pes*iters {
				t.Fatalf("acquisitions = %d, want %d", total, pes*iters)
			}
		})
	}
}

// TestTwoPhaseCostsTwoTransactionsPerAttempt: each spinning attempt is a
// locked read plus an unlocking write — double the fused RMW's bus cost.
func TestTwoPhaseCostsTwoTransactionsPerAttempt(t *testing.T) {
	run := func(twoPhase bool) float64 {
		const pes, iters = 6, 15
		var agents []workload.Agent
		var locks []*workload.Spinlock
		for i := 0; i < pes; i++ {
			s := workload.MustSpinlock(workload.SpinlockConfig{
				Lock: 100, Strategy: workload.StrategyTS, Iterations: iters,
				CriticalReads: 3, CriticalWrites: 3,
				GuardedBase: 200, GuardedWords: 8,
				Seed: uint64(i),
			})
			locks = append(locks, s)
			agents = append(agents, s)
		}
		m := MustNew(Config{
			TwoPhaseRMW:      twoPhase,
			CheckConsistency: true,
			WatchdogCycles:   200000,
		}, agents)
		if _, err := m.Run(20_000_000); err != nil {
			t.Fatal(err)
		}
		if !m.Done() {
			t.Fatal("not done")
		}
		attempts := 0
		for _, s := range locks {
			attempts += s.Attempts()
		}
		mt := m.Metrics()
		return float64(mt.Bus.Transactions()) / float64(attempts)
	}
	fused := run(false)
	two := run(true)
	if two < fused*1.3 {
		t.Fatalf("two-phase %.2f txns/attempt not well above fused %.2f", two, fused)
	}
}

// TestTwoPhaseRandomWorkloadsConsistent: randomized traffic with
// Test-and-Sets under the locked-bus realization passes the oracle on
// every protocol.
func TestTwoPhaseRandomWorkloadsConsistent(t *testing.T) {
	for _, proto := range []string{"rb", "rwb", "goodman", "illinois"} {
		agents := []workload.Agent{
			workload.NewRandom(0, 24, 300, 0.4, 0.15, 1),
			workload.NewRandom(0, 24, 300, 0.4, 0.15, 2),
			workload.NewRandom(0, 24, 300, 0.3, 0.20, 3),
		}
		m := MustNew(Config{
			Protocol:         protoOrDie(t, proto),
			CacheLines:       16,
			TwoPhaseRMW:      true,
			CheckConsistency: true,
			WatchdogCycles:   200000,
		}, agents)
		if _, err := m.Run(2_000_000); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !m.Done() {
			t.Fatalf("%s: not done", proto)
		}
		if err := m.VerifyFinalMemory(); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

// TestTwoPhaseLocalFastPathStillApplies: a PE holding the lock line
// exclusively completes Test-and-Set without the bus even in two-phase
// mode.
func TestTwoPhaseLocalFastPathStillApplies(t *testing.T) {
	agent := workload.NewTrace(
		workload.Write(8, 0, 0), // take the line Local (RB)
		workload.TestSet(8, 1),  // in-cache
		workload.TestSet(8, 1),  // in-cache, fails
	)
	m := MustNew(Config{TwoPhaseRMW: true, CheckConsistency: true}, []workload.Agent{agent})
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	mt := m.Metrics()
	// Only the initial write touched the bus.
	if got := mt.Bus.Transactions(); got != 1 {
		t.Fatalf("bus transactions = %d, want 1", got)
	}
	if mt.Caches[0].LocalRMWs != 2 {
		t.Fatalf("local RMWs = %d, want 2", mt.Caches[0].LocalRMWs)
	}
}
