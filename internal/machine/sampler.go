package machine

import (
	"fmt"

	"repro/internal/event"
)

// Sampler drives a Machine while firing scheduled observations on a
// virtual clock aligned with machine cycles, using the discrete-event
// kernel. It is how time-series measurements (bus utilization over time,
// lock-convoy phases, warmup-vs-steady-state miss ratios) are taken
// without polluting the machine's own cycle loop.
type Sampler struct {
	m    *Machine
	loop *event.Loop
}

// NewSampler wraps a machine. The sampler's clock starts at the machine's
// current cycle.
func NewSampler(m *Machine) *Sampler {
	s := &Sampler{m: m, loop: event.New()}
	if c := m.Cycle(); c > 0 {
		s.loop.Advance(event.Time(c))
	}
	return s
}

// Every schedules fn at each multiple of interval cycles from now, for the
// lifetime of the run. fn receives the machine at the sampling instant.
func (s *Sampler) Every(interval uint64, fn func(m *Machine)) {
	if interval == 0 {
		panic("machine: zero sampling interval")
	}
	var tick event.Func
	tick = func(now event.Time) {
		fn(s.m)
		s.loop.After(event.Time(interval), tick)
	}
	s.loop.After(event.Time(interval), tick)
}

// At schedules fn once at the given absolute machine cycle.
func (s *Sampler) At(cycle uint64, fn func(m *Machine)) {
	s.loop.At(event.Time(cycle), fn2(s.m, fn))
}

func fn2(m *Machine, fn func(*Machine)) event.Func {
	return func(event.Time) { fn(m) }
}

// Run steps the machine until it is done or maxCycles elapse, firing
// scheduled observations at their exact cycles (an observation at cycle c
// sees the machine state after cycle c completed).
func (s *Sampler) Run(maxCycles uint64) (uint64, error) {
	start := s.m.Cycle()
	for s.m.Cycle()-start < maxCycles && !s.m.Done() {
		if err := s.m.Step(); err != nil {
			return s.m.Cycle() - start, err
		}
		s.loop.RunUntil(event.Time(s.m.Cycle()))
	}
	return s.m.Cycle() - start, s.m.Err()
}

// UtilizationSeries samples bus utilization over windows of the given
// interval while running the machine to completion: the time-series view
// of the Section 7 saturation analysis. It returns one utilization value
// per completed window.
func (s *Sampler) UtilizationSeries(interval, maxCycles uint64) ([]float64, error) {
	if interval == 0 {
		return nil, fmt.Errorf("machine: zero sampling interval")
	}
	var series []float64
	var lastBusy, lastTotal uint64
	s.Every(interval, func(m *Machine) {
		st := m.buses.Stats()
		busy, total := st.BusyCycles, st.BusyCycles+st.IdleCycles
		if total > lastTotal {
			series = append(series, float64(busy-lastBusy)/float64(total-lastTotal))
		}
		lastBusy, lastTotal = busy, total
	})
	if _, err := s.Run(maxCycles); err != nil {
		return series, err
	}
	return series, nil
}
