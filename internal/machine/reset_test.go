package machine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/workload"
)

// runToDone drives the machine to completion and renders everything
// observable about the run — the full bus trace of every bank, the
// aggregate metrics, the final memory snapshot, and the drained final
// image — as one deterministic string. Byte-identity of this capture is
// the reset contract: a recycled machine must be indistinguishable from
// a fresh one.
func runToDone(t *testing.T, m *Machine) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < m.Buses().Len(); i++ {
		bank := i
		m.Buses().Bus(i).Trace = func(cycle uint64, r bus.Request, res bus.Result) {
			fmt.Fprintf(&sb, "bank%d cycle%d req%+v res%+v\n", bank, cycle, r, res)
		}
	}
	if _, err := m.Run(2_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Done() {
		t.Fatalf("machine not done after cycle cap")
	}
	fmt.Fprintf(&sb, "metrics %+v\n", m.Metrics())
	m.Memory().Range(func(a bus.Addr, w bus.Word) bool {
		fmt.Fprintf(&sb, "mem %d=%d\n", a, w)
		return true
	})
	final, err := m.FinalImage()
	if err != nil {
		t.Fatalf("final image: %v", err)
	}
	addrs := make([]bus.Addr, 0, len(final))
	for a := range final {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&sb, "final %d=%d\n", a, final[a])
	}
	return sb.String()
}

// firstDiff returns a one-line description of where two captures diverge.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got  %q\n  want %q", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(g), len(w))
}

// TestResetEqualsFresh is the byte-identity oracle for the generation
// reset: for every protocol and several seeds, a machine recycled with
// Reset(seed) — after having already executed an unrelated run whose
// residue a buggy reset would leak — produces exactly the trace, stats,
// memory image, and final image of a machine freshly constructed for
// that seed.
func TestResetEqualsFresh(t *testing.T) {
	const (
		pes  = 4
		refs = 300
	)
	layout := workload.DefaultLayout()
	profile := workload.QuicksortProfile()
	mkAgents := func(seed uint64) []workload.Agent {
		agents := make([]workload.Agent, pes)
		for i := range agents {
			agents[i] = workload.MustApp(profile, layout, i, seed, refs)
		}
		return agents
	}
	seeds := []uint64{1, 2, 3}
	for _, k := range coherence.Kinds() {
		proto := coherence.New(k)
		t.Run(proto.Name(), func(t *testing.T) {
			cfg := Config{Protocol: proto, CacheLines: 64, Buses: 2, CheckConsistency: true}
			// Dirty the reused machine with a run no fresh machine sees:
			// any state that survives Reset shows up as a capture diff.
			reused := MustNew(cfg, mkAgents(99))
			runToDone(t, reused)
			for _, seed := range seeds {
				want := runToDone(t, MustNew(cfg, mkAgents(seed)))
				if err := reused.Reset(seed); err != nil {
					t.Fatalf("Reset(%d): %v", seed, err)
				}
				if got := runToDone(t, reused); got != want {
					t.Fatalf("seed %d: reset run differs from fresh run at %s", seed, firstDiff(got, want))
				}
			}
		})
	}
}

// TestResetWithEqualsFresh covers the rebuilt-agents path: Random does
// not implement Reseeder, so the recycled machine takes fresh agents via
// ResetWith and must still match a fresh construction byte-for-byte.
func TestResetWithEqualsFresh(t *testing.T) {
	mkAgents := func(seed uint64) []workload.Agent {
		agents := make([]workload.Agent, 4)
		for i := range agents {
			agents[i] = workload.NewRandom(0, 256, 400, 0.3, 0.02, seed+uint64(i))
		}
		return agents
	}
	cfg := Config{Protocol: coherence.NewRWB(2), CacheLines: 128, CheckConsistency: true}
	reused := MustNew(cfg, mkAgents(77))
	runToDone(t, reused)
	if err := reused.Reset(1); err == nil {
		t.Fatalf("Reset accepted non-Reseeder agents; want an error directing callers to ResetWith")
	}
	for _, seed := range []uint64{1, 2, 3} {
		want := runToDone(t, MustNew(cfg, mkAgents(seed)))
		if err := reused.ResetWith(mkAgents(seed)); err != nil {
			t.Fatalf("ResetWith: %v", err)
		}
		if got := runToDone(t, reused); got != want {
			t.Fatalf("seed %d: reset run differs from fresh run at %s", seed, firstDiff(got, want))
		}
	}
	if err := reused.ResetWith(mkAgents(1)[:2]); err == nil {
		t.Fatalf("ResetWith accepted a mismatched agent count")
	}
}
