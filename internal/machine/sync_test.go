package machine

import (
	"testing"

	"repro/internal/workload"
)

// TestBarrierAcrossProtocols runs the sense-reversing barrier on the full
// machine under every coherent protocol: all participants must complete
// every round, the built-in semantics check (no peer observed behind the
// barrier) must hold, and the consistency oracle stays silent.
func TestBarrierAcrossProtocols(t *testing.T) {
	for _, proto := range []string{"rb", "rwb", "goodman", "writethrough", "nocache"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			const pes, rounds = 4, 8
			var agents []workload.Agent
			var barriers []*workload.Barrier
			for i := 0; i < pes; i++ {
				b := workload.MustBarrier(workload.BarrierConfig{
					Lock: 0, Counter: 1, Sense: 2, Progress: 16,
					Participants: pes, Rounds: rounds,
					WorkCycles: 3 + i, // desynchronize arrivals
					ID:         i,
				})
				barriers = append(barriers, b)
				agents = append(agents, b)
			}
			m := MustNew(Config{Protocol: protoOrDie(t, proto), CheckConsistency: true}, agents)
			if _, err := m.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			if !m.Done() {
				t.Fatal("barrier deadlocked")
			}
			for i, b := range barriers {
				if b.Rounds() != rounds {
					t.Errorf("PE%d completed %d rounds, want %d", i, b.Rounds(), rounds)
				}
				if err := b.Err(); err != nil {
					t.Errorf("PE%d: %v", i, err)
				}
			}
		})
	}
}

// TestBarrierSpinningIsCacheResident: under RB, the sense-word spinning
// between arrivals must be far cheaper than under the no-cache baseline.
func TestBarrierSpinningIsCacheResident(t *testing.T) {
	run := func(proto string) float64 {
		const pes, rounds = 4, 10
		var agents []workload.Agent
		for i := 0; i < pes; i++ {
			agents = append(agents, workload.MustBarrier(workload.BarrierConfig{
				Lock: 0, Counter: 1, Sense: 2, Progress: 16,
				Participants: pes, Rounds: rounds,
				WorkCycles: 1 + 40*i, // one very late arriver => long spins
				ID:         i,
			}))
		}
		m := MustNew(Config{Protocol: protoOrDie(t, proto), CheckConsistency: true}, agents)
		if _, err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if !m.Done() {
			t.Fatal("not done")
		}
		mt := m.Metrics()
		return mt.BusPerRef()
	}
	rb, nocache := run("rb"), run("nocache")
	if rb*3 > nocache {
		t.Fatalf("rb bus/ref %.3f not well below nocache %.3f", rb, nocache)
	}
}

// TestSemaphoreAcrossProtocols: P/V pairs balance and nothing deadlocks.
func TestSemaphoreAcrossProtocols(t *testing.T) {
	for _, proto := range []string{"rb", "rwb", "goodman"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			const pes, iters = 4, 10
			const capacity = 2
			var agents []workload.Agent
			var sems []*workload.Semaphore
			for i := 0; i < pes; i++ {
				s := workload.MustSemaphore(workload.SemaphoreConfig{
					Lock: 0, Count: 1, Iterations: iters,
					HoldCycles: 5,
					Initialize: i == 0, Capacity: capacity,
				})
				sems = append(sems, s)
				agents = append(agents, s)
			}
			m := MustNew(Config{Protocol: protoOrDie(t, proto), CheckConsistency: true}, agents)
			if _, err := m.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			if !m.Done() {
				t.Fatal("semaphore deadlocked")
			}
			for i, s := range sems {
				if s.Completed() != iters {
					t.Errorf("PE%d completed %d, want %d", i, s.Completed(), iters)
				}
			}
			// All units returned: the count is back at capacity. The
			// latest value may live in a dirty cache line, so consult the
			// logical view.
			final := m.Memory().Peek(1)
			for pe := 0; pe < pes; pe++ {
				for _, e := range m.Cache(pe).Entries() {
					if e.Addr == 1 && e.Dirty {
						final = e.Data
					}
				}
			}
			if final != capacity {
				t.Errorf("final semaphore count = %d, want %d", final, capacity)
			}
		})
	}
}
