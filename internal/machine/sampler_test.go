package machine

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

func TestSamplerEveryFiresOnInterval(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.NewHotspot(1, 0)})
	s := NewSampler(m)
	var cycles []uint64
	s.Every(10, func(m *Machine) { cycles = append(cycles, m.Cycle()) })
	if _, err := s.Run(35); err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 3 || cycles[0] != 10 || cycles[1] != 20 || cycles[2] != 30 {
		t.Fatalf("sampled at %v, want [10 20 30]", cycles)
	}
}

func TestSamplerAt(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.NewHotspot(1, 0)})
	s := NewSampler(m)
	fired := uint64(0)
	s.At(7, func(m *Machine) { fired = m.Cycle() })
	s.Run(20)
	if fired != 7 {
		t.Fatalf("fired at %d, want 7", fired)
	}
}

func TestSamplerStopsWhenMachineDone(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.NewArrayInit(0, 4)})
	s := NewSampler(m)
	count := 0
	s.Every(1, func(*Machine) { count++ })
	ran, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Done() {
		t.Fatal("machine not done")
	}
	if uint64(count) != ran {
		t.Fatalf("sampled %d times over %d cycles", count, ran)
	}
}

func TestSamplerZeroIntervalPanics(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.Idle()})
	s := NewSampler(m)
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	s.Every(0, func(*Machine) {})
}

func TestUtilizationSeries(t *testing.T) {
	// Saturating workload: utilization near 1 in every window.
	agents := []workload.Agent{
		workload.NewRandom(0, 64, 500, 0.5, 0, 1),
		workload.NewRandom(0, 64, 500, 0.5, 0, 2),
		workload.NewRandom(0, 64, 500, 0.5, 0, 3),
		workload.NewRandom(0, 64, 500, 0.5, 0, 4),
	}
	m := MustNew(Config{Protocol: coherence.NoCache{}, CheckConsistency: true}, agents)
	series, err := NewSampler(m).UtilizationSeries(100, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 5 {
		t.Fatalf("only %d windows", len(series))
	}
	for i, u := range series {
		if u < 0.9 {
			t.Fatalf("window %d utilization %.2f under a saturating workload", i, u)
		}
	}

	// A continuing sampler on a fresh machine with light load shows low
	// utilization.
	light := MustNew(Config{}, []workload.Agent{workload.NewTrace(
		workload.Read(1, coherence.ClassShared),
		workload.Compute(500),
		workload.Read(1, coherence.ClassShared),
	)})
	series2, err := NewSampler(light).UtilizationSeries(100, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(series2) == 0 || series2[len(series2)-1] > 0.5 {
		t.Fatalf("light-load utilization series = %v", series2)
	}
}

func TestUtilizationSeriesValidation(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.Idle()})
	if _, err := NewSampler(m).UtilizationSeries(0, 10); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestSamplerOnStartedMachine(t *testing.T) {
	m := MustNew(Config{}, []workload.Agent{workload.NewHotspot(1, 0)})
	m.RunFor(25)
	s := NewSampler(m)
	var at []uint64
	s.Every(10, func(m *Machine) { at = append(at, m.Cycle()) })
	s.Run(20)
	if len(at) != 2 || at[0] != 35 || at[1] != 45 {
		t.Fatalf("sampled at %v, want [35 45]", at)
	}
}
