package machine_test

import (
	"fmt"
	"log"

	"repro/internal/coherence"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Example runs the Figure 6-2 situation end to end: two TTS spinlocks
// contending under RB, with the consistency oracle on.
func Example() {
	a := workload.MustSpinlock(workload.SpinlockConfig{
		Lock: 64, Strategy: workload.StrategyTTS, Iterations: 3,
	})
	b := workload.MustSpinlock(workload.SpinlockConfig{
		Lock: 64, Strategy: workload.StrategyTTS, Iterations: 3,
	})
	m, err := machine.New(machine.Config{
		Protocol:         coherence.RB{},
		CheckConsistency: true,
	}, []workload.Agent{a, b})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(100000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("acquisitions:", a.Acquisitions()+b.Acquisitions())
	fmt.Println("consistent:", m.Err() == nil)
	// Output:
	// acquisitions: 6
	// consistent: true
}

// ExampleSampler takes a utilization time series while a machine runs.
func ExampleSampler() {
	m := machine.MustNew(machine.Config{Protocol: coherence.NoCache{}},
		[]workload.Agent{workload.NewHotspot(1, 100)})
	series, err := machine.NewSampler(m).UtilizationSeries(50, 100000)
	if err != nil {
		log.Fatal(err)
	}
	// Every reference hits the bus under nocache, so the windows are
	// nearly saturated (the first has a one-cycle startup bubble).
	fmt.Println("windows:", len(series), "last:", series[len(series)-1])
	// Output:
	// windows: 4 last: 1
}
