package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/workload"
)

func sampleRecords() []Record {
	return []Record{
		{PE: 0, Op: workload.Read(100, coherence.ClassCode)},
		{PE: 1, Op: workload.Write(200, 42, coherence.ClassLocal)},
		{PE: 0, Op: workload.Read(101, coherence.ClassCode)},
		{PE: 2, Op: workload.TestSet(7, 1)},
		{PE: 1, Op: workload.Compute(50)},
		{PE: 0, Op: workload.Halt()},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sampleRecords() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 6 {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty stream: %v, %d records", err, len(recs))
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")).Read(); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(strings.NewReader("MC")).Read(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("short err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{PE: 3, Op: workload.Write(5, 9, coherence.ClassShared)})
	w.Write(Record{PE: 3, Op: workload.Read(6, coherence.ClassShared)})
	w.Flush()
	full := buf.Bytes()
	// Chopping the stream at every mid-record position must yield a
	// truncation error that names the record and byte offset — never a
	// clean EOF, never a bare sentinel with no position.
	for cut := len(magic) + 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		var err error
		var n int
		for {
			_, e := r.Read()
			if e != nil {
				err = e
				break
			}
			n++
		}
		if err == io.EOF {
			// A cut exactly on a record boundary is a legitimate clean end.
			if wantRecs := 1; n != wantRecs {
				t.Fatalf("cut %d: clean EOF after %d records", cut, n)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
		if !strings.Contains(err.Error(), "record ") || !strings.Contains(err.Error(), "byte offset ") {
			t.Fatalf("cut %d: error %q lacks position info", cut, err)
		}
	}
}

func TestCorruptHeaderPositioned(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{PE: 0, Op: workload.Read(100, coherence.ClassCode)})
	w.Flush()
	raw := buf.Bytes()
	// Append a record with an undecodable op kind (7) after the valid one.
	raw = append(raw, 0 /* pe */, 7 /* head: kind=7 */)
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "record 1,") {
		t.Fatalf("corrupt header err = %v, want record-1 position", err)
	}
}

func TestDeltaCodingIsCompact(t *testing.T) {
	// Sequential addresses should cost ~3 bytes per record (pe + head +
	// delta of 1).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		w.Write(Record{PE: 0, Op: workload.Read(bus.Addr(100000+i), coherence.ClassLocal)})
	}
	w.Flush()
	perRecord := float64(buf.Len()) / 1000
	if perRecord > 4 {
		t.Fatalf("%.1f bytes/record, delta coding not effective", perRecord)
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseTextCommentsAndErrors(t *testing.T) {
	good := `
# a comment
0 read 5 shared

1 write 6 9 local
2 halt
`
	recs, err := ParseText(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3", len(recs))
	}
	for _, bad := range []string{
		"x read 5",       // bad PE
		"0 frobnicate 5", // unknown op
		"0 read",         // missing addr
		"0 write 5",      // missing value
		"0 read zzz",     // bad number
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted", bad)
		}
	}
}

func TestParseTextDefaultClass(t *testing.T) {
	recs, err := ParseText(strings.NewReader("0 read 5"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Op.Class != coherence.ClassShared {
		t.Fatalf("default class = %v, want shared", recs[0].Op.Class)
	}
}

func TestSplit(t *testing.T) {
	agents := Split(sampleRecords())
	if len(agents) != 3 {
		t.Fatalf("split into %d agents, want 3", len(agents))
	}
	// PE0's agent replays its two reads then halts.
	a := agents[0]
	if op := a.Next(workload.Result{}); op.Addr != 100 {
		t.Fatalf("first op = %+v", op)
	}
	if op := a.Next(workload.Result{}); op.Addr != 101 {
		t.Fatalf("second op = %+v", op)
	}
	if op := a.Next(workload.Result{}); op.Kind != workload.OpHalt {
		t.Fatalf("third op = %+v", op)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRecords())
	if s.Records != 6 || s.PEs != 3 || s.Reads != 2 || s.Writes != 1 ||
		s.TestSets != 1 || s.Computes != 1 || s.Halts != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Addresses != 4 {
		t.Fatalf("addresses = %d, want 4", s.Addresses)
	}
	if s.ByClass[coherence.ClassCode] != 2 || s.ByClass[coherence.ClassLocal] != 1 {
		t.Fatalf("by class = %v", s.ByClass)
	}
}

func TestCapture(t *testing.T) {
	recs := Capture(3, workload.NewArrayInit(10, 4), 100)
	if len(recs) != 5 { // 4 writes + halt
		t.Fatalf("captured %d records", len(recs))
	}
	if recs[4].Op.Kind != workload.OpHalt {
		t.Fatal("capture did not end with halt")
	}
	// Bounded capture stops early.
	recs = Capture(0, workload.NewHotspot(1, 0), 10)
	if len(recs) != 10 {
		t.Fatalf("bounded capture = %d records", len(recs))
	}
}

// Property: binary round-trip is identity for arbitrary well-formed
// records.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(pes []uint8, addrs []uint16, kinds []uint8) bool {
		n := len(pes)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		var recs []Record
		for i := 0; i < n; i++ {
			var op workload.Op
			switch kinds[i] % 4 {
			case 0:
				op = workload.Read(bus.Addr(addrs[i]), coherence.ClassShared)
			case 1:
				op = workload.Write(bus.Addr(addrs[i]), bus.Word(addrs[i])+1, coherence.ClassLocal)
			case 2:
				op = workload.TestSet(bus.Addr(addrs[i]), 1)
			case 3:
				op = workload.Compute(int(addrs[i]))
			}
			recs = append(recs, Record{PE: int(pes[i]), Op: op})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
