package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// fuzzSeedBytes builds a valid binary trace for the fuzz corpus.
func fuzzSeedBytes(t *testing.F, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzTraceRoundTrip feeds arbitrary bytes to the binary decoder; every
// stream that decodes must survive binary -> text -> binary with the
// records intact and the re-encoded bytes byte-identical across a second
// round trip (the canonical-form fixed point). Undecodable inputs must
// fail with an error, never panic or loop.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MCT1"))
	f.Add([]byte("not a trace"))
	f.Add(fuzzSeedBytes(f, sampleRecords()))
	f.Add(fuzzSeedBytes(f, []Record{
		{PE: 0, Op: workload.Read(0, coherence.ClassCode)},
		{PE: 7, Op: workload.Write(1<<31, 5, coherence.ClassUnknown)},
		{PE: 7, Op: workload.Compute(12)},
		{PE: 0, Op: workload.Halt()},
	}))
	f.Add(append(fuzzSeedBytes(f, sampleRecords()), 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		// The text format is narrower than what a lenient binary decode
		// can produce: 32-bit numerics, no class annotation on ts (always
		// shared) or compute/halt (always unknown), no 64-bit-wrapped PE.
		// Streams outside that window round-trip through binary only.
		for _, r := range recs {
			if r.PE < 0 || r.Op.Cycles < 0 || uint64(r.Op.Cycles) > 1<<32-1 {
				return
			}
			switch r.Op.Kind {
			case workload.OpTestSet:
				if r.Op.Class != coherence.ClassShared {
					return
				}
			case workload.OpCompute, workload.OpHalt:
				if r.Op.Class != coherence.ClassUnknown {
					return
				}
			}
		}

		// binary -> text -> records.
		var text bytes.Buffer
		if err := WriteText(&text, recs); err != nil {
			t.Fatalf("WriteText on decoded records: %v", err)
		}
		recs2, err := ParseText(bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatalf("ParseText of own output: %v\n%s", err, text.Bytes())
		}
		if !recordsEqual(recs, recs2) {
			t.Fatalf("text round trip changed records:\n%v\n%v", recs, recs2)
		}

		// records -> binary -> records -> binary: the second encoding is
		// the canonical fixed point (arbitrary input bytes may use
		// non-minimal varints; the writer's output may not).
		bin2 := fuzzEncode(t, recs2)
		recs3, err := NewReader(bytes.NewReader(bin2)).ReadAll()
		if err != nil {
			t.Fatalf("re-decode of own encoding: %v", err)
		}
		if !recordsEqual(recs2, recs3) {
			t.Fatalf("binary round trip changed records:\n%v\n%v", recs2, recs3)
		}
		bin3 := fuzzEncode(t, recs3)
		if !bytes.Equal(bin2, bin3) {
			t.Fatalf("encoding is not a fixed point:\n% x\n% x", bin2, bin3)
		}
	})
}

func fuzzEncode(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTextScannerStreams pins the streaming text reader against the
// batch parser and checks its positional errors.
func TestTextScannerStreams(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	text := "# comment\n\n" + buf.String()
	want, err := ParseText(bytes.NewReader([]byte(text)))
	if err != nil {
		t.Fatal(err)
	}
	sc := NewTextScanner(bytes.NewReader([]byte(text)))
	var got []Record
	for {
		rec, err := sc.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if !recordsEqual(got, want) {
		t.Fatalf("scanner and ParseText disagree:\n%v\n%v", got, want)
	}

	bad := NewTextScanner(bytes.NewReader([]byte("0 read 1\n0 frobnicate 2\n")))
	if _, err := bad.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Read(); err == nil || !bytes.Contains([]byte(err.Error()), []byte("line 2")) {
		t.Fatalf("bad line err = %v, want line-2 position", err)
	}
}
