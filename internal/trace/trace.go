// Package trace serializes memory-reference traces: the workload streams
// the generators synthesize can be captured to a file, inspected
// (cmd/tracestat), and replayed into the simulator (cmd/mimdsim
// -trace). Two formats are provided: a compact binary encoding (varint
// delta-coded addresses, the natural archival format) and a line-oriented
// text form that is easy to write by hand for small scenario scripts.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/workload"
)

// Record is one trace entry: a PE index plus the operation it issued.
type Record struct {
	PE int
	Op workload.Op
}

// magic identifies the binary format ("MCT1": MIMD cache trace v1).
var magic = [4]byte{'M', 'C', 'T', '1'}

// ErrBadMagic reports a binary stream that is not a trace.
var ErrBadMagic = errors.New("trace: bad magic (not an MCT1 stream)")

// Writer encodes records to the binary format.
type Writer struct {
	w        *bufio.Writer
	started  bool
	lastAddr map[int]bus.Addr // per-PE last address, for delta coding
	count    int
}

// NewWriter creates a binary trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), lastAddr: make(map[int]bus.Addr)}
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		w.started = true
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.w.Write(buf[:n])
		return err
	}
	// Header byte: kind in the low 3 bits, class in the next 2.
	head := uint64(r.Op.Kind) | uint64(r.Op.Class)<<3
	if err := put(uint64(r.PE)); err != nil {
		return err
	}
	if err := put(head); err != nil {
		return err
	}
	switch r.Op.Kind {
	case workload.OpRead, workload.OpWrite, workload.OpTestSet:
		// Zig-zag delta against the PE's previous address: locality makes
		// the deltas tiny.
		delta := int64(r.Op.Addr) - int64(w.lastAddr[r.PE])
		w.lastAddr[r.PE] = r.Op.Addr
		n := binary.PutVarint(buf[:], delta)
		if _, err := w.w.Write(buf[:n]); err != nil {
			return err
		}
		if r.Op.Kind != workload.OpRead {
			if err := put(uint64(r.Op.Data)); err != nil {
				return err
			}
		}
	case workload.OpCompute:
		if err := put(uint64(r.Op.Cycles)); err != nil {
			return err
		}
	case workload.OpHalt:
		// No payload.
	default:
		return fmt.Errorf("trace: unencodable op kind %v", r.Op.Kind)
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.count }

// Flush commits buffered output.
func (w *Writer) Flush() error {
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		w.started = true
	}
	return w.w.Flush()
}

// Reader decodes the binary format.
type Reader struct {
	r        *bufio.Reader
	started  bool
	lastAddr map[int]bus.Addr
}

// NewReader creates a binary trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), lastAddr: make(map[int]bus.Addr)}
}

// Read decodes the next record; io.EOF ends the stream.
func (r *Reader) Read() (Record, error) {
	if !r.started {
		var m [4]byte
		if _, err := io.ReadFull(r.r, m[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return Record{}, ErrBadMagic
			}
			return Record{}, err
		}
		if m != magic {
			return Record{}, ErrBadMagic
		}
		r.started = true
	}
	pe64, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, err // io.EOF here is the clean end
	}
	head, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, unexpected(err)
	}
	rec := Record{PE: int(pe64)}
	rec.Op.Kind = workload.OpKind(head & 7)
	rec.Op.Class = coherence.Class(head >> 3 & 3)
	switch rec.Op.Kind {
	case workload.OpRead, workload.OpWrite, workload.OpTestSet:
		delta, err := binary.ReadVarint(r.r)
		if err != nil {
			return Record{}, unexpected(err)
		}
		addr := bus.Addr(int64(r.lastAddr[rec.PE]) + delta)
		r.lastAddr[rec.PE] = addr
		rec.Op.Addr = addr
		if rec.Op.Kind != workload.OpRead {
			data, err := binary.ReadUvarint(r.r)
			if err != nil {
				return Record{}, unexpected(err)
			}
			rec.Op.Data = bus.Word(data)
		}
	case workload.OpCompute:
		cycles, err := binary.ReadUvarint(r.r)
		if err != nil {
			return Record{}, unexpected(err)
		}
		rec.Op.Cycles = int(cycles)
	case workload.OpHalt:
	default:
		return Record{}, fmt.Errorf("trace: undecodable op kind %d", rec.Op.Kind)
	}
	return rec, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteText encodes records in the line format:
//
//	<pe> read <addr> [class]
//	<pe> write <addr> <value> [class]
//	<pe> ts <addr> <value>
//	<pe> compute <cycles>
//	<pe> halt
//
// Lines starting with '#' and blank lines are comments.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		var line string
		switch r.Op.Kind {
		case workload.OpRead:
			line = fmt.Sprintf("%d read %d %s", r.PE, r.Op.Addr, r.Op.Class)
		case workload.OpWrite:
			line = fmt.Sprintf("%d write %d %d %s", r.PE, r.Op.Addr, r.Op.Data, r.Op.Class)
		case workload.OpTestSet:
			line = fmt.Sprintf("%d ts %d %d", r.PE, r.Op.Addr, r.Op.Data)
		case workload.OpCompute:
			line = fmt.Sprintf("%d compute %d", r.PE, r.Op.Cycles)
		case workload.OpHalt:
			line = fmt.Sprintf("%d halt", r.PE)
		default:
			return fmt.Errorf("trace: unencodable op kind %v", r.Op.Kind)
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseText decodes the line format.
func ParseText(rd io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(rd)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: line %d: too few fields", lineNo)
		}
		pe, err := strconv.Atoi(fields[0])
		if err != nil || pe < 0 {
			return nil, fmt.Errorf("trace: line %d: bad PE %q", lineNo, fields[0])
		}
		rec := Record{PE: pe}
		arg := func(i int) (uint64, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("trace: line %d: missing argument", lineNo)
			}
			v, err := strconv.ParseUint(fields[i], 10, 32)
			if err != nil {
				return 0, fmt.Errorf("trace: line %d: bad number %q", lineNo, fields[i])
			}
			return v, nil
		}
		classAt := func(i int) coherence.Class {
			if i >= len(fields) {
				return coherence.ClassShared
			}
			switch fields[i] {
			case "code":
				return coherence.ClassCode
			case "local":
				return coherence.ClassLocal
			case "shared":
				return coherence.ClassShared
			default:
				return coherence.ClassUnknown
			}
		}
		switch fields[1] {
		case "read":
			a, err := arg(2)
			if err != nil {
				return nil, err
			}
			rec.Op = workload.Read(bus.Addr(a), classAt(3))
		case "write":
			a, err := arg(2)
			if err != nil {
				return nil, err
			}
			v, err := arg(3)
			if err != nil {
				return nil, err
			}
			rec.Op = workload.Write(bus.Addr(a), bus.Word(v), classAt(4))
		case "ts":
			a, err := arg(2)
			if err != nil {
				return nil, err
			}
			v, err := arg(3)
			if err != nil {
				return nil, err
			}
			rec.Op = workload.TestSet(bus.Addr(a), bus.Word(v))
		case "compute":
			n, err := arg(2)
			if err != nil {
				return nil, err
			}
			rec.Op = workload.Compute(int(n))
		case "halt":
			rec.Op = workload.Halt()
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[1])
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Split demultiplexes a trace into one replay agent per PE. PEs appearing
// in the trace but issuing no final halt simply halt when their records
// run out (workload.Trace semantics).
func Split(recs []Record) map[int]*workload.Trace {
	byPE := map[int][]workload.Op{}
	for _, r := range recs {
		byPE[r.PE] = append(byPE[r.PE], r.Op)
	}
	out := make(map[int]*workload.Trace, len(byPE))
	for pe, ops := range byPE {
		out[pe] = workload.NewTrace(ops...)
	}
	return out
}

// Stats summarizes a trace for cmd/tracestat.
type Stats struct {
	Records   int
	PEs       int
	Reads     int
	Writes    int
	TestSets  int
	Computes  int
	Halts     int
	Addresses int // distinct
	ByClass   map[coherence.Class]int
}

// Summarize computes Stats over records.
func Summarize(recs []Record) Stats {
	s := Stats{ByClass: make(map[coherence.Class]int)}
	pes := map[int]bool{}
	addrs := map[bus.Addr]bool{}
	for _, r := range recs {
		s.Records++
		pes[r.PE] = true
		switch r.Op.Kind {
		case workload.OpRead:
			s.Reads++
			addrs[r.Op.Addr] = true
			s.ByClass[r.Op.Class]++
		case workload.OpWrite:
			s.Writes++
			addrs[r.Op.Addr] = true
			s.ByClass[r.Op.Class]++
		case workload.OpTestSet:
			s.TestSets++
			addrs[r.Op.Addr] = true
			s.ByClass[r.Op.Class]++
		case workload.OpCompute:
			s.Computes++
		case workload.OpHalt:
			s.Halts++
		}
	}
	s.PEs = len(pes)
	s.Addresses = len(addrs)
	return s
}

// Capture runs an agent standalone for at most n operations, recording
// the stream (results are fed back as zero; only non-reactive agents
// produce meaningful captures, which is what trace generation tools use).
func Capture(pe int, agent workload.Agent, n int) []Record {
	var out []Record
	for i := 0; i < n; i++ {
		op := agent.Next(workload.Result{})
		out = append(out, Record{PE: pe, Op: op})
		if op.Kind == workload.OpHalt {
			break
		}
	}
	return out
}
